//! The paper's headline claims, asserted as integration tests.
//!
//! Absolute numbers are reproduction-band checks (our substrate is a
//! simulator, not the authors' Lumerical + NVMain testbed); what these
//! tests pin down is the *shape* of every comparison the paper makes:
//! who wins, in which metric, and roughly by how much.

use comet::{CometConfig, CometDevice, CometPowerModel};
use cosmos::{run_corruption_experiment, CosmosConfig, CosmosDevice, CosmosPowerModel, TestImage};
use memsim::{
    run_simulation, spec_like_suite, DramConfig, DramDevice, EpcmConfig, EpcmDevice, MemoryDevice,
    SimConfig, SimStats,
};
use opcm_phys::{CellOpticalModel, PcmKind};

fn run_suite(make_device: impl Fn() -> Box<dyn MemoryDevice>, requests: usize) -> Vec<SimStats> {
    let suite = spec_like_suite(requests);
    suite
        .iter()
        .map(|profile| {
            // Fresh device per workload: no cross-profile leakage of open
            // rows, refresh deadlines, or in-flight programming pulses.
            let mut device = make_device();
            let mut p = profile.clone();
            let line = device.topology().line_bytes;
            p.line_bytes = line;
            p.requests = requests * 64 / line as usize;
            let trace = p.generate(42);
            run_simulation(device.as_mut(), &trace, &SimConfig::paced(&p.name))
        })
        .collect()
}

fn avg_bw(stats: &[SimStats]) -> f64 {
    stats
        .iter()
        .map(|s| s.bandwidth().as_gigabytes_per_second())
        .sum::<f64>()
        / stats.len() as f64
}

fn avg_epb(stats: &[SimStats]) -> f64 {
    stats
        .iter()
        .map(|s| s.energy_per_bit().as_picojoules_per_bit())
        .sum::<f64>()
        / stats.len() as f64
}

fn avg_latency(stats: &[SimStats]) -> f64 {
    stats
        .iter()
        .map(|s| s.avg_latency().as_nanos())
        .sum::<f64>()
        / stats.len() as f64
}

/// Section III.A: GST is selected because it has the highest contrast.
#[test]
fn claim_gst_selection() {
    let lambda = opcm_phys::reference_wavelength();
    let gst = PcmKind::Gst.material();
    for other in [PcmKind::Gsst, PcmKind::Sb2Se3] {
        let m = other.material();
        assert!(gst.index_contrast(lambda) > m.index_contrast(lambda));
        assert!(gst.extinction_contrast(lambda) > m.extinction_contrast(lambda));
    }
    // And the cell built from it reaches ~95/96% contrast.
    let cell = CellOpticalModel::comet_gst();
    assert!(cell.transmission_contrast(lambda) > 0.92);
}

/// Section II.B / Fig. 2: the original COSMOS corrupts on adjacent writes;
/// the corrected variant and COMET survive.
#[test]
fn claim_crossbar_corruption() {
    let image = TestImage::synthetic(32, 12, 16);
    let broken = run_corruption_experiment(&CosmosConfig::original(), &image, 4);
    assert!(broken.pixel_error_rate > 0.1);

    let image_2b = TestImage::synthetic(32, 12, 4);
    let fixed = run_corruption_experiment(&CosmosConfig::corrected(), &image_2b, 4);
    assert_eq!(fixed.pixel_error_rate, 0.0);
}

/// Fig. 7: COMET power falls with bit density; b=4 is the cheapest.
#[test]
fn claim_bit_density_power_ordering() {
    let totals: Vec<f64> = CometConfig::bit_density_sweep()
        .into_iter()
        .map(|c| CometPowerModel::new(c).stack().total().as_watts())
        .collect();
    assert!(totals[0] > totals[1] && totals[1] > totals[2]);
}

/// Fig. 8: COMET's power stack undercuts COSMOS's, and laser power is a
/// significant contributor to both.
#[test]
fn claim_power_stack_comparison() {
    let comet = CometPowerModel::new(CometConfig::comet_4b()).stack();
    let cosmos = CosmosPowerModel::new(CosmosConfig::corrected()).stack();
    assert!(comet.total() < cosmos.total());
    assert!(comet.laser / comet.total() > 0.3);
    assert!(cosmos.laser / cosmos.total() > 0.3);
}

/// Fig. 9: the full seven-system comparison shape.
#[test]
fn claim_fig9_shape() {
    let requests = 2000; // enough to converge the shape, fast enough for CI
    let ddr3_2d = run_suite(
        || Box::new(DramDevice::new(DramConfig::ddr3_1600_2d())),
        requests,
    );
    let ddr3_3d = run_suite(
        || Box::new(DramDevice::new(DramConfig::ddr3_3d())),
        requests,
    );
    let ddr4_2d = run_suite(
        || Box::new(DramDevice::new(DramConfig::ddr4_2400_2d())),
        requests,
    );
    let ddr4_3d = run_suite(
        || Box::new(DramDevice::new(DramConfig::ddr4_3d())),
        requests,
    );
    let epcm = run_suite(
        || Box::new(EpcmDevice::new(EpcmConfig::epcm_mm())),
        requests,
    );
    let cosmos = run_suite(
        || Box::new(CosmosDevice::new(CosmosConfig::corrected())),
        requests,
    );
    let comet = run_suite(
        || Box::new(CometDevice::new(CometConfig::comet_4b())),
        requests,
    );

    let comet_bw = avg_bw(&comet);
    // (a) Bandwidth: photonic COMET beats every electronic baseline by a
    // wide margin and COSMOS substantially.
    for (name, stats, min_ratio) in [
        ("2D_DDR3", &ddr3_2d, 10.0),
        ("3D_DDR3", &ddr3_3d, 3.0),
        ("2D_DDR4", &ddr4_2d, 8.0),
        ("3D_DDR4", &ddr4_3d, 2.5),
        ("EPCM-MM", &epcm, 5.0),
        ("COSMOS", &cosmos, 4.0),
    ] {
        let r = comet_bw / avg_bw(stats);
        assert!(
            r > min_ratio,
            "COMET/{name} bandwidth ratio {r:.1} < {min_ratio}"
        );
    }

    // (b) EPB: 3D DRAMs and EPCM beat the photonic memories; COMET beats
    // the 2D DRAMs and COSMOS.
    let comet_epb = avg_epb(&comet);
    assert!(avg_epb(&ddr4_3d) < comet_epb, "3D_DDR4 wins EPB (paper)");
    assert!(avg_epb(&ddr3_3d) < comet_epb, "3D_DDR3 wins EPB (paper)");
    assert!(avg_epb(&epcm) < comet_epb, "EPCM wins EPB (paper)");
    assert!(comet_epb < avg_epb(&ddr3_2d), "COMET beats 2D_DDR3 EPB");
    assert!(comet_epb < avg_epb(&ddr4_2d), "COMET beats 2D_DDR4 EPB");
    assert!(
        comet_epb * 5.0 < avg_epb(&cosmos),
        "COMET crushes COSMOS EPB"
    );

    // (c) BW/EPB: COMET tops every baseline the paper names (6.5x over
    // 3D_DDR4, 65.8x over COSMOS).
    let bw_epb = |s: &[SimStats]| avg_bw(s) / avg_epb(s);
    assert!(bw_epb(&comet) > bw_epb(&ddr4_3d));
    assert!(bw_epb(&comet) > 20.0 * bw_epb(&cosmos));

    // Latency: ~3x (or better) lower than COSMOS.
    assert!(avg_latency(&cosmos) > 3.0 * avg_latency(&comet));
}

/// Table II cross-check: COMET read path is ~3x faster than COSMOS's
/// subtractive read even before queueing.
#[test]
fn claim_read_path_latency() {
    let comet = CometConfig::comet_4b().timing;
    let cosmos = CosmosConfig::corrected().timing;
    let comet_read = comet.unloaded_read_latency().as_nanos();
    let cosmos_read =
        (cosmos.subtractive_read_time() + cosmos.burst_time() * 2.0 + cosmos.interface_delay)
            .as_nanos();
    assert!(
        cosmos_read > 2.5 * (comet_read - 105.0) + 105.0,
        "COMET {comet_read} ns vs COSMOS {cosmos_read} ns"
    );
}

/// Conclusion claim: crosstalk-free operation — COMET data survives heavy
/// neighbour traffic byte-for-byte.
#[test]
fn claim_crosstalk_free_operation() {
    let mut memory = comet::CometMemory::new(CometConfig::comet_4b());
    let data: Vec<u8> = (0..2048).map(|i| (i % 251) as u8).collect();
    memory.write(0, &data);
    for k in 0..64u64 {
        memory.write((1 << 22) + k * 128, &[0xFF; 128]);
    }
    assert_eq!(memory.read(0, data.len()), data);
}

/// Sanity on the trace substrate itself: the suite differentiates devices
/// (no workload produces identical bandwidth on COMET and 2D_DDR3).
#[test]
fn claim_suite_differentiates() {
    let requests = 800;
    let comet = run_suite(
        || Box::new(CometDevice::new(CometConfig::comet_4b())),
        requests,
    );
    let ddr = run_suite(
        || Box::new(DramDevice::new(DramConfig::ddr3_1600_2d())),
        requests,
    );
    for (c, d) in comet.iter().zip(&ddr) {
        assert!(
            c.bandwidth().as_gigabytes_per_second() > d.bandwidth().as_gigabytes_per_second(),
            "workload {}",
            c.workload
        );
    }
}
