//! End-to-end service scenarios: the `comet-serve` traffic subsystem
//! driving the full architecture stack (COMET device ← photonic circuits
//! ← PCM physics) under open/closed-loop multi-tenant load.

use comet::CometConfig;
use comet_serve::{run_service, ArrivalProcess, BatchConfig, ServeSpec, TenantSpec};
use comet_units::Time;
use dota::TransformerWorkload;
use memsim::{spec_like_suite, DramConfig};

/// A DOTA DeiT-Base inference tenant and a SPEC-like tenant sharing one
/// COMET memory: the multi-tenant QoS scenario the subsystem exists for.
#[test]
fn transformer_and_spec_tenants_share_comet() {
    let spec_profile = &spec_like_suite(600)[0]; // mcf-like
    let dota_profile = TransformerWorkload::deit_base().profile(600);
    let spec = ServeSpec::open_loop(ArrivalProcess::poisson(2.0e8), 600).with_tenant(
        TenantSpec::open("dota", ArrivalProcess::deterministic(4.0e8), 600)
            .with_profile(dota_profile),
    );
    let report = run_service(
        &CometConfig::comet_4b(),
        &spec,
        spec_profile,
        42,
        "mcf+dota",
    );
    assert_eq!(report.stats.completed, 1200);
    assert_eq!(report.tenants.len(), 2);
    // Both tenants finished their budgets and saw finite tails.
    for tenant in &report.tenants {
        assert_eq!(tenant.completed, 600, "{}", tenant.name);
        assert!(tenant.percentile(99.0) >= tenant.percentile(50.0));
        assert!(tenant.max_latency >= tenant.percentile(99.0));
        assert!(tenant.throughput_rps(report.stats.makespan) > 0.0);
    }
    // Channel decomposition is exact.
    assert_eq!(report.channel_total(), report.stats.completed);
}

/// One logical COMET simulation partitioned across backend shards is the
/// same simulation: the report is identical for every shard count, and it
/// survives the campaign JSON round trip.
#[test]
fn comet_service_is_shard_invariant_end_to_end() {
    let profile = &spec_like_suite(500)[1]; // lbm-like (write-rich)
    let mk = |shards| {
        let spec = ServeSpec::closed_loop(8, Time::from_nanos(25.0), 500)
            .with_shards(shards)
            .with_batch(BatchConfig::default());
        run_service(&CometConfig::comet_4b(), &spec, profile, 7, "lbm-closed")
    };
    let one = mk(1);
    // COMET-4b exposes 4 channels (one per MDM mode): 2 and 4 shards are
    // real partitions, 9 clamps to 4.
    for shards in [2usize, 4, 9] {
        let sharded = mk(shards);
        assert_eq!(sharded.stats, one.stats, "shards={shards}");
        assert_eq!(sharded.tenants, one.tenants, "shards={shards}");
        assert_eq!(sharded.channels, one.channels, "shards={shards}");
    }
    assert!(one.batched_writes > 0);
}

/// The write-coalescing batch stage saves work on a write-heavy tenant
/// without losing requests, on electronic and photonic devices alike.
#[test]
fn write_batching_conserves_requests_and_saves_energy() {
    let mut profile = spec_like_suite(800)[1].clone(); // lbm-like, write-rich
    profile.footprint = comet_units::ByteCount::new(64 * 64); // hot lines
    profile.pattern = memsim::AccessPattern::Random; // revisit lines fast
    let base = ServeSpec::open_loop(ArrivalProcess::deterministic(5.0e8), 800);
    let batched = base
        .clone()
        .with_batch(BatchConfig::new(Time::from_nanos(120.0), 8));
    for factory in [
        Box::new(DramConfig::ddr3_1600_2d()) as Box<dyn memsim::DeviceFactory>,
        Box::new(CometConfig::comet_4b()),
    ] {
        let plain = run_service(factory.as_ref(), &base, &profile, 3, "hot");
        let coal = run_service(factory.as_ref(), &batched, &profile, 3, "hot");
        assert_eq!(plain.stats.completed, 800);
        assert_eq!(coal.stats.completed, 800);
        assert!(
            coal.coalesced_writes > 0,
            "{} coalesced nothing",
            plain.stats.device
        );
        assert!(
            coal.stats.energy.access <= plain.stats.energy.access,
            "{}: coalescing must not add array work",
            plain.stats.device
        );
    }
}
