//! End-to-end integration tests spanning the whole stack: device physics →
//! photonic circuit → architecture → trace-driven simulation.

use comet::{CometConfig, CometDevice, CometMemory, CometPowerModel, CometTiming, LevelCodec};
use comet_units::{ByteCount, Decibels, Time};
use memsim::{run_simulation, MemOp, MemRequest, MemoryDevice, SimConfig};
use opcm_phys::{CellThermalModel, ProgramMode, ProgramTable};

/// Physics → architecture: a programming table generated from the thermal
/// model drives a functional memory through its codec, and the derived
/// timing stays within the same decade as Table II.
#[test]
fn physics_layer_feeds_architecture_layer() {
    let model = CellThermalModel::comet_gst();
    let table =
        ProgramTable::generate(&model, ProgramMode::AmorphousReset, 4).expect("table generates");

    // Architectural timing derived from the physics.
    let timing = CometTiming::from_program_table(&table);
    assert!(
        timing.max_write_time.as_nanos() < 500.0,
        "derived write budget {} should be in Table II's decade",
        timing.max_write_time
    );

    // Functional memory running on the physics-derived codec.
    let mut config = CometConfig::comet_4b();
    config.timing = timing;
    let mut memory = CometMemory::with_codec(config, LevelCodec::from_table(&table));
    let data: Vec<u8> = (0..4096).map(|i| (i * 37 % 251) as u8).collect();
    memory.write(0x1_0000, &data);
    assert_eq!(memory.read(0x1_0000, data.len()), data);
}

/// The full data path survives every row position (every LUT gain bucket)
/// in a subarray.
#[test]
fn data_integrity_across_all_lut_buckets() {
    let mut memory = CometMemory::new(CometConfig::comet_4b());
    let line: Vec<u8> = (0..128).map(|i| (255 - i) as u8).collect();
    // Lines spaced to walk rows 0..=52 of a subarray (one per stripe
    // period), covering the full 46-row SOA period and beyond.
    for k in 0..52u64 {
        memory.write_line(k * 128 * 4 * 8, &line); // banks=4, stripe=8
    }
    for k in 0..52u64 {
        assert_eq!(memory.read_line(k * 128 * 4 * 8), line, "row bucket {k}");
    }
}

/// Fault injection: the margin boundary sits where the level budget says.
#[test]
fn loss_margin_boundary_matches_level_budget() {
    let mut memory = CometMemory::new(CometConfig::comet_4b());
    let line: Vec<u8> = (0..128).collect();
    memory.write_line(0, &line);

    // Half a 6% level spacing is ~0.13 dB; well inside: fine.
    memory.inject_read_loss(Decibels::new(0.05));
    assert_eq!(memory.read_line(0), line);

    // Far beyond: corrupted.
    memory.inject_read_loss(Decibels::new(3.0));
    assert_ne!(memory.read_line(0), line);
}

/// The timing device and the functional memory agree on capacity.
#[test]
fn device_and_memory_agree_on_geometry() {
    let config = CometConfig::comet_4b();
    let device = CometDevice::new(config.clone());
    assert_eq!(
        device.topology().capacity().value() * 8,
        config.capacity_bits().value()
    );
    assert_eq!(device.topology().line_bytes, config.timing.access_bytes());
}

/// Trace-driven run end-to-end: requests complete, bytes balance, energy
/// components are all populated.
#[test]
fn trace_run_accounting_balances() {
    let mut device = CometDevice::new(CometConfig::comet_4b());
    let n = 5000u64;
    let trace: Vec<MemRequest> = (0..n)
        .map(|i| {
            let op = if i % 7 == 0 {
                MemOp::Write
            } else {
                MemOp::Read
            };
            MemRequest::new(
                i,
                Time::from_nanos(i as f64),
                op,
                i.wrapping_mul(0x2545_F491_4F6C_DD1D) % (1 << 30),
                ByteCount::new(128),
            )
        })
        .collect();
    let stats = run_simulation(&mut device, &trace, &SimConfig::paced("e2e"));
    assert_eq!(stats.completed, n);
    assert_eq!(stats.reads + stats.writes, n);
    assert_eq!(stats.bytes.value(), n * 128);
    assert!(stats.energy.access.as_joules() > 0.0);
    assert!(stats.energy.background.as_joules() > 0.0);
    assert!(stats.makespan >= stats.avg_latency());
    // Background dominates (the paper's photonic EPB story).
    assert!(stats.energy.background > stats.energy.access);
}

/// The power stack is consistent between the model and the device.
#[test]
fn device_background_is_the_power_stack() {
    let config = CometConfig::comet_4b();
    let stack = CometPowerModel::new(config.clone()).stack();
    let device = CometDevice::new(config);
    assert!((device.background_power().as_watts() - stack.total().as_watts()).abs() < 1e-9);
}

/// Latency composition: unloaded reads observe switch-free tune + read +
/// burst + interface.
#[test]
fn unloaded_read_latency_observed_in_simulation() {
    let mut device = CometDevice::new(CometConfig::comet_4b());
    // Two reads to the same subarray, far apart in time: the second is
    // unloaded and switch-free.
    let trace = vec![
        MemRequest::new(0, Time::ZERO, MemOp::Read, 0, ByteCount::new(128)),
        MemRequest::new(
            1,
            Time::from_micros(10.0),
            MemOp::Read,
            128 * 4 * 8, // same subarray (next row within the stripe)
            ByteCount::new(128),
        ),
    ];
    let stats = run_simulation(&mut device, &trace, &SimConfig::paced("lat"));
    // Max latency belongs to the first (cold switch) access; the histogram
    // has both under 350 ns.
    assert!(stats.max_latency.as_nanos() <= 350.0);
    assert!(stats.avg_latency().as_nanos() >= 121.0);
}
