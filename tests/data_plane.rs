//! End-to-end data-plane scenarios: payloads generated at the serve
//! layer, carried through the batch stage and the channel-sharded core,
//! priced per cell transition by the content-aware EPCM device from the
//! physics layer's programming table, and exported by campaigns.

use comet_data::{attach_payloads, DataPolicy, DataWriteModel, PayloadSpec};
use comet_lab::{
    data_policy_axis, payload_entropy_axis, run_campaign, CampaignSpec, WorkloadSource,
};
use comet_serve::{run_service, ArrivalProcess, BatchConfig, ServeSpec, TenantSpec};
use comet_units::{ByteCount, Time};
use memsim::{
    run_simulation, AccessPattern, EpcmConfig, EpcmDevice, FnFactory, SimConfig, WorkloadProfile,
};

fn hot_write_profile(requests: usize) -> WorkloadProfile {
    WorkloadProfile {
        name: "hot-writes".into(),
        read_fraction: 0.0,
        footprint: ByteCount::new(256 * 64),
        pattern: AccessPattern::Random,
        interarrival: Time::from_nanos(10.0),
        requests,
        line_bytes: 64,
    }
}

/// The acceptance ordering, asserted over a campaign grid exactly like
/// the `fig_write_energy_vs_entropy` binary sweeps (smaller, same
/// structure): DCW+FNW ≤ DCW ≤ content-oblivious write energy at every
/// payload entropy point.
#[test]
fn write_energy_orders_policies_at_every_entropy_point() {
    let mut spec = CampaignSpec::new(
        "data-ordering",
        42,
        data_policy_axis(),
        vec![WorkloadSource::Profile(hot_write_profile(400))],
    );
    spec.engines = payload_entropy_axis(ArrivalProcess::poisson(2.0e7), 400);
    let report = run_campaign(&spec, 4);
    assert_eq!(report.cells.len(), 3 * 5);

    let energy = |device: &str, engine: &str| {
        report
            .cells
            .iter()
            .find(|c| c.device == device && c.engine == engine)
            .map(|c| c.stats.energy.access.as_joules())
            .expect("grid is full")
    };
    for engine in ["zero", "sparse-0.05", "weights", "toggle", "uniform"] {
        let engine = format!("payload-{engine}");
        let oblivious = energy("EPCM-oblivious", &engine);
        let dcw = energy("EPCM-DCW", &engine);
        let fnw = energy("EPCM-DCW-FNW", &engine);
        assert!(fnw <= dcw, "{engine}: fnw {fnw} > dcw {dcw}");
        assert!(
            dcw <= oblivious,
            "{engine}: dcw {dcw} > oblivious {oblivious}"
        );
        // Content-awareness must actually bite somewhere below max
        // entropy: on the all-zero sweep DCW conserves every cell.
        if engine == "payload-zero" {
            assert!(dcw < oblivious * 0.05, "{engine}: DCW should almost free");
        }
        // And the flip showcase: complement-heavy updates flip words.
        if engine == "payload-toggle" {
            assert!(fnw < dcw * 0.8, "{engine}: FNW should beat DCW clearly");
        }
    }
    // Per-tenant serve stats rode along in the campaign export.
    for cell in &report.cells {
        assert_eq!(cell.tenants.len(), 1, "{}", cell.engine);
        assert_eq!(cell.tenants[0].name, "data");
        assert_eq!(cell.tenants[0].completed, cell.stats.completed);
    }
}

/// Payload-enabled serve runs stay byte-identical across shard counts:
/// the content-aware device keeps its line store per channel, every
/// channel lives in exactly one shard, and payload generation happens at
/// the source — before sharding exists.
#[test]
fn payload_enabled_serve_reports_are_shard_invariant() {
    let factory = FnFactory::new("EPCM-4ch-FNW", || {
        let mut cfg = EpcmConfig::epcm_mm();
        cfg.name = "EPCM-4ch-FNW".into();
        cfg.topology.channels = 4;
        Box::new(EpcmDevice::with_pricer(
            cfg,
            Box::new(DataWriteModel::gst(4, DataPolicy::DcwFnw)),
        ))
    });
    let mut profile = hot_write_profile(500);
    profile.read_fraction = 0.3; // reads force row flushes through the batcher
    let mk = |shards: usize| {
        let mut spec = ServeSpec::open_loop(ArrivalProcess::poisson(1.0e8), 500)
            .with_shards(shards)
            .with_batch(BatchConfig::default());
        spec.tenants[0] = spec.tenants[0]
            .clone()
            .with_payload(PayloadSpec::SparseUpdate {
                flip_fraction: 0.05,
            });
        run_service(&factory, &spec, &profile, 17, "payload-shards")
    };
    let one = mk(1);
    assert_eq!(one.stats.completed, 500);
    assert!(one.batched_writes > 0);
    for shards in [2usize, 4, 9] {
        let sharded = mk(shards);
        assert_eq!(sharded.stats, one.stats, "shards={shards}");
        assert_eq!(sharded.tenants, one.tenants, "shards={shards}");
        assert_eq!(sharded.channels, one.channels, "shards={shards}");
    }
}

/// Same-line coalescing merges payloads: the surviving access writes the
/// *newest* store's bytes, so a batched run never spends more array
/// energy than an unbatched one on identical traffic.
#[test]
fn batch_coalescing_merges_payloads_without_extra_energy() {
    let factory = FnFactory::new("EPCM-DCW", || {
        Box::new(EpcmDevice::with_pricer(
            EpcmConfig::epcm_mm(),
            Box::new(DataWriteModel::gst(4, DataPolicy::Dcw)),
        ))
    });
    let mut profile = hot_write_profile(600);
    profile.footprint = ByteCount::new(16 * 64); // hot lines coalesce
    let base = ServeSpec::open_loop(ArrivalProcess::deterministic(2.0e8), 600);
    let with_payload = |spec: ServeSpec| {
        let mut spec = spec;
        spec.tenants[0] = spec.tenants[0].clone().with_payload(PayloadSpec::Uniform);
        spec
    };
    let plain = run_service(&factory, &with_payload(base.clone()), &profile, 3, "hot");
    let batched = run_service(
        &factory,
        &with_payload(base.with_batch(BatchConfig::new(Time::from_nanos(200.0), 16))),
        &profile,
        3,
        "hot",
    );
    assert_eq!(plain.stats.completed, 600);
    assert_eq!(batched.stats.completed, 600);
    assert!(batched.coalesced_writes > 0, "hot lines must coalesce");
    assert!(
        batched.stats.energy.access < plain.stats.energy.access,
        "coalesced stores skip whole device accesses"
    );
}

/// The replay engine carries payloads too: `attach_payloads` decorates a
/// synthetic trace and the content-aware device prices it — identically
/// across runs, and far below the oblivious policy on low-entropy data.
#[test]
fn trace_replay_prices_attached_payloads() {
    let profile = hot_write_profile(500);
    let mut trace = profile.generate(7);
    attach_payloads(&mut trace, PayloadSpec::Zero, 11);
    let run = |policy: DataPolicy| {
        let mut dev = EpcmDevice::with_pricer(
            EpcmConfig::epcm_mm(),
            Box::new(DataWriteModel::gst(4, policy)),
        );
        run_simulation(&mut dev, &trace, &SimConfig::paced("zero-trace"))
    };
    let dcw = run(DataPolicy::Dcw);
    let oblivious = run(DataPolicy::Oblivious);
    assert_eq!(dcw.completed, 500);
    assert_eq!(dcw, run(DataPolicy::Dcw), "replay is deterministic");
    assert!(
        dcw.energy.access.as_joules() < oblivious.energy.access.as_joules() * 0.05,
        "all-zero rewrites conserve every cell under DCW"
    );
    // Writes that skip every cell also finish faster than full programs.
    assert!(dcw.makespan <= oblivious.makespan);
    assert!(dcw.p99_latency <= oblivious.p99_latency);
}

/// A tenant mix where only one tenant carries payloads: the other's
/// stores price at the unknown-content worst case, and both finish.
#[test]
fn mixed_payload_and_payloadless_tenants_share_a_device() {
    let factory = FnFactory::new("EPCM-DCW", || {
        Box::new(EpcmDevice::with_pricer(
            EpcmConfig::epcm_mm(),
            Box::new(DataWriteModel::gst(4, DataPolicy::Dcw)),
        ))
    });
    let profile = hot_write_profile(300);
    let spec = ServeSpec {
        tenants: vec![
            TenantSpec::open("data", ArrivalProcess::poisson(5.0e7), 300)
                .with_payload(PayloadSpec::Zero),
            TenantSpec::open("blind", ArrivalProcess::poisson(5.0e7), 300),
        ],
        scheduler: memsim::Scheduler::default(),
        shards: 1,
        batch: None,
    };
    let report = run_service(&factory, &spec, &profile, 23, "mixed");
    assert_eq!(report.stats.completed, 600);
    assert_eq!(report.tenants[0].completed, 300);
    assert_eq!(report.tenants[1].completed, 300);
}
