//! Property-based invariants spanning crate boundaries.

use comet::{decode_levels, encode_bytes, AddressMapper, CometConfig, LevelCodec};
use comet_units::{Decibels, Power, Transmittance};
use memsim::{AddressMap, DecodedAddress, Interleave};
use opcm_phys::{effective_index, CellOpticalModel, PcmKind};
use photonic::{OpticalParams, OpticalPath, PathElement};
use proptest::prelude::*;

proptest! {
    /// Byte <-> level packing round-trips for every supported density.
    #[test]
    fn packing_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 1..256),
                         bits in prop_oneof![Just(1u8), Just(2u8), Just(4u8)]) {
        let levels = encode_bytes(&bytes, bits);
        prop_assert_eq!(decode_levels(&levels, bits), bytes);
    }

    /// The Eq. (1)-(6) mapping is bijective over the whole address space.
    #[test]
    fn eq_mapping_bijective(row in 0u64..(4096 * 512), column in 0u64..256, bank in 0u64..4) {
        let mapper = AddressMapper::new(&CometConfig::comet_4b());
        let flat = DecodedAddress { channel: 0, bank, row, column };
        prop_assert_eq!(mapper.unmap(mapper.map(flat)), flat);
    }

    /// Every interleaving scheme round-trips arbitrary line addresses.
    #[test]
    fn address_map_bijective(line in 0u64..(1 << 24),
                             scheme in prop_oneof![
                                Just(Interleave::RowBankColumnChannel),
                                Just(Interleave::RowColumnBankChannel),
                                Just(Interleave::RowBankColumnChannelXor)]) {
        let map = AddressMap::new(4, 8, 1 << 14, 32, 64, scheme).unwrap();
        let addr = (line % (map.capacity_bytes() / 64)) * 64;
        prop_assert_eq!(map.encode(map.decode(addr)), addr);
    }

    /// Effective-medium optics are monotone: more crystalline = more index,
    /// more absorption, less transmission — for every material.
    #[test]
    fn mixing_monotone(p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let lambda = opcm_phys::reference_wavelength();
        for kind in PcmKind::ALL {
            let m = kind.material();
            let a = effective_index(&m, lo, lambda);
            let b = effective_index(&m, hi, lambda);
            prop_assert!(b.n >= a.n - 1e-12);
            prop_assert!(b.kappa >= a.kappa - 1e-12);
        }
        let cell = CellOpticalModel::comet_gst();
        let ta = cell.transmittance(lo, lambda).value();
        let tb = cell.transmittance(hi, lambda).value();
        prop_assert!(tb <= ta + 1e-12);
    }

    /// Loss budgets compose: splitting a path anywhere conserves total loss.
    #[test]
    fn path_loss_composes(
        segments in proptest::collection::vec(0u8..6, 1..20),
        split in 0usize..19,
    ) {
        let params = OpticalParams::table_i();
        let elems: Vec<PathElement> = segments.iter().map(|&s| match s {
            0 => PathElement::Coupler,
            1 => PathElement::MrThrough,
            2 => PathElement::MrDrop,
            3 => PathElement::GstSwitch,
            4 => PathElement::Bends(2),
            _ => PathElement::Soa { gain: Decibels::new(5.0) },
        }).collect();
        let whole: OpticalPath = elems.iter().copied().collect();
        let cut = split.min(elems.len());
        let first: OpticalPath = elems[..cut].iter().copied().collect();
        let second: OpticalPath = elems[cut..].iter().copied().collect();
        let sum = first.total_loss(&params) + second.total_loss(&params);
        prop_assert!((whole.total_loss(&params).value() - sum.value()).abs() < 1e-9);
    }

    /// Attenuating then amplifying by the same figure is the identity on
    /// power, for any power and any loss.
    #[test]
    fn attenuate_amplify_identity(mw in 0.001f64..1000.0, db in 0.0f64..60.0) {
        let p = Power::from_milliwatts(mw);
        let loss = Decibels::new(db);
        let back = p.attenuate(loss).amplify(loss);
        prop_assert!((back.as_watts() - p.as_watts()).abs() <= p.as_watts() * 1e-12);
    }

    /// Level codecs decode their own levels exactly, and tolerate any loss
    /// strictly below half a spacing.
    #[test]
    fn codec_margin_property(bits in prop_oneof![Just(1u8), Just(2u8), Just(4u8)],
                             frac in 0.0f64..0.49) {
        let codec = LevelCodec::ideal(bits);
        for level in 0..codec.level_count() as u8 {
            let t = codec.transmittance(level);
            // Perturb by `frac` of one spacing (sub-margin).
            let perturbed = Transmittance::new(t.value() - codec.spacing() * frac);
            prop_assert_eq!(codec.decode(perturbed), level);
        }
    }

    /// The COMET gain LUT's residual never exceeds one gain step, anywhere.
    #[test]
    fn lut_residual_bounded(bits in prop_oneof![Just(1u8), Just(2u8), Just(4u8)],
                            row in 0u64..512) {
        let params = OpticalParams::table_i();
        let lut = comet::GainLut::for_bits(bits, 512, &params);
        let bound = params.eo_mr_through_loss.value() * lut.step() as f64 + 1e-9;
        prop_assert!(lut.residual_loss(row).value().abs() <= bound);
    }
}
