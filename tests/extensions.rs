//! Integration tests for the beyond-the-paper extensions working together
//! with the trace-driven evaluation substrate: dynamic laser power
//! management, wear leveling, and end-to-end readout reliability.

use comet::{
    CometConfig, CometDevice, CometMemory, DriftModel, EnduranceModel, LaserPolicy,
    ReadoutReliability, StartGapRemapper, WearTracker, WindowedPolicy,
};
use comet_units::{ByteCount, Decibels, Time};
use memsim::{run_simulation, spec_like_suite, MemOp, MemRequest, SimConfig};

/// DLPM never loses to the static stack on total energy across the whole
/// SPEC-like suite, and never costs more than a sliver of bandwidth.
#[test]
fn laser_management_dominates_static_on_the_suite() {
    for profile in &spec_like_suite(1500) {
        let mut p = profile.clone();
        p.line_bytes = 128;
        p.requests = 750;
        let trace = p.generate(11);

        let mut managed = CometDevice::with_policy(
            CometConfig::comet_4b(),
            LaserPolicy::Windowed(WindowedPolicy::default_1us()),
        );
        let mut static_dev = CometDevice::new(CometConfig::comet_4b());
        let sm = run_simulation(&mut managed, &trace, &SimConfig::paced(&p.name));
        let ss = run_simulation(&mut static_dev, &trace, &SimConfig::paced(&p.name));

        let e_managed = sm.energy.total().as_joules();
        let e_static = ss.energy.total().as_joules();
        assert!(
            e_managed <= e_static * 1.05,
            "{}: managed {e_managed} J should not exceed static {e_static} J",
            p.name
        );
        let bw_m = sm.bandwidth().as_gigabytes_per_second();
        let bw_s = ss.bandwidth().as_gigabytes_per_second();
        assert!(
            bw_m >= bw_s * 0.9,
            "{}: managed bandwidth {bw_m} fell more than 10% below static {bw_s}",
            p.name
        );
    }
}

/// Wear leveling driven by real trace traffic: decode the hot-spot write
/// stream with the COMET device's own topology, and verify start-gap
/// extends the projected lifetime by an order of magnitude.
#[test]
fn start_gap_extends_lifetime_on_trace_traffic() {
    const ROWS: u64 = 256;
    // A database-log-like pattern: 90% of writes hit an 8-row region.
    let writes: Vec<u64> = (0..200_000u64)
        .map(|i| {
            if i % 10 != 0 {
                i % 8
            } else {
                i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % ROWS
            }
        })
        .collect();

    let mut direct = WearTracker::new(ROWS);
    for &row in &writes {
        direct.record(row);
    }

    let mut sg = StartGapRemapper::new(ROWS, 16);
    let mut leveled = WearTracker::new(sg.physical_rows());
    for &row in &writes {
        leveled.record(sg.write(row));
    }

    assert!(direct.imbalance() > 20.0, "hot spot must be severe");
    assert!(
        leveled.imbalance() < direct.imbalance() / 3.0,
        "leveled {} vs direct {}",
        leveled.imbalance(),
        direct.imbalance()
    );

    // Lifetime: with the same endurance budget, the leveled array lasts
    // proportionally longer because its max wear is smaller.
    let endurance = EnduranceModel::default();
    let gain = direct.budget_consumed(&endurance) / leveled.budget_consumed(&endurance);
    assert!(gain > 3.0, "lifetime gain {gain}");
}

/// The reliability analysis and the functional memory agree about the
/// loss margin: losses below the decode flip point leave data intact,
/// losses beyond it corrupt — the margin is real, not advisory.
#[test]
fn reliability_margin_matches_functional_memory() {
    let config = CometConfig::comet_4b();
    let rel = ReadoutReliability::new(config.clone());
    assert!(
        rel.worst_row_error() < 1e-9,
        "nominal COMET-4b reads cleanly"
    );

    let data: Vec<u8> = (0..512).map(|i| (i * 37 % 251) as u8).collect();

    // Below half a level spacing (6%/2 -> ~0.13 dB): intact.
    let mut good = CometMemory::new(config.clone());
    good.write(0, &data);
    good.inject_read_loss(Decibels::new(0.10));
    assert_eq!(good.read(0, data.len()), data);

    // Well past a full spacing: decode must corrupt.
    let mut bad = CometMemory::new(config);
    bad.write(0, &data);
    bad.inject_read_loss(Decibels::new(0.40));
    assert_ne!(
        bad.read(0, data.len()),
        data,
        "a 0.4 dB uncompensated loss must corrupt 4-bit readout"
    );
}

/// Scrub scheduling coexists with performance: a scrub pass modeled as
/// background reads at the drift-derived interval costs a negligible
/// bandwidth share.
#[test]
fn scrub_traffic_is_negligible() {
    let drift = DriftModel::default();
    let interval = drift.scrub_interval(4);
    // The whole 2^21-row array must be re-read once per interval.
    let config = CometConfig::comet_4b();
    let lines = config.capacity().value() / 128;
    // COMET sustains ~1e9 lines/s; scrubbing needs orders of magnitude less.
    let scrub_rate = lines as f64 / interval.as_seconds(); // lines/s
    assert!(
        scrub_rate < 1e6,
        "scrub rate {scrub_rate} lines/s should be far below capability"
    );

    // And as actual traffic: a 1%-duty scrub stream barely moves EPB.
    let mut dev = CometDevice::new(CometConfig::comet_4b());
    let mut trace: Vec<MemRequest> = (0..10_000u64)
        .map(|i| MemRequest::new(i, Time::ZERO, MemOp::Read, i * 128, ByteCount::new(128)))
        .collect();
    // Interleave 1% scrub reads over a distant region.
    for k in 0..100u64 {
        trace.push(MemRequest::new(
            10_000 + k,
            Time::ZERO,
            MemOp::Read,
            (1 << 30) + k * 128,
            ByteCount::new(128),
        ));
    }
    let stats = run_simulation(&mut dev, &trace, &SimConfig::saturation("scrub"));
    assert_eq!(stats.completed, 10_100);
}

/// The laser manager's wake-stall accounting shows up in observed latency:
/// sparse traffic pays the wake latency, saturated traffic does not.
#[test]
fn wake_stalls_are_visible_in_latency() {
    let sparse: Vec<MemRequest> = (0..40u64)
        .map(|i| {
            MemRequest::new(
                i,
                Time::from_micros(i as f64 * 30.0),
                MemOp::Read,
                i * 128,
                ByteCount::new(128),
            )
        })
        .collect();
    let run = |policy| {
        let mut dev = CometDevice::with_policy(CometConfig::comet_4b(), policy);
        let stats = run_simulation(&mut dev, &sparse, &SimConfig::paced("sparse"));
        (stats.avg_latency(), dev.laser_wakeups())
    };
    let (lat_static, wake_static) = run(LaserPolicy::Static);
    let (lat_managed, wake_managed) = run(LaserPolicy::Windowed(WindowedPolicy::default_1us()));
    assert_eq!(wake_static, 0);
    assert!(wake_managed >= 39, "each isolated access wakes the laser");
    let delta = lat_managed.as_nanos() - lat_static.as_nanos();
    let wake = WindowedPolicy::default_1us().wake_latency.as_nanos();
    assert!(
        (delta - wake).abs() < wake * 0.2,
        "latency delta {delta} ns should be about one wake latency ({wake} ns)"
    );
}
