//! Workspace facade for the COMET reproduction.
//!
//! This crate exists to anchor the repository's end-to-end assets — the
//! `examples/` directory and the cross-crate integration tests under
//! `tests/` — and to re-export the eight workspace crates in layer
//! order, so `cargo doc` gives one entry point into the whole stack:
//!
//! 1. [`units`](comet_units) — typed physical quantities (dB, mW, ns, ...);
//! 2. [`phys`](opcm_phys) — phase-change device physics (Lumerical stand-in);
//! 3. [`photonic`] — silicon-photonic circuit substrate;
//! 4. [`comet`] / [`cosmos`] — the paper's architecture and its baseline;
//! 5. [`memsim`] — trace-driven main-memory simulator (NVMain stand-in);
//! 6. [`dota`] — photonic-accelerator case study;
//! 7. `comet-bench` — figure/table regeneration binaries and criterion
//!    benches (not re-exported; it is a binary-oriented leaf crate).
//!
//! See the repository `README.md` for the layer diagram and the
//! paper-artifact map.

#![warn(missing_docs)]

pub use comet;
pub use comet_units;
pub use cosmos;
pub use dota;
pub use memsim;
pub use opcm_phys;
pub use photonic;
