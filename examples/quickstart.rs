//! Quickstart: build a COMET memory, store data, read it back through the
//! optical path, and look at the architecture's headline numbers.
//!
//! Run with: `cargo run --release -p comet --example quickstart`

use comet::{CometConfig, CometDevice, CometMemory, CometPowerModel};
use comet_units::{ByteCount, Time};
use memsim::{run_simulation, MemOp, MemRequest, SimConfig};

fn main() {
    // 1. The paper's COMET-4b configuration: 4 MDM banks x 4096 subarrays
    //    x 512 rows x 256 wavelengths x 4 bits/cell = 2^33 bits.
    let config = CometConfig::comet_4b();
    config.validate().expect("paper configuration is feasible");
    println!(
        "COMET-4b: {} across {} banks, {} wavelengths, {} bits/cell",
        config.capacity(),
        config.banks,
        config.wavelengths(),
        config.bits_per_cell
    );

    // 2. Functional storage: bytes -> 4-bit cell levels -> transmittances
    //    -> decoded bytes, through the LUT-compensated optical read path.
    let mut memory = CometMemory::new(config.clone());
    let message = b"Phase-change photonic main memory, 16 levels per cell.";
    memory.write(0x4000, message);
    let readback = memory.read(0x4000, message.len());
    assert_eq!(&readback, message);
    println!(
        "round-trip through the optical path: OK ({} bytes)",
        message.len()
    );

    // 3. The power stack the architecture burns (Fig. 7).
    let stack = CometPowerModel::new(config.clone()).stack();
    println!("power stack: {stack}");

    // 4. Timing: stream 100k cache lines and measure what the paper's
    //    Table II timing delivers.
    let mut device = CometDevice::new(config);
    let trace: Vec<MemRequest> = (0..100_000u64)
        .map(|i| {
            let op = if i % 10 == 0 {
                MemOp::Write
            } else {
                MemOp::Read
            };
            MemRequest::new(i, Time::ZERO, op, i * 128, ByteCount::new(128))
        })
        .collect();
    let stats = run_simulation(&mut device, &trace, &SimConfig::saturation("quickstart"));
    println!(
        "streamed {} lines: {} sustained, {:.0} ns unloaded read latency, {} energy/bit",
        stats.completed,
        stats.bandwidth(),
        device.config().timing.unloaded_read_latency().as_nanos(),
        stats.energy_per_bit()
    );
}
