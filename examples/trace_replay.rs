//! Trace replay: export an NVMain-style text trace, read it back, and
//! replay it against every memory model in the Fig. 9 comparison.
//!
//! Demonstrates the workflow a user with *real* captured traces follows:
//! put `<cycle> <R|W> <hex-address>` lines in a file, load them with
//! [`memsim::read_trace`], and drive any [`memsim::MemoryDevice`].
//!
//! Run with: `cargo run --release -p comet --example trace_replay [trace.txt]`
//! (with no argument a synthetic mcf-like trace is generated, exported to a
//! temp file, and re-imported — proving the round trip.)

use comet::{CometConfig, CometDevice};
use cosmos::{CosmosConfig, CosmosDevice};
use memsim::{
    read_trace, run_simulation, spec_like_suite, write_trace, DramConfig, DramDevice, EpcmConfig,
    EpcmDevice, MemRequest, MemoryDevice, SimConfig, TraceClock,
};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;

fn load_or_generate(clock: TraceClock) -> std::io::Result<(String, Vec<MemRequest>)> {
    if let Some(path) = std::env::args().nth(1) {
        let file = File::open(&path)?;
        let reqs = read_trace(BufReader::new(file), clock, 64)?;
        return Ok((path, reqs));
    }

    // No trace supplied: synthesize an mcf-like stream, export, re-import.
    let profile = &spec_like_suite(20_000)[0];
    let generated = profile.generate(7);
    let path: PathBuf = std::env::temp_dir().join("comet_trace_replay.nvt");
    write_trace(BufWriter::new(File::create(&path)?), &generated, clock)?;
    let reimported = read_trace(BufReader::new(File::open(&path)?), clock, 64)?;
    assert_eq!(
        generated.len(),
        reimported.len(),
        "export/import must round-trip"
    );
    Ok((path.display().to_string(), reimported))
}

fn main() -> std::io::Result<()> {
    let clock = TraceClock::two_ghz();
    let (source, trace) = load_or_generate(clock)?;
    let reads = trace.iter().filter(|r| r.op.is_read()).count();
    println!(
        "replaying {} requests ({} reads / {} writes) from {source}",
        trace.len(),
        reads,
        trace.len() - reads
    );
    println!();
    println!("device\tbandwidth_GBs\tavg_latency_ns\tepb_pJb");

    let devices: Vec<Box<dyn MemoryDevice>> = vec![
        Box::new(DramDevice::new(DramConfig::ddr3_1600_2d())),
        Box::new(DramDevice::new(DramConfig::ddr3_3d())),
        Box::new(DramDevice::new(DramConfig::ddr4_2400_2d())),
        Box::new(DramDevice::new(DramConfig::ddr4_3d())),
        Box::new(EpcmDevice::new(EpcmConfig::epcm_mm())),
        Box::new(CosmosDevice::new(CosmosConfig::corrected())),
        Box::new(CometDevice::new(CometConfig::comet_4b())),
    ];

    for mut device in devices {
        // Traces are cache-line-granular; devices with wider lines fold
        // neighbouring lines together, which run_simulation handles via
        // the device's own address decomposition.
        let stats = run_simulation(device.as_mut(), &trace, &SimConfig::paced("replay"));
        println!(
            "{}\t{:.3}\t{:.1}\t{:.2}",
            stats.device,
            stats.bandwidth().as_gigabytes_per_second(),
            stats.avg_latency().as_nanos(),
            stats.energy_per_bit().as_picojoules_per_bit()
        );
    }
    Ok(())
}
