//! Image archive scenario — the paper's Fig. 2 narrative as a runnable
//! program: store an image in the original COSMOS crossbar, in the
//! corrected COSMOS, and in COMET; hammer adjacent rows with writes; see
//! who still has the picture.
//!
//! Run with: `cargo run --release -p comet --example image_archive`

use comet::{CometConfig, CometMemory};
use cosmos::{run_corruption_experiment, CosmosConfig, TestImage};

fn render_error_map(rates: &[f64]) -> String {
    rates
        .iter()
        .map(|&r| {
            if r == 0.0 {
                '.'
            } else if r < 0.25 {
                '-'
            } else if r < 0.75 {
                '+'
            } else {
                '#'
            }
        })
        .collect()
}

fn main() {
    let image = TestImage::synthetic(64, 24, 16);
    println!(
        "stored a {}x{} 16-gray-level image; performing 4 writes to adjoining rows\n",
        image.width, image.height
    );

    // Original COSMOS: 4-bit crossbar cells, -18 dB write crosstalk.
    let report = run_corruption_experiment(&CosmosConfig::original(), &image, 4);
    println!(
        "COSMOS (original, 4 b/cell): {:.1}% of pixels corrupted",
        report.pixel_error_rate * 100.0
    );
    println!(
        "  per-row damage (top to bottom): {}",
        render_error_map(&report.row_error_rates)
    );

    // Corrected COSMOS: 2 b/cell with 9% level spacing.
    let image_2b = TestImage::synthetic(64, 24, 4);
    let corrected = run_corruption_experiment(&CosmosConfig::corrected(), &image_2b, 4);
    println!(
        "COSMOS (corrected, 2 b/cell): {:.1}% corrupted (paid with half the density)",
        corrected.pixel_error_rate * 100.0
    );

    // COMET: isolated MR-gated cells, 4 b/cell.
    let mut comet = CometMemory::new(CometConfig::comet_4b());
    comet.write(0, &image.pixels);
    for k in 0..4u64 {
        let aggressor = vec![(k * 13 % 251) as u8; 256];
        comet.write((1 << 21) | (k * 256), &aggressor);
    }
    let back = comet.read(0, image.pixels.len());
    let errors = image
        .pixels
        .iter()
        .zip(&back)
        .filter(|(a, b)| a != b)
        .count();
    println!(
        "COMET (4 b/cell, MR-isolated): {:.1}% corrupted at full density",
        errors as f64 / image.pixels.len() as f64 * 100.0
    );

    println!("\ncrossbar cells share waveguides; COMET's access rings isolate them.");
}
