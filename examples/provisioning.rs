//! Provisioning: the questions an operator deploying COMET would ask,
//! answered by the extension modules in one place.
//!
//! * How reliably does each row read? (`ReadoutReliability`)
//! * How often must stored levels be scrubbed against drift? (`DriftModel`)
//! * How long until hot rows wear out, and what does start-gap buy?
//!   (`EnduranceModel` / `StartGapRemapper` / `WearTracker`)
//! * Which laser policy fits the duty cycle? (`LaserPolicy` sweep)
//! * Can the interface demux carry the wavelength comb? (`WdmCrosstalkAnalysis`)
//!
//! Run with: `cargo run --release -p comet --example provisioning`

use comet::{
    CometConfig, CometDevice, DriftModel, EnduranceModel, LaserPolicy, ReadoutReliability,
    StartGapRemapper, WearTracker, WindowedPolicy,
};
use comet_units::{ByteCount, Time};
use memsim::{run_simulation, MemOp, MemRequest, SimConfig};
use photonic::{FilterOrder, LevelBudget, Microring, WdmCrosstalkAnalysis};

fn main() {
    let config = CometConfig::comet_4b();
    println!("== COMET-4b provisioning report ==\n");

    // --- Readout reliability.
    let rel = ReadoutReliability::new(config.clone());
    println!("readout:");
    println!(
        "  worst-row level error per read : {:.2e}",
        rel.worst_row_error()
    );
    println!(
        "  mean-row  level error per read : {:.2e}",
        rel.mean_row_error()
    );

    // --- Retention and scrubbing.
    let drift = DriftModel::default();
    let scrub = drift.scrub_interval(config.bits_per_cell);
    let lines = config.capacity().value() / config.cache_line.value();
    println!("\nretention:");
    println!(
        "  drift scrub interval           : {:.1} days",
        scrub.as_seconds() / 86_400.0
    );
    println!(
        "  scrub read rate                : {:.1} lines/s over {} lines",
        lines as f64 / scrub.as_seconds(),
        lines
    );

    // --- Endurance under a hot-spot write workload.
    let endurance = EnduranceModel::default();
    let mut sg = StartGapRemapper::new(config.subarray_rows, 32);
    let mut direct = WearTracker::new(config.subarray_rows);
    let mut leveled = WearTracker::new(sg.physical_rows());
    for i in 0..1_000_000u64 {
        let row = if i % 10 != 0 {
            i % 4
        } else {
            i % config.subarray_rows
        };
        direct.record(row);
        leveled.record(sg.write(row));
    }
    // Writes/s if this trace were sustained at 10 GB/s of write traffic.
    let writes_per_s = 10e9 / config.cache_line.value() as f64;
    let hot_share_direct = direct.max_wear() as f64 / direct.total_writes() as f64;
    let hot_share_leveled = leveled.max_wear() as f64 / leveled.total_writes() as f64;
    let life_direct = endurance.lifetime(writes_per_s * hot_share_direct);
    let life_leveled = endurance.lifetime(writes_per_s * hot_share_leveled);
    println!("\nendurance (90%-hot-4-rows write stream @ 10 GB/s sustained):");
    println!(
        "  direct mapping lifetime        : {:.1} minutes (hot row eats {:.0}% of traffic!)",
        life_direct.as_seconds() / 60.0,
        100.0 * hot_share_direct
    );
    println!(
        "  start-gap(32) lifetime         : {:.1} minutes — {:.1}x longer, {:.2}% extra writes",
        life_leveled.as_seconds() / 60.0,
        life_leveled.as_seconds() / life_direct.as_seconds(),
        100.0 * sg.move_writes() as f64 / leveled.total_writes() as f64
    );
    println!("  (a pathological stream: sustained hot-row writes are what wear");
    println!("   leveling plus DRAM-side write caching exist to absorb)");

    // --- Laser policy choice by duty cycle.
    println!("\nlaser policy (2k-request probe at each interarrival):");
    for gap_ns in [1.0, 100.0, 10_000.0] {
        let trace: Vec<MemRequest> = (0..2_000u64)
            .map(|i| {
                MemRequest::new(
                    i,
                    Time::from_nanos(i as f64 * gap_ns),
                    if i % 5 == 0 {
                        MemOp::Write
                    } else {
                        MemOp::Read
                    },
                    i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (1 << 30),
                    ByteCount::new(128),
                )
            })
            .collect();
        let run = |policy| {
            let mut dev = CometDevice::with_policy(CometConfig::comet_4b(), policy);
            run_simulation(&mut dev, &trace, &SimConfig::paced("probe"))
                .energy_per_bit()
                .as_picojoules_per_bit()
        };
        let static_epb = run(LaserPolicy::Static);
        let windowed = run(LaserPolicy::Windowed(WindowedPolicy::default_1us()));
        let pick = if windowed < static_epb * 0.95 {
            "windowed-1us"
        } else {
            "static"
        };
        println!(
            "  interarrival {gap_ns:>7} ns: static {static_epb:>10.1} pJ/b, windowed {windowed:>10.1} pJ/b -> {pick}"
        );
    }

    // --- Interface demux feasibility for the wavelength comb.
    let b4 = LevelBudget::for_bits(config.bits_per_cell);
    println!(
        "\ninterface demux ({} wavelengths/bus):",
        config.wavelengths()
    );
    for (name, order) in [
        ("single-ring", FilterOrder::Single),
        ("double-ring", FilterOrder::Double),
    ] {
        let a = WdmCrosstalkAnalysis::new(
            Microring::interface_demux(),
            config.wavelengths() as usize,
            order,
        );
        println!(
            "  {name:<12}: accumulated crosstalk {:.4} -> {}",
            a.total_crosstalk(),
            if a.within_budget(&b4) {
                "OK"
            } else {
                "exceeds 4-bit margin"
            }
        );
    }
}
