//! LLM-serving scenario — the data-intensive workload class the paper's
//! introduction motivates: a token-generation loop streaming large weight
//! matrices with KV-cache appends, run against COMET and the strongest
//! electronic baseline.
//!
//! Run with: `cargo run --release -p comet --example llm_serving`

use comet::{CometConfig, CometDevice};
use comet_units::{ByteCount, Time};
use memsim::{run_simulation, DramConfig, DramDevice, MemOp, MemRequest, SimConfig};

/// One decode step of a 7B-parameter-class model, sampled 1:1000: stream a
/// slice of the weights (reads) and append to the KV cache (writes).
fn decode_step_trace(step: u64, lines_per_step: u64, start_id: u64) -> Vec<MemRequest> {
    let line = 128u64;
    let weights_footprint: u64 = 1 << 30;
    let kv_base: u64 = 3 << 30;
    let mut out = Vec::new();
    for i in 0..lines_per_step {
        let id = start_id + i;
        let arrival = Time::from_nanos((id as f64) * 0.4);
        if i % 16 == 15 {
            // KV-cache append: sequential writes in a separate region.
            let kv_addr = kv_base + (step * (lines_per_step / 16) + i / 16) * line;
            out.push(MemRequest::new(
                id,
                arrival,
                MemOp::Write,
                kv_addr,
                ByteCount::new(line),
            ));
        } else {
            // Weight streaming.
            let w_addr = (step * 7919 * line + i * line) % weights_footprint;
            out.push(MemRequest::new(
                id,
                arrival,
                MemOp::Read,
                w_addr,
                ByteCount::new(line),
            ));
        }
    }
    out
}

fn main() {
    let steps = 16u64;
    let lines_per_step = 2048u64;
    let mut trace = Vec::new();
    for s in 0..steps {
        trace.extend(decode_step_trace(s, lines_per_step, s * lines_per_step));
    }
    let bytes = trace.len() as u64 * 128;
    println!(
        "LLM decode loop: {} steps, {} requests ({} MiB of traffic, 1:1000 sampled)\n",
        steps,
        trace.len(),
        bytes >> 20
    );

    let mut results = Vec::new();
    let mut comet = CometDevice::new(CometConfig::comet_4b());
    results.push(run_simulation(
        &mut comet,
        &trace,
        &SimConfig::paced("llm-decode"),
    ));
    let mut ddr = DramDevice::new(DramConfig::ddr4_3d());
    results.push(run_simulation(
        &mut ddr,
        &trace,
        &SimConfig::paced("llm-decode"),
    ));

    println!(
        "{:<10} {:>14} {:>16} {:>14}",
        "memory", "bandwidth", "tokens/s (est.)", "avg latency"
    );
    for s in &results {
        // A decode step needs its full weight slice; token rate follows
        // from how fast the memory turns steps around.
        let step_time = s.makespan.as_seconds() / steps as f64;
        println!(
            "{:<10} {:>11.1} GB/s {:>14.0} {:>11.0} ns",
            s.device,
            s.bandwidth().as_gigabytes_per_second(),
            1.0 / step_time,
            s.avg_latency().as_nanos(),
        );
    }

    let speedup = results[0].bandwidth() / results[1].bandwidth();
    println!(
        "\nCOMET turns decode steps around {speedup:.1}x faster than 3D_DDR4 — \
         the TB/s-class feed the paper's introduction calls for."
    );
}
