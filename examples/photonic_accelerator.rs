//! Photonic-accelerator scenario (paper Section IV.D): feed the DOTA
//! tensor engine from every memory system and compare the end-to-end
//! energy per delivered bit for DeiT-T and DeiT-B inference.
//!
//! Run with: `cargo run --release -p comet --example photonic_accelerator`

use comet::{CometConfig, CometDevice};
use cosmos::{CosmosConfig, CosmosDevice};
use dota::{evaluate_system, FeedKind, TransformerWorkload};
use memsim::{DramConfig, DramDevice, MemoryDevice};

fn main() {
    println!("DOTA photonic tensor core fed by different main memories\n");

    for model in TransformerWorkload::fig10_models() {
        println!(
            "== {} ({}M parameters, {:.1} GFLOPs) ==",
            model.name,
            model.parameters / 1_000_000,
            model.gflops
        );
        println!(
            "{:<10} {:>10} {:>12} {:>12} {:>12}",
            "memory", "feed", "mem pJ/b", "conv pJ/b", "system pJ/b"
        );

        let mut systems: Vec<(Box<dyn MemoryDevice>, FeedKind)> = vec![
            (
                Box::new(DramDevice::new(DramConfig::ddr4_3d())),
                FeedKind::Electronic,
            ),
            (
                Box::new(CosmosDevice::new(CosmosConfig::corrected())),
                FeedKind::Photonic,
            ),
            (
                Box::new(CometDevice::new(CometConfig::comet_4b())),
                FeedKind::Photonic,
            ),
        ];
        for (device, feed) in systems.iter_mut() {
            let report = evaluate_system(device.as_mut(), *feed, &model, 1, 60, 11);
            println!(
                "{:<10} {:>10} {:>12.1} {:>12.1} {:>12.1}",
                report.memory,
                format!("{:?}", report.feed),
                report.memory_epb.as_picojoules_per_bit(),
                report.conversion_epb.as_picojoules_per_bit(),
                report.total_epb().as_picojoules_per_bit(),
            );
        }
        println!();
    }

    println!(
        "photonic memories skip the DAC/modulator conversion stage at the\n\
         accelerator boundary — the paper's case for optical main memory in\n\
         optical computing systems."
    );
}
