//! Transient thermal programming model of an OPCM cell.
//!
//! Stands in for the paper's Ansys Lumerical HEAT simulations (Section
//! III.B): *"transient unsteady-state heat transfer equations to capture the
//! time-dependent temperature distribution over the OPCM's cell volume"*.
//!
//! # Model
//!
//! A 2 µm GST-on-SOI cell is thermally fast and nearly isothermal (silicon
//! conducts ~370× better than GST), so the film is represented by a lumped
//! thermal node with three physical ingredients that together produce the
//! paper's programming behaviour:
//!
//! 1. **Self-consistent optical heating.** The absorbed power is
//!    `P · A(q)` where the absorptance `A` comes from [`CellOpticalModel`]
//!    at the *current* effective crystalline fraction `q` (molten material
//!    absorbs like the crystalline phase). More crystalline ⇒ more
//!    absorption ⇒ hotter: the positive feedback that makes optical writes
//!    work. At write intensities a nonlinear absorption floor (two-photon /
//!    free-carrier absorption in the Si core) guarantees a minimum coupling
//!    even for a fully amorphous film.
//! 2. **Latent-heat-buffered melting.** When the node reaches the melting
//!    point the temperature clamps while excess power converts material to
//!    melt — so the *melt fraction* is a smooth, energy-controlled analog
//!    quantity. This is what makes partial amorphization (multi-level
//!    writes in crystalline-reset mode) controllable.
//! 3. **Bell-shaped crystallization kinetics.** Between the crystallization
//!    onset `T_g` and the melting point `T_l` the unmelted material
//!    crystallizes at `dp/dt = r(T)·(1−p)` with `r` peaking mid-window
//!    (nucleation-growth compromise). Above `T_l` nothing crystallizes;
//!    melt-quenched material re-solidifies amorphous (the quench rate at
//!    these geometries exceeds the critical rate, so re-crystallization
//!    during cool-down of freshly molten material is suppressed).
//!
//! # Calibration
//!
//! The defaults reproduce the paper's anchors (tests assert them):
//! * full amorphization (reset, case 2) at 5 mW in ≈56 ns ⇒ ≈280 pJ;
//! * full crystallization (reset, case 1) at 1 mW in the several-hundred-ns
//!   range ⇒ hundreds of pJ (paper: 880 pJ);
//! * 1 mW writes are **self-limiting**: the steady-state temperature stays
//!   below the melting point at every crystalline fraction, so a
//!   crystallization pulse can never destroy data by melting;
//! * multi-level write latencies land in the tens-to-~200 ns range
//!   (Table II: max write 170 ns, erase 210 ns).

use crate::cell_optics::CellOpticalModel;
use comet_units::{Energy, Length, Power, Temperature, Time};
use serde::{Deserialize, Serialize};

use crate::materials::Silicon;

/// Tuning constants of the lumped thermal model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalParams {
    /// Total conductance from the hot node to ambient (BOX conduction plus
    /// lateral/fin spreading), W/K.
    pub sink_conductance: f64,
    /// Fraction of the Si core's heat capacity that participates on write
    /// timescales (3-D spreading means the full core never charges).
    pub core_participation: f64,
    /// Minimum absorptance during write pulses (nonlinear write assist).
    pub write_assist_floor: f64,
    /// Pulse power at and above which the write-assist floor applies.
    pub write_assist_threshold: Power,
    /// Volumetric latent heat of fusion of the PCM, J/m³.
    pub latent_heat: f64,
    /// Peak crystallization rate, 1/s.
    pub crystallization_rate: f64,
    /// Width (std-dev) of the crystallization rate bell, K.
    pub rate_bell_sigma: f64,
    /// Ambient / heat-sink temperature.
    pub ambient: Temperature,
    /// Integration time step.
    pub time_step: Time,
}

impl Default for ThermalParams {
    fn default() -> Self {
        ThermalParams {
            sink_conductance: 1.8e-6,
            core_participation: 0.15,
            write_assist_floor: 0.30,
            write_assist_threshold: Power::from_milliwatts(0.5),
            latent_heat: 1.3e9,
            crystallization_rate: 2.0e7,
            rate_bell_sigma: 120.0,
            ambient: Temperature::AMBIENT,
            time_step: Time::from_nanos(0.25),
        }
    }
}

/// The programmable state of one OPCM cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellState {
    /// Crystalline volume fraction of the (solid) film, `[0, 1]`.
    pub crystalline_fraction: f64,
    /// Current temperature of the thermal node.
    pub temperature: Temperature,
}

impl CellState {
    /// A fully amorphous cell at ambient temperature.
    pub fn amorphous() -> Self {
        CellState {
            crystalline_fraction: 0.0,
            temperature: Temperature::AMBIENT,
        }
    }

    /// A fully crystalline cell at ambient temperature.
    pub fn crystalline() -> Self {
        CellState {
            crystalline_fraction: 1.0,
            temperature: Temperature::AMBIENT,
        }
    }

    /// A cell at a given crystalline fraction, at ambient temperature.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn at_fraction(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "fraction must be in [0,1], got {p}"
        );
        CellState {
            crystalline_fraction: p,
            temperature: Temperature::AMBIENT,
        }
    }
}

impl Default for CellState {
    fn default() -> Self {
        CellState::amorphous()
    }
}

/// A rectangular optical programming pulse.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PulseSpec {
    /// Optical power delivered at the cell.
    pub power: Power,
    /// Pulse duration.
    pub duration: Time,
}

impl PulseSpec {
    /// Creates a pulse.
    pub fn new(power: Power, duration: Time) -> Self {
        PulseSpec { power, duration }
    }

    /// The optical energy contained in the pulse.
    pub fn energy(&self) -> Energy {
        self.power * self.duration
    }
}

/// The result of applying one pulse (including the cool-down/quench).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PulseOutcome {
    /// Cell state after the quench completes (back near ambient).
    pub state: CellState,
    /// Peak node temperature reached.
    pub peak_temperature: Temperature,
    /// Total optical energy absorbed by the cell.
    pub absorbed_energy: Energy,
    /// Peak melt fraction reached during the pulse.
    pub peak_melt_fraction: f64,
    /// Whether any melting occurred (⇒ amorphization on quench).
    pub melted: bool,
}

/// One sample of a traced pulse simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Time since pulse start.
    pub time: Time,
    /// Node temperature.
    pub temperature: Temperature,
    /// Crystalline fraction of the unmelted material.
    pub crystalline_fraction: f64,
    /// Melt fraction.
    pub melt_fraction: f64,
}

/// Lumped transient thermal model of one OPCM cell.
///
/// # Examples
///
/// ```
/// use comet_units::{Power, Time, Length};
/// use opcm_phys::{CellState, CellThermalModel, PulseSpec};
///
/// let model = CellThermalModel::comet_gst();
/// // A 5 mW, 60 ns pulse fully amorphizes a crystalline cell:
/// let out = model.apply_pulse(
///     CellState::crystalline(),
///     PulseSpec::new(Power::from_milliwatts(5.0), Time::from_nanos(60.0)),
/// );
/// assert!(out.melted);
/// assert!(out.state.crystalline_fraction < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct CellThermalModel {
    optics: CellOpticalModel,
    params: ThermalParams,
    wavelength: Length,
    /// Lumped heat capacity, J/K.
    heat_capacity: f64,
    /// Latent heat of the whole film, J.
    melt_enthalpy: f64,
    /// Absorptance lookup vs effective fraction (cheap inner loop).
    absorptance_lut: Vec<f64>,
}

const LUT_SIZE: usize = 257;

impl CellThermalModel {
    /// Builds a model from cell optics and thermal parameters at an
    /// operating wavelength.
    pub fn new(optics: CellOpticalModel, params: ThermalParams, wavelength: Length) -> Self {
        let geom = optics.geometry;
        let pcm = &optics.material.thermal;
        let heat_capacity = pcm.volumetric_heat_capacity() * geom.pcm_volume()
            + params.core_participation * Silicon::volumetric_heat_capacity() * geom.core_volume();
        let melt_enthalpy = params.latent_heat * geom.pcm_volume();
        let absorptance_lut = (0..LUT_SIZE)
            .map(|i| optics.absorptance(i as f64 / (LUT_SIZE - 1) as f64, wavelength))
            .collect();
        CellThermalModel {
            optics,
            params,
            wavelength,
            heat_capacity,
            melt_enthalpy,
            absorptance_lut,
        }
    }

    /// The default COMET GST cell at 1550 nm with default calibration.
    pub fn comet_gst() -> Self {
        CellThermalModel::new(
            CellOpticalModel::comet_gst(),
            ThermalParams::default(),
            crate::materials::reference_wavelength(),
        )
    }

    /// The optical model this thermal model wraps.
    pub fn optics(&self) -> &CellOpticalModel {
        &self.optics
    }

    /// The thermal parameters in use.
    pub fn params(&self) -> &ThermalParams {
        &self.params
    }

    /// The operating wavelength.
    pub fn wavelength(&self) -> Length {
        self.wavelength
    }

    /// Lumped heat capacity of the hot node, J/K.
    pub fn heat_capacity(&self) -> f64 {
        self.heat_capacity
    }

    /// Thermal time constant `C/G` of the node.
    pub fn time_constant(&self) -> Time {
        Time::from_seconds(self.heat_capacity / self.params.sink_conductance)
    }

    /// Interpolated absorptance at effective fraction `q`.
    fn absorptance(&self, q: f64) -> f64 {
        let x = q.clamp(0.0, 1.0) * (LUT_SIZE - 1) as f64;
        let i = (x as usize).min(LUT_SIZE - 2);
        let frac = x - i as f64;
        self.absorptance_lut[i] * (1.0 - frac) + self.absorptance_lut[i + 1] * frac
    }

    /// Crystallization rate at temperature `t` (1/s): a Gaussian bell over
    /// the window `[T_g, T_l]`, zero outside.
    pub fn crystallization_rate(&self, t: Temperature) -> f64 {
        let th = &self.optics.material.thermal;
        let tk = t.as_kelvin();
        if tk <= th.crystallization_onset.as_kelvin() || tk >= th.melting_point.as_kelvin() {
            return 0.0;
        }
        let t_opt = th.optimal_crystallization_temperature().as_kelvin();
        let z = (tk - t_opt) / self.params.rate_bell_sigma;
        self.params.crystallization_rate * (-0.5 * z * z).exp()
    }

    /// Applies one programming pulse (plus quench) to a cell state.
    pub fn apply_pulse(&self, state: CellState, pulse: PulseSpec) -> PulseOutcome {
        self.simulate(state, pulse, None)
    }

    /// Like [`apply_pulse`](Self::apply_pulse) but records a time trace
    /// sampled every `sample_every` steps.
    pub fn apply_pulse_traced(
        &self,
        state: CellState,
        pulse: PulseSpec,
        sample_every: usize,
        trace: &mut Vec<TraceSample>,
    ) -> PulseOutcome {
        self.simulate(state, pulse, Some((sample_every.max(1), trace)))
    }

    fn simulate(
        &self,
        state: CellState,
        pulse: PulseSpec,
        mut trace: Option<(usize, &mut Vec<TraceSample>)>,
    ) -> PulseOutcome {
        let th = self.optics.material.thermal;
        let t_melt = th.melting_point.as_kelvin();
        let t_onset = th.crystallization_onset.as_kelvin();
        let ambient = self.params.ambient.as_kelvin();
        let g = self.params.sink_conductance;
        let c = self.heat_capacity;
        let dt = self.params.time_step.as_seconds();
        let p_in = pulse.power.as_watts();
        let assist = pulse.power >= self.params.write_assist_threshold;

        // p: crystalline fraction of the *unmelted* portion; mu: melt fraction.
        let mut p = state.crystalline_fraction;
        let mut mu = 0.0f64;
        let mut temp = state.temperature.as_kelvin();
        let mut peak_t = temp;
        let mut peak_mu: f64 = 0.0;
        let mut absorbed = 0.0f64;
        let mut melted = false;

        let pulse_steps = (pulse.duration.as_seconds() / dt).ceil() as usize;
        // Cool-down budget: several time constants, capped.
        let cooldown_steps =
            ((8.0 * self.time_constant().as_seconds() / dt).ceil() as usize).min(200_000);

        for step in 0..(pulse_steps + cooldown_steps) {
            let heating = step < pulse_steps;

            // Effective fraction for optics: molten material absorbs like
            // the crystalline phase.
            let q = p * (1.0 - mu) + mu;
            let source = if heating {
                let mut a = self.absorptance(q);
                if assist {
                    a = a.max(self.params.write_assist_floor);
                }
                absorbed += p_in * a * dt;
                p_in * a
            } else {
                0.0
            };

            let net = source - g * (temp - ambient);

            if temp >= t_melt && net > 0.0 {
                // Plateau: excess power converts material to melt.
                if mu < 1.0 {
                    mu = (mu + net * dt / self.melt_enthalpy).min(1.0);
                    melted = true;
                } else {
                    // Fully molten: superheat the liquid.
                    temp += net * dt / c;
                }
            } else {
                temp += net * dt / c;
                if temp >= t_melt && mu < 1.0 {
                    // Crossed the melting point this step: clamp, start melting.
                    let overshoot = (temp - t_melt) * c;
                    temp = t_melt;
                    mu = (mu + overshoot / self.melt_enthalpy).min(1.0);
                    melted = true;
                }
            }

            // Crystallization kinetics of the unmelted portion. During
            // cool-down, freshly melt-quenched material is nucleation-limited
            // and does not re-crystallize; the (1-mu) weighting handles the
            // still-molten part, and we additionally freeze kinetics once
            // cooling if melting happened (critical quench rate satisfied).
            if !melted || heating {
                let rate = self.crystallization_rate(Temperature::from_kelvin(temp));
                if rate > 0.0 {
                    p += rate * (1.0 - p) * dt;
                    if p > 1.0 {
                        p = 1.0;
                    }
                }
            }

            peak_t = peak_t.max(temp);
            peak_mu = peak_mu.max(mu);

            if let Some((every, ref mut samples)) = trace {
                if step % every == 0 {
                    samples.push(TraceSample {
                        time: Time::from_seconds(step as f64 * dt),
                        temperature: Temperature::from_kelvin(temp),
                        crystalline_fraction: p,
                        melt_fraction: mu,
                    });
                }
            }

            // Early exit once quenched well below the kinetics window.
            if !heating && temp < t_onset - 20.0 {
                break;
            }
        }

        // Quench: molten material re-solidifies amorphous.
        let final_p = p * (1.0 - mu);

        PulseOutcome {
            state: CellState {
                crystalline_fraction: final_p,
                temperature: Temperature::from_kelvin(temp.max(ambient)),
            },
            peak_temperature: Temperature::from_kelvin(peak_t),
            absorbed_energy: Energy::from_joules(absorbed),
            peak_melt_fraction: peak_mu,
            melted,
        }
    }

    /// Steady-state node temperature for a given absorbed power.
    pub fn steady_state_temperature(&self, absorbed: Power) -> Temperature {
        Temperature::from_kelvin(
            self.params.ambient.as_kelvin() + absorbed.as_watts() / self.params.sink_conductance,
        )
    }

    /// Whether a continuous pulse at `power` can ever melt the film,
    /// i.e. whether the worst-case (fully crystalline/molten) steady-state
    /// temperature reaches the melting point.
    pub fn can_melt_at(&self, power: Power) -> bool {
        let worst = self
            .absorptance(1.0)
            .max(if power >= self.params.write_assist_threshold {
                self.params.write_assist_floor
            } else {
                0.0
            });
        self.steady_state_temperature(Power::from_watts(power.as_watts() * worst))
            >= self.optics.material.thermal.melting_point
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CellThermalModel {
        CellThermalModel::comet_gst()
    }

    fn mw(x: f64) -> Power {
        Power::from_milliwatts(x)
    }

    fn ns(x: f64) -> Time {
        Time::from_nanos(x)
    }

    #[test]
    fn time_constant_is_tens_of_nanoseconds() {
        let tau = model().time_constant().as_nanos();
        assert!((20.0..=100.0).contains(&tau), "tau = {tau} ns");
    }

    #[test]
    fn one_milliwatt_is_self_limiting() {
        // The key safety property of crystallization writes: 1 mW can never
        // melt the film no matter how crystalline it gets.
        assert!(!model().can_melt_at(mw(1.0)));
        assert!(model().can_melt_at(mw(5.0)));
    }

    #[test]
    fn five_milliwatt_reset_amorphizes_crystalline_cell() {
        let out = model().apply_pulse(CellState::crystalline(), PulseSpec::new(mw(5.0), ns(60.0)));
        assert!(out.melted);
        assert!(
            out.state.crystalline_fraction < 0.05,
            "residual fraction {}",
            out.state.crystalline_fraction
        );
        // Energy anchor: paper's case-2 reset is 280 pJ (5 mW x 56 ns).
        let pulse_energy = (mw(5.0) * ns(60.0)).as_picojoules();
        assert!((200.0..=400.0).contains(&pulse_energy));
    }

    #[test]
    fn reset_energy_anchor_from_amorphous_start() {
        // Erase must also fully amorphize a partially crystalline cell in
        // the Table II erase budget (~210 ns at 5 mW).
        let m = model();
        for start in [0.0, 0.3, 0.6, 1.0] {
            let out = m.apply_pulse(
                CellState::at_fraction(start),
                PulseSpec::new(mw(5.0), ns(210.0)),
            );
            assert!(
                out.state.crystalline_fraction < 0.05,
                "start={start} left fraction {}",
                out.state.crystalline_fraction
            );
        }
    }

    #[test]
    fn crystallization_write_raises_fraction_monotonically() {
        let m = model();
        let mut last = 0.0;
        for d in [60.0, 100.0, 140.0, 180.0, 240.0] {
            let out = m.apply_pulse(CellState::amorphous(), PulseSpec::new(mw(1.0), ns(d)));
            assert!(
                out.state.crystalline_fraction >= last,
                "not monotone at d={d}: {} < {last}",
                out.state.crystalline_fraction
            );
            assert!(!out.melted, "1 mW pulse must never melt");
            last = out.state.crystalline_fraction;
        }
        assert!(
            last > 0.5,
            "240 ns @ 1 mW should crystallize deeply, got {last}"
        );
    }

    #[test]
    fn deep_crystallization_within_write_budget() {
        // Table II: max write time 170 ns. The deepest 4-bit level needs
        // p ~ 0.8; allow some margin around the anchor.
        let m = model();
        let out = m.apply_pulse(CellState::amorphous(), PulseSpec::new(mw(1.0), ns(200.0)));
        assert!(
            out.state.crystalline_fraction > 0.55,
            "200 ns @ 1 mW only reached p={}",
            out.state.crystalline_fraction
        );
    }

    #[test]
    fn full_crystallization_reset_energy_anchor() {
        // Paper case-1 reset: 880 pJ. At 1 mW that is ~880 ns; our model
        // should reach ~full crystallization in the same energy decade.
        let m = model();
        let out = m.apply_pulse(CellState::amorphous(), PulseSpec::new(mw(1.0), ns(900.0)));
        assert!(
            out.state.crystalline_fraction > 0.95,
            "900 ns @ 1 mW reached only p={}",
            out.state.crystalline_fraction
        );
    }

    #[test]
    fn partial_amorphization_is_energy_controlled() {
        // Mode-1 writes: from crystalline, longer 5 mW pulses melt more.
        let m = model();
        let mut last = 1.0;
        let mut decreased = 0;
        for d in [8.0, 12.0, 14.0, 16.0, 18.0, 25.0] {
            let out = m.apply_pulse(CellState::crystalline(), PulseSpec::new(mw(5.0), ns(d)));
            assert!(out.state.crystalline_fraction <= last + 1e-9);
            if out.state.crystalline_fraction < last - 1e-6 {
                decreased += 1;
            }
            last = out.state.crystalline_fraction;
        }
        assert!(decreased >= 3, "melt fraction should grow with duration");
        assert!(last < 0.05, "25 ns @ 5 mW should amorphize the whole film");
    }

    #[test]
    fn read_pulse_does_not_disturb() {
        // A 0.1 mW read (below the write-assist threshold) leaves the state
        // untouched — the isolation property COMET relies on.
        let m = model();
        for start in [0.0, 0.4, 0.8] {
            let out = m.apply_pulse(
                CellState::at_fraction(start),
                PulseSpec::new(mw(0.1), ns(10.0)),
            );
            assert!(
                (out.state.crystalline_fraction - start).abs() < 1e-3,
                "read disturbed state: {} -> {}",
                start,
                out.state.crystalline_fraction
            );
            assert!(!out.melted);
            assert!(out.peak_temperature < m.optics().material.thermal.crystallization_onset);
        }
    }

    #[test]
    fn absorbed_energy_is_bounded_by_pulse_energy() {
        let m = model();
        let pulse = PulseSpec::new(mw(5.0), ns(100.0));
        let out = m.apply_pulse(CellState::crystalline(), pulse);
        assert!(out.absorbed_energy.as_joules() <= pulse.energy().as_joules() + 1e-18);
        assert!(out.absorbed_energy.as_joules() > 0.0);
    }

    #[test]
    fn traced_pulse_records_profile() {
        let m = model();
        let mut trace = Vec::new();
        let _ = m.apply_pulse_traced(
            CellState::crystalline(),
            PulseSpec::new(mw(5.0), ns(60.0)),
            10,
            &mut trace,
        );
        assert!(trace.len() > 10);
        // Temperature must rise from ambient and eventually hit the plateau.
        let max_t = trace
            .iter()
            .map(|s| s.temperature.as_kelvin())
            .fold(0.0, f64::max);
        assert!(max_t >= 873.0 - 1.0);
        assert!(trace[0].temperature.as_kelvin() < 350.0);
    }

    #[test]
    fn rate_bell_shape() {
        let m = model();
        let th = m.optics().material.thermal;
        let low = m.crystallization_rate(Temperature::from_kelvin(
            th.crystallization_onset.as_kelvin() - 1.0,
        ));
        let mid = m.crystallization_rate(th.optimal_crystallization_temperature());
        let high =
            m.crystallization_rate(Temperature::from_kelvin(th.melting_point.as_kelvin() + 1.0));
        assert_eq!(low, 0.0);
        assert_eq!(high, 0.0);
        assert!((mid - m.params().crystallization_rate).abs() < 1e-6);
    }

    #[test]
    fn pulse_energy_accounting() {
        let p = PulseSpec::new(mw(5.0), ns(56.0));
        assert!((p.energy().as_picojoules() - 280.0).abs() < 1e-9);
    }
}
