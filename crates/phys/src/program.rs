//! Multi-level-cell programming tables (the paper's Fig. 6).
//!
//! The paper programs a 4-bit GST cell to 16 *equally spaced transmission
//! levels* (≈6 % spacing) and reports, per level, the transition latency and
//! crystalline fraction, under two programming modes:
//!
//! * **Case 1 — crystalline reset**: the reset state is fully crystalline
//!   (880 pJ reset pulse); levels are written by *partial amorphization*
//!   with short high-power (5 mW) melt pulses.
//! * **Case 2 — amorphous reset**: the reset state is fully amorphous
//!   (280 pJ reset pulse); levels are written by *partial crystallization*
//!   with longer low-power (1 mW) pulses that are thermally self-limiting.
//!
//! [`ProgramTable::generate`] inverts the coupled optics+thermal model: for
//! each target transmittance it finds the crystalline fraction (bisection on
//! the optics), then the pulse duration that reaches that fraction
//! (bisection/scan on the transient simulation).

use crate::thermal::{CellState, CellThermalModel, PulseSpec};
use comet_units::{Energy, Power, Time, Transmittance};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Transmittance added above the fully crystalline state before placing
/// the deepest level (the programming guard band — see
/// [`ProgramTable::usable_transmittance_range`]).
pub const CRYSTALLINE_GUARD: f64 = 0.04;

/// The floor under the deepest level's transmittance.
pub const LEVEL_TRANSMITTANCE_FLOOR: f64 = 0.05;

/// Which state the cell is erased to before level writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProgramMode {
    /// Reset = fully crystalline; writes amorphize partially (5 mW pulses).
    CrystallineReset,
    /// Reset = fully amorphous; writes crystallize partially (1 mW pulses).
    AmorphousReset,
}

impl ProgramMode {
    /// Both modes, case-study order of the paper.
    pub const ALL: [ProgramMode; 2] = [ProgramMode::CrystallineReset, ProgramMode::AmorphousReset];

    /// The optical power used for per-level write pulses in this mode.
    pub fn write_power(self) -> Power {
        match self {
            ProgramMode::CrystallineReset => Power::from_milliwatts(5.0),
            ProgramMode::AmorphousReset => Power::from_milliwatts(1.0),
        }
    }

    /// The optical power used for the reset pulse in this mode.
    pub fn reset_power(self) -> Power {
        match self {
            ProgramMode::CrystallineReset => Power::from_milliwatts(1.0),
            ProgramMode::AmorphousReset => Power::from_milliwatts(5.0),
        }
    }
}

impl fmt::Display for ProgramMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramMode::CrystallineReset => write!(f, "crystalline-reset"),
            ProgramMode::AmorphousReset => write!(f, "amorphous-reset"),
        }
    }
}

/// One programmable level of the MLC table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelSpec {
    /// Level index (0 = highest transmittance = most amorphous).
    pub level: u8,
    /// Target read-out transmittance.
    pub transmittance: Transmittance,
    /// Crystalline fraction realizing the target.
    pub crystalline_fraction: f64,
    /// Write pulse that programs this level from the reset state.
    pub pulse: PulseSpec,
}

impl LevelSpec {
    /// Optical energy of the write pulse.
    pub fn energy(&self) -> Energy {
        self.pulse.energy()
    }

    /// Write latency (pulse duration).
    pub fn latency(&self) -> Time {
        self.pulse.duration
    }
}

/// The reset (erase) operation of a mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResetSpec {
    /// The erase pulse (valid from any starting state).
    pub pulse: PulseSpec,
    /// Crystalline fraction of the reset state.
    pub fraction: f64,
}

impl ResetSpec {
    /// Optical energy of the reset pulse.
    pub fn energy(&self) -> Energy {
        self.pulse.energy()
    }
}

/// Errors from table generation.
#[derive(Debug, Clone, PartialEq)]
pub enum GenerateTableError {
    /// The requested level count needs transmittance range the cell lacks.
    InsufficientContrast {
        /// Levels requested.
        levels: u8,
        /// Achievable transmittance span.
        span: f64,
    },
    /// The transient solver could not reach a target fraction within the
    /// search budget (calibration inconsistent).
    Unreachable {
        /// Level index that failed.
        level: u8,
        /// Target crystalline fraction.
        target: f64,
    },
}

impl fmt::Display for GenerateTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateTableError::InsufficientContrast { levels, span } => write!(
                f,
                "cell transmittance span {span:.3} cannot host {levels} distinguishable levels"
            ),
            GenerateTableError::Unreachable { level, target } => write!(
                f,
                "no pulse duration reaches level {level} (fraction {target:.3})"
            ),
        }
    }
}

impl std::error::Error for GenerateTableError {}

/// A complete multi-level programming table for one cell and mode.
///
/// # Examples
///
/// ```no_run
/// use opcm_phys::{CellThermalModel, ProgramMode, ProgramTable};
///
/// let model = CellThermalModel::comet_gst();
/// let table = ProgramTable::generate(&model, ProgramMode::AmorphousReset, 4)?;
/// assert_eq!(table.levels.len(), 16);
/// # Ok::<(), opcm_phys::GenerateTableError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramTable {
    /// Programming mode.
    pub mode: ProgramMode,
    /// Bits per cell (levels = 2^bits).
    pub bits: u8,
    /// All levels, index 0 = most transmissive.
    pub levels: Vec<LevelSpec>,
    /// The erase operation.
    pub reset: ResetSpec,
    /// Spacing between adjacent level transmittances.
    pub spacing: f64,
}

/// Cache key: (model fingerprint, mode, bits).
type TableKey = (u64, ProgramMode, u8);

/// The process-wide memo of generated tables. Tables are small (≤ 64
/// levels of plain scalars), so the cache never needs eviction — a process
/// touches a handful of models.
fn table_cache() -> &'static Mutex<HashMap<TableKey, ProgramTable>> {
    static CACHE: OnceLock<Mutex<HashMap<TableKey, ProgramTable>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A value fingerprint of a thermal model: FNV-1a over its full `Debug`
/// rendering. Floats print at shortest-round-trip precision, so two models
/// collide only if every parameter (optics, geometry, material, thermal
/// calibration, wavelength, derived LUTs) is bit-identical — exactly the
/// condition under which their program tables are interchangeable.
fn model_fingerprint(model: &CellThermalModel) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{model:?}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl ProgramTable {
    /// Generates a table by inverting `model` for `2^bits` equally spaced
    /// transmission levels.
    ///
    /// The pulse search behind a table costs tens of milliseconds (hundreds
    /// of transient thermal simulations — the workspace's slowest kernel),
    /// so successful generations are memoized process-wide: repeated calls
    /// with an identical model return a clone of the cached table. Use
    /// [`ProgramTable::generate_uncached`] to force the full search.
    ///
    /// # Errors
    ///
    /// Returns [`GenerateTableError`] if the cell's optical contrast cannot
    /// host the requested level count or a level proves unreachable.
    pub fn generate(
        model: &CellThermalModel,
        mode: ProgramMode,
        bits: u8,
    ) -> Result<ProgramTable, GenerateTableError> {
        assert!((1..=6).contains(&bits), "bits per cell must be in 1..=6");
        let key = (model_fingerprint(model), mode, bits);
        if let Some(table) = table_cache().lock().expect("cache lock").get(&key) {
            return Ok(table.clone());
        }
        let table = Self::generate_uncached(model, mode, bits)?;
        table_cache()
            .lock()
            .expect("cache lock")
            .insert(key, table.clone());
        Ok(table)
    }

    /// The number of memoized tables (diagnostics/tests).
    pub fn cached_tables() -> usize {
        table_cache().lock().expect("cache lock").len()
    }

    /// The usable transmittance range `(t_min, t_max)` level grids are
    /// sliced from, with a guard band at the crystalline end: fully
    /// crystalline levels are asymptotically slow to program and suffer
    /// the worst read-out loss, so — like the paper's COSMOS remodeling,
    /// which avoids "the high losses at high crystalline fractions" — the
    /// deepest level stops short of `p = 1`
    /// ([`CRYSTALLINE_GUARD`]/[`LEVEL_TRANSMITTANCE_FLOOR`]).
    ///
    /// This is the single authority on the range: both the programming
    /// tables generated here and the circuit layer's derived cell model
    /// (`photonic::DerivedCellModel`) slice the same interval, so the two
    /// layers cannot desynchronize under recalibration.
    pub fn usable_transmittance_range(
        optics: &crate::cell_optics::CellOpticalModel,
        lambda: comet_units::Length,
    ) -> (f64, f64) {
        let t_max = optics.transmittance(0.0, lambda).value();
        let t_min = (optics.transmittance(1.0, lambda).value() + CRYSTALLINE_GUARD)
            .max(LEVEL_TRANSMITTANCE_FLOOR);
        (t_min, t_max)
    }

    /// [`ProgramTable::generate`] without the memo: always runs the full
    /// pulse search (the criterion benches compare the two).
    ///
    /// # Errors
    ///
    /// Returns [`GenerateTableError`] if the cell's optical contrast cannot
    /// host the requested level count or a level proves unreachable.
    pub fn generate_uncached(
        model: &CellThermalModel,
        mode: ProgramMode,
        bits: u8,
    ) -> Result<ProgramTable, GenerateTableError> {
        assert!((1..=6).contains(&bits), "bits per cell must be in 1..=6");
        let n_levels = 1u16 << bits;
        let lambda = model.wavelength();
        let optics = model.optics();

        // Equally spaced transmittance targets between the achievable
        // endpoints (see `usable_transmittance_range` for the guard band).
        let (t_min, t_max) = Self::usable_transmittance_range(optics, lambda);
        let span = t_max - t_min;
        // Require at least 2% spacing for levels to be distinguishable.
        let spacing = span / (n_levels - 1) as f64;
        if spacing < 0.02 {
            return Err(GenerateTableError::InsufficientContrast {
                levels: n_levels as u8,
                span,
            });
        }

        let reset = Self::solve_reset(model, mode);

        let mut levels = Vec::with_capacity(n_levels as usize);
        for k in 0..n_levels {
            let target_t = Transmittance::new(t_max - spacing * k as f64);
            let fraction = optics
                .fraction_for_transmittance(target_t, lambda)
                .unwrap_or(if k == 0 { 0.0 } else { 1.0 });
            let pulse = Self::solve_level_pulse(model, mode, fraction).ok_or(
                GenerateTableError::Unreachable {
                    level: k as u8,
                    target: fraction,
                },
            )?;
            levels.push(LevelSpec {
                level: k as u8,
                transmittance: target_t,
                crystalline_fraction: fraction,
                pulse,
            });
        }

        Ok(ProgramTable {
            mode,
            bits,
            levels,
            reset,
            spacing,
        })
    }

    /// Finds the reset pulse: the shortest duration guaranteeing the reset
    /// state from *any* starting fraction.
    fn solve_reset(model: &CellThermalModel, mode: ProgramMode) -> ResetSpec {
        let power = mode.reset_power();
        let starts = [0.0, 0.25, 0.5, 0.75, 1.0];
        match mode {
            ProgramMode::AmorphousReset => {
                // Scan upward (outcome is thresholded, not monotone for
                // short pulses that crystallize without melting).
                let mut d = 20.0;
                while d <= 1000.0 {
                    let ok = starts.iter().all(|&s| {
                        let out = model.apply_pulse(
                            CellState::at_fraction(s),
                            PulseSpec::new(power, Time::from_nanos(d)),
                        );
                        out.state.crystalline_fraction < 0.02
                    });
                    if ok {
                        return ResetSpec {
                            pulse: PulseSpec::new(power, Time::from_nanos(d)),
                            fraction: 0.0,
                        };
                    }
                    d += 5.0;
                }
                // Fall back to the scan ceiling.
                ResetSpec {
                    pulse: PulseSpec::new(power, Time::from_nanos(1000.0)),
                    fraction: 0.0,
                }
            }
            ProgramMode::CrystallineReset => {
                // Crystallization is monotone in duration: bisect for the
                // slowest start (fully amorphous).
                let target = 0.98;
                let reaches = |d: f64| {
                    model
                        .apply_pulse(
                            CellState::amorphous(),
                            PulseSpec::new(power, Time::from_nanos(d)),
                        )
                        .state
                        .crystalline_fraction
                        >= target
                };
                let (mut lo, mut hi) = (50.0, 4000.0);
                if !reaches(hi) {
                    return ResetSpec {
                        pulse: PulseSpec::new(power, Time::from_nanos(hi)),
                        fraction: 1.0,
                    };
                }
                for _ in 0..30 {
                    let mid = 0.5 * (lo + hi);
                    if reaches(mid) {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                ResetSpec {
                    pulse: PulseSpec::new(power, Time::from_nanos(hi)),
                    fraction: 1.0,
                }
            }
        }
    }

    /// Finds the pulse programming crystalline fraction `target` from the
    /// reset state of `mode`. Returns `None` if unreachable.
    fn solve_level_pulse(
        model: &CellThermalModel,
        mode: ProgramMode,
        target: f64,
    ) -> Option<PulseSpec> {
        let power = mode.write_power();
        match mode {
            ProgramMode::AmorphousReset => {
                // From p=0, fraction grows monotonically with duration.
                if target <= 1e-3 {
                    return Some(PulseSpec::new(power, Time::ZERO));
                }
                let result_at = |d: f64| {
                    model
                        .apply_pulse(
                            CellState::amorphous(),
                            PulseSpec::new(power, Time::from_nanos(d)),
                        )
                        .state
                        .crystalline_fraction
                };
                let hi_limit = 3000.0;
                if result_at(hi_limit) < target {
                    return None;
                }
                let (mut lo, mut hi) = (0.0, hi_limit);
                for _ in 0..28 {
                    let mid = 0.5 * (lo + hi);
                    if result_at(mid) < target {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                Some(PulseSpec::new(power, Time::from_nanos(hi)))
            }
            ProgramMode::CrystallineReset => {
                // From p=1, fraction falls monotonically with duration
                // (deeper melt). Level 0 (fully amorphous) = longest pulse.
                if target >= 1.0 - 1e-3 {
                    return Some(PulseSpec::new(power, Time::ZERO));
                }
                let result_at = |d: f64| {
                    model
                        .apply_pulse(
                            CellState::crystalline(),
                            PulseSpec::new(power, Time::from_nanos(d)),
                        )
                        .state
                        .crystalline_fraction
                };
                let hi_limit = 500.0;
                if result_at(hi_limit) > target {
                    return None;
                }
                let (mut lo, mut hi) = (0.0, hi_limit);
                for _ in 0..28 {
                    let mid = 0.5 * (lo + hi);
                    if result_at(mid) > target {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                Some(PulseSpec::new(power, Time::from_nanos(hi)))
            }
        }
    }

    /// The slowest per-level write in the table.
    pub fn max_write_latency(&self) -> Time {
        self.levels
            .iter()
            .map(|l| l.latency())
            .fold(Time::ZERO, Time::max)
    }

    /// The most energetic per-level write in the table.
    pub fn max_write_energy(&self) -> Energy {
        self.levels
            .iter()
            .map(|l| l.energy())
            .fold(Energy::ZERO, Energy::max)
    }

    /// Looks up a level spec by index.
    pub fn level(&self, level: u8) -> Option<&LevelSpec> {
        self.levels.get(level as usize)
    }

    /// The level whose transmittance is closest to an observed read-out —
    /// the decode step of an MLC read.
    pub fn decode(&self, observed: Transmittance) -> u8 {
        self.levels
            .iter()
            .min_by(|a, b| {
                let da = (a.transmittance.value() - observed.value()).abs();
                let db = (b.transmittance.value() - observed.value()).abs();
                da.partial_cmp(&db).expect("transmittance is finite")
            })
            .map(|l| l.level)
            .unwrap_or(0)
    }

    /// The optical loss margin of the table: the worst-case loss (in linear
    /// transmission terms) a read-out can suffer before two adjacent levels
    /// become indistinguishable — half the level spacing.
    pub fn loss_margin(&self) -> f64 {
        self.spacing / 2.0
    }
}

/// Convenience: generate the paper's two Fig. 6 case studies for the COMET
/// GST cell at 4 bits/cell.
pub fn fig6_case_studies(
    model: &CellThermalModel,
) -> Result<(ProgramTable, ProgramTable), GenerateTableError> {
    let case1 = ProgramTable::generate(model, ProgramMode::CrystallineReset, 4)?;
    let case2 = ProgramTable::generate(model, ProgramMode::AmorphousReset, 4)?;
    Ok((case1, case2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn model() -> &'static CellThermalModel {
        static MODEL: OnceLock<CellThermalModel> = OnceLock::new();
        MODEL.get_or_init(CellThermalModel::comet_gst)
    }

    fn table_mode2() -> &'static ProgramTable {
        static TABLE: OnceLock<ProgramTable> = OnceLock::new();
        TABLE.get_or_init(|| {
            ProgramTable::generate(model(), ProgramMode::AmorphousReset, 4).expect("generate")
        })
    }

    fn table_mode1() -> &'static ProgramTable {
        static TABLE: OnceLock<ProgramTable> = OnceLock::new();
        TABLE.get_or_init(|| {
            ProgramTable::generate(model(), ProgramMode::CrystallineReset, 4).expect("generate")
        })
    }

    #[test]
    fn sixteen_levels_with_six_percent_spacing() {
        let t = table_mode2();
        assert_eq!(t.levels.len(), 16);
        // Paper: "16 distinctive and equally spaced transmission levels
        // (with 6% spacing)".
        assert!(
            (0.045..=0.075).contains(&t.spacing),
            "spacing {}",
            t.spacing
        );
        for pair in t.levels.windows(2) {
            let d = pair[0].transmittance.value() - pair[1].transmittance.value();
            assert!((d - t.spacing).abs() < 1e-9);
        }
    }

    #[test]
    fn fractions_monotone_in_level() {
        for t in [table_mode1(), table_mode2()] {
            for pair in t.levels.windows(2) {
                assert!(pair[1].crystalline_fraction > pair[0].crystalline_fraction);
            }
            assert!(t.levels[0].crystalline_fraction < 0.05);
            assert!(t.levels[15].crystalline_fraction > 0.5);
        }
    }

    #[test]
    fn mode2_latency_grows_with_level() {
        // Deeper crystallization takes longer (Fig. 6 latency curve).
        let t = table_mode2();
        for pair in t.levels.windows(2) {
            assert!(
                pair[1].latency() >= pair[0].latency(),
                "latency not monotone between level {} and {}",
                pair[0].level,
                pair[1].level
            );
        }
        assert!(
            t.levels[0].latency().is_zero(),
            "level 0 is the reset state"
        );
    }

    #[test]
    fn mode2_write_latency_anchor() {
        // Table II: max write time 170 ns (we assert the right decade).
        let max = table_mode2().max_write_latency().as_nanos();
        assert!((80.0..=400.0).contains(&max), "max write latency {max} ns");
    }

    #[test]
    fn mode2_reset_energy_anchor() {
        // Paper: amorphous reset = 280 pJ.
        let e = table_mode2().reset.energy().as_picojoules();
        assert!((150.0..=600.0).contains(&e), "reset energy {e} pJ");
        assert_eq!(table_mode2().reset.fraction, 0.0);
    }

    #[test]
    fn mode1_reset_energy_anchor() {
        // Paper: crystalline reset = 880 pJ.
        let e = table_mode1().reset.energy().as_picojoules();
        assert!((300.0..=1500.0).contains(&e), "reset energy {e} pJ");
        assert_eq!(table_mode1().reset.fraction, 1.0);
    }

    #[test]
    fn mode1_latency_decreases_with_level() {
        // In crystalline-reset mode, level 0 (fully amorphous) needs the
        // deepest melt = the longest pulse; level 15 is nearly free.
        let t = table_mode1();
        for pair in t.levels.windows(2) {
            assert!(pair[1].latency() <= pair[0].latency() + Time::from_nanos(0.1));
        }
        // The shallowest level barely crosses the melt onset; the deepest
        // (level 0, fully amorphous) needs the longest melt pulse.
        assert!(t.levels[15].latency() < Time::from_nanos(16.0));
        assert!(t.levels[0].latency() > t.levels[15].latency() + Time::from_nanos(2.0));
    }

    #[test]
    fn programmed_levels_verify_against_simulation() {
        // Round-trip: applying each level's pulse from reset must land the
        // transmittance within half a level spacing (else reads misdecode).
        let t = table_mode2();
        let m = model();
        let lambda = m.wavelength();
        for level in t.levels.iter().step_by(3) {
            let out = m.apply_pulse(CellState::amorphous(), level.pulse);
            let got = m
                .optics()
                .transmittance(out.state.crystalline_fraction, lambda)
                .value();
            let err = (got - level.transmittance.value()).abs();
            assert!(
                err < t.loss_margin(),
                "level {}: transmittance {got:.4} vs target {:.4}",
                level.level,
                level.transmittance
            );
        }
    }

    #[test]
    fn decode_identifies_levels() {
        let t = table_mode2();
        for level in &t.levels {
            assert_eq!(t.decode(level.transmittance), level.level);
        }
        // Slightly perturbed read-outs still decode correctly.
        let l7 = &t.levels[7];
        let perturbed = Transmittance::new(l7.transmittance.value() + t.spacing * 0.3);
        assert_eq!(t.decode(perturbed), 7);
    }

    #[test]
    fn cached_generation_matches_uncached() {
        let m = model();
        let uncached =
            ProgramTable::generate_uncached(m, ProgramMode::AmorphousReset, 2).expect("generate");
        let first = ProgramTable::generate(m, ProgramMode::AmorphousReset, 2).expect("generate");
        let second = ProgramTable::generate(m, ProgramMode::AmorphousReset, 2).expect("generate");
        assert_eq!(first, uncached);
        assert_eq!(second, uncached);
        assert!(ProgramTable::cached_tables() >= 1);
    }

    #[test]
    fn cache_distinguishes_models() {
        // A perturbed calibration must never hit the default model's cache
        // entry: the memoized result has to equal its own uncached search.
        let base = model();
        let mut params = *base.params();
        params.ambient = comet_units::Temperature::from_kelvin(params.ambient.as_kelvin() + 25.0);
        let warm = CellThermalModel::new(base.optics().clone(), params, base.wavelength());
        // Populate/exercise the default model's entry first.
        let _ = ProgramTable::generate(base, ProgramMode::AmorphousReset, 1).expect("generate");
        let cached = ProgramTable::generate(&warm, ProgramMode::AmorphousReset, 1).expect("warm");
        let direct =
            ProgramTable::generate_uncached(&warm, ProgramMode::AmorphousReset, 1).expect("warm");
        assert_eq!(cached, direct);
    }

    #[test]
    fn insufficient_contrast_detected() {
        // 6 bits = 64 levels needs <2% spacing given ~95% span: must error.
        let err = ProgramTable::generate(model(), ProgramMode::AmorphousReset, 6);
        assert!(matches!(
            err,
            Err(GenerateTableError::InsufficientContrast { .. })
        ));
    }

    #[test]
    fn mode_powers() {
        assert_eq!(
            ProgramMode::CrystallineReset.write_power(),
            Power::from_milliwatts(5.0)
        );
        assert_eq!(
            ProgramMode::AmorphousReset.write_power(),
            Power::from_milliwatts(1.0)
        );
        assert_eq!(
            ProgramMode::AmorphousReset.reset_power(),
            Power::from_milliwatts(5.0)
        );
    }
}
