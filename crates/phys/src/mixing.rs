//! Effective-medium model for partially crystallized PCM.
//!
//! Intermediate states of an OPCM multi-level cell are mixtures of
//! amorphous and crystalline material. Following the scheme of Wang et al.
//! (paper ref [27]), the effective permittivity of a mixture with
//! crystalline volume fraction `p` obeys the Lorentz–Lorenz relation:
//!
//! ```text
//! (ε_eff − 1)/(ε_eff + 2) = p·(ε_c − 1)/(ε_c + 2) + (1 − p)·(ε_a − 1)/(ε_a + 2)
//! ```
//!
//! solved for `ε_eff`. The resulting complex index interpolates *non*-linearly
//! between the phases, which is why equally spaced transmission levels do
//! **not** correspond to equally spaced crystalline fractions (visible in
//! the paper's Fig. 6).

use crate::lorentz::ComplexIndex;
use crate::materials::{PcmMaterial, Phase};
use crate::Complex;
use comet_units::Length;

/// Mixes two complex permittivities with crystalline fraction `p` using the
/// Lorentz–Lorenz effective-medium relation.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use opcm_phys::{lorentz_lorenz_mix, Complex};
///
/// let eps_a = Complex::new(15.5, 0.001);
/// let eps_c = Complex::new(36.1, 13.4);
/// let mid = lorentz_lorenz_mix(eps_a, eps_c, 0.5);
/// assert!(mid.re > eps_a.re && mid.re < eps_c.re);
/// ```
pub fn lorentz_lorenz_mix(eps_amorphous: Complex, eps_crystalline: Complex, p: f64) -> Complex {
    assert!(
        (0.0..=1.0).contains(&p),
        "crystalline fraction must be in [0,1], got {p}"
    );
    let f = |eps: Complex| (eps - Complex::ONE) / (eps + Complex::new(2.0, 0.0));
    let mixed = f(eps_crystalline) * p + f(eps_amorphous) * (1.0 - p);
    // Invert y = (eps-1)/(eps+2)  =>  eps = (1 + 2y)/(1 - y).
    (Complex::ONE + mixed * 2.0) / (Complex::ONE - mixed)
}

/// The effective complex refractive index of a PCM at crystalline fraction
/// `p` and wavelength `lambda`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use comet_units::Length;
/// use opcm_phys::{effective_index, PcmKind};
///
/// let gst = PcmKind::Gst.material();
/// let lambda = Length::from_nanometers(1550.0);
/// let half = effective_index(&gst, 0.5, lambda);
/// assert!(half.n > 3.94 && half.n < 6.11);
/// ```
pub fn effective_index(material: &PcmMaterial, p: f64, lambda: Length) -> ComplexIndex {
    let eps_a = material.model(Phase::Amorphous).permittivity(lambda);
    let eps_c = material.model(Phase::Crystalline).permittivity(lambda);
    ComplexIndex::from_permittivity(lorentz_lorenz_mix(eps_a, eps_c, p))
}

/// Finds the crystalline fraction whose effective extinction coefficient
/// equals `kappa_target` at `lambda`, by bisection.
///
/// Returns `None` if the target lies outside the achievable
/// `[κ(p=0), κ(p=1)]` range.
pub fn fraction_for_kappa(
    material: &PcmMaterial,
    kappa_target: f64,
    lambda: Length,
) -> Option<f64> {
    let k0 = effective_index(material, 0.0, lambda).kappa;
    let k1 = effective_index(material, 1.0, lambda).kappa;
    if kappa_target < k0 || kappa_target > k1 {
        return None;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if effective_index(material, mid, lambda).kappa < kappa_target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materials::reference_wavelength;

    fn gst() -> PcmMaterial {
        PcmMaterial::gst()
    }

    #[test]
    fn endpoints_match_pure_phases() {
        let lambda = reference_wavelength();
        let m = gst();
        let a = m.refractive_index(Phase::Amorphous, lambda);
        let c = m.refractive_index(Phase::Crystalline, lambda);
        let p0 = effective_index(&m, 0.0, lambda);
        let p1 = effective_index(&m, 1.0, lambda);
        assert!((p0.n - a.n).abs() < 1e-9 && (p0.kappa - a.kappa).abs() < 1e-9);
        assert!((p1.n - c.n).abs() < 1e-9 && (p1.kappa - c.kappa).abs() < 1e-9);
    }

    #[test]
    fn index_is_monotone_in_fraction() {
        let lambda = reference_wavelength();
        let m = gst();
        let mut last = effective_index(&m, 0.0, lambda);
        for i in 1..=20 {
            let p = i as f64 / 20.0;
            let idx = effective_index(&m, p, lambda);
            assert!(idx.n >= last.n, "n not monotone at p={p}");
            assert!(idx.kappa >= last.kappa, "kappa not monotone at p={p}");
            last = idx;
        }
    }

    #[test]
    fn mixing_is_nonlinear() {
        // Lorentz-Lorenz mixing of high-contrast phases is visibly convex:
        // the midpoint differs from the linear average.
        let lambda = reference_wavelength();
        let m = gst();
        let a = effective_index(&m, 0.0, lambda);
        let c = effective_index(&m, 1.0, lambda);
        let mid = effective_index(&m, 0.5, lambda);
        let linear = 0.5 * (a.n + c.n);
        assert!((mid.n - linear).abs() > 0.01, "expected nonlinearity");
    }

    #[test]
    fn fraction_for_kappa_inverts() {
        let lambda = reference_wavelength();
        let m = gst();
        for p_true in [0.1, 0.35, 0.6, 0.85] {
            let k = effective_index(&m, p_true, lambda).kappa;
            let p = fraction_for_kappa(&m, k, lambda).expect("in range");
            assert!((p - p_true).abs() < 1e-9, "p={p} vs {p_true}");
        }
    }

    #[test]
    fn fraction_for_kappa_rejects_out_of_range() {
        let lambda = reference_wavelength();
        let m = gst();
        assert!(fraction_for_kappa(&m, 5.0, lambda).is_none());
        assert!(fraction_for_kappa(&m, -0.1, lambda).is_none());
    }

    #[test]
    #[should_panic(expected = "crystalline fraction")]
    fn rejects_invalid_fraction() {
        let _ = effective_index(&gst(), 1.2, reference_wavelength());
    }
}
