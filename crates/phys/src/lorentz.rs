//! Lorentz-oscillator optical dispersion model for phase-change materials.
//!
//! The paper (Section III.A) models the refractive index `n` and extinction
//! coefficient `κ` of GST, GSST and Sb₂Se₃ with the Lorenz(-Lorentz)
//! oscillator scheme of Wang et al., *npj Comput. Mater.* 7, 183 (2021)
//! (paper ref [27]). The complex relative permittivity at photon energy `E`
//! is
//!
//! ```text
//! ε(E) = ε∞ + Σ_j  S_j · E0_j² / (E0_j² − E² − i·Γ_j·E)
//! ```
//!
//! and the complex refractive index is `ñ = n + iκ = √ε`.
//!
//! Published ellipsometry gives reliable (n, κ) anchor values at 1550 nm for
//! each material/phase; [`LorentzModel::anchored`] solves the oscillator
//! strength and ε∞ in closed form so the model reproduces the anchor exactly
//! while the chosen resonance energy and damping shape a physically plausible
//! dispersion across the C-band (normal dispersion below resonance).

use crate::Complex;
use comet_units::Length;
use serde::{Deserialize, Serialize};

/// Photon energy in electron-volts for a vacuum wavelength.
///
/// `E[eV] = hc / λ ≈ 1239.84 / λ[nm]`.
///
/// # Examples
///
/// ```
/// use comet_units::Length;
/// use opcm_phys::photon_energy_ev;
///
/// let e = photon_energy_ev(Length::from_nanometers(1550.0));
/// assert!((e - 0.7999).abs() < 1e-3);
/// ```
pub fn photon_energy_ev(lambda: Length) -> f64 {
    const HC_EV_NM: f64 = 1_239.841_984;
    HC_EV_NM / lambda.as_nanometers()
}

/// A single Lorentz oscillator term.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Oscillator {
    /// Dimensionless oscillator strength `S`.
    pub strength: f64,
    /// Resonance energy `E0` in eV.
    pub resonance_ev: f64,
    /// Damping (broadening) `Γ` in eV.
    pub damping_ev: f64,
}

impl Oscillator {
    /// The complex susceptibility contribution of this oscillator at photon
    /// energy `e_ev`.
    pub fn susceptibility(&self, e_ev: f64) -> Complex {
        let e0sq = self.resonance_ev * self.resonance_ev;
        let numerator = Complex::from_real(self.strength * e0sq);
        let denominator = Complex::new(e0sq - e_ev * e_ev, -self.damping_ev * e_ev);
        numerator / denominator
    }
}

/// The complex refractive index `ñ = n + iκ` of a material at one wavelength.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ComplexIndex {
    /// Real refractive index.
    pub n: f64,
    /// Extinction coefficient.
    pub kappa: f64,
}

impl ComplexIndex {
    /// Creates an index from its parts.
    pub const fn new(n: f64, kappa: f64) -> Self {
        ComplexIndex { n, kappa }
    }

    /// The complex relative permittivity `ε = ñ²`.
    pub fn to_permittivity(self) -> Complex {
        let nh = Complex::new(self.n, self.kappa);
        nh * nh
    }

    /// Recovers the index from a permittivity (principal branch).
    pub fn from_permittivity(eps: Complex) -> Self {
        let nh = eps.sqrt();
        ComplexIndex::new(nh.re, nh.im)
    }

    /// The intensity absorption coefficient `α = 4πκ/λ` in 1/m.
    pub fn absorption_coefficient(self, lambda: Length) -> f64 {
        4.0 * std::f64::consts::PI * self.kappa / lambda.as_meters()
    }
}

/// A Lorentz-oscillator dispersion model for one material phase.
///
/// # Examples
///
/// ```
/// use comet_units::Length;
/// use opcm_phys::LorentzModel;
///
/// // Anchor crystalline GST to n=6.11, κ=1.10 at 1550 nm:
/// let model = LorentzModel::anchored(6.11, 1.10, Length::from_nanometers(1550.0), 1.4, 0.8);
/// let idx = model.refractive_index(Length::from_nanometers(1550.0));
/// assert!((idx.n - 6.11).abs() < 1e-9);
/// assert!((idx.kappa - 1.10).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LorentzModel {
    /// High-frequency permittivity ε∞.
    pub eps_inf: f64,
    /// Oscillator terms.
    pub oscillators: Vec<Oscillator>,
}

impl LorentzModel {
    /// Builds a single-oscillator model that reproduces `(n, κ)` exactly at
    /// the `anchor` wavelength.
    ///
    /// Given the target permittivity `ε_t = (n + iκ)²` and a chosen
    /// resonance `E0` / damping `Γ`, the oscillator strength and ε∞ follow
    /// in closed form:
    ///
    /// ```text
    /// D  = E0² − E² − iΓE
    /// S  = Im(ε_t) · |D|² / (E0² · Γ · E)
    /// ε∞ = Re(ε_t) − S · E0² · (E0² − E²) / |D|²
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `kappa < 0`, if `n <= 0`, or if the chosen `(E0, Γ)` would
    /// require a non-physical `ε∞ < 0` (pick a lower resonance or larger
    /// damping in that case).
    pub fn anchored(
        n: f64,
        kappa: f64,
        anchor: Length,
        resonance_ev: f64,
        damping_ev: f64,
    ) -> Self {
        assert!(n > 0.0, "refractive index must be positive");
        assert!(kappa >= 0.0, "extinction coefficient must be non-negative");
        let e = photon_energy_ev(anchor);
        let eps_t = ComplexIndex::new(n, kappa).to_permittivity();
        let e0sq = resonance_ev * resonance_ev;
        let d_re = e0sq - e * e;
        let d_im = damping_ev * e;
        let d_sq = d_re * d_re + d_im * d_im;
        let strength = eps_t.im * d_sq / (e0sq * damping_ev * e);
        let eps_inf = eps_t.re - strength * e0sq * d_re / d_sq;
        assert!(
            eps_inf >= 0.0,
            "anchoring n={n}, kappa={kappa} with E0={resonance_ev} eV, Gamma={damping_ev} eV \
             yields non-physical eps_inf={eps_inf:.3}; lower the resonance or raise the damping"
        );
        LorentzModel {
            eps_inf,
            oscillators: vec![Oscillator {
                strength,
                resonance_ev,
                damping_ev,
            }],
        }
    }

    /// The complex relative permittivity at a wavelength.
    pub fn permittivity(&self, lambda: Length) -> Complex {
        let e = photon_energy_ev(lambda);
        let mut eps = Complex::from_real(self.eps_inf);
        for osc in &self.oscillators {
            eps = eps + osc.susceptibility(e);
        }
        eps
    }

    /// The complex refractive index at a wavelength.
    pub fn refractive_index(&self, lambda: Length) -> ComplexIndex {
        ComplexIndex::from_permittivity(self.permittivity(lambda))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NM1550: f64 = 1550.0;

    fn anchor() -> Length {
        Length::from_nanometers(NM1550)
    }

    #[test]
    fn anchored_reproduces_target_exactly() {
        for &(n, k, e0, g) in &[
            (3.94, 1.2e-5, 2.2, 0.3),
            (6.11, 1.10, 1.4, 0.8),
            (3.33, 1e-5, 2.4, 0.3),
            (4.05, 0.01, 2.0, 0.4),
        ] {
            let m = LorentzModel::anchored(n, k, anchor(), e0, g);
            let idx = m.refractive_index(anchor());
            assert!((idx.n - n).abs() < 1e-9, "n mismatch for ({n},{k})");
            assert!((idx.kappa - k).abs() < 1e-9, "kappa mismatch for ({n},{k})");
        }
    }

    #[test]
    fn normal_dispersion_below_resonance() {
        // Below resonance, n should decrease with increasing wavelength.
        let m = LorentzModel::anchored(6.11, 1.10, anchor(), 1.4, 0.8);
        let n_blue = m.refractive_index(Length::from_nanometers(1530.0)).n;
        let n_red = m.refractive_index(Length::from_nanometers(1565.0)).n;
        assert!(
            n_blue > n_red,
            "expected normal dispersion, got n(1530)={n_blue} <= n(1565)={n_red}"
        );
    }

    #[test]
    fn kappa_decreases_with_wavelength_in_tail() {
        let m = LorentzModel::anchored(6.11, 1.10, anchor(), 1.4, 0.8);
        let k_blue = m.refractive_index(Length::from_nanometers(1530.0)).kappa;
        let k_red = m.refractive_index(Length::from_nanometers(1565.0)).kappa;
        assert!(k_blue > k_red);
    }

    #[test]
    fn dispersion_is_gentle_across_c_band() {
        // The paper reports <=1.4% transmission variation across the C-band,
        // which requires the underlying index dispersion to be small.
        let m = LorentzModel::anchored(6.11, 1.10, anchor(), 1.4, 0.8);
        let a = m.refractive_index(Length::from_nanometers(1530.0));
        let b = m.refractive_index(Length::from_nanometers(1565.0));
        assert!((a.n - b.n).abs() / a.n < 0.02);
        assert!((a.kappa - b.kappa).abs() / a.kappa < 0.10);
    }

    #[test]
    fn permittivity_index_roundtrip() {
        let idx = ComplexIndex::new(4.5, 0.3);
        let back = ComplexIndex::from_permittivity(idx.to_permittivity());
        assert!((back.n - idx.n).abs() < 1e-12);
        assert!((back.kappa - idx.kappa).abs() < 1e-12);
    }

    #[test]
    fn absorption_coefficient_scale() {
        // kappa = 1.0 at 1550 nm -> alpha = 4*pi/1.55um ~ 8.1e6 /m.
        let idx = ComplexIndex::new(6.0, 1.0);
        let alpha = idx.absorption_coefficient(anchor());
        assert!((alpha - 8.106e6).abs() / 8.106e6 < 1e-3);
    }

    #[test]
    #[should_panic(expected = "non-physical eps_inf")]
    fn anchored_rejects_bad_resonance_choice() {
        // Large kappa anchored with a far-away resonance and tiny damping
        // forces eps_inf < 0.
        let _ = LorentzModel::anchored(6.11, 1.10, anchor(), 3.5, 0.05);
    }

    #[test]
    fn photon_energy_values() {
        assert!((photon_energy_ev(Length::from_nanometers(1530.0)) - 0.8104).abs() < 1e-3);
        assert!((photon_energy_ev(Length::from_nanometers(1565.0)) - 0.7922).abs() < 1e-3);
    }
}
