//! Phase-change material candidates and platform (Si / SiO₂) constants.
//!
//! Section III.A of the paper compares three PCM candidates — Ge₂Sb₂Te₅
//! (GST), Ge₂Sb₂Se₄Te (GSST) and Sb₂Se₃ — on refractive-index contrast and
//! extinction-coefficient contrast across the C-band, then selects GST. The
//! optical anchors below are taken from the integrated-photonics PCM
//! literature the paper builds on (Ríos 2015, Li 2019, Zhang/GSST 2019,
//! Delaney/Sb₂Se₃ 2020); the dispersion around each anchor comes from the
//! Lorentz fit (see [`LorentzModel::anchored`]).

use crate::lorentz::{ComplexIndex, LorentzModel};
use comet_units::{Length, Temperature};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The two stable phases of a PCM (intermediate states are mixtures —
/// see [`effective_index`](crate::effective_index)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Disordered, low-index, low-loss phase (binary "0" by convention).
    Amorphous,
    /// Ordered, high-index, high-loss phase (binary "1" by convention).
    Crystalline,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Amorphous => write!(f, "amorphous"),
            Phase::Crystalline => write!(f, "crystalline"),
        }
    }
}

/// The PCM candidates evaluated by the paper (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PcmKind {
    /// Ge₂Sb₂Te₅ — highest index/extinction contrast; selected for COMET.
    Gst,
    /// Ge₂Sb₂Se₄Te — lower-loss but lower-contrast GST derivative.
    Gsst,
    /// Sb₂Se₃ — ultra-low-loss, low-contrast candidate.
    Sb2Se3,
}

impl PcmKind {
    /// All candidates, in the order the paper plots them.
    pub const ALL: [PcmKind; 3] = [PcmKind::Gst, PcmKind::Gsst, PcmKind::Sb2Se3];

    /// The full material description for this candidate.
    pub fn material(self) -> PcmMaterial {
        match self {
            PcmKind::Gst => PcmMaterial::gst(),
            PcmKind::Gsst => PcmMaterial::gsst(),
            PcmKind::Sb2Se3 => PcmMaterial::sb2se3(),
        }
    }
}

impl fmt::Display for PcmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcmKind::Gst => write!(f, "GST"),
            PcmKind::Gsst => write!(f, "GSST"),
            PcmKind::Sb2Se3 => write!(f, "Sb2Se3"),
        }
    }
}

/// Thermal constants governing phase transitions and heat flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalProperties {
    /// Melting temperature `T_l`; exceeding it erases crystalline order
    /// (melt-quench → amorphous).
    pub melting_point: Temperature,
    /// Crystallization onset temperature `T_g`; between `T_g` and `T_l`
    /// the material crystallizes.
    pub crystallization_onset: Temperature,
    /// Mass density, kg/m³.
    pub density: f64,
    /// Specific heat capacity, J/(kg·K).
    pub specific_heat: f64,
    /// Thermal conductivity, W/(m·K) (phase-averaged).
    pub conductivity: f64,
}

impl ThermalProperties {
    /// Volumetric heat capacity ρ·c_p in J/(m³·K).
    pub fn volumetric_heat_capacity(&self) -> f64 {
        self.density * self.specific_heat
    }

    /// Midpoint of the crystallization window, where the crystallization
    /// rate peaks in the kinetics model.
    pub fn optimal_crystallization_temperature(&self) -> Temperature {
        Temperature::from_kelvin(
            0.5 * (self.crystallization_onset.as_kelvin() + self.melting_point.as_kelvin()),
        )
    }
}

/// A phase-change material: thermal constants plus per-phase optical
/// dispersion models.
///
/// # Examples
///
/// ```
/// use comet_units::Length;
/// use opcm_phys::{PcmKind, Phase};
///
/// let gst = PcmKind::Gst.material();
/// let c = gst.refractive_index(Phase::Crystalline, Length::from_nanometers(1550.0));
/// let a = gst.refractive_index(Phase::Amorphous, Length::from_nanometers(1550.0));
/// assert!(c.n - a.n > 2.0); // GST's famous index contrast
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcmMaterial {
    /// Which candidate this is.
    pub kind: PcmKind,
    /// Thermal constants.
    pub thermal: ThermalProperties,
    /// Dispersion model of the amorphous phase.
    pub amorphous: LorentzModel,
    /// Dispersion model of the crystalline phase.
    pub crystalline: LorentzModel,
}

/// The 1550 nm reference wavelength used for all optical anchors.
pub fn reference_wavelength() -> Length {
    Length::from_nanometers(1550.0)
}

impl PcmMaterial {
    /// Ge₂Sb₂Te₅.
    ///
    /// Optical anchors at 1550 nm: amorphous n=3.94 with the very low
    /// residual loss the waveguide-integrated cells of Li et al. (Optica
    /// 2019) rely on (the paper quotes 0.073 dB/mm amorphous cell loss);
    /// crystalline n=6.11, κ=1.10. Thermal constants: T_m ≈ 873 K,
    /// crystallization onset ≈ 428 K.
    pub fn gst() -> Self {
        let anchor = reference_wavelength();
        PcmMaterial {
            kind: PcmKind::Gst,
            thermal: ThermalProperties {
                melting_point: Temperature::from_kelvin(873.0),
                crystallization_onset: Temperature::from_kelvin(428.0),
                density: 6150.0,
                specific_heat: 210.0,
                conductivity: 0.4,
            },
            amorphous: LorentzModel::anchored(3.94, 1.2e-5, anchor, 2.2, 0.3),
            crystalline: LorentzModel::anchored(6.11, 1.10, anchor, 1.4, 0.8),
        }
    }

    /// Ge₂Sb₂Se₄Te.
    ///
    /// Anchors at 1550 nm: amorphous n=3.33 (near-lossless), crystalline
    /// n=5.08, κ=0.30. Higher crystallization onset than GST.
    pub fn gsst() -> Self {
        let anchor = reference_wavelength();
        PcmMaterial {
            kind: PcmKind::Gsst,
            thermal: ThermalProperties {
                melting_point: Temperature::from_kelvin(900.0),
                crystallization_onset: Temperature::from_kelvin(523.0),
                density: 5800.0,
                specific_heat: 220.0,
                conductivity: 0.35,
            },
            amorphous: LorentzModel::anchored(3.33, 1.0e-5, anchor, 2.4, 0.3),
            crystalline: LorentzModel::anchored(5.08, 0.30, anchor, 1.5, 0.8),
        }
    }

    /// Sb₂Se₃.
    ///
    /// Anchors at 1550 nm: amorphous n=3.19, crystalline n=4.05 with an
    /// almost negligible extinction coefficient — the "low-loss, low
    /// contrast" end of the paper's comparison.
    pub fn sb2se3() -> Self {
        let anchor = reference_wavelength();
        PcmMaterial {
            kind: PcmKind::Sb2Se3,
            thermal: ThermalProperties {
                melting_point: Temperature::from_kelvin(885.0),
                crystallization_onset: Temperature::from_kelvin(473.0),
                density: 5840.0,
                specific_heat: 230.0,
                conductivity: 0.36,
            },
            amorphous: LorentzModel::anchored(3.19, 1.0e-6, anchor, 2.5, 0.2),
            crystalline: LorentzModel::anchored(4.05, 0.01, anchor, 2.0, 0.4),
        }
    }

    /// The dispersion model of one phase.
    pub fn model(&self, phase: Phase) -> &LorentzModel {
        match phase {
            Phase::Amorphous => &self.amorphous,
            Phase::Crystalline => &self.crystalline,
        }
    }

    /// The complex refractive index of one phase at a wavelength.
    pub fn refractive_index(&self, phase: Phase, lambda: Length) -> ComplexIndex {
        self.model(phase).refractive_index(lambda)
    }

    /// Refractive-index contrast `n_c − n_a` at a wavelength — the paper's
    /// primary selection metric (higher ⇒ more distinguishable levels).
    pub fn index_contrast(&self, lambda: Length) -> f64 {
        self.refractive_index(Phase::Crystalline, lambda).n
            - self.refractive_index(Phase::Amorphous, lambda).n
    }

    /// Extinction-coefficient contrast `κ_c − κ_a` at a wavelength — the
    /// paper's secondary metric (higher ⇒ more efficient optical writes).
    pub fn extinction_contrast(&self, lambda: Length) -> f64 {
        self.refractive_index(Phase::Crystalline, lambda).kappa
            - self.refractive_index(Phase::Amorphous, lambda).kappa
    }
}

/// Optical/thermal constants of the silicon waveguide core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Silicon;

impl Silicon {
    /// Refractive index at 1550 nm.
    pub const REFRACTIVE_INDEX: f64 = 3.476;
    /// Thermal conductivity, W/(m·K).
    pub const CONDUCTIVITY: f64 = 148.0;
    /// Density, kg/m³.
    pub const DENSITY: f64 = 2329.0;
    /// Specific heat, J/(kg·K).
    pub const SPECIFIC_HEAT: f64 = 713.0;

    /// Volumetric heat capacity, J/(m³·K).
    pub fn volumetric_heat_capacity() -> f64 {
        Self::DENSITY * Self::SPECIFIC_HEAT
    }
}

/// Optical/thermal constants of the buried-oxide (SiO₂) cladding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiliconDioxide;

impl SiliconDioxide {
    /// Refractive index at 1550 nm.
    pub const REFRACTIVE_INDEX: f64 = 1.444;
    /// Thermal conductivity, W/(m·K).
    pub const CONDUCTIVITY: f64 = 1.4;
    /// Density, kg/m³.
    pub const DENSITY: f64 = 2203.0;
    /// Specific heat, J/(kg·K).
    pub const SPECIFIC_HEAT: f64 = 730.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gst_has_highest_index_contrast() {
        // The core claim behind the paper's material selection (Fig. 3).
        let lambda = reference_wavelength();
        let gst = PcmMaterial::gst().index_contrast(lambda);
        let gsst = PcmMaterial::gsst().index_contrast(lambda);
        let sb = PcmMaterial::sb2se3().index_contrast(lambda);
        assert!(gst > gsst, "GST contrast {gst} should beat GSST {gsst}");
        assert!(gsst > sb, "GSST contrast {gsst} should beat Sb2Se3 {sb}");
    }

    #[test]
    fn gst_has_highest_extinction_contrast() {
        let lambda = reference_wavelength();
        let gst = PcmMaterial::gst().extinction_contrast(lambda);
        let gsst = PcmMaterial::gsst().extinction_contrast(lambda);
        let sb = PcmMaterial::sb2se3().extinction_contrast(lambda);
        assert!(gst > gsst && gsst > sb);
    }

    #[test]
    fn contrast_holds_across_entire_c_band() {
        for nm in [1530.0, 1540.0, 1550.0, 1560.0, 1565.0] {
            let lambda = Length::from_nanometers(nm);
            let gst = PcmMaterial::gst().index_contrast(lambda);
            let gsst = PcmMaterial::gsst().index_contrast(lambda);
            let sb = PcmMaterial::sb2se3().index_contrast(lambda);
            assert!(gst > gsst && gsst > sb, "ordering broken at {nm} nm");
        }
    }

    #[test]
    fn amorphous_is_low_loss() {
        let lambda = reference_wavelength();
        for kind in PcmKind::ALL {
            let idx = kind.material().refractive_index(Phase::Amorphous, lambda);
            assert!(idx.kappa < 1e-3, "{kind} amorphous should be near-lossless");
        }
    }

    #[test]
    fn melting_above_crystallization() {
        for kind in PcmKind::ALL {
            let t = kind.material().thermal;
            assert!(t.melting_point > t.crystallization_onset);
            let opt = t.optimal_crystallization_temperature();
            assert!(opt > t.crystallization_onset && opt < t.melting_point);
        }
    }

    #[test]
    fn anchor_values_reproduced() {
        let gst = PcmMaterial::gst();
        let c = gst.refractive_index(Phase::Crystalline, reference_wavelength());
        assert!((c.n - 6.11).abs() < 1e-6);
        assert!((c.kappa - 1.10).abs() < 1e-6);
        let a = gst.refractive_index(Phase::Amorphous, reference_wavelength());
        assert!((a.n - 3.94).abs() < 1e-6);
    }

    #[test]
    fn kind_display_and_roundtrip() {
        for kind in PcmKind::ALL {
            assert_eq!(kind.material().kind, kind);
        }
        assert_eq!(PcmKind::Gst.to_string(), "GST");
    }
}
