//! Phase-change-material physics for optical memory cells.
//!
//! This crate is the device-physics substrate of the COMET reproduction. It
//! replaces the paper's commercial tooling (Ansys Lumerical FDTD + HEAT)
//! with calibrated semi-analytic models, covering Sections II.A–III.B of
//! the paper:
//!
//! * [`LorentzModel`] — Lorentz-oscillator dispersion (n, κ) for
//!   each material phase, anchored to published 1550 nm values (Fig. 3);
//! * [`PcmMaterial`] — GST / GSST / Sb₂Se₃ candidates with
//!   optical and thermal constants;
//! * [`effective_index`] — Lorentz–Lorenz effective medium for
//!   partially crystallized films;
//! * [`CellGeometry`] — SOI strip waveguide and PCM-patch
//!   geometry with a calibrated confinement factor;
//! * [`CellOpticalModel`] — transmission/absorption of the
//!   cell vs crystalline fraction, geometry and wavelength (Fig. 4);
//! * [`CellThermalModel`] — transient melt/crystallize programming
//!   dynamics with latent-heat-buffered melting;
//! * [`ProgramTable`] — the 16-level MLC programming tables of
//!   both case studies (Fig. 6);
//! * [`spectra`](material_spectra) — C-band sweeps for the figures.
//!
//! # Derived vs paper constants
//!
//! This crate is the *source* side of the workspace's cross-layer cell
//! contract. The circuit layer (`photonic`) never reads transmission
//! constants directly: it declares a `CellOpticalModel` **trait**
//! (transmission range, insertion loss, level spacing), and its
//! `DerivedCellModel` provider resolves that contract from this crate's
//! [`CellOpticalModel`] **struct** — `T(p, λ)` and its inverse — at the
//! 1550 nm reference wavelength, with the same crystalline-end guard band
//! [`ProgramTable::generate`] applies. The alternative provider carries
//! the constants transcribed from the paper (levels 0.95 → 0.05), so
//! recalibrating the physics here moves every `derived`-mode result in
//! the architecture layer while `paper`-mode evaluation stays pinned to
//! the publication; the `fig6_levels`/`table1_params` binaries print the
//! divergence between the two.
//!
//! # Quick start
//!
//! ```
//! use comet_units::Length;
//! use opcm_phys::{CellOpticalModel, PcmKind};
//!
//! // Why GST? Highest contrast of the three candidates:
//! let lambda = Length::from_nanometers(1550.0);
//! let contrast = |k: PcmKind| k.material().index_contrast(lambda);
//! assert!(contrast(PcmKind::Gst) > contrast(PcmKind::Gsst));
//!
//! // And the 2 µm GST cell shows ~95% transmission contrast:
//! let cell = CellOpticalModel::comet_gst();
//! assert!(cell.transmission_contrast(lambda) > 0.9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cell_optics;
mod complex;
mod lorentz;
mod materials;
mod mixing;
mod program;
mod spectra;
mod thermal;
mod waveguide;

pub use cell_optics::{CellOpticalModel, GeometryContrast};
pub use complex::Complex;
pub use lorentz::{photon_energy_ev, ComplexIndex, LorentzModel, Oscillator};
pub use materials::{
    reference_wavelength, PcmKind, PcmMaterial, Phase, Silicon, SiliconDioxide, ThermalProperties,
};
pub use mixing::{effective_index, fraction_for_kappa, lorentz_lorenz_mix};
pub use program::{
    fig6_case_studies, GenerateTableError, LevelSpec, ProgramMode, ProgramTable, ResetSpec,
    CRYSTALLINE_GUARD, LEVEL_TRANSMITTANCE_FLOOR,
};
pub use spectra::{
    c_band_end, c_band_start, c_band_wavelengths, cell_spectrum, material_spectra,
    CellSpectrumPoint, MaterialSpectrumPoint,
};
pub use thermal::{
    CellState, CellThermalModel, PulseOutcome, PulseSpec, ThermalParams, TraceSample,
};
pub use waveguide::{CellGeometry, WaveguideGeometry};
