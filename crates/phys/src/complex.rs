//! A minimal complex-number type for optical permittivity arithmetic.
//!
//! The workspace deliberately avoids third-party numeric crates; the Lorentz
//! model and effective-medium mixing only need add/sub/mul/div and the
//! principal square root, so a small local implementation is clearer than a
//! dependency.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use opcm_phys::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert!((z.norm() - 5.0).abs() < 1e-12);
/// let r = z.sqrt();
/// assert!(((r * r) - z).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// The squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude.
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// The complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// The principal square root (non-negative real part).
    ///
    /// For permittivity → refractive-index conversion the principal branch
    /// is always the physical one (positive `n`).
    pub fn sqrt(self) -> Complex {
        let r = self.norm();
        let re = ((r + self.re) / 2.0).max(0.0).sqrt();
        let im_mag = ((r - self.re) / 2.0).max(0.0).sqrt();
        Complex::new(re, if self.im < 0.0 { -im_mag } else { im_mag })
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        rhs * self
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.4}+{:.4}i", self.re, self.im)
        } else {
            write!(f, "{:.4}-{:.4}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        let q = a / b;
        assert!((q * b - a).norm() < 1e-12);
    }

    #[test]
    fn sqrt_principal_branch() {
        // sqrt of a permittivity-like value must have positive real part.
        let eps = Complex::new(36.0, 13.4);
        let n = eps.sqrt();
        assert!(n.re > 0.0);
        assert!((n * n - eps).norm() < 1e-9);

        // Negative-imaginary input keeps the conjugate symmetry.
        let m = eps.conj().sqrt();
        assert!((m - n.conj()).norm() < 1e-12);
    }

    #[test]
    fn sqrt_of_negative_real() {
        let z = Complex::from_real(-4.0);
        let r = z.sqrt();
        assert!(r.re.abs() < 1e-12);
        assert!((r.im - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Complex::new(1.0, -0.5)), "1.0000-0.5000i");
    }
}
