//! Optical transmission/absorption model of a PCM-on-waveguide cell.
//!
//! Stands in for the paper's Ansys Lumerical FDTD simulations (Section
//! III.B). For a cell of geometry `g` holding crystalline fraction `p`:
//!
//! * modal loss: `α(p) = 4π·κ_eff(p)·Γ(g) / λ` (Beer–Lambert with the
//!   confinement factor converting material κ into modal κ);
//! * interface mismatch: the PCM patch shifts the local effective index by
//!   `Γ·(n_pcm − n_si)`, producing a Fresnel-like reflectance at each facet —
//!   the paper's "optical-refractive-index mismatch" contribution;
//! * transmittance: `T(p) = (1 − R(p))² · exp(−α(p)·L)`;
//! * absorptance: `A(p) = (1 − R(p)) · (1 − exp(−α(p)·L))`.
//!
//! Calibration (see `waveguide` module) reproduces the paper's anchors: the
//! default GST cell shows ≈95 % transmission *and* absorption contrast, and
//! an amorphous cell loses ≈0.07 dB/mm falling slightly across the C-band.

use crate::lorentz::ComplexIndex;
use crate::materials::{PcmMaterial, Silicon};
use crate::mixing::effective_index;
use crate::waveguide::CellGeometry;
use comet_units::{Decibels, Length, Transmittance};
use serde::{Deserialize, Serialize};

/// Optical model of one PCM memory cell.
///
/// # Examples
///
/// ```
/// use comet_units::Length;
/// use opcm_phys::{CellGeometry, CellOpticalModel, PcmKind};
///
/// let cell = CellOpticalModel::new(PcmKind::Gst.material(), CellGeometry::comet_default());
/// let lambda = Length::from_nanometers(1550.0);
/// let contrast = cell.transmission_contrast(lambda);
/// assert!(contrast > 0.90, "GST cell should show ~95% contrast, got {contrast}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellOpticalModel {
    /// The phase-change material in the cell.
    pub material: PcmMaterial,
    /// The cell geometry.
    pub geometry: CellGeometry,
}

/// One point of the Fig. 4 geometry sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeometryContrast {
    /// PCM patch width.
    pub width: Length,
    /// PCM film thickness.
    pub thickness: Length,
    /// Transmission contrast `(T_a − T_c)/T_a` between the pure phases.
    pub transmission_contrast: f64,
    /// Absorption contrast `A_c − A_a` between the pure phases.
    pub absorption_contrast: f64,
}

impl CellOpticalModel {
    /// Creates a model from a material and geometry.
    pub fn new(material: PcmMaterial, geometry: CellGeometry) -> Self {
        CellOpticalModel { material, geometry }
    }

    /// The COMET GST cell (480 nm × 20 nm × 2 µm on 480×220 SOI).
    pub fn comet_gst() -> Self {
        CellOpticalModel::new(PcmMaterial::gst(), CellGeometry::comet_default())
    }

    /// Effective complex index of the PCM mixture at crystalline fraction
    /// `p` (material property; not yet weighted by confinement).
    pub fn pcm_index(&self, p: f64, lambda: Length) -> ComplexIndex {
        effective_index(&self.material, p, lambda)
    }

    /// Modal power attenuation coefficient in 1/m at fraction `p`.
    pub fn modal_loss_coefficient(&self, p: f64, lambda: Length) -> f64 {
        let kappa = self.pcm_index(p, lambda).kappa;
        let gamma = self.geometry.confinement_factor();
        4.0 * std::f64::consts::PI * kappa * gamma / lambda.as_meters()
    }

    /// Single-pass propagation loss through the cell, in dB, at fraction `p`
    /// (absorption only, excluding interface reflection).
    pub fn propagation_loss(&self, p: f64, lambda: Length) -> Decibels {
        let alpha = self.modal_loss_coefficient(p, lambda);
        let transmitted = (-alpha * self.geometry.length.as_meters()).exp();
        Decibels::from_linear(transmitted.max(1e-30))
    }

    /// Per-facet power reflectance from the waveguide ↔ cell effective-index
    /// mismatch at fraction `p`.
    pub fn interface_reflectance(&self, p: f64, lambda: Length) -> f64 {
        let n_wg = self.geometry.waveguide.effective_index();
        let gamma = self.geometry.confinement_factor();
        let n_cell = n_wg + gamma * (self.pcm_index(p, lambda).n - Silicon::REFRACTIVE_INDEX);
        let r = (n_cell - n_wg) / (n_cell + n_wg);
        r * r
    }

    /// End-to-end power transmittance of the cell at fraction `p`.
    pub fn transmittance(&self, p: f64, lambda: Length) -> Transmittance {
        let r = self.interface_reflectance(p, lambda);
        let alpha = self.modal_loss_coefficient(p, lambda);
        let through = (-alpha * self.geometry.length.as_meters()).exp();
        Transmittance::new((1.0 - r) * (1.0 - r) * through)
    }

    /// Fraction of incident power absorbed in the cell at fraction `p`.
    pub fn absorptance(&self, p: f64, lambda: Length) -> f64 {
        let r = self.interface_reflectance(p, lambda);
        let alpha = self.modal_loss_coefficient(p, lambda);
        let through = (-alpha * self.geometry.length.as_meters()).exp();
        (1.0 - r) * (1.0 - through)
    }

    /// Transmission contrast `(T_a − T_c) / T_a` between pure phases —
    /// the paper's Fig. 4 y-axis (≈0.95 for the default GST cell).
    pub fn transmission_contrast(&self, lambda: Length) -> f64 {
        let t_a = self.transmittance(0.0, lambda).value();
        let t_c = self.transmittance(1.0, lambda).value();
        (t_a - t_c) / t_a
    }

    /// Absorption contrast `A_c − A_a` between pure phases.
    pub fn absorption_contrast(&self, lambda: Length) -> f64 {
        self.absorptance(1.0, lambda) - self.absorptance(0.0, lambda)
    }

    /// Finds the crystalline fraction that produces a target transmittance,
    /// by bisection on the (strictly decreasing) `T(p)` curve.
    ///
    /// Returns `None` if the target is outside `[T(1), T(0)]`.
    pub fn fraction_for_transmittance(&self, target: Transmittance, lambda: Length) -> Option<f64> {
        let t0 = self.transmittance(0.0, lambda).value();
        let t1 = self.transmittance(1.0, lambda).value();
        let t = target.value();
        if t > t0 + 1e-12 || t < t1 - 1e-12 {
            return None;
        }
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.transmittance(mid, lambda).value() > t {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }

    /// Loss of the *amorphous* cell region per millimetre — the paper
    /// quotes 0.073 dB/mm at 1530 nm falling to 0.067 dB/mm at 1565 nm.
    pub fn amorphous_loss_per_mm(&self, lambda: Length) -> Decibels {
        let per_cell = self.propagation_loss(0.0, lambda);
        per_cell / self.geometry.length.as_millimeters()
    }

    /// Sweeps PCM width × thickness and reports both contrasts (Fig. 4).
    pub fn geometry_sweep(
        &self,
        widths: &[Length],
        thicknesses: &[Length],
        lambda: Length,
    ) -> Vec<GeometryContrast> {
        let mut out = Vec::with_capacity(widths.len() * thicknesses.len());
        for &w in widths {
            for &t in thicknesses {
                let g = self.geometry.with_pcm_width(w).with_thickness(t);
                let m = CellOpticalModel::new(self.material.clone(), g);
                out.push(GeometryContrast {
                    width: w,
                    thickness: t,
                    transmission_contrast: m.transmission_contrast(lambda),
                    absorption_contrast: m.absorption_contrast(lambda),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materials::reference_wavelength;

    fn model() -> CellOpticalModel {
        CellOpticalModel::comet_gst()
    }

    #[test]
    fn paper_anchor_95_percent_contrast() {
        let m = model();
        let lambda = reference_wavelength();
        let tc = m.transmission_contrast(lambda);
        let ac = m.absorption_contrast(lambda);
        assert!((0.92..=0.98).contains(&tc), "transmission contrast {tc}");
        assert!((0.90..=0.98).contains(&ac), "absorption contrast {ac}");
    }

    #[test]
    fn paper_anchor_amorphous_loss_per_mm() {
        let m = model();
        let blue = m
            .amorphous_loss_per_mm(Length::from_nanometers(1530.0))
            .value();
        let red = m
            .amorphous_loss_per_mm(Length::from_nanometers(1565.0))
            .value();
        assert!((0.055..=0.085).contains(&blue), "1530nm loss {blue} dB/mm");
        assert!(red < blue, "loss should fall with wavelength");
        assert!(red > 0.045, "1565nm loss {red} dB/mm");
    }

    #[test]
    fn transmittance_is_monotone_decreasing_in_fraction() {
        let m = model();
        let lambda = reference_wavelength();
        let mut last = f64::INFINITY;
        for i in 0..=20 {
            let t = m.transmittance(i as f64 / 20.0, lambda).value();
            assert!(t < last, "T(p) not strictly decreasing at step {i}");
            last = t;
        }
    }

    #[test]
    fn energy_conservation() {
        // Incident power splits exactly into: front-facet reflection,
        // absorption, transmission, and the back-reflected wave that exits
        // backwards through the front facet: r + A + T + r(1-r)·e^{-αL} = 1.
        let m = model();
        let lambda = reference_wavelength();
        for i in 0..=10 {
            let p = i as f64 / 10.0;
            let t = m.transmittance(p, lambda).value();
            let a = m.absorptance(p, lambda);
            let r = m.interface_reflectance(p, lambda);
            let through =
                (-m.modal_loss_coefficient(p, lambda) * m.geometry.length.as_meters()).exp();
            let total = t + a + r + r * (1.0 - r) * through;
            assert!((total - 1.0).abs() < 1e-9, "p={p}: budget total {total}");
            assert!(t + a <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn fraction_for_transmittance_inverts() {
        let m = model();
        let lambda = reference_wavelength();
        for p_true in [0.05, 0.3, 0.55, 0.8, 0.95] {
            let t = m.transmittance(p_true, lambda);
            let p = m.fraction_for_transmittance(t, lambda).expect("in range");
            assert!((p - p_true).abs() < 1e-6, "p={p} vs {p_true}");
        }
    }

    #[test]
    fn fraction_for_transmittance_out_of_range() {
        let m = model();
        let lambda = reference_wavelength();
        assert!(m
            .fraction_for_transmittance(Transmittance::new(0.9999999), lambda)
            .is_none());
        assert!(m
            .fraction_for_transmittance(Transmittance::new(1e-9), lambda)
            .is_none());
    }

    #[test]
    fn contrast_grows_with_thickness_and_saturates() {
        let m = model();
        let lambda = reference_wavelength();
        let widths = [Length::from_nanometers(480.0)];
        let thicknesses: Vec<Length> = [5.0, 10.0, 20.0, 35.0, 50.0]
            .iter()
            .map(|&t| Length::from_nanometers(t))
            .collect();
        let sweep = m.geometry_sweep(&widths, &thicknesses, lambda);
        for pair in sweep.windows(2) {
            assert!(pair[1].transmission_contrast > pair[0].transmission_contrast);
            assert!(pair[1].absorption_contrast > pair[0].absorption_contrast);
        }
        // The paper's selected point: ~95% at 20 nm.
        let sel = &sweep[2];
        assert!((sel.transmission_contrast - 0.95).abs() < 0.03);
    }

    #[test]
    fn width_negligible_in_sweep() {
        let m = model();
        let lambda = reference_wavelength();
        let widths: Vec<Length> = [300.0, 400.0, 480.0]
            .iter()
            .map(|&w| Length::from_nanometers(w))
            .collect();
        let thicknesses = [Length::from_nanometers(20.0)];
        let sweep = m.geometry_sweep(&widths, &thicknesses, lambda);
        let min = sweep
            .iter()
            .map(|s| s.transmission_contrast)
            .fold(f64::INFINITY, f64::min);
        let max = sweep
            .iter()
            .map(|s| s.transmission_contrast)
            .fold(0.0, f64::max);
        assert!((max - min) / max < 0.05, "width effect should be small");
    }

    #[test]
    fn wavelength_dependence_is_small() {
        // Paper: max wavelength-dependent transmission contrast variation
        // across the C-band was 1.4%.
        let m = model();
        let c1 = m.transmission_contrast(Length::from_nanometers(1530.0));
        let c2 = m.transmission_contrast(Length::from_nanometers(1565.0));
        assert!((c1 - c2).abs() < 0.02, "variation {}", (c1 - c2).abs());
    }
}
