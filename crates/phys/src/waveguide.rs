//! SOI strip-waveguide geometry and the PCM-loaded cell geometry.
//!
//! The paper's cell (Fig. 5(a)) is a 480 nm × 220 nm silicon-on-insulator
//! strip waveguide with a 2 µm long, 480 nm wide, 20 nm thick GST patch on
//! top. Full vectorial mode solving is out of scope (the paper used Ansys
//! Lumerical); what downstream layers need are two scalars per geometry:
//!
//! * the waveguide **effective index** (sets interface mismatch and phase), and
//! * the **confinement factor** Γ — the fraction of modal power overlapping
//!   the PCM film, which converts material extinction κ into modal loss.
//!
//! Both use compact analytic fits calibrated against the paper's anchors:
//! Γ(480 nm, 20 nm) is chosen so a 2 µm crystalline GST cell absorbs ≈95 %
//! of the light while an amorphous one loses ≈0.07 dB/mm (Section III.B).

use comet_units::Length;
use serde::{Deserialize, Serialize};

use crate::materials::{Silicon, SiliconDioxide};

/// Saturation value of the PCM confinement factor for very thick films.
///
/// Calibrated so Γ(20 nm) ≈ 0.177, which reproduces the paper's ≈95 %
/// transmission/absorption contrast for the 2 µm GST cell.
const CONFINEMENT_SATURATION: f64 = 0.225;

/// Thickness scale (nm) of the evanescent overlap growth.
const CONFINEMENT_THICKNESS_SCALE_NM: f64 = 13.0;

/// Fraction of the width dependence that is fixed; the paper observes the
/// width impact on transmission/absorption is negligible.
const WIDTH_BASE: f64 = 0.92;

/// Cross-section area scale (nm²) of the core-confinement fit.
const CORE_AREA_SCALE_NM2: f64 = 176_000.0;

/// An SOI strip waveguide cross-section.
///
/// # Examples
///
/// ```
/// use opcm_phys::WaveguideGeometry;
///
/// let wg = WaveguideGeometry::soi_strip_480x220();
/// assert!(wg.is_single_mode());
/// let neff = wg.effective_index();
/// assert!(neff > 2.2 && neff < 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveguideGeometry {
    /// Core width.
    pub width: Length,
    /// Core height (SOI device-layer thickness).
    pub height: Length,
}

impl WaveguideGeometry {
    /// The paper's 480 nm × 220 nm strip waveguide.
    pub fn soi_strip_480x220() -> Self {
        WaveguideGeometry {
            width: Length::from_nanometers(480.0),
            height: Length::from_nanometers(220.0),
        }
    }

    /// Fundamental-mode effective index at 1550 nm.
    ///
    /// Saturating-area fit anchored to n_eff ≈ 2.36 for the 480×220 nm
    /// strip; converges to the silicon index for very large cores and to
    /// the oxide index for vanishing cores.
    pub fn effective_index(&self) -> f64 {
        let area_nm2 = self.width.as_nanometers() * self.height.as_nanometers();
        let core_fill = 1.0 - (-area_nm2 / CORE_AREA_SCALE_NM2).exp();
        SiliconDioxide::REFRACTIVE_INDEX
            + (Silicon::REFRACTIVE_INDEX - SiliconDioxide::REFRACTIVE_INDEX) * core_fill
    }

    /// Whether the cross-section supports only the fundamental TE mode at
    /// 1550 nm (approximate single-mode criterion for 220 nm SOI).
    pub fn is_single_mode(&self) -> bool {
        self.height.as_nanometers() <= 260.0 && self.width.as_nanometers() <= 520.0
    }

    /// Cross-section area.
    pub fn cross_section(&self) -> f64 {
        self.width.as_meters() * self.height.as_meters()
    }
}

impl Default for WaveguideGeometry {
    fn default() -> Self {
        Self::soi_strip_480x220()
    }
}

/// A PCM-on-waveguide memory cell geometry (Fig. 5(a)).
///
/// # Examples
///
/// ```
/// use opcm_phys::CellGeometry;
///
/// let cell = CellGeometry::comet_default();
/// let gamma = cell.confinement_factor();
/// assert!(gamma > 0.15 && gamma < 0.20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellGeometry {
    /// Underlying strip waveguide.
    pub waveguide: WaveguideGeometry,
    /// PCM patch width (the paper uses the waveguide width).
    pub pcm_width: Length,
    /// PCM film thickness.
    pub pcm_thickness: Length,
    /// PCM patch length along the propagation direction.
    pub length: Length,
}

impl CellGeometry {
    /// The paper's cell: 480 nm wide, 20 nm thick, 2 µm long GST on the
    /// 480×220 nm strip.
    pub fn comet_default() -> Self {
        CellGeometry {
            waveguide: WaveguideGeometry::soi_strip_480x220(),
            pcm_width: Length::from_nanometers(480.0),
            pcm_thickness: Length::from_nanometers(20.0),
            length: Length::from_micrometers(2.0),
        }
    }

    /// Returns a copy with a different PCM film thickness.
    pub fn with_thickness(mut self, thickness: Length) -> Self {
        self.pcm_thickness = thickness;
        self
    }

    /// Returns a copy with a different PCM patch width.
    pub fn with_pcm_width(mut self, width: Length) -> Self {
        self.pcm_width = width;
        self
    }

    /// Returns a copy with a different PCM patch length.
    pub fn with_length(mut self, length: Length) -> Self {
        self.length = length;
        self
    }

    /// The modal confinement factor Γ in the PCM film.
    ///
    /// Saturating-exponential fit in thickness (evanescent + partial-core
    /// overlap) times a weak width factor; calibrated to the paper's 2 µm
    /// GST cell anchors (see module docs). Thicker films interact more but
    /// saturate; width barely matters once the patch covers the core.
    pub fn confinement_factor(&self) -> f64 {
        let t_nm = self.pcm_thickness.as_nanometers();
        let thickness_term = 1.0 - (-t_nm / CONFINEMENT_THICKNESS_SCALE_NM).exp();
        let width_ratio =
            (self.pcm_width.as_nanometers() / self.waveguide.width.as_nanometers()).min(1.0);
        let width_term = WIDTH_BASE + (1.0 - WIDTH_BASE) * width_ratio;
        CONFINEMENT_SATURATION * thickness_term * width_term
    }

    /// PCM film volume (heated by programming pulses).
    pub fn pcm_volume(&self) -> f64 {
        self.pcm_width.as_meters() * self.pcm_thickness.as_meters() * self.length.as_meters()
    }

    /// Silicon core volume under the PCM patch.
    pub fn core_volume(&self) -> f64 {
        self.waveguide.cross_section() * self.length.as_meters()
    }
}

impl Default for CellGeometry {
    fn default() -> Self {
        Self::comet_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_effective_index_anchor() {
        let neff = WaveguideGeometry::soi_strip_480x220().effective_index();
        assert!((neff - 2.36).abs() < 0.03, "n_eff={neff}");
    }

    #[test]
    fn effective_index_limits() {
        let tiny = WaveguideGeometry {
            width: Length::from_nanometers(10.0),
            height: Length::from_nanometers(10.0),
        };
        assert!(tiny.effective_index() < 1.5);
        let huge = WaveguideGeometry {
            width: Length::from_micrometers(5.0),
            height: Length::from_micrometers(5.0),
        };
        assert!((huge.effective_index() - Silicon::REFRACTIVE_INDEX).abs() < 1e-6);
    }

    #[test]
    fn confinement_grows_with_thickness_and_saturates() {
        let base = CellGeometry::comet_default();
        let mut last = 0.0;
        for t in [5.0, 10.0, 20.0, 30.0, 50.0] {
            let g = base
                .with_thickness(Length::from_nanometers(t))
                .confinement_factor();
            assert!(g > last, "not monotone at t={t}");
            assert!(g < CONFINEMENT_SATURATION);
            last = g;
        }
        // Saturation: growth from 30->50 nm is much smaller than 5->20 nm.
        let g5 = base
            .with_thickness(Length::from_nanometers(5.0))
            .confinement_factor();
        let g20 = base.confinement_factor();
        let g30 = base
            .with_thickness(Length::from_nanometers(30.0))
            .confinement_factor();
        let g50 = base
            .with_thickness(Length::from_nanometers(50.0))
            .confinement_factor();
        assert!((g20 - g5) > 3.0 * (g50 - g30));
    }

    #[test]
    fn width_impact_is_negligible() {
        // The paper: "the impact of PCM waveguide width on optical
        // transmission and absorption is negligible".
        let base = CellGeometry::comet_default();
        let narrow = base
            .with_pcm_width(Length::from_nanometers(300.0))
            .confinement_factor();
        let wide = base
            .with_pcm_width(Length::from_nanometers(480.0))
            .confinement_factor();
        assert!((wide - narrow) / wide < 0.05);
    }

    #[test]
    fn default_confinement_anchor() {
        let g = CellGeometry::comet_default().confinement_factor();
        assert!((g - 0.177).abs() < 0.01, "gamma={g}");
    }

    #[test]
    fn volumes() {
        let c = CellGeometry::comet_default();
        // 480 nm * 20 nm * 2 um = 1.92e-20 m^3.
        assert!((c.pcm_volume() - 1.92e-20).abs() / 1.92e-20 < 1e-9);
        // 480 nm * 220 nm * 2 um = 2.112e-19 m^3.
        assert!((c.core_volume() - 2.112e-19).abs() / 2.112e-19 < 1e-9);
    }
}
