//! C-band wavelength sweeps for the material and cell spectra figures.
//!
//! Fig. 3 plots n and κ of the three PCM candidates over the optical C-band
//! (1530–1565 nm); Section III.B quotes the wavelength dependence of the
//! cell loss (0.073 → 0.067 dB/mm) and a ≤1.4 % transmission-contrast
//! variation. These helpers produce those series.

use crate::cell_optics::CellOpticalModel;
use crate::lorentz::ComplexIndex;
use crate::materials::{PcmKind, Phase};
use comet_units::Length;
use serde::{Deserialize, Serialize};

/// Start of the optical C-band.
pub fn c_band_start() -> Length {
    Length::from_nanometers(1530.0)
}

/// End of the optical C-band.
pub fn c_band_end() -> Length {
    Length::from_nanometers(1565.0)
}

/// `count` evenly spaced wavelengths spanning the C-band (inclusive).
///
/// # Panics
///
/// Panics if `count < 2`.
///
/// # Examples
///
/// ```
/// use opcm_phys::c_band_wavelengths;
///
/// let grid = c_band_wavelengths(8);
/// assert_eq!(grid.len(), 8);
/// assert!((grid[0].as_nanometers() - 1530.0).abs() < 1e-9);
/// assert!((grid[7].as_nanometers() - 1565.0).abs() < 1e-9);
/// ```
pub fn c_band_wavelengths(count: usize) -> Vec<Length> {
    assert!(count >= 2, "need at least two sample points");
    let start = c_band_start().as_nanometers();
    let end = c_band_end().as_nanometers();
    (0..count)
        .map(|i| Length::from_nanometers(start + (end - start) * i as f64 / (count - 1) as f64))
        .collect()
}

/// One sample of the Fig. 3 material-spectra sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaterialSpectrumPoint {
    /// Material.
    pub kind: PcmKind,
    /// Phase.
    pub phase: Phase,
    /// Wavelength.
    pub wavelength: Length,
    /// Complex index at this point.
    pub index: ComplexIndex,
}

/// Sweeps n and κ for every material and phase across the C-band (Fig. 3).
pub fn material_spectra(samples: usize) -> Vec<MaterialSpectrumPoint> {
    let grid = c_band_wavelengths(samples);
    let mut out = Vec::with_capacity(samples * 6);
    for kind in PcmKind::ALL {
        let material = kind.material();
        for phase in [Phase::Amorphous, Phase::Crystalline] {
            for &lambda in &grid {
                out.push(MaterialSpectrumPoint {
                    kind,
                    phase,
                    wavelength: lambda,
                    index: material.refractive_index(phase, lambda),
                });
            }
        }
    }
    out
}

/// One sample of the cell wavelength-dependence sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellSpectrumPoint {
    /// Wavelength.
    pub wavelength: Length,
    /// Amorphous-cell loss, dB/mm.
    pub amorphous_loss_db_per_mm: f64,
    /// Transmission contrast between pure phases at this wavelength.
    pub transmission_contrast: f64,
}

/// Sweeps the cell loss and contrast across the C-band (Section III.B text).
pub fn cell_spectrum(model: &CellOpticalModel, samples: usize) -> Vec<CellSpectrumPoint> {
    c_band_wavelengths(samples)
        .into_iter()
        .map(|lambda| CellSpectrumPoint {
            wavelength: lambda,
            amorphous_loss_db_per_mm: model.amorphous_loss_per_mm(lambda).value(),
            transmission_contrast: model.transmission_contrast(lambda),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_even_and_inclusive() {
        let g = c_band_wavelengths(36);
        assert_eq!(g.len(), 36);
        let step = g[1].as_nanometers() - g[0].as_nanometers();
        for w in g.windows(2) {
            assert!((w[1].as_nanometers() - w[0].as_nanometers() - step).abs() < 1e-9);
        }
    }

    #[test]
    fn material_spectra_cover_all_combinations() {
        let pts = material_spectra(5);
        assert_eq!(pts.len(), 3 * 2 * 5);
        // Every (kind, phase) combination present.
        for kind in PcmKind::ALL {
            for phase in [Phase::Amorphous, Phase::Crystalline] {
                assert!(pts.iter().any(|p| p.kind == kind && p.phase == phase));
            }
        }
    }

    #[test]
    fn cell_loss_falls_across_band() {
        // Paper: 0.073 dB/mm at 1530 nm -> 0.067 dB/mm at 1565 nm.
        let model = CellOpticalModel::comet_gst();
        let sweep = cell_spectrum(&model, 8);
        assert!(
            sweep.first().unwrap().amorphous_loss_db_per_mm
                > sweep.last().unwrap().amorphous_loss_db_per_mm
        );
        for p in &sweep {
            assert!((0.05..=0.09).contains(&p.amorphous_loss_db_per_mm));
        }
    }

    #[test]
    fn contrast_variation_within_paper_bound() {
        // Paper: max wavelength-dependent contrast variation 1.4%.
        let model = CellOpticalModel::comet_gst();
        let sweep = cell_spectrum(&model, 8);
        let max = sweep
            .iter()
            .map(|p| p.transmission_contrast)
            .fold(0.0, f64::max);
        let min = sweep
            .iter()
            .map(|p| p.transmission_contrast)
            .fold(f64::INFINITY, f64::min);
        assert!(max - min < 0.02, "contrast varies by {}", max - min);
    }

    #[test]
    #[should_panic(expected = "two sample points")]
    fn rejects_single_sample() {
        let _ = c_band_wavelengths(1);
    }
}
