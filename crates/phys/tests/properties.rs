//! Property-based tests for the PCM physics layer.
//!
//! These pin down the *invariants* the architecture layers rely on: optical
//! quantities stay in physical ranges over the whole parameter space,
//! mixing interpolates monotonically between the pure phases, and the
//! thermal programming model conserves energy and keeps state variables
//! bounded for arbitrary pulses.

use comet_units::{Length, Power, Time};
use opcm_phys::{
    c_band_end, c_band_start, effective_index, lorentz_lorenz_mix, CellGeometry, CellOpticalModel,
    CellState, CellThermalModel, PcmKind, Phase, PulseSpec,
};
use proptest::prelude::*;

/// A wavelength strategy spanning the optical C-band.
fn c_band() -> impl Strategy<Value = Length> {
    (c_band_start().as_nanometers()..c_band_end().as_nanometers()).prop_map(Length::from_nanometers)
}

fn any_material() -> impl Strategy<Value = PcmKind> {
    prop_oneof![
        Just(PcmKind::Gst),
        Just(PcmKind::Gsst),
        Just(PcmKind::Sb2Se3),
    ]
}

proptest! {
    // --- Lorentz optical model --------------------------------------------

    #[test]
    fn refractive_index_is_physical(kind in any_material(), lambda in c_band()) {
        let m = kind.material();
        for phase in [Phase::Amorphous, Phase::Crystalline] {
            let idx = m.refractive_index(phase, lambda);
            prop_assert!(idx.n > 1.0, "{kind:?} {phase:?}: n = {}", idx.n);
            prop_assert!(idx.n < 12.0, "{kind:?} {phase:?}: n = {}", idx.n);
            prop_assert!(idx.kappa >= 0.0, "{kind:?} {phase:?}: kappa = {}", idx.kappa);
            prop_assert!(idx.kappa < 5.0, "{kind:?} {phase:?}: kappa = {}", idx.kappa);
        }
    }

    #[test]
    fn crystalline_denser_than_amorphous(kind in any_material(), lambda in c_band()) {
        // Crystallization raises both n and kappa for all three candidates
        // in the C-band — the property every OPCM readout depends on.
        let m = kind.material();
        let a = m.refractive_index(Phase::Amorphous, lambda);
        let c = m.refractive_index(Phase::Crystalline, lambda);
        prop_assert!(c.n > a.n);
        prop_assert!(c.kappa >= a.kappa);
        prop_assert!(m.index_contrast(lambda) > 0.0);
    }

    #[test]
    fn index_permittivity_roundtrip(kind in any_material(), lambda in c_band()) {
        let m = kind.material();
        let idx = m.refractive_index(Phase::Crystalline, lambda);
        let back = opcm_phys::ComplexIndex::from_permittivity(idx.to_permittivity());
        prop_assert!((back.n - idx.n).abs() < 1e-9);
        prop_assert!((back.kappa - idx.kappa).abs() < 1e-9);
    }

    // --- effective-medium mixing -------------------------------------------

    #[test]
    fn mixing_endpoints_are_pure_phases(kind in any_material(), lambda in c_band()) {
        let m = kind.material();
        let a = m.refractive_index(Phase::Amorphous, lambda);
        let c = m.refractive_index(Phase::Crystalline, lambda);
        let at0 = effective_index(&m, 0.0, lambda);
        let at1 = effective_index(&m, 1.0, lambda);
        prop_assert!((at0.n - a.n).abs() < 1e-6 && (at0.kappa - a.kappa).abs() < 1e-6);
        prop_assert!((at1.n - c.n).abs() < 1e-6 && (at1.kappa - c.kappa).abs() < 1e-6);
    }

    #[test]
    fn mixing_is_monotone_in_fraction(
        kind in any_material(),
        lambda in c_band(),
        p1 in 0.0..1.0f64,
        p2 in 0.0..1.0f64,
    ) {
        let m = kind.material();
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = effective_index(&m, lo, lambda);
        let b = effective_index(&m, hi, lambda);
        prop_assert!(b.n >= a.n - 1e-9, "n not monotone: p={lo}->{hi}");
        prop_assert!(b.kappa >= a.kappa - 1e-9, "kappa not monotone: p={lo}->{hi}");
    }

    #[test]
    fn mixing_stays_between_phases(lambda in c_band(), p in 0.0..1.0f64) {
        let m = PcmKind::Gst.material();
        let a = m.refractive_index(Phase::Amorphous, lambda);
        let c = m.refractive_index(Phase::Crystalline, lambda);
        let mix = lorentz_lorenz_mix(a.to_permittivity(), c.to_permittivity(), p);
        let idx = opcm_phys::ComplexIndex::from_permittivity(mix);
        prop_assert!(idx.n >= a.n - 1e-9 && idx.n <= c.n + 1e-9);
        prop_assert!(idx.kappa >= a.kappa - 1e-9 && idx.kappa <= c.kappa + 1e-9);
    }

    // --- cell optics ---------------------------------------------------------

    #[test]
    fn transmittance_and_absorptance_partition_unity(
        p in 0.0..1.0f64,
        lambda in c_band(),
    ) {
        let cell = CellOpticalModel::comet_gst();
        let t = cell.transmittance(p, lambda).value();
        let a = cell.absorptance(p, lambda);
        prop_assert!((0.0..=1.0).contains(&t), "T = {t}");
        prop_assert!((0.0..=1.0).contains(&a), "A = {a}");
        // T + A <= 1 (the rest is reflected at the index-mismatch interface).
        prop_assert!(t + a <= 1.0 + 1e-9, "T + A = {}", t + a);
    }

    #[test]
    fn transmittance_decreases_with_crystallinity(
        p1 in 0.0..1.0f64,
        p2 in 0.0..1.0f64,
        lambda in c_band(),
    ) {
        let cell = CellOpticalModel::comet_gst();
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(
            cell.transmittance(hi, lambda).value() <= cell.transmittance(lo, lambda).value() + 1e-9
        );
        prop_assert!(cell.absorptance(hi, lambda) >= cell.absorptance(lo, lambda) - 1e-9);
    }

    #[test]
    fn fraction_for_transmittance_inverts(target_p in 0.01..0.99f64) {
        // The level-table generator depends on this inverse being accurate.
        let cell = CellOpticalModel::comet_gst();
        let lambda = opcm_phys::reference_wavelength();
        let t = cell.transmittance(target_p, lambda);
        if let Some(p) = cell.fraction_for_transmittance(t, lambda) {
            let t_back = cell.transmittance(p, lambda);
            prop_assert!(
                (t_back.value() - t.value()).abs() < 1e-6,
                "T({p}) = {} != {}",
                t_back.value(),
                t.value()
            );
        } else {
            prop_assert!(false, "no fraction for in-range transmittance {t}");
        }
    }

    #[test]
    fn thicker_cells_absorb_more(
        t1 in 5.0..50.0f64,
        t2 in 5.0..50.0f64,
        p in 0.2..1.0f64,
    ) {
        let lambda = opcm_phys::reference_wavelength();
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let mk = |nm| {
            CellOpticalModel::new(
                PcmKind::Gst.material(),
                CellGeometry::comet_default().with_thickness(Length::from_nanometers(nm)),
            )
        };
        prop_assert!(mk(hi).absorptance(p, lambda) >= mk(lo).absorptance(p, lambda) - 1e-9);
    }

    // --- thermal programming --------------------------------------------------

    #[test]
    fn pulse_outcome_state_is_bounded(
        start in 0.0..1.0f64,
        mw in 0.05..6.0f64,
        ns in 1.0..400.0f64,
    ) {
        let model = CellThermalModel::comet_gst();
        let pulse = PulseSpec::new(Power::from_milliwatts(mw), Time::from_nanos(ns));
        let out = model.apply_pulse(CellState::at_fraction(start), pulse);
        let p = out.state.crystalline_fraction;
        prop_assert!((0.0..=1.0).contains(&p), "fraction {p}");
        prop_assert!((0.0..=1.0).contains(&out.peak_melt_fraction));
        // Energy conservation: can't absorb more than the pulse delivered.
        prop_assert!(out.absorbed_energy.as_joules() <= pulse.energy().as_joules() + 1e-18);
        prop_assert!(out.absorbed_energy.as_joules() >= 0.0);
        // Peak temperature is at least ambient.
        prop_assert!(out.peak_temperature.as_kelvin() >= 293.0);
    }

    #[test]
    fn melting_implies_melting_point_reached(
        start in 0.0..1.0f64,
        mw in 0.05..6.0f64,
        ns in 1.0..400.0f64,
    ) {
        let model = CellThermalModel::comet_gst();
        let out = model.apply_pulse(
            CellState::at_fraction(start),
            PulseSpec::new(Power::from_milliwatts(mw), Time::from_nanos(ns)),
        );
        let t_melt = model.optics().material.thermal.melting_point.as_kelvin();
        if out.melted {
            prop_assert!(out.peak_temperature.as_kelvin() >= t_melt - 1e-6);
        } else {
            // No melting => fraction can only have grown (crystallization).
            prop_assert!(out.state.crystalline_fraction >= start - 1e-9);
        }
    }

    #[test]
    fn sub_threshold_reads_never_disturb(
        start in 0.0..1.0f64,
        uw in 10.0..200.0f64,
        ns in 1.0..50.0f64,
    ) {
        // Below the write-assist threshold and far below melt energy, the
        // state must be rock solid: this is COMET's read-isolation premise.
        let model = CellThermalModel::comet_gst();
        let out = model.apply_pulse(
            CellState::at_fraction(start),
            PulseSpec::new(Power::from_microwatts(uw), Time::from_nanos(ns)),
        );
        prop_assert!(!out.melted);
        prop_assert!(
            (out.state.crystalline_fraction - start).abs() < 1e-2,
            "read moved state {start} -> {}",
            out.state.crystalline_fraction
        );
    }

    #[test]
    fn longer_crystallization_pulses_reach_higher_fractions(
        d1 in 20.0..400.0f64,
        d2 in 20.0..400.0f64,
    ) {
        let model = CellThermalModel::comet_gst();
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let run = |ns| {
            model
                .apply_pulse(
                    CellState::amorphous(),
                    PulseSpec::new(Power::from_milliwatts(1.0), Time::from_nanos(ns)),
                )
                .state
                .crystalline_fraction
        };
        prop_assert!(run(hi) >= run(lo) - 1e-9);
    }
}

#[test]
fn gst_has_the_best_contrast_of_the_three() {
    // Deterministic cross-material check at the reference wavelength: the
    // paper's Section III.A selection argument.
    let lambda = opcm_phys::reference_wavelength();
    let gst = PcmKind::Gst.material();
    for other in [PcmKind::Gsst, PcmKind::Sb2Se3] {
        let m = other.material();
        assert!(gst.index_contrast(lambda) > m.index_contrast(lambda));
        assert!(gst.extinction_contrast(lambda) > m.extinction_contrast(lambda));
    }
}
