//! Property-based tests for the COMET core library.
//!
//! Invariants: the Eq. (1)–(6) address mapping is a bijection over the
//! configured geometry, MLC encode/decode roundtrips arbitrary data, the
//! lossy optical read path still decodes correctly within the LUT-trimmed
//! loss budget, and the functional memory is a faithful byte store under
//! arbitrary write/read interleavings.

use comet::{
    bitplane_deinterleave, bitplane_interleave, decode_levels, encode_bytes, AddressMapper,
    CometConfig, CometMemory, Correction, GainLut, LevelCodec, Secded, Subarray,
};
use comet_units::Decibels;
use memsim::DecodedAddress;
use proptest::prelude::*;

fn any_bits() -> impl Strategy<Value = u8> {
    prop_oneof![Just(1u8), Just(2u8), Just(4u8)]
}

fn config_for_bits(bits: u8) -> CometConfig {
    match bits {
        1 => CometConfig::comet_1b(),
        2 => CometConfig::comet_2b(),
        _ => CometConfig::comet_4b(),
    }
}

proptest! {
    // --- Eq. (1)-(6) address mapping ----------------------------------------

    #[test]
    fn mapping_roundtrips(
        bits in any_bits(),
        bank in 0u64..4,
        row in 0u64..(4096 * 512),
        column_seed in any::<u64>(),
    ) {
        let config = config_for_bits(bits);
        let mapper = AddressMapper::new(&config);
        let column = column_seed % config.subarray_cols;
        let flat = DecodedAddress { channel: 0, bank, row, column };
        let loc = mapper.map(flat);
        prop_assert!(loc.subarray < config.subarrays);
        prop_assert!(loc.row < config.subarray_rows);
        prop_assert!(loc.column < config.subarray_cols);
        prop_assert_eq!(mapper.unmap(loc), flat);
    }

    #[test]
    fn mapping_covers_all_subarrays(bits in any_bits(), seed in any::<u64>()) {
        // Eq. (4): every subarray index must be reachable from some row.
        let config = config_for_bits(bits);
        let mapper = AddressMapper::new(&config);
        let mut x = seed | 1;
        for _ in 0..32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let target = x % config.subarrays;
            let row = target * config.subarray_rows + x % config.subarray_rows;
            let loc = mapper.map(DecodedAddress { channel: 0, bank: 0, row, column: 0 });
            prop_assert_eq!(loc.subarray, target);
        }
    }

    // --- MLC level packing -----------------------------------------------------

    #[test]
    fn encode_decode_roundtrips_bytes(data in prop::collection::vec(any::<u8>(), 0..256),
                                      bits in any_bits()) {
        let levels = encode_bytes(&data, bits);
        prop_assert_eq!(levels.len(), data.len() * 8 / bits as usize);
        let max_level = (1u16 << bits) as u8 - 1;
        for &l in &levels {
            prop_assert!(l <= max_level);
        }
        prop_assert_eq!(decode_levels(&levels, bits), data);
    }

    #[test]
    fn codec_decodes_nominal_levels(bits in any_bits(), level_seed in any::<u8>()) {
        let codec = LevelCodec::ideal(bits);
        let level = level_seed % codec.level_count() as u8;
        let t = codec.transmittance(level);
        prop_assert_eq!(codec.decode(t), level);
    }

    #[test]
    fn codec_tolerates_sub_budget_loss(
        bits in any_bits(),
        level_seed in any::<u8>(),
        loss_fraction in 0.0..0.45f64,
    ) {
        // Any loss strictly inside half the level spacing must decode
        // correctly — the analog margin the paper's Section III.C computes.
        let codec = LevelCodec::ideal(bits);
        let level = level_seed % codec.level_count() as u8;
        let spacing = codec.spacing();
        let loss_linear = 1.0 - spacing * loss_fraction;
        let lost = Decibels::from_linear(loss_linear);
        let observed = codec.apply_loss(codec.transmittance(level), lost);
        prop_assert_eq!(
            codec.decode(observed),
            level,
            "level {} under {:.3} dB", level, lost.value()
        );
    }

    // --- gain LUT -----------------------------------------------------------------

    #[test]
    fn lut_residual_stays_within_tolerance(bits in any_bits(), row in 0u64..512) {
        let config = config_for_bits(bits);
        let lut = GainLut::for_bits(bits, config.subarray_rows, &config.optical);
        let residual = lut.residual_loss(row);
        let budget = comet::paper_loss_tolerance(bits);
        // One LUT step of slack is allowed (the paper rounds to whole rows).
        let slack = config.optical.eo_mr_through_loss;
        prop_assert!(
            residual.value() <= budget.value() + slack.value() + 1e-9,
            "row {row}: residual {residual} > budget {budget}"
        );
        prop_assert!(residual.value() >= -1e-9, "gain must not overshoot");
    }

    #[test]
    fn lut_gain_is_monotone_in_row_distance(bits in any_bits(), r1 in 0u64..512, r2 in 0u64..512) {
        // Deeper rows accumulate more through-loss, so the trim gain is
        // non-decreasing in row index within an SOA stage span.
        let config = config_for_bits(bits);
        let lut = GainLut::for_bits(bits, config.subarray_rows, &config.optical);
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let stage = config.rows_per_soa_stage();
        if lo / stage == hi / stage {
            prop_assert!(lut.gain_for_row(hi).value() >= lut.gain_for_row(lo).value() - 1e-9);
        }
    }

    // --- SECDED ECC + bit-plane interleaving -------------------------------------

    #[test]
    fn secded_roundtrips_any_word(data in any::<u64>()) {
        let check = Secded::encode(data);
        let (out, action) = Secded::decode(data, check).expect("clean decode");
        prop_assert_eq!(out, data);
        prop_assert_eq!(action, Correction::None);
    }

    #[test]
    fn secded_corrects_any_single_flip(data in any::<u64>(), bit in 0u8..72) {
        let check = Secded::encode(data);
        let (c_data, c_check) = if bit < 64 {
            (data ^ (1u64 << bit), check)
        } else {
            (data, check ^ (1u8 << (bit - 64)))
        };
        let (fixed, action) = Secded::decode(c_data, c_check).expect("single flip correctable");
        prop_assert_eq!(fixed, data);
        if bit < 64 {
            prop_assert_eq!(action, Correction::Data(bit));
        } else {
            prop_assert_eq!(action, Correction::Check);
        }
    }

    #[test]
    fn secded_never_miscorrects_double_flips(
        data in any::<u64>(),
        b1 in 0u8..64,
        b2 in 0u8..64,
    ) {
        prop_assume!(b1 != b2);
        let check = Secded::encode(data);
        let corrupted = data ^ (1u64 << b1) ^ (1u64 << b2);
        // Double errors must be detected, never silently miscorrected.
        prop_assert!(Secded::decode(corrupted, check).is_err());
    }

    #[test]
    fn bitplane_roundtrips_any_levels(
        levels in prop::collection::vec(0u8..16, 1usize..17).prop_map(|v| {
            // Pad to a multiple of 16 cells.
            let mut v = v;
            while v.len() % 16 != 0 { v.push(0); }
            v
        }),
    ) {
        let words = bitplane_interleave(&levels);
        prop_assert_eq!(bitplane_deinterleave(&words, levels.len()), levels);
    }

    #[test]
    fn interleaved_stuck_cell_is_always_recoverable(
        seed_levels in prop::collection::vec(0u8..16, 256..=256),
        cell in 0usize..256,
        stuck_at in 0u8..16,
    ) {
        // Any single stuck cell, any stored pattern: ECC over bit planes
        // recovers the line exactly.
        let words = bitplane_interleave(&seed_levels);
        let checks: Vec<u8> = words.iter().map(|&w| Secded::encode(w)).collect();
        let mut observed = seed_levels.clone();
        observed[cell] = stuck_at;
        let corrupted = bitplane_interleave(&observed);
        let recovered: Vec<u64> = corrupted
            .iter()
            .zip(&checks)
            .map(|(&w, &c)| Secded::decode(w, c).expect("≤1 flip per word").0)
            .collect();
        prop_assert_eq!(bitplane_deinterleave(&recovered, 256), seed_levels);
    }

    // --- functional subarray ----------------------------------------------------------

    #[test]
    fn subarray_stores_levels(rows in 1u64..32, cols in 1u64..64, seed in any::<u64>()) {
        let mut sa = Subarray::new(rows, cols);
        let mut x = seed | 1;
        let mut expected = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let level = (x % 16) as u8;
                sa.set_level(r, c, level);
                expected.push(level);
            }
        }
        let mut i = 0;
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(sa.level(r, c), expected[i]);
                i += 1;
            }
        }
    }

    // --- functional memory ----------------------------------------------------------------

    #[test]
    fn memory_roundtrips_arbitrary_writes(
        writes in prop::collection::vec(
            ((0u64..1 << 20), prop::collection::vec(any::<u8>(), 1..200)),
            1..12,
        ),
    ) {
        // Arbitrary overlapping writes through the optical path: the last
        // writer to each byte wins, reads see exactly that.
        let mut mem = CometMemory::new(CometConfig::comet_4b());
        let mut shadow = std::collections::HashMap::<u64, u8>::new();
        for (addr, data) in &writes {
            mem.write(*addr, data);
            for (i, b) in data.iter().enumerate() {
                shadow.insert(addr + i as u64, *b);
            }
        }
        for (addr, data) in &writes {
            let got = mem.read(*addr, data.len());
            for (i, g) in got.iter().enumerate() {
                prop_assert_eq!(*g, shadow[&(addr + i as u64)], "byte at {}", addr + i as u64);
            }
        }
    }

    #[test]
    fn memory_survives_loss_within_budget(
        addr in 0u64..(1 << 16),
        data in prop::collection::vec(any::<u8>(), 1..64),
        loss_centi_db in 0u32..12,
    ) {
        // The paper's 4-bit budget is 0.26 dB = one full 6 % level spacing;
        // nearest-level decode flips at *half* a spacing, so anything below
        // ~0.13 dB must leave data intact.
        let mut mem = CometMemory::new(CometConfig::comet_4b());
        mem.write(addr, &data);
        mem.inject_read_loss(Decibels::new(loss_centi_db as f64 / 100.0));
        prop_assert_eq!(mem.read(addr, data.len()), data);
    }
}
