//! End-to-end readout reliability and retention analysis.
//!
//! The paper argues COMET's 16 levels with 6 % spacing make it *"tolerant
//! to transmission drift"* and sizes its LUT/SOA machinery so residual
//! read-path losses stay inside each bit-density's budget (Section III.C).
//! This module closes the loop quantitatively:
//!
//! * [`ReadoutReliability`] chains the laser power at the cell, the level
//!   spacing of the configured bit density, the row-dependent residual
//!   loss left after LUT gain trimming, and a photodetector noise model
//!   into a per-row **level error probability** — the architecture-level
//!   BER the controller would actually see.
//! * [`DriftModel`] models the slow transmittance drift of
//!   partially-amorphous GST (structural relaxation, the optical analogue
//!   of EPCM resistance drift, strongly attenuated in the optical domain
//!   — the very reason Section I gives for preferring OPCM MLCs) and
//!   derives the **scrub interval**: how often stored levels must be
//!   refreshed before drift consumes half a level spacing.
//!
//! Together they answer the two questions a deployment would ask: *what is
//! my read BER at each row*, and *how long does data retain its level*.

use crate::arch::CometConfig;
use crate::lut::GainLut;
use comet_units::{Power, Time};
use photonic::Photodetector;
use serde::{Deserialize, Serialize};

/// Per-row readout error analysis for a COMET configuration.
///
/// # Examples
///
/// ```
/// use comet::{CometConfig, ReadoutReliability};
///
/// let rel = ReadoutReliability::new(CometConfig::comet_4b());
/// // The worst row of the paper's b=4 configuration still reads reliably:
/// assert!(rel.worst_row_error() < 1e-6);
/// // And deeper rows are never *better* than the LUT-trimmed best row:
/// assert!(rel.row_error(45) >= rel.row_error(0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadoutReliability {
    config: CometConfig,
    lut: GainLut,
    detector: Photodetector,
}

impl ReadoutReliability {
    /// Builds the analysis with the default 10 GHz detector front-end.
    pub fn new(config: CometConfig) -> Self {
        Self::with_detector(config, Photodetector::ge_10ghz())
    }

    /// Builds the analysis with an explicit detector model.
    pub fn with_detector(config: CometConfig, detector: Photodetector) -> Self {
        let lut = GainLut::for_bits(config.bits_per_cell, config.subarray_rows, &config.optical);
        ReadoutReliability {
            config,
            lut,
            detector,
        }
    }

    /// The configuration under analysis.
    pub fn config(&self) -> &CometConfig {
        &self.config
    }

    /// Full-scale optical power reaching the detector from a cell in
    /// `row`, after LUT gain trimming of the residual row losses.
    pub fn received_power(&self, row: u64) -> Power {
        let residual = self.lut.residual_loss(row);
        self.config.optical.max_power_at_cell.attenuate(residual)
    }

    /// Probability that a single read of a cell in `row` decodes to the
    /// wrong level.
    pub fn row_error(&self, row: u64) -> f64 {
        self.detector
            .level_error_probability(self.received_power(row), self.config.bits_per_cell)
    }

    /// The worst per-read level error across all rows of a subarray.
    pub fn worst_row_error(&self) -> f64 {
        (0..self.config.subarray_rows)
            .map(|r| self.row_error(r))
            .fold(0.0, f64::max)
    }

    /// The worst-row *bit* error rate: a level error corrupts up to `b`
    /// bits, so BER ≤ level-error × b / b = level-error (adjacent-level
    /// errors flip one bit under Gray coding; we report the conservative
    /// non-Gray bound of the full level error).
    pub fn worst_case_ber(&self) -> f64 {
        self.worst_row_error()
    }

    /// Mean per-read level error across the subarray rows.
    pub fn mean_row_error(&self) -> f64 {
        let n = self.config.subarray_rows;
        (0..n).map(|r| self.row_error(r)).sum::<f64>() / n as f64
    }
}

/// Structural-relaxation drift of partially amorphous GST transmittance.
///
/// Amorphous GST relaxes logarithmically in time; the optical analogue
/// shifts a stored level's transmittance by
/// `ΔT(t) = δ · a · log10(1 + t/τ)` where `a` is the amorphous fraction of
/// the cell (fully crystalline cells do not drift) and `δ` is the
/// per-decade drift amplitude. Optical readout suppresses drift by more
/// than an order of magnitude versus EPCM resistance readout (the `ν≈0.1`
/// resistance exponent has no optical counterpart) — the default `δ` of
/// 0.4 %/decade reflects that.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftModel {
    /// Transmittance shift per decade of time, at fully amorphous.
    pub delta_per_decade: f64,
    /// Relaxation onset time.
    pub tau: Time,
}

impl Default for DriftModel {
    fn default() -> Self {
        DriftModel {
            delta_per_decade: 0.004,
            tau: Time::from_seconds(1.0),
        }
    }
}

impl DriftModel {
    /// Transmittance shift of a cell at crystalline fraction `p` after
    /// `elapsed` time.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn transmittance_shift(&self, p: f64, elapsed: Time) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "fraction must be in [0,1], got {p}"
        );
        let amorphous = 1.0 - p;
        let decades = (1.0 + elapsed.as_seconds() / self.tau.as_seconds()).log10();
        self.delta_per_decade * amorphous * decades
    }

    /// How long a fully amorphous (worst-case) cell retains its level
    /// before drift consumes `margin` of transmittance.
    pub fn time_to_shift(&self, margin: f64) -> Time {
        assert!(margin > 0.0, "margin must be positive");
        let decades = margin / self.delta_per_decade;
        // Invert ΔT = δ·log10(1 + t/τ).
        Time::from_seconds(self.tau.as_seconds() * (10f64.powf(decades) - 1.0))
    }

    /// The scrub interval for a bit density: time until drift reaches half
    /// a level spacing (the decode flip point) on the worst-case cell.
    ///
    /// # Examples
    ///
    /// ```
    /// use comet::DriftModel;
    ///
    /// let drift = DriftModel::default();
    /// // 4-bit cells (6 % spacing) need scrubbing eventually, but the
    /// // interval is days, not milliseconds — unlike DRAM refresh.
    /// let interval = drift.scrub_interval(4);
    /// assert!(interval.as_seconds() > 3600.0);
    /// ```
    pub fn scrub_interval(&self, bits: u8) -> Time {
        let levels = (1u32 << bits) as f64;
        let spacing = 1.0 / (levels - 1.0);
        self.time_to_shift(spacing / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comet_4b_reads_reliably_at_every_row() {
        let rel = ReadoutReliability::new(CometConfig::comet_4b());
        assert!(
            rel.worst_row_error() < 1e-6,
            "worst row error {}",
            rel.worst_row_error()
        );
    }

    #[test]
    fn fewer_bits_read_more_reliably() {
        let e1 = ReadoutReliability::new(CometConfig::comet_1b()).worst_row_error();
        let e2 = ReadoutReliability::new(CometConfig::comet_2b()).worst_row_error();
        let e4 = ReadoutReliability::new(CometConfig::comet_4b()).worst_row_error();
        assert!(e1 <= e2 && e2 <= e4, "e1={e1} e2={e2} e4={e4}");
    }

    #[test]
    fn residual_loss_rows_are_worse() {
        let rel = ReadoutReliability::new(CometConfig::comet_4b());
        // Row 45 sits deepest in its LUT gain step; row 0 is trimmed flat.
        assert!(rel.received_power(45) <= rel.received_power(0));
        assert!(rel.row_error(45) >= rel.row_error(0));
        // Mean is between the best and worst rows.
        let mean = rel.mean_row_error();
        let min = (0..rel.config().subarray_rows)
            .map(|r| rel.row_error(r))
            .fold(f64::INFINITY, f64::min);
        assert!(mean <= rel.worst_row_error() * (1.0 + 1e-12));
        assert!(mean >= min * (1.0 - 1e-12));
    }

    #[test]
    fn weak_detector_degrades_ber() {
        let strong = ReadoutReliability::new(CometConfig::comet_4b());
        let weak = ReadoutReliability::with_detector(
            CometConfig::comet_4b(),
            Photodetector {
                responsivity: 1.0,
                noise_current: 8e-5,
                bandwidth: 10e9,
            },
        );
        assert!(weak.worst_row_error() > strong.worst_row_error());
    }

    #[test]
    fn drift_is_zero_for_crystalline_cells() {
        let d = DriftModel::default();
        assert_eq!(d.transmittance_shift(1.0, Time::from_seconds(1e9)), 0.0);
        assert!(d.transmittance_shift(0.0, Time::from_seconds(1e3)) > 0.0);
    }

    #[test]
    fn drift_grows_logarithmically() {
        let d = DriftModel::default();
        let s1 = d.transmittance_shift(0.0, Time::from_seconds(10.0));
        let s2 = d.transmittance_shift(0.0, Time::from_seconds(100.0));
        let s3 = d.transmittance_shift(0.0, Time::from_seconds(1000.0));
        assert!(s2 > s1 && s3 > s2);
        // Per-decade increments are nearly constant (log behaviour).
        let d21 = s2 - s1;
        let d32 = s3 - s2;
        assert!((d21 - d32).abs() / d21 < 0.2);
    }

    #[test]
    fn time_to_shift_inverts_shift() {
        let d = DriftModel::default();
        let margin = 0.02;
        let t = d.time_to_shift(margin);
        let shift = d.transmittance_shift(0.0, t);
        assert!((shift - margin).abs() < 1e-9);
    }

    #[test]
    fn scrub_intervals_shrink_with_bit_density() {
        let d = DriftModel::default();
        let s1 = d.scrub_interval(1);
        let s2 = d.scrub_interval(2);
        let s4 = d.scrub_interval(4);
        assert!(s1 > s2 && s2 > s4);
        // The paper's design point: 4-bit cells retain for hours-to-days,
        // a world apart from DRAM's 64 ms refresh.
        assert!(s4.as_seconds() > 3600.0, "scrub interval {s4}");
    }

    #[test]
    fn five_bit_cells_would_need_much_more_frequent_scrubbing() {
        // The [17]-demonstrated 5 bits/cell: spacing halves, so the margin
        // is consumed 10^(margin-gap/delta) times sooner — quantifying why
        // the paper stops at b=4 "to keep ... tolerant to transmission
        // drift".
        let d = DriftModel::default();
        let s4 = d.scrub_interval(4);
        let s5 = d.scrub_interval(5);
        assert!(s4.as_seconds() / s5.as_seconds() > 50.0);
    }
}
