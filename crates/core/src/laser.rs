//! Run-time laser power management (the paper's Section IV.C future work).
//!
//! Fig. 8 shows laser (and SOA) power dominating the COMET stack, and the
//! paper observes that *"enabling dynamic laser power management, such as
//! that discussed in \[43], could significantly improve photonic memory
//! energy consumption"*. This module implements that extension: a
//! windowed, demand-driven power manager in the electrical interface that
//! throttles the off-chip comb laser and the active SOA stages when the
//! recent access rate does not justify full illumination.
//!
//! # Model
//!
//! Time is divided into fixed management windows. At each window boundary
//! the controller picks a power state from the *previous* window's access
//! count (the same one-window-history predictor \[43] uses for its SOA
//! gating):
//!
//! * **Active** — the full Fig. 7 stack (laser + SOA + tuning + interface).
//! * **Idle** — the laser throttles to a locking floor (comb lines must
//!   stay wavelength-locked, so it cannot switch off entirely), SOAs are
//!   gated off, and only the interface remains up.
//!
//! A window with zero accesses demotes the next window to Idle; any access
//! promotes the next window to Active. An access arriving *during* an Idle
//! window pays a wake-up latency (SOA carrier settling + laser ramp) and
//! immediately promotes the remainder of the window.
//!
//! The manager is deterministic and causal: it only uses information
//! available at each window boundary, so mispredictions show up as real
//! wake-up stalls — the throughput cost Fig. `ablations` quantifies
//! against the energy saved.

use comet_units::{Energy, Power, Time};
use serde::{Deserialize, Serialize};

/// Laser management policy for [`CometDevice`](crate::CometDevice).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LaserPolicy {
    /// The paper's baseline: the full power stack burns for the whole run.
    #[default]
    Static,
    /// Windowed demand gating (the \[43]-style extension).
    Windowed(WindowedPolicy),
}

/// Parameters of the windowed laser manager.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowedPolicy {
    /// Management window length.
    pub window: Time,
    /// Fraction of the full laser power kept in Idle state to hold the
    /// comb lines locked (`0.0..=1.0`).
    pub idle_laser_fraction: f64,
    /// Latency paid by the first access that hits an Idle window.
    pub wake_latency: Time,
}

impl WindowedPolicy {
    /// A defensible default: 1 µs windows, 10 % locking floor, 50 ns wake.
    pub fn default_1us() -> Self {
        WindowedPolicy {
            window: Time::from_micros(1.0),
            idle_laser_fraction: 0.10,
            wake_latency: Time::from_nanos(50.0),
        }
    }

    /// An aggressive variant: 200 ns windows, 5 % floor, 100 ns wake.
    pub fn aggressive() -> Self {
        WindowedPolicy {
            window: Time::from_nanos(200.0),
            idle_laser_fraction: 0.05,
            wake_latency: Time::from_nanos(100.0),
        }
    }
}

/// The power-state ledger driven by access timestamps.
///
/// Owned by [`CometDevice`](crate::CometDevice) when a windowed policy is
/// configured; can also be driven standalone for unit analysis.
///
/// # Examples
///
/// ```
/// use comet::{LaserPowerManager, WindowedPolicy};
/// use comet_units::{Power, Time};
///
/// let mut mgr = LaserPowerManager::new(
///     WindowedPolicy::default_1us(),
///     Power::from_watts(20.0), // gateable (laser + SOA)
///     Power::from_watts(1.0),  // always-on (interface)
/// );
/// // A burst at t=0, then silence: later windows run idle.
/// let stall = mgr.on_access(Time::ZERO);
/// assert_eq!(stall, Time::ZERO); // manager boots Active
/// let energy = mgr.finish(Time::from_micros(10.0));
/// let full = Power::from_watts(21.0) * Time::from_micros(10.0);
/// assert!(energy.as_joules() < 0.5 * full.as_joules());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaserPowerManager {
    policy: WindowedPolicy,
    /// Power that the manager may gate (laser + active SOAs).
    gateable: Power,
    /// Power that stays on in every state (electrical interface, tuning).
    always_on: Power,
    /// Start of the window currently being accounted.
    window_start: Time,
    /// Whether the current window started (or was promoted to) Active.
    active: bool,
    /// Accesses observed in the current window.
    accesses_this_window: u64,
    /// Energy accounted so far.
    energy: Energy,
    /// Wake-ups incurred (for reporting).
    wakeups: u64,
}

impl LaserPowerManager {
    /// Creates a manager starting Active at `t = 0`.
    pub fn new(policy: WindowedPolicy, gateable: Power, always_on: Power) -> Self {
        LaserPowerManager {
            policy,
            gateable,
            always_on,
            window_start: Time::ZERO,
            active: true,
            accesses_this_window: 0,
            energy: Energy::ZERO,
            wakeups: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &WindowedPolicy {
        &self.policy
    }

    /// Wake-ups incurred so far.
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }

    fn state_power(&self, active: bool) -> Power {
        if active {
            self.gateable + self.always_on
        } else {
            self.gateable * self.policy.idle_laser_fraction + self.always_on
        }
    }

    /// Advances window accounting up to `now` (charging each completed
    /// window at its decided state and re-deciding at each boundary).
    fn advance_to(&mut self, now: Time) {
        let w = self.policy.window;
        while self.window_start + w <= now {
            let end = self.window_start + w;
            self.energy += self.state_power(self.active) * w;
            // Boundary decision: demand in the window just closed.
            self.active = self.accesses_this_window > 0;
            self.accesses_this_window = 0;
            self.window_start = end;
        }
    }

    /// Records an access at time `at`; returns the wake-up stall the access
    /// suffers (zero when the laser is already Active).
    pub fn on_access(&mut self, at: Time) -> Time {
        let at = at.max(self.window_start);
        self.advance_to(at);
        self.accesses_this_window += 1;
        if self.active {
            Time::ZERO
        } else {
            // Promote the remainder of this window: charge the idle tail
            // consumed so far at idle power, then flip to Active from here.
            let idle_span = at - self.window_start;
            self.energy += self.state_power(false) * idle_span;
            // Restart the window clock at the promotion point so the
            // remainder is charged Active without double-counting.
            self.window_start = at;
            self.active = true;
            self.wakeups += 1;
            self.policy.wake_latency
        }
    }

    /// Closes accounting at `end` and returns the total managed energy.
    /// Energy/window accounting resets to the boot state afterwards (so a
    /// reused device does not double-charge); the wake-up counter is a
    /// lifetime statistic and survives.
    pub fn finish(&mut self, end: Time) -> Energy {
        self.advance_to(end);
        // Charge the partial tail window at its current state.
        if end > self.window_start {
            self.energy += self.state_power(self.active) * (end - self.window_start);
        }
        let total = self.energy;
        let wakeups = self.wakeups;
        *self = LaserPowerManager::new(self.policy, self.gateable, self.always_on);
        self.wakeups = wakeups;
        total
    }

    /// Peak (Active) power of the managed stack.
    pub fn active_power(&self) -> Power {
        self.state_power(true)
    }

    /// Idle-state power of the managed stack.
    pub fn idle_power(&self) -> Power {
        self.state_power(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr(window_ns: f64) -> LaserPowerManager {
        LaserPowerManager::new(
            WindowedPolicy {
                window: Time::from_nanos(window_ns),
                idle_laser_fraction: 0.10,
                wake_latency: Time::from_nanos(50.0),
            },
            Power::from_watts(20.0),
            Power::from_watts(1.0),
        )
    }

    #[test]
    fn fully_idle_run_costs_near_idle_power() {
        let mut m = mgr(1000.0);
        // No accesses at all: first window Active (boot), rest Idle.
        let e = m.finish(Time::from_micros(100.0));
        let idle = m.idle_power() * Time::from_micros(99.0);
        let boot = m.active_power() * Time::from_micros(1.0);
        assert!((e.as_joules() - (idle + boot).as_joules()).abs() < 1e-12);
    }

    #[test]
    fn saturated_run_costs_full_power() {
        let mut m = mgr(1000.0);
        for k in 0..1000 {
            let stall = m.on_access(Time::from_nanos(k as f64 * 100.0));
            assert_eq!(stall, Time::ZERO, "no wake-ups under steady demand");
        }
        let e = m.finish(Time::from_micros(100.0));
        let full = m.active_power() * Time::from_micros(100.0);
        assert!((e.as_joules() - full.as_joules()).abs() < 1e-12);
    }

    #[test]
    fn burst_after_idle_pays_wake_latency() {
        let mut m = mgr(1000.0);
        let _ = m.on_access(Time::ZERO);
        // Silence for 10 windows, then a burst: the burst access must stall.
        let stall = m.on_access(Time::from_micros(10.5));
        assert_eq!(stall, Time::from_nanos(50.0));
        assert_eq!(m.wakeups(), 1);
        // Follow-up accesses in the promoted window run stall-free.
        assert_eq!(m.on_access(Time::from_micros(10.6)), Time::ZERO);
    }

    #[test]
    fn energy_between_idle_and_active_bounds() {
        let mut m = mgr(500.0);
        // Sparse traffic: one access every 5 us.
        for k in 0..20 {
            let _ = m.on_access(Time::from_micros(k as f64 * 5.0));
        }
        let end = Time::from_micros(100.0);
        let e = m.finish(end);
        let min = m.idle_power() * end;
        let max = m.active_power() * end;
        assert!(e > min, "above the idle floor");
        assert!(e < max, "below the static stack");
        // Sparse demand should land much closer to idle than to active.
        let midpoint = (min + max) / 2.0;
        assert!(e < midpoint, "sparse traffic should save > half the gap");
    }

    #[test]
    fn accounting_is_insensitive_to_probe_order() {
        // Two managers seeing the same access set, one with a redundant
        // advance in between (as bank_available probes would cause).
        let mut a = mgr(1000.0);
        let mut b = mgr(1000.0);
        let times = [0.0, 300.0, 2500.0, 2600.0, 9000.0];
        for &t in &times {
            let _ = a.on_access(Time::from_nanos(t));
        }
        for &t in &times {
            let _ = b.on_access(Time::from_nanos(t));
        }
        let ea = a.finish(Time::from_micros(20.0));
        let eb = b.finish(Time::from_micros(20.0));
        assert_eq!(ea, eb);
    }

    #[test]
    fn finish_resets_accounting_but_keeps_wakeups() {
        let mut m = mgr(1000.0);
        let _ = m.on_access(Time::from_nanos(100.0));
        let _ = m.on_access(Time::from_micros(20.0)); // one wake-up
        assert_eq!(m.wakeups(), 1);
        let first = m.finish(Time::from_micros(30.0));
        assert!(first.as_joules() > 0.0);
        assert_eq!(m.wakeups(), 1, "wake-up count is a lifetime statistic");
        let second = m.finish(Time::from_micros(30.0));
        // Same span, no accesses: boot window active, rest idle — cheaper.
        assert!(second < first);
    }

    #[test]
    fn out_of_order_probe_does_not_panic() {
        // The engine may probe with an `at` before the current window
        // start after a promotion; the manager clamps.
        let mut m = mgr(1000.0);
        let _ = m.on_access(Time::from_micros(10.0));
        let stall = m.on_access(Time::from_micros(9.0));
        assert_eq!(stall, Time::ZERO);
    }
}
