//! COMET architecture configuration (Section III.C / IV.A).
//!
//! COMET is a multi-bank OPCM memory: `B` banks accessed in parallel over
//! MDM modes, each bank holding `S_r` subarrays of `M_r × M_c` cells at
//! `b` bits per cell, for a capacity of `B × S_r × M_r × M_c × b` bits.
//! With the SOA-based loss mitigation strategy the paper sets `M_c = N_c`
//! (one wavelength per column, `S_c = 1`), and subarrays are laid out in a
//! `√S_r × √S_r` grid for addressing.

use crate::timing::CometTiming;
use comet_units::{BitCount, ByteCount};
use photonic::{CellModelMode, CellOpticalModel, LevelBudget, OpticalParams, WdmMdmLink};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from configuration validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A dimension must be a nonzero power of two for addressing.
    NotPowerOfTwo {
        /// Dimension name.
        dimension: &'static str,
        /// Offending value.
        value: u64,
    },
    /// The subarray grid needs a square subarray count (`√S_r` integral).
    SubarrayGridNotSquare {
        /// The subarray count.
        subarrays: u64,
    },
    /// The MDM degree is beyond the practical bound of 4.
    ImpracticalMdmDegree {
        /// Requested banks/modes.
        banks: u64,
    },
    /// The read-out loss between SOA stages exceeds the level budget for
    /// this bit density.
    LossBudgetExceeded {
        /// Bits per cell requested.
        bits: u8,
        /// Inter-stage loss, dB.
        stage_loss_db: f64,
        /// Tolerable loss, dB.
        budget_db: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { dimension, value } => {
                write!(f, "{dimension} must be a nonzero power of two, got {value}")
            }
            ConfigError::SubarrayGridNotSquare { subarrays } => {
                write!(f, "subarray count {subarrays} is not a perfect square")
            }
            ConfigError::ImpracticalMdmDegree { banks } => {
                write!(f, "MDM degree {banks} exceeds the practical bound of 4")
            }
            ConfigError::LossBudgetExceeded {
                bits,
                stage_loss_db,
                budget_db,
            } => write!(
                f,
                "inter-SOA loss {stage_loss_db:.2} dB exceeds the {budget_db:.2} dB budget \
                 of {bits}-bit read-outs"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A COMET memory configuration.
///
/// # Examples
///
/// ```
/// use comet::CometConfig;
///
/// let cfg = CometConfig::comet_4b();
/// cfg.validate()?;
/// // (B × S_r × M_r × M_c × b) = 4 × 4096 × 512 × 256 × 4 = 2^33 bits.
/// assert_eq!(cfg.capacity_bits().value(), 1 << 33);
/// assert_eq!(cfg.wavelengths(), 256);
/// # Ok::<(), comet::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CometConfig {
    /// Banks `B` (= MDM degree).
    pub banks: u64,
    /// Subarrays per bank `S_r`.
    pub subarrays: u64,
    /// Rows per subarray `M_r`.
    pub subarray_rows: u64,
    /// Columns per subarray `M_c` (= wavelengths `N_c`; `S_c = 1`).
    pub subarray_cols: u64,
    /// Bits per cell `b`.
    pub bits_per_cell: u8,
    /// Subarray striping ways: consecutive controller rows are spread over
    /// this many subarrays so streaming writes program in parallel (their
    /// pulses occupy whole subarrays). `1` reproduces the paper's literal
    /// block mapping (Eq. 2 over linear row IDs); the default of 64 matches
    /// the device's open-switch window so streams never thrash switches,
    /// and keeps row strides up to the stripe width spread over multiple
    /// subarrays (a stride of `s` rows still touches `stripe / gcd(stripe,
    /// s)` subarrays, so only strides that are multiples of the full stripe
    /// serialize their programming pulses).
    pub subarray_stripe: u64,
    /// Cache-line size delivered per access.
    pub cache_line: ByteCount,
    /// Optical constants (Table I).
    pub optical: OpticalParams,
    /// Architectural timing (Table II).
    pub timing: CometTiming,
    /// Where the cell's transmission levels come from: the paper's
    /// transcribed constants (the evaluation default, so published figures
    /// reproduce exactly) or the physics-derived model.
    pub cell_model: CellModelMode,
}

impl CometConfig {
    /// The paper's COMET-1b configuration: `4 × 4096 × 512 × 1024 × 1`.
    pub fn comet_1b() -> Self {
        Self::with_bits(1, 1024)
    }

    /// The paper's COMET-2b configuration: `4 × 4096 × 512 × 512 × 2`.
    pub fn comet_2b() -> Self {
        Self::with_bits(2, 512)
    }

    /// The paper's COMET-4b configuration (the one evaluated against the
    /// baselines): `4 × 4096 × 512 × 256 × 4`.
    pub fn comet_4b() -> Self {
        Self::with_bits(4, 256)
    }

    fn with_bits(bits: u8, cols: u64) -> Self {
        CometConfig {
            banks: 4,
            subarrays: 4096,
            subarray_rows: 512,
            subarray_cols: cols,
            bits_per_cell: bits,
            subarray_stripe: 64,
            cache_line: ByteCount::new(128),
            optical: OpticalParams::table_i(),
            timing: CometTiming::table_ii(),
            cell_model: CellModelMode::Paper,
        }
    }

    /// The same configuration with a different cell-model provider —
    /// `comet-lab` campaigns use this to sweep derived-vs-paper.
    pub fn with_cell_model(mut self, mode: CellModelMode) -> Self {
        self.cell_model = mode;
        self
    }

    /// Resolves the configured cell model to its provider.
    pub fn cell_optics(&self) -> Box<dyn CellOpticalModel + Send + Sync> {
        self.cell_model.model()
    }

    /// All three bit-density variants (Fig. 7).
    pub fn bit_density_sweep() -> Vec<CometConfig> {
        vec![Self::comet_1b(), Self::comet_2b(), Self::comet_4b()]
    }

    /// Total capacity in bits: `B × S_r × M_r × M_c × b`.
    pub fn capacity_bits(&self) -> BitCount {
        BitCount::new(
            self.banks
                * self.subarrays
                * self.subarray_rows
                * self.subarray_cols
                * self.bits_per_cell as u64,
        )
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> ByteCount {
        self.capacity_bits().to_bytes_ceil()
    }

    /// WDM wavelengths required (`N_c = M_c`).
    pub fn wavelengths(&self) -> u64 {
        self.subarray_cols
    }

    /// Side of the `√S_r × √S_r` subarray grid.
    pub fn subarray_grid_side(&self) -> u64 {
        (self.subarrays as f64).sqrt().round() as u64
    }

    /// Cells per cache line (`line_bits / b`).
    pub fn cells_per_line(&self) -> u64 {
        self.cache_line.to_bits().value() / self.bits_per_cell as u64
    }

    /// Rows a signal traverses between SOA re-amplification stages
    /// (the paper's 46 with Table I losses).
    pub fn rows_per_soa_stage(&self) -> u64 {
        self.optical.rows_per_soa_stage() as u64
    }

    /// Total intra-subarray SOA count: `B·N_r·N_c / stage`.
    pub fn total_soa_count(&self) -> u64 {
        let n_r = self.subarrays * self.subarray_rows;
        self.banks * n_r * self.subarray_cols / self.rows_per_soa_stage()
    }

    /// SOAs powered during an access (active subarray only):
    /// `B·M_r·M_c / stage`.
    pub fn active_soa_count(&self) -> u64 {
        self.banks * self.subarray_rows * self.subarray_cols / self.rows_per_soa_stage()
    }

    /// The WDM×MDM link feeding the banks.
    pub fn link(&self) -> WdmMdmLink {
        WdmMdmLink::new(
            self.wavelengths() as usize,
            self.banks as usize,
            self.timing.modulation(),
        )
    }

    /// The idealized (full-scale) read-out level budget for this bit
    /// density — the paper's Section III.C numbers.
    pub fn level_budget(&self) -> LevelBudget {
        LevelBudget::for_bits(self.bits_per_cell)
    }

    /// The read-out level budget over the configured cell model's *actual*
    /// transmission range (paper constants or physics-derived).
    pub fn cell_level_budget(&self) -> LevelBudget {
        LevelBudget::for_cell(self.bits_per_cell, self.cell_optics().as_ref())
    }

    /// Validates dimensional and optical feasibility.
    ///
    /// # Errors
    ///
    /// See [`ConfigError`] for the conditions checked: power-of-two
    /// dimensions, square subarray grid, practical MDM degree, and the
    /// SOA-stage loss fitting the bit-density budget.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let dims = [
            ("banks", self.banks),
            ("subarrays", self.subarrays),
            ("subarray_rows", self.subarray_rows),
            ("subarray_cols", self.subarray_cols),
            ("subarray_stripe", self.subarray_stripe),
            ("cache_line", self.cache_line.value()),
        ];
        for (name, value) in dims {
            if value == 0 || !value.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo {
                    dimension: name,
                    value,
                });
            }
        }
        let side = self.subarray_grid_side();
        if side * side != self.subarrays {
            return Err(ConfigError::SubarrayGridNotSquare {
                subarrays: self.subarrays,
            });
        }
        if self.banks > 4 {
            return Err(ConfigError::ImpracticalMdmDegree { banks: self.banks });
        }
        // Between SOA stages the signal crosses up to `stage` rows of
        // EO-tuned-MR through loss; each stage restores the level, so the
        // *residual* loss a read-out carries is the distance to the nearest
        // stage — at most one stage of loss must stay decodable after the
        // LUT gain trim, which compensates in steps (see `GainLut`). The
        // feasibility requirement is that one LUT gain step stays within
        // the paper's per-bit-density loss tolerance.
        let budget = crate::lut::paper_loss_tolerance(self.bits_per_cell);
        let step_rows = crate::lut::GainLut::step_rows(self.bits_per_cell, &self.optical);
        let step_loss = self.optical.eo_mr_through_loss * step_rows as f64;
        // The paper rounds the step up to a whole row, so allow one row of
        // slack beyond the nominal budget.
        let slack = self.optical.eo_mr_through_loss;
        if step_loss.value() > budget.value() + slack.value() + 1e-9 {
            return Err(ConfigError::LossBudgetExceeded {
                bits: self.bits_per_cell,
                stage_loss_db: step_loss.value(),
                budget_db: budget.value(),
            });
        }
        Ok(())
    }
}

impl Default for CometConfig {
    fn default() -> Self {
        Self::comet_4b()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations_are_valid() {
        for cfg in CometConfig::bit_density_sweep() {
            cfg.validate().expect("paper config must validate");
        }
    }

    #[test]
    fn all_variants_have_equal_capacity() {
        // The paper trades M_c against b to keep 2^33 bits in all variants.
        let caps: Vec<u64> = CometConfig::bit_density_sweep()
            .iter()
            .map(|c| c.capacity_bits().value())
            .collect();
        assert_eq!(caps, vec![1 << 33, 1 << 33, 1 << 33]);
    }

    #[test]
    fn wavelength_counts_follow_bit_density() {
        assert_eq!(CometConfig::comet_1b().wavelengths(), 1024);
        assert_eq!(CometConfig::comet_2b().wavelengths(), 512);
        assert_eq!(CometConfig::comet_4b().wavelengths(), 256);
    }

    #[test]
    fn soa_counts_match_paper_formulas() {
        let cfg = CometConfig::comet_4b();
        assert_eq!(cfg.rows_per_soa_stage(), 46);
        // B*N_r*N_c/46 with N_r = 4096*512, N_c = 256.
        let expect_total = 4 * (4096 * 512) * 256 / 46;
        assert_eq!(cfg.total_soa_count(), expect_total);
        // Active: B*M_r*M_c/46.
        assert_eq!(cfg.active_soa_count(), 4 * 512 * 256 / 46);
    }

    #[test]
    fn subarray_grid_is_64x64() {
        assert_eq!(CometConfig::comet_4b().subarray_grid_side(), 64);
    }

    #[test]
    fn cells_per_line() {
        // 128 B line = 1024 bits over 4-bit cells = 256 cells (= M_c!).
        let cfg = CometConfig::comet_4b();
        assert_eq!(cfg.cells_per_line(), 256);
        assert_eq!(cfg.cells_per_line(), cfg.subarray_cols);
    }

    #[test]
    fn rejects_bad_dimensions() {
        let mut cfg = CometConfig::comet_4b();
        cfg.subarray_cols = 300;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::NotPowerOfTwo { .. })
        ));

        let mut cfg = CometConfig::comet_4b();
        cfg.subarrays = 2048; // power of two but not a perfect square
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::SubarrayGridNotSquare { .. })
        ));

        let mut cfg = CometConfig::comet_4b();
        cfg.banks = 16;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::ImpracticalMdmDegree { .. })
        ));
    }

    #[test]
    fn link_shape() {
        let link = CometConfig::comet_4b().link();
        assert_eq!(link.wavelengths, 256);
        assert_eq!(link.modes, 4);
        assert!(link.is_practical_mdm());
    }
}
