//! The loss-aware SOA gain-tuning look-up table (Sections III.C, IV.A).
//!
//! A read-out launched from row `r` of a subarray passes a different number
//! of EO-tuned MR through-losses (0.33 dB each) before reaching the next
//! SOA stage (placed every 46 rows). The electrical interface compensates
//! with row-dependent SOA gain, looked up from a LUT indexed by the row's
//! residual distance; the LUT granularity depends on the bit density —
//! higher `b` tolerates less loss, so gains must step more often:
//!
//! * `b=1`: tolerance 3.01 dB ⇒ a gain step every ⌈3.01/0.33⌉ = 10 rows;
//!   52 entries over M_r = 512, only 5 distinct values per 46-row period;
//! * `b=2`: tolerance 1.2 dB ⇒ a step every 4 rows, 12 distinct values;
//! * `b=4`: tolerance 0.26 dB ⇒ a step every row, 46 distinct values.

use comet_units::Decibels;
use photonic::{CellOpticalModel, LevelBudget, OpticalParams};
use serde::{Deserialize, Serialize};

/// The paper's read-out loss tolerance for `bits` per cell: a signal may
/// lose a fraction `2^-b` of full scale before adjacent levels merge —
/// 50 % (3.01 dB) at b=1, 25 % (1.2 dB) at b=2, 6 % (0.26 dB) at b=4
/// (Section III.C).
pub fn paper_loss_tolerance(bits: u8) -> Decibels {
    assert!((1..=8).contains(&bits), "bits must be in 1..=8");
    Decibels::from_linear(1.0 - 0.5f64.powi(bits as i32))
}

/// The per-row SOA gain schedule for one bit density.
///
/// # Examples
///
/// ```
/// use comet::GainLut;
/// use photonic::OpticalParams;
///
/// let params = OpticalParams::table_i();
/// let lut = GainLut::for_bits(4, 512, &params);
/// assert_eq!(lut.distinct_entries(), 46);   // paper: 46 entries for b=4
/// // Row 10 of a 46-row SOA period needs 10 rows of through-loss back:
/// assert!((lut.gain_for_row(10).value() - 3.3).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GainLut {
    bits: u8,
    subarray_rows: u64,
    soa_period: u64,
    step_rows: u64,
    through_loss: Decibels,
    /// Gain per distinct entry, indexed by `ceil((row % period)/step)`.
    entries: Vec<Decibels>,
}

impl GainLut {
    /// The gain-step granularity in rows for a bit density: how many rows
    /// of EO-MR through loss fit into the read-out loss budget (rounded up
    /// to at least one row, matching the paper's entry counts: steps of
    /// 10, 4 and 1 rows for b = 1, 2, 4).
    pub fn step_rows(bits: u8, params: &OpticalParams) -> u64 {
        Self::step_rows_for_tolerance(paper_loss_tolerance(bits), params)
    }

    /// Gain-step granularity for an explicit loss tolerance.
    fn step_rows_for_tolerance(budget: Decibels, params: &OpticalParams) -> u64 {
        let rows = budget.value() / params.eo_mr_through_loss.value();
        (rows.ceil() as u64).max(1)
    }

    /// Builds the LUT for `bits` per cell and `subarray_rows` rows, with
    /// the loss tolerance from the paper's Section III.C expressions.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 8` and `subarray_rows > 0`.
    pub fn for_bits(bits: u8, subarray_rows: u64, params: &OpticalParams) -> Self {
        Self::with_tolerance(bits, subarray_rows, params, paper_loss_tolerance(bits))
    }

    /// Builds the LUT with the loss tolerance of a circuit-layer cell
    /// model's *actual* level spacing — the cross-layer variant: a
    /// physics-derived cell with slightly different level spacing shifts
    /// the gain-step granularity, and with it the LUT size.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 6` and `subarray_rows > 0`.
    pub fn for_cell(
        model: &dyn CellOpticalModel,
        bits: u8,
        subarray_rows: u64,
        params: &OpticalParams,
    ) -> Self {
        let budget = LevelBudget::for_cell(bits, model);
        Self::with_tolerance(bits, subarray_rows, params, budget.loss_tolerance)
    }

    fn with_tolerance(
        bits: u8,
        subarray_rows: u64,
        params: &OpticalParams,
        tolerance: Decibels,
    ) -> Self {
        assert!((1..=8).contains(&bits), "bits must be in 1..=8");
        assert!(subarray_rows > 0, "need at least one row");
        let soa_period = params.rows_per_soa_stage() as u64;
        let step_rows = Self::step_rows_for_tolerance(tolerance, params);
        let distinct = soa_period.div_ceil(step_rows);
        let entries = (0..=distinct)
            .map(|i| params.eo_mr_through_loss * (i * step_rows) as f64)
            .collect();
        GainLut {
            bits,
            subarray_rows,
            soa_period,
            step_rows,
            through_loss: params.eo_mr_through_loss,
            entries,
        }
    }

    /// Bits per cell this LUT serves.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Rows between gain steps.
    pub fn step(&self) -> u64 {
        self.step_rows
    }

    /// Total entries if one were stored per gain step across the whole
    /// subarray (`⌈M_r / step⌉` — the figure the paper quotes for b=1: 52).
    pub fn total_entries(&self) -> u64 {
        self.subarray_rows.div_ceil(self.step_rows)
    }

    /// Distinct gain values per SOA period (`⌈46 / step⌉` — the figures the
    /// paper quotes for b=2 (12) and b=4 (46)).
    pub fn distinct_entries(&self) -> u64 {
        self.soa_period.div_ceil(self.step_rows)
    }

    /// The LUT index used for a row: `ceil((row % period) / step)` —
    /// the paper's selection expression.
    pub fn index_for_row(&self, row: u64) -> usize {
        let residual = row % self.soa_period;
        residual.div_ceil(self.step_rows) as usize
    }

    /// The SOA trim gain applied to a read-out launched from `row`.
    pub fn gain_for_row(&self, row: u64) -> Decibels {
        self.entries[self.index_for_row(row)]
    }

    /// The *uncompensated* residual loss after applying the LUT gain —
    /// bounded by one gain step, which the level budget must absorb.
    pub fn residual_loss(&self, row: u64) -> Decibels {
        let actual = self.through_loss * (row % self.soa_period) as f64;
        let compensated = self.gain_for_row(row);
        // Gain is rounded *up* to the next step, so the residual is the
        // overshoot (negative loss = slight overdrive), bounded by a step.
        compensated - actual
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OpticalParams {
        OpticalParams::table_i()
    }

    #[test]
    fn paper_entry_counts() {
        let p = params();
        let b1 = GainLut::for_bits(1, 512, &p);
        assert_eq!(b1.step(), 10, "b=1 steps every 10 rows");
        assert_eq!(b1.total_entries(), 52, "paper: 52 entries for b=1");
        assert_eq!(b1.distinct_entries(), 5, "paper: 5 distinct parameters");

        let b2 = GainLut::for_bits(2, 512, &p);
        assert_eq!(b2.step(), 4);
        assert_eq!(b2.distinct_entries(), 12, "paper: 12 entries for b=2");

        let b4 = GainLut::for_bits(4, 512, &p);
        assert_eq!(b4.step(), 1);
        assert_eq!(b4.distinct_entries(), 46, "paper: 46 entries for b=4");
    }

    #[test]
    fn cell_model_luts_stay_close_to_the_paper_granularity() {
        use photonic::{CellModelMode, DerivedCellModel, PaperCellModel};
        let p = params();
        for bits in [1u8, 2, 4] {
            let paper_lut = GainLut::for_cell(&PaperCellModel::paper_constants(), bits, 512, &p);
            let derived_lut = GainLut::for_cell(&DerivedCellModel::comet_gst(), bits, 512, &p);
            let table_lut = GainLut::for_bits(bits, 512, &p);
            // Real-cell tolerances are slightly tighter than the paper's
            // full-scale expressions, so steps shrink by at most one notch.
            for lut in [&paper_lut, &derived_lut] {
                assert!(lut.step() <= table_lut.step(), "b={bits}");
                assert!(lut.step() + 2 >= table_lut.step(), "b={bits}");
            }
        }
        // b=4 keeps the per-row schedule (46 distinct entries) under every
        // provider — the paper's headline LUT size is physics-robust.
        for mode in CellModelMode::ALL {
            let lut = GainLut::for_cell(mode.model().as_ref(), 4, 512, &p);
            assert_eq!(lut.distinct_entries(), 46, "{mode}");
        }
    }

    #[test]
    fn gain_is_monotone_within_period_and_wraps() {
        let lut = GainLut::for_bits(4, 512, &params());
        let mut last = Decibels::new(-1.0);
        for row in 0..46 {
            let g = lut.gain_for_row(row);
            assert!(g >= last, "gain not monotone at row {row}");
            last = g;
        }
        // After an SOA stage the schedule restarts.
        assert_eq!(lut.gain_for_row(46), lut.gain_for_row(0));
        assert_eq!(lut.gain_for_row(47), lut.gain_for_row(1));
    }

    #[test]
    fn residual_loss_bounded_by_one_step() {
        for bits in [1, 2, 4] {
            let p = params();
            let lut = GainLut::for_bits(bits, 512, &p);
            let bound = p.eo_mr_through_loss.value() * lut.step() as f64 + 1e-9;
            for row in 0..512 {
                let r = lut.residual_loss(row).value().abs();
                assert!(r <= bound, "b={bits} row {row}: residual {r} > {bound}");
            }
        }
    }

    #[test]
    fn b4_compensates_exactly() {
        // With a step of one row the gain matches the loss exactly.
        let lut = GainLut::for_bits(4, 512, &params());
        for row in 0..46 {
            assert!(lut.residual_loss(row).value().abs() < 1e-12, "row {row}");
        }
    }

    #[test]
    fn index_expression_matches_paper() {
        // b=2: gain chosen per ceil((rowID % 46)/4)-th entry.
        let lut = GainLut::for_bits(2, 512, &params());
        assert_eq!(lut.index_for_row(0), 0);
        assert_eq!(lut.index_for_row(1), 1);
        assert_eq!(lut.index_for_row(4), 1);
        assert_eq!(lut.index_for_row(5), 2);
        assert_eq!(lut.index_for_row(45), 12);
        assert_eq!(lut.index_for_row(46), 0);
    }
}
