//! COMET — a cross-layer optimized optical phase-change main memory.
//!
//! Reproduction of the DATE 2024 paper's primary contribution: a
//! multi-bank, WDM×MDM-multiplexed main memory whose cells are GST patches
//! on SOI waveguides with microring access gating, GST-switch subarray
//! selection, SOA-based loss recovery, LUT-driven gain trimming, and the
//! Eq. (1)–(6) address mapping.
//!
//! Layer map (each backed by its own module):
//!
//! * [`CometConfig`] — the `B × S_r × M_r × M_c × b` architecture and its
//!   validation (Section III.C / IV.A), carrying a
//!   [`photonic::CellModelMode`] that selects between the paper's
//!   transcribed cell constants and the physics-derived cell model for
//!   every codec/LUT/power computation below;
//! * [`CometTiming`] — Table II timing, derivable from the physics layer;
//! * [`AddressMapper`] — Eqs. (1)–(6);
//! * [`GainLut`] — loss-aware SOA gain trimming (52/12/46-entry LUTs);
//! * [`CometPowerModel`] / [`PowerStack`] — the Fig. 7/8 power stacks;
//! * [`CometDevice`] — a [`memsim::MemoryDevice`] for trace-driven
//!   evaluation (Fig. 9);
//! * [`LaserPolicy`] / [`LaserPowerManager`] — run-time laser power
//!   management (the Section IV.C future-work extension, after \[43]);
//! * [`CometMemory`] — a functional byte-addressable memory over MLC
//!   subarrays with the lossy optical read path;
//! * [`LevelCodec`], [`encode_bytes`]/[`decode_levels`], [`Subarray`] —
//!   the functional cell primitives shared with the COSMOS baseline.
//!
//! # Quick start
//!
//! ```
//! use comet::{CometConfig, CometMemory, CometPowerModel};
//!
//! let config = CometConfig::comet_4b();
//! config.validate()?;
//!
//! // Store and retrieve data through the optical read path:
//! let mut mem = CometMemory::new(config.clone());
//! mem.write(0, b"COMET");
//! assert_eq!(mem.read(0, 5), b"COMET");
//!
//! // And inspect the power stack the architecture costs:
//! let stack = CometPowerModel::new(config).stack();
//! println!("{stack}");
//! # Ok::<(), comet::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arch;
mod cell;
mod device;
mod ecc;
mod endurance;
mod laser;
mod lut;
mod mapping;
mod memory;
mod power;
mod reliability;
mod timing;

pub use arch::{CometConfig, ConfigError};
pub use cell::{decode_levels, encode_bytes, LevelCodec, Subarray};
pub use device::{CometDevice, PulseEnergies};
pub use ecc::{bitplane_deinterleave, bitplane_interleave, Correction, DoubleError, Secded};
pub use endurance::{EnduranceModel, StartGapRemapper, WearTracker};
pub use laser::{LaserPolicy, LaserPowerManager, WindowedPolicy};
pub use lut::{paper_loss_tolerance, GainLut};
pub use mapping::{AddressMapper, CometAddress};
pub use memory::{CometMemory, WriteVerifyError};
pub use power::{CometPowerModel, PowerStack};
pub use reliability::{DriftModel, ReadoutReliability};
pub use timing::CometTiming;
