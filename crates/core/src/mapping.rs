//! COMET address mapping — Eqs. (1)–(6) of the paper (Section III.F).
//!
//! The memory controller's flat `{Channel, Row, Bank, Column}` view must be
//! mapped onto COMET's subarray organization:
//!
//! ```text
//! {Channel, Row, Bank, Column} →
//!     {Channel, SubarrayID, SubarrayROW, Bank, SubarrayCOL}
//!
//! ID₁          = int(Row / M_r)                       (2)
//! ID₂          = int(Column / M_c)                    (3)
//! SubarrayID   = ID₂ · √S_r + ID₁                     (4)
//! SubarrayROW  = Row mod M_r                          (5)
//! SubarrayCOL  = Column mod M_c                       (6)
//! ```
//!
//! Channel and bank IDs pass through unchanged (Eq. 1); cache lines are
//! interleaved across the `B` MDM banks upstream, in the address decoder.

use crate::arch::CometConfig;
use memsim::DecodedAddress;
use serde::{Deserialize, Serialize};

/// A location in COMET's subarray-structured address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CometAddress {
    /// Channel (pass-through).
    pub channel: u64,
    /// Bank (pass-through; selects the MDM mode).
    pub bank: u64,
    /// Subarray index within the bank (Eq. 4).
    pub subarray: u64,
    /// Row within the subarray (Eq. 5).
    pub row: u64,
    /// Column within the subarray (Eq. 6).
    pub column: u64,
}

/// The Eq. (1)–(6) mapper for a given configuration.
///
/// # Examples
///
/// ```
/// use comet::{AddressMapper, CometConfig};
/// use memsim::DecodedAddress;
///
/// let mapper = AddressMapper::new(&CometConfig::comet_4b());
/// let flat = DecodedAddress { channel: 0, bank: 2, row: 1030, column: 17 };
/// let loc = mapper.map(flat);
/// assert_eq!(loc.bank, 2);
/// assert_eq!(loc.subarray, 1030 / 512);     // ID1 (ID2 = 0 since S_c = 1)
/// assert_eq!(loc.row, 1030 % 512);
/// assert_eq!(loc.column, 17);
/// assert_eq!(mapper.unmap(loc), flat);      // bijective
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapper {
    subarray_rows: u64,
    subarray_cols: u64,
    grid_side: u64,
}

impl AddressMapper {
    /// Builds the mapper for a configuration.
    pub fn new(config: &CometConfig) -> Self {
        AddressMapper {
            subarray_rows: config.subarray_rows,
            subarray_cols: config.subarray_cols,
            grid_side: config.subarray_grid_side(),
        }
    }

    /// Applies Eqs. (2)–(6).
    pub fn map(&self, flat: DecodedAddress) -> CometAddress {
        let id1 = flat.row / self.subarray_rows; // Eq. (2)
        let id2 = flat.column / self.subarray_cols; // Eq. (3)
        CometAddress {
            channel: flat.channel,
            bank: flat.bank,
            subarray: id2 * self.grid_side + id1,     // Eq. (4)
            row: flat.row % self.subarray_rows,       // Eq. (5)
            column: flat.column % self.subarray_cols, // Eq. (6)
        }
    }

    /// Inverts the mapping back to the flat controller view.
    ///
    /// Only defined for COMET's canonical organization where `S_c = 1`
    /// (the paper sets `M_c = N_c`, so flat columns never exceed `M_c` and
    /// `ID₂ = 0`); then `SubarrayID = ID₁` and the inverse is exact.
    pub fn unmap(&self, loc: CometAddress) -> DecodedAddress {
        DecodedAddress {
            channel: loc.channel,
            bank: loc.bank,
            row: loc.subarray * self.subarray_rows + loc.row,
            column: loc.column,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapper() -> AddressMapper {
        AddressMapper::new(&CometConfig::comet_4b())
    }

    #[test]
    fn equations_verbatim() {
        let m = mapper();
        // With M_r=512, M_c=256, sqrt(S_r)=64:
        let flat = DecodedAddress {
            channel: 1,
            bank: 3,
            row: 5 * 512 + 100,
            column: 200,
        };
        let loc = m.map(flat);
        assert_eq!(loc.channel, 1, "Eq. (1): channel unchanged");
        assert_eq!(loc.bank, 3, "Eq. (1): bank unchanged");
        assert_eq!(loc.subarray, 5, "Eq. (4) with ID2=0");
        assert_eq!(loc.row, 100, "Eq. (5)");
        assert_eq!(loc.column, 200, "Eq. (6)");
    }

    #[test]
    fn roundtrip_sampled() {
        let m = mapper();
        let cfg = CometConfig::comet_4b();
        for row in (0..cfg.subarrays * cfg.subarray_rows).step_by(7919) {
            for column in (0..cfg.subarray_cols).step_by(61) {
                let flat = DecodedAddress {
                    channel: 0,
                    bank: row % 4,
                    row,
                    column,
                };
                assert_eq!(m.unmap(m.map(flat)), flat);
            }
        }
    }

    #[test]
    fn subarray_ids_stay_in_range() {
        let m = mapper();
        let cfg = CometConfig::comet_4b();
        for row in (0..cfg.subarrays * cfg.subarray_rows).step_by(4099) {
            let loc = m.map(DecodedAddress {
                channel: 0,
                bank: 0,
                row,
                column: row % cfg.subarray_cols,
            });
            assert!(loc.subarray < cfg.subarrays);
            assert!(loc.row < cfg.subarray_rows);
            assert!(loc.column < cfg.subarray_cols);
        }
    }

    #[test]
    fn consecutive_rows_share_a_subarray() {
        // Rows within one M_r block map to the same subarray — the spatial
        // locality the GST-switch gating exploits.
        let m = mapper();
        let sub_of = |row| {
            m.map(DecodedAddress {
                channel: 0,
                bank: 0,
                row,
                column: 0,
            })
            .subarray
        };
        assert_eq!(sub_of(0), sub_of(511));
        assert_ne!(sub_of(511), sub_of(512));
    }

    #[test]
    fn wide_column_spaces_use_id2() {
        // A hypothetical config with S_c > 1 exercises Eq. (3)-(4)'s ID2
        // term literally (the forward mapping only; the inverse is defined
        // for the canonical S_c = 1 organization).
        let mut cfg = CometConfig::comet_4b();
        cfg.subarray_cols = 128; // columns beyond 128 now spill into ID2
        let m = AddressMapper::new(&cfg);
        let loc = m.map(DecodedAddress {
            channel: 0,
            bank: 0,
            row: 10,
            column: 300,
        });
        assert_eq!(loc.subarray, (300 / 128) * 64, "ID2*sqrt(S_r) + ID1");
        assert_eq!(loc.column, 300 % 128);
        assert_eq!(loc.row, 10);
    }
}
