//! COMET architectural timing (the paper's Table II).
//!
//! * 4 banks, 1 rank/channel, 1 device/rank;
//! * bus width 256 bits, burst length 4 (⇒ 128 B per access);
//! * max write time 170 ns, erase time 210 ns, read time 10 ns;
//! * data burst time 1 ns (per beat), electrical interface delay 105 ns.
//!
//! The per-level device latencies behind the architectural write/erase
//! budget come from the `opcm-phys` programming tables (Fig. 6);
//! [`CometTiming::from_program_table`] derives the budget from a generated
//! table instead of the Table II constants.

use comet_units::{Frequency, Time};
use opcm_phys::ProgramTable;
use serde::{Deserialize, Serialize};

/// Architectural timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CometTiming {
    /// Data-bus width, bits.
    pub bus_bits: u32,
    /// Burst length (beats per access).
    pub burst_length: u32,
    /// Time per data beat.
    pub burst_beat: Time,
    /// Cell read pulse + detection time.
    pub read_time: Time,
    /// Worst-case per-level write (program) time.
    pub max_write_time: Time,
    /// Erase (reset) time.
    pub erase_time: Time,
    /// EO tuning time to gate a row's MRs.
    pub row_access_time: Time,
    /// GST switch time to re-target a different subarray.
    pub subarray_switch_time: Time,
    /// One-way electrical interface (controller ↔ photonics) delay.
    pub interface_delay: Time,
    /// Whether erases are performed in the background on idle rows
    /// (write-time only on the critical path) or inline (erase + write).
    pub background_erase: bool,
}

impl CometTiming {
    /// The paper's Table II values.
    pub fn table_ii() -> Self {
        CometTiming {
            bus_bits: 256,
            burst_length: 4,
            burst_beat: Time::from_nanos(1.0),
            read_time: Time::from_nanos(10.0),
            max_write_time: Time::from_nanos(170.0),
            erase_time: Time::from_nanos(210.0),
            row_access_time: Time::from_nanos(2.0),
            subarray_switch_time: Time::from_nanos(100.0),
            interface_delay: Time::from_nanos(105.0),
            background_erase: true,
        }
    }

    /// Derives the write/erase budget from a device-level programming
    /// table (keeps the architecture consistent with the physics layer).
    pub fn from_program_table(table: &ProgramTable) -> Self {
        CometTiming {
            max_write_time: table.max_write_latency(),
            erase_time: table.reset.pulse.duration,
            ..Self::table_ii()
        }
    }

    /// Bytes moved per access (bus width × burst length).
    pub fn access_bytes(&self) -> u64 {
        (self.bus_bits as u64 * self.burst_length as u64) / 8
    }

    /// Bus occupancy of one access.
    pub fn burst_time(&self) -> Time {
        self.burst_beat * self.burst_length as f64
    }

    /// Effective per-channel modulation rate implied by the beat time and
    /// bus width (bits per beat / beat period, per wavelength-mode lane).
    pub fn modulation(&self) -> Frequency {
        Frequency::from_hertz(1.0 / self.burst_beat.as_seconds())
    }

    /// The write occupancy seen by a bank: erase + program when erases are
    /// inline, program only when erases happen in the background.
    pub fn write_occupancy(&self) -> Time {
        if self.background_erase {
            self.max_write_time
        } else {
            self.erase_time + self.max_write_time
        }
    }

    /// Unloaded read latency: row access + cell read + burst + interface.
    pub fn unloaded_read_latency(&self) -> Time {
        self.row_access_time + self.read_time + self.burst_time() + self.interface_delay
    }
}

impl Default for CometTiming {
    fn default() -> Self {
        Self::table_ii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_values() {
        let t = CometTiming::table_ii();
        assert_eq!(t.access_bytes(), 128);
        assert!((t.burst_time().as_nanos() - 4.0).abs() < 1e-12);
        assert!((t.max_write_time.as_nanos() - 170.0).abs() < 1e-12);
        assert!((t.erase_time.as_nanos() - 210.0).abs() < 1e-12);
        assert!((t.interface_delay.as_nanos() - 105.0).abs() < 1e-12);
    }

    #[test]
    fn unloaded_read_latency_decomposition() {
        let t = CometTiming::table_ii();
        // 2 + 10 + 4 + 105 = 121 ns.
        assert!((t.unloaded_read_latency().as_nanos() - 121.0).abs() < 1e-9);
    }

    #[test]
    fn background_erase_halves_write_occupancy() {
        let mut t = CometTiming::table_ii();
        assert!((t.write_occupancy().as_nanos() - 170.0).abs() < 1e-9);
        t.background_erase = false;
        assert!((t.write_occupancy().as_nanos() - 380.0).abs() < 1e-9);
    }

    #[test]
    fn modulation_is_1ghz_at_1ns_beats() {
        let t = CometTiming::table_ii();
        assert!((t.modulation().as_gigahertz() - 1.0).abs() < 1e-9);
    }
}
