//! Write endurance tracking and wear leveling.
//!
//! Section I of the paper positions PCM against FRAM/RRAM partly on
//! *"reliability and write endurance"* grounds, but any PCM — electrical
//! or optical — still has a finite crystallize/amorphize cycle budget
//! (GST integrated-photonics demonstrations sustain 10⁸–10¹² switching
//! events). A main memory must therefore (a) know where writes land and
//! (b) keep hot rows from burning out early. This module provides both:
//!
//! * [`WearTracker`] — per-row write counters with imbalance and lifetime
//!   statistics;
//! * [`StartGapRemapper`] — the classic algebraic wear-leveling scheme
//!   (one spare row per region, a gap that rotates one position every
//!   `gap_period` writes), which levels pathological hot spots without a
//!   remap table — a good fit for COMET's electrical interface, which
//!   already rewrites addresses through Eqs. (1)–(6).
//!
//! The ablation harness (`cargo run -p comet-bench --bin ablations`)
//! quantifies the imbalance reduction on hot-spot traffic.

use comet_units::Time;
use serde::{Deserialize, Serialize};

/// Cycle budget of one OPCM cell (order-of-magnitude parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnduranceModel {
    /// Crystallize/amorphize cycles a cell sustains before its contrast
    /// window degrades past the level budget.
    pub write_endurance: u64,
}

impl Default for EnduranceModel {
    fn default() -> Self {
        // Mid-range of published integrated GST photonic-memory endurance.
        EnduranceModel {
            write_endurance: 1_000_000_000,
        }
    }
}

impl EnduranceModel {
    /// Time until the most-worn row dies, given its observed write rate.
    ///
    /// # Panics
    ///
    /// Panics if `writes_per_second` is not positive.
    pub fn lifetime(&self, writes_per_second: f64) -> Time {
        assert!(writes_per_second > 0.0, "write rate must be positive");
        Time::from_seconds(self.write_endurance as f64 / writes_per_second)
    }
}

/// Per-row write counters for one memory region.
///
/// # Examples
///
/// ```
/// use comet::WearTracker;
///
/// let mut wear = WearTracker::new(8);
/// for _ in 0..70 { wear.record(3); } // hot row
/// for r in 0..8 { wear.record(r); }  // background traffic
/// assert_eq!(wear.total_writes(), 78);
/// assert_eq!(wear.max_wear(), 71);
/// assert!(wear.imbalance() > 5.0); // badly skewed
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WearTracker {
    counts: Vec<u64>,
    total: u64,
}

impl WearTracker {
    /// A tracker over `rows` rows, all pristine.
    pub fn new(rows: u64) -> Self {
        WearTracker {
            counts: vec![0; rows as usize],
            total: 0,
        }
    }

    /// Records one write to `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn record(&mut self, row: u64) {
        self.counts[row as usize] += 1;
        self.total += 1;
    }

    /// Total writes recorded.
    pub fn total_writes(&self) -> u64 {
        self.total
    }

    /// Writes absorbed by the most-worn row.
    pub fn max_wear(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Mean writes per row.
    pub fn mean_wear(&self) -> f64 {
        if self.counts.is_empty() {
            0.0
        } else {
            self.total as f64 / self.counts.len() as f64
        }
    }

    /// Wear imbalance: max over mean (1.0 = perfectly level).
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_wear();
        if mean == 0.0 {
            1.0
        } else {
            self.max_wear() as f64 / mean
        }
    }

    /// Fraction of the endurance budget consumed by the most-worn row.
    pub fn budget_consumed(&self, endurance: &EnduranceModel) -> f64 {
        self.max_wear() as f64 / endurance.write_endurance as f64
    }
}

/// Start-gap wear leveling over a region of `rows` logical rows backed by
/// `rows + 1` physical rows.
///
/// A *gap* (unused physical row) starts at the end of the region. Every
/// `gap_period` writes the row just before the gap is copied into it and
/// the gap moves down one position; when the gap reaches slot 0 it wraps
/// back to the end (copying the last slot down) and the rotation offset
/// advances — after enough sweeps every logical row has visited every
/// physical slot. The logical→physical map is algebraic (no table):
///
/// ```text
/// base     = (logical + start) % rows
/// physical = base + 1  if base >= gap  else  base
/// ```
///
/// # Examples
///
/// ```
/// use comet::StartGapRemapper;
///
/// let mut sg = StartGapRemapper::new(8, 4);
/// // Hammer one logical row: physical targets rotate over time.
/// let mut seen = std::collections::HashSet::new();
/// for _ in 0..200 {
///     seen.insert(sg.write(3));
/// }
/// assert!(seen.len() > 4, "hot row spread over {} physical rows", seen.len());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StartGapRemapper {
    rows: u64,
    gap_period: u64,
    /// Physical index of the gap (the spare, unmapped row).
    gap: u64,
    /// Rotation offset: how many full gap sweeps have completed.
    start: u64,
    /// Writes since the last gap move.
    since_move: u64,
    /// Extra writes caused by gap moves (each move copies one row).
    move_writes: u64,
}

impl StartGapRemapper {
    /// Creates a leveler for `rows` logical rows, moving the gap every
    /// `gap_period` writes.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero or `gap_period` is zero.
    pub fn new(rows: u64, gap_period: u64) -> Self {
        assert!(rows > 0, "need at least one row");
        assert!(gap_period > 0, "gap period must be positive");
        StartGapRemapper {
            rows,
            gap_period,
            gap: rows, // spare row sits at the end initially
            start: 0,
            since_move: 0,
            move_writes: 0,
        }
    }

    /// Logical row count.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Physical rows managed (logical + 1 spare).
    pub fn physical_rows(&self) -> u64 {
        self.rows + 1
    }

    /// Write amplification from gap-move copies so far.
    pub fn move_writes(&self) -> u64 {
        self.move_writes
    }

    /// The current logical→physical mapping (read path; does not count as
    /// a write).
    ///
    /// # Panics
    ///
    /// Panics if `logical` is out of range.
    pub fn map(&self, logical: u64) -> u64 {
        assert!(logical < self.rows, "logical row {logical} out of range");
        let base = (logical + self.start) % self.rows;
        if base >= self.gap {
            base + 1
        } else {
            base
        }
    }

    /// Records a write to `logical`, returning the physical row that
    /// absorbed it, and advances the gap when due.
    pub fn write(&mut self, logical: u64) -> u64 {
        let phys = self.map(logical);
        self.since_move += 1;
        if self.since_move >= self.gap_period {
            self.since_move = 0;
            self.advance_gap();
        }
        phys
    }

    /// Moves the gap one position down (copying the displaced row).
    fn advance_gap(&mut self) {
        self.move_writes += 1;
        if self.gap == 0 {
            // Wrap: the last physical slot is vacated into slot 0 and the
            // whole region's rotation advances by one.
            self.gap = self.rows;
            self.start = (self.start + 1) % self.rows;
        } else {
            self.gap -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mapping_is_injective_at_every_gap_position() {
        let mut sg = StartGapRemapper::new(16, 1);
        // Drive enough writes to sweep the gap through several full
        // rotations, checking injectivity continuously.
        for step in 0..200 {
            let mapped: HashSet<u64> = (0..16).map(|l| sg.map(l)).collect();
            assert_eq!(mapped.len(), 16, "collision at step {step}");
            for l in 0..16 {
                let p = sg.map(l);
                assert!(p < sg.physical_rows());
                assert_ne!(p, sg.gap, "logical row mapped onto the gap");
            }
            let _ = sg.write(step % 16);
        }
    }

    #[test]
    fn hot_row_spreads_over_physical_rows() {
        let mut sg = StartGapRemapper::new(64, 8);
        let mut wear = WearTracker::new(sg.physical_rows());
        for _ in 0..100_000 {
            wear.record(sg.write(7));
        }
        // Without leveling the imbalance would be rows+1 = 65 (all writes
        // on one of 65 rows); start-gap flattens it dramatically.
        assert!(
            wear.imbalance() < 3.0,
            "imbalance {} should be near 1",
            wear.imbalance()
        );
    }

    #[test]
    fn uniform_traffic_stays_uniform() {
        let mut sg = StartGapRemapper::new(32, 16);
        let mut wear = WearTracker::new(sg.physical_rows());
        for i in 0..33_000u64 {
            wear.record(sg.write(i % 32));
        }
        assert!(wear.imbalance() < 1.2, "imbalance {}", wear.imbalance());
    }

    #[test]
    fn write_amplification_is_bounded_by_gap_period() {
        let mut sg = StartGapRemapper::new(64, 100);
        for i in 0..10_000u64 {
            let _ = sg.write(i % 64);
        }
        // One extra copy per gap_period writes: 1% overhead at period 100.
        let amplification = sg.move_writes() as f64 / 10_000.0;
        assert!((amplification - 0.01).abs() < 0.001, "amp {amplification}");
    }

    #[test]
    fn wear_tracker_statistics() {
        let mut w = WearTracker::new(4);
        for _ in 0..10 {
            w.record(0);
        }
        w.record(1);
        w.record(2);
        assert_eq!(w.total_writes(), 12);
        assert_eq!(w.max_wear(), 10);
        assert!((w.mean_wear() - 3.0).abs() < 1e-12);
        assert!((w.imbalance() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lifetime_estimate() {
        let e = EnduranceModel::default();
        // 1000 writes/s to the hottest row: 1e9 / 1e3 = 1e6 s ≈ 11.6 days.
        let l = e.lifetime(1000.0);
        assert!((l.as_seconds() - 1e6).abs() < 1.0);
        let mut w = WearTracker::new(2);
        w.record(0);
        assert!((w.budget_consumed(&e) - 1e-9).abs() < 1e-18);
    }

    #[test]
    fn gap_never_collides_with_mapped_rows_over_long_runs() {
        let mut sg = StartGapRemapper::new(8, 1);
        // 8+1 physical rows, gap moves every write: run several full
        // start rotations ((rows+1)^2 moves).
        for i in 0..((9 * 9) * 4) {
            let mapped: HashSet<u64> = (0..8).map(|l| sg.map(l)).collect();
            assert!(!mapped.contains(&sg.gap), "step {i}");
            let _ = sg.write(i % 8);
        }
    }
}
