//! SECDED ECC and bit-plane interleaving for MLC lines.
//!
//! A worn-out OPCM cell is a *multi-bit* fault: at 4 bits/cell, one stuck
//! cell corrupts up to 4 bits of the stored line (see
//! [`Subarray::inject_stuck_cell`](crate::Subarray::inject_stuck_cell)).
//! Plain word-wise SECDED (single-error-correct, double-error-detect — the
//! standard DDR ECC) cannot correct that if the 4 bits share a codeword,
//! so this module pairs two pieces:
//!
//! * [`Secded`] — Hamming(72,64): 8 check bits per 64-bit word, corrects
//!   any single bit flip and detects double flips;
//! * [`bitplane_interleave`] / [`bitplane_deinterleave`] — store the line
//!   in bit planes, so the 4 bits of any one cell land in **4 different
//!   codewords**. A single stuck cell then degrades to one correctable
//!   bit per codeword, and SECDED recovers the whole line transparently.
//!
//! The combination gives COMET the same fault envelope DDR-with-ECC has:
//! any single-cell failure per 64-bit word group is invisible to software,
//! and the write-verify pass (see
//! [`CometMemory::write_verified`](crate::CometMemory::write_verified))
//! only needs to catch cells as they *become* stuck.

use serde::{Deserialize, Serialize};

/// Outcome of a successful SECDED decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Correction {
    /// The codeword was clean.
    None,
    /// One data bit (given index, 0..64) was flipped and corrected.
    Data(u8),
    /// One check bit was flipped (data unaffected).
    Check,
}

/// An uncorrectable (double) error was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoubleError;

impl std::fmt::Display for DoubleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "uncorrectable double-bit error detected")
    }
}

impl std::error::Error for DoubleError {}

/// Hamming(72,64) SECDED codec.
///
/// Data bits occupy Hamming positions 3..=71 (skipping the power-of-two
/// parity positions); check bits are the 7 positional parities plus one
/// overall parity. Encoding is stateless; the type exists as a namespace
/// and for future parameterization.
///
/// # Examples
///
/// ```
/// use comet::{Correction, Secded};
///
/// let word = 0xDEAD_BEEF_0123_4567u64;
/// let check = Secded::encode(word);
/// // A single flipped data bit is corrected:
/// let corrupted = word ^ (1 << 17);
/// let (fixed, action) = Secded::decode(corrupted, check)?;
/// assert_eq!(fixed, word);
/// assert_eq!(action, Correction::Data(17));
/// # Ok::<(), comet::DoubleError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Secded;

/// Hamming position of data bit `i` (0..64): the (i+1)-th non-power-of-two
/// position ≥ 3.
fn data_position(i: u8) -> u32 {
    // Positions 1..: skip 1, 2, 4, 8, 16, 32, 64.
    let mut pos = 2u32;
    let mut seen = 0u8;
    loop {
        pos += 1;
        if !pos.is_power_of_two() {
            if seen == i {
                return pos;
            }
            seen += 1;
        }
    }
}

/// Inverse of [`data_position`]: the data-bit index at Hamming position
/// `pos`, if `pos` is a data position.
fn position_data(pos: u32) -> Option<u8> {
    if !(3..=71).contains(&pos) || pos.is_power_of_two() {
        return None;
    }
    // Count non-power-of-two positions in 3..pos.
    let mut count = 0u8;
    for p in 3..pos {
        if !p.is_power_of_two() {
            count += 1;
        }
    }
    Some(count)
}

impl Secded {
    /// Number of check bits per 64-bit word.
    pub const CHECK_BITS: u32 = 8;

    /// Computes the 8 check bits for a data word: bits 0..7 are the
    /// positional parities P1,P2,P4,...,P64; the overall parity is folded
    /// into the construction so the full 72-bit codeword has even weight.
    pub fn encode(data: u64) -> u8 {
        let mut parities = 0u8;
        for i in 0..64u8 {
            if data >> i & 1 == 1 {
                let pos = data_position(i);
                for (k, mask) in [1u32, 2, 4, 8, 16, 32, 64].iter().enumerate() {
                    if pos & mask != 0 {
                        parities ^= 1 << k;
                    }
                }
            }
        }
        // Overall parity over data + the 7 positional check bits.
        let weight = data.count_ones() + u32::from(parities & 0x7F).count_ones();
        if weight % 2 == 1 {
            parities |= 0x80;
        }
        parities
    }

    /// Decodes a (data, check) pair, correcting a single-bit error.
    ///
    /// # Errors
    ///
    /// Returns [`DoubleError`] when two bit flips are detected (syndrome
    /// nonzero but overall parity consistent).
    pub fn decode(data: u64, check: u8) -> Result<(u64, Correction), DoubleError> {
        let expected = Self::encode(data);
        // Syndrome over the 7 positional parities.
        let syndrome = (expected ^ check) & 0x7F;
        // Overall parity of the received 72 bits.
        let received_weight = data.count_ones() + u32::from(check).count_ones();
        let parity_ok = received_weight % 2 == 0;

        match (syndrome, parity_ok) {
            (0, true) => Ok((data, Correction::None)),
            // Syndrome clean but overall parity wrong: the overall parity
            // bit itself flipped.
            (0, false) => Ok((data, Correction::Check)),
            (s, false) => {
                // Single error at Hamming position s.
                match position_data(s as u32) {
                    Some(bit) => Ok((data ^ (1u64 << bit), Correction::Data(bit))),
                    // A parity position: a check bit flipped.
                    None if (s as u32).is_power_of_two() => Ok((data, Correction::Check)),
                    // Syndrome points outside the codeword: alias of a
                    // multi-bit error.
                    None => Err(DoubleError),
                }
            }
            // Nonzero syndrome with consistent parity: double error.
            (_, true) => Err(DoubleError),
        }
    }
}

/// Packs 4-bit cell levels into 64-bit words in *bit-plane* order: plane
/// `b` holds bit `b` of every cell, so the 4 bits of cell `c` land in four
/// different words (`(b * cells + c) / 64` for `b = 0..4`).
///
/// # Panics
///
/// Panics unless `levels.len()` is a multiple of 16 (whole words per
/// plane) and every level fits in 4 bits.
///
/// # Examples
///
/// ```
/// use comet::{bitplane_deinterleave, bitplane_interleave};
///
/// let levels: Vec<u8> = (0..256).map(|i| (i % 16) as u8).collect();
/// let words = bitplane_interleave(&levels);
/// assert_eq!(words.len(), 16); // 256 cells x 4 bits = 16 words
/// assert_eq!(bitplane_deinterleave(&words, 256), levels);
/// ```
pub fn bitplane_interleave(levels: &[u8]) -> Vec<u64> {
    assert_eq!(levels.len() % 16, 0, "need whole 64-bit words per plane");
    let cells = levels.len();
    let words_total = cells * 4 / 64;
    let mut words = vec![0u64; words_total];
    for (c, &level) in levels.iter().enumerate() {
        assert!(level < 16, "level {level} exceeds 4 bits");
        for b in 0..4usize {
            if level >> b & 1 == 1 {
                let g = b * cells + c;
                words[g / 64] |= 1u64 << (g % 64);
            }
        }
    }
    words
}

/// Inverse of [`bitplane_interleave`].
///
/// # Panics
///
/// Panics if `words` does not hold exactly `cells * 4` bits.
pub fn bitplane_deinterleave(words: &[u64], cells: usize) -> Vec<u8> {
    assert_eq!(words.len() * 64, cells * 4, "word count must match cells");
    let mut levels = vec![0u8; cells];
    for b in 0..4usize {
        for (c, level) in levels.iter_mut().enumerate() {
            let g = b * cells + c;
            if words[g / 64] >> (g % 64) & 1 == 1 {
                *level |= 1 << b;
            }
        }
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip() {
        for data in [0u64, u64::MAX, 0xDEAD_BEEF_0123_4567, 1, 1 << 63] {
            let check = Secded::encode(data);
            let (out, action) = Secded::decode(data, check).expect("clean word");
            assert_eq!(out, data);
            assert_eq!(action, Correction::None);
        }
    }

    #[test]
    fn corrects_every_single_data_bit() {
        let data = 0xA5A5_5A5A_0F0F_F0F0u64;
        let check = Secded::encode(data);
        for bit in 0..64u8 {
            let corrupted = data ^ (1u64 << bit);
            let (fixed, action) = Secded::decode(corrupted, check)
                .unwrap_or_else(|_| panic!("bit {bit} should be correctable"));
            assert_eq!(fixed, data, "bit {bit}");
            assert_eq!(action, Correction::Data(bit));
        }
    }

    #[test]
    fn corrects_every_single_check_bit() {
        let data = 0x0123_4567_89AB_CDEFu64;
        let check = Secded::encode(data);
        for bit in 0..8u8 {
            let (fixed, action) =
                Secded::decode(data, check ^ (1 << bit)).expect("check-bit flip is correctable");
            assert_eq!(fixed, data, "check bit {bit}");
            assert_eq!(action, Correction::Check);
        }
    }

    #[test]
    fn detects_double_data_errors() {
        let data = 0xFFFF_0000_FFFF_0000u64;
        let check = Secded::encode(data);
        let mut detected = 0;
        let mut total = 0;
        for a in 0..64u8 {
            for b in (a + 1)..64u8 {
                total += 1;
                let corrupted = data ^ (1u64 << a) ^ (1u64 << b);
                if Secded::decode(corrupted, check).is_err() {
                    detected += 1;
                }
            }
        }
        assert_eq!(detected, total, "every double data error must be detected");
    }

    #[test]
    fn detects_data_plus_check_double_errors() {
        let data = 0x1234_5678_9ABC_DEF0u64;
        let check = Secded::encode(data);
        let mut miscorrected = 0;
        for a in 0..64u8 {
            for b in 0..7u8 {
                let out = Secded::decode(data ^ (1u64 << a), check ^ (1 << b));
                // Detected, or at least never silently returns wrong data.
                if let Ok((fixed, _)) = out {
                    if fixed != data {
                        miscorrected += 1;
                    }
                }
            }
        }
        assert_eq!(
            miscorrected, 0,
            "no silent miscorrection of data+check doubles"
        );
    }

    #[test]
    fn bitplane_roundtrip() {
        let levels: Vec<u8> = (0..256).map(|i| ((i * 7) % 16) as u8).collect();
        let words = bitplane_interleave(&levels);
        assert_eq!(words.len(), 16);
        assert_eq!(bitplane_deinterleave(&words, 256), levels);
    }

    #[test]
    fn stuck_cell_touches_four_distinct_words() {
        // The interleaving property the whole scheme rests on.
        let cells = 256usize;
        let clean = vec![0u8; cells];
        for c in [0usize, 17, 63, 255] {
            let mut faulty = clean.clone();
            faulty[c] = 0xF; // stuck-at-15: all four bit planes flip
            let w_clean = bitplane_interleave(&clean);
            let w_faulty = bitplane_interleave(&faulty);
            let touched: Vec<usize> = w_clean
                .iter()
                .zip(&w_faulty)
                .enumerate()
                .filter(|(_, (a, b))| a != b)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(touched.len(), 4, "cell {c} must spread over 4 words");
            for (a, b) in w_clean.iter().zip(&w_faulty) {
                assert!((a ^ b).count_ones() <= 1, "at most one bit per word");
            }
        }
    }

    #[test]
    fn end_to_end_stuck_cell_recovery() {
        // A full line with one stuck cell: interleave, protect each word
        // with SECDED, corrupt via the stuck cell, decode — data intact.
        let levels: Vec<u8> = (0..256).map(|i| ((i * 11) % 16) as u8).collect();
        let words = bitplane_interleave(&levels);
        let checks: Vec<u8> = words.iter().map(|&w| Secded::encode(w)).collect();

        // The stuck cell reads back 0x3 regardless of what was written.
        let mut observed_levels = levels.clone();
        observed_levels[97] = 0x3;
        let observed = bitplane_interleave(&observed_levels);

        let recovered: Vec<u64> = observed
            .iter()
            .zip(&checks)
            .map(|(&w, &c)| Secded::decode(w, c).expect("single-bit per word").0)
            .collect();
        assert_eq!(recovered, words, "ECC must undo the stuck cell");
        assert_eq!(bitplane_deinterleave(&recovered, 256), levels);
    }

    #[test]
    fn two_stuck_cells_in_same_word_group_are_detected() {
        // Two stuck cells can collide in a word; SECDED then *detects*
        // rather than corrects — which is exactly when the controller must
        // remap (write-verify + spare lines).
        let levels = vec![0u8; 256];
        let words = bitplane_interleave(&levels);
        let checks: Vec<u8> = words.iter().map(|&w| Secded::encode(w)).collect();
        let mut observed_levels = levels;
        // Cells 0 and 64 share plane words (g = b*256 + c: both in the
        // same 64-bit word for every plane b).
        observed_levels[0] = 0xF;
        observed_levels[63] = 0xF;
        let observed = bitplane_interleave(&observed_levels);
        let any_detected = observed
            .iter()
            .zip(&checks)
            .any(|(&w, &c)| Secded::decode(w, c).is_err());
        assert!(any_detected, "colliding stuck cells must raise DoubleError");
    }

    #[test]
    fn data_position_mapping_is_bijective() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u8 {
            let pos = data_position(i);
            assert!(
                (3..=71).contains(&pos) && !pos.is_power_of_two(),
                "pos {pos}"
            );
            assert!(seen.insert(pos), "duplicate position {pos}");
            assert_eq!(position_data(pos), Some(i));
        }
    }
}
