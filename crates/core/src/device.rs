//! COMET as a [`memsim::MemoryDevice`] — the timing/energy model the
//! Fig. 9 evaluation drives.
//!
//! Timing semantics (from Table II, NVMain-style):
//!
//! * **Reads** pipeline at burst granularity: the 10 ns cell read and 2 ns
//!   row tuning are *latency* (like DRAM CL), while the bank's wavelengths
//!   are occupied only for the 4 ns data burst — consecutive reads to
//!   different rows stream back-to-back, which is what lets COMET approach
//!   its 256-bit × 1 GHz per-bank bus rate.
//! * **Writes** transfer their data burst, then the programming pulse
//!   (≤170 ns; + 210 ns erase when erases are inline) is sustained
//!   *locally* by the target subarray's SOA stages, so it occupies the
//!   **subarray**, not the bank: writes to different subarrays overlap,
//!   writes/reads to the *same* subarray serialize.
//! * **Subarray switching** (GST waveguide switch, 100 ns) is paid when
//!   an access targets a subarray whose switch is not currently latched
//!   open. Switches are non-volatile and a small number per bank
//!   (`OPEN_SUBARRAY_WINDOW`) can stay latched concurrently — the power
//!   model still charges one subarray of SOAs per bank as the average
//!   activity — so a weight stream and an activation-write stream can
//!   coexist without thrashing the switch.
//! * Every access sees the 105 ns electrical interface delay.
//!
//! Energy: programming/read pulse energies per access; the architecture's
//! full power stack (laser + SOA + tuning + interface, Fig. 7) burns as
//! *background* power for the duration of the run — matching the paper's
//! EPB accounting ("the entire power consumption ... is utilized for
//! orchestrating reads and writes").

use crate::arch::CometConfig;
use crate::laser::{LaserPolicy, LaserPowerManager};
use crate::mapping::AddressMapper;
use crate::power::CometPowerModel;
use comet_units::{Energy, Power, Time};
use memsim::{AccessTiming, DecodedAddress, DeviceFactory, MemOp, MemoryDevice, Topology};
use std::collections::{HashMap, VecDeque};

/// Concurrently-latched GST subarray switches per bank (LRU-evicted).
/// Matches the default subarray stripe so striped streams never thrash.
/// The switches are non-volatile latches, so keeping a window of them open
/// costs no static power; the SOA power accounting still follows the
/// paper's one-active-subarray-per-bank time-average formula.
const OPEN_SUBARRAY_WINDOW: usize = 64;

/// Per-access pulse energies (derived from the physics layer's programming
/// tables; defaults match the Fig. 6 GST cell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseEnergies {
    /// Average per-cell write pulse energy.
    pub write_per_cell: Energy,
    /// Per-cell read pulse energy (low-power probe).
    pub read_per_cell: Energy,
    /// Per-cell erase share (amorphous reset amortized per write when
    /// erases run in the background).
    pub erase_per_cell: Energy,
}

impl Default for PulseEnergies {
    fn default() -> Self {
        PulseEnergies {
            // ~1 mW × ~85 ns average level pulse.
            write_per_cell: Energy::from_picojoules(85.0),
            // 0.1 mW × 10 ns.
            read_per_cell: Energy::from_picojoules(1.0),
            // 280 pJ amorphous reset.
            erase_per_cell: Energy::from_picojoules(280.0),
        }
    }
}

/// The COMET timing/energy device.
///
/// # Examples
///
/// ```
/// use comet::{CometConfig, CometDevice};
/// use memsim::MemoryDevice;
///
/// let dev = CometDevice::new(CometConfig::comet_4b());
/// assert_eq!(dev.name(), "COMET");
/// assert_eq!(dev.topology().channels, 4); // one lane per MDM mode
/// assert_eq!(dev.topology().line_bytes, 128);
/// ```
#[derive(Debug, Clone)]
pub struct CometDevice {
    config: CometConfig,
    mapper: AddressMapper,
    background: Power,
    energies: PulseEnergies,
    /// Latched-open subarray switches per bank (LRU order, newest back).
    open_subarrays: Vec<VecDeque<u64>>,
    /// Busy-until horizon per (bank, subarray) with in-flight programming.
    subarray_busy: HashMap<(u64, u64), Time>,
    /// Dynamic laser power manager (None = the paper's static stack).
    manager: Option<LaserPowerManager>,
    /// Latest device-time seen (closes the manager's accounting).
    horizon: Time,
}

impl CometDevice {
    /// Creates a device with the configuration's power stack as background.
    pub fn new(config: CometConfig) -> Self {
        let background = CometPowerModel::new(config.clone()).stack().total();
        Self::with_background(config, background)
    }

    /// Creates a device with an explicit background power (for ablations,
    /// e.g. dynamic laser power management studies).
    pub fn with_background(config: CometConfig, background: Power) -> Self {
        let mapper = AddressMapper::new(&config);
        let banks = config.banks as usize;
        CometDevice {
            config,
            mapper,
            background,
            energies: PulseEnergies::default(),
            open_subarrays: vec![VecDeque::new(); banks],
            subarray_busy: HashMap::new(),
            manager: None,
            horizon: Time::ZERO,
        }
    }

    /// Creates a device under a laser power-management policy (the paper's
    /// Section IV.C future-work extension; see [`crate::LaserPolicy`]).
    ///
    /// Under [`LaserPolicy::Windowed`] the laser + SOA share of the Fig. 7
    /// stack is demand-gated: its energy is accounted per management
    /// window by the device itself (reported through the engine's drained
    /// bucket) instead of burning as constant background power, and
    /// accesses that catch the laser idle pay the policy's wake-up stall.
    pub fn with_policy(config: CometConfig, policy: LaserPolicy) -> Self {
        let mut dev = Self::new(config.clone());
        if let LaserPolicy::Windowed(w) = policy {
            let stack = CometPowerModel::new(config).stack();
            let gateable = stack.laser + stack.soa;
            let always_on = stack.tuning + stack.interface;
            dev.manager = Some(LaserPowerManager::new(w, gateable, always_on));
        }
        dev
    }

    /// The wake-up count of the laser manager (zero for the static policy).
    pub fn laser_wakeups(&self) -> u64 {
        self.manager.as_ref().map_or(0, LaserPowerManager::wakeups)
    }

    /// The configuration.
    pub fn config(&self) -> &CometConfig {
        &self.config
    }

    /// Overrides the per-access pulse energies.
    pub fn set_pulse_energies(&mut self, energies: PulseEnergies) {
        self.energies = energies;
    }

    /// Physical row after subarray striping: consecutive controller rows
    /// rotate across `subarray_stripe` distant row blocks, so streaming
    /// writes spread their programming pulses over parallel subarrays.
    fn physical_row(&self, row: u64) -> u64 {
        let stripe = self.config.subarray_stripe.max(1);
        let total = self.config.subarrays * self.config.subarray_rows;
        (row % stripe) * (total / stripe) + row / stripe
    }

    /// The subarray a flat controller address targets.
    fn subarray_of(&self, loc: &DecodedAddress) -> u64 {
        let mut loc = *loc;
        loc.row = self.physical_row(loc.row);
        self.mapper.map(loc).subarray
    }
}

/// The controller-visible shape of a COMET configuration — each MDM mode
/// is an independent bank *with its own data lane*: modeled as one bank
/// per channel so the engine gives every mode a private bus (shared-bus
/// contention would be wrong for MDM).
fn controller_topology(config: &CometConfig) -> Topology {
    Topology {
        channels: config.banks,
        banks: 1,
        rows: config.subarrays * config.subarray_rows,
        columns: 1,
        line_bytes: config.timing.access_bytes(),
    }
}

impl DeviceFactory for CometConfig {
    fn device_name(&self) -> String {
        "COMET".into()
    }

    fn build(&self) -> Box<dyn MemoryDevice> {
        Box::new(CometDevice::new(self.clone()))
    }

    fn device_topology(&self) -> Topology {
        controller_topology(self)
    }
}

impl MemoryDevice for CometDevice {
    fn name(&self) -> String {
        "COMET".into()
    }

    fn topology(&self) -> Topology {
        controller_topology(&self.config)
    }

    fn bank_available(&mut self, loc: &DecodedAddress, at: Time) -> Time {
        // The target subarray may still be programming.
        let key = (loc.channel, self.subarray_of(loc));
        match self.subarray_busy.get(&key) {
            Some(&busy) => at.max(busy),
            None => at,
        }
    }

    fn access(&mut self, loc: &DecodedAddress, op: MemOp, issue: Time) -> AccessTiming {
        let t = self.config.timing;
        let subarray = self.subarray_of(loc);
        let bank = loc.channel as usize;

        // Dynamic laser management: an access that catches the laser idle
        // pays the wake-up stall before anything else can happen.
        let issue = match self.manager.as_mut() {
            Some(m) => issue + m.on_access(issue),
            None => issue,
        };

        // GST switch: pay 100 ns only when the subarray's switch is not
        // already latched open; LRU-evict beyond the open window.
        let open = &mut self.open_subarrays[bank];
        let switch = if let Some(pos) = open.iter().position(|&s| s == subarray) {
            open.remove(pos);
            open.push_back(subarray);
            Time::ZERO
        } else {
            if open.len() >= OPEN_SUBARRAY_WINDOW {
                open.pop_front();
            }
            open.push_back(subarray);
            t.subarray_switch_time
        };

        let start = issue + switch;
        let cells = self.config.cells_per_line() as f64;
        self.horizon = self.horizon.max(match op {
            MemOp::Read => start + t.row_access_time + t.read_time,
            MemOp::Write => start.max(issue + t.burst_time()) + t.write_occupancy(),
        });

        match op {
            MemOp::Read => {
                // Read pulses pipeline on the wavelengths: the 12 ns
                // tune+read (and any switch set-up) is latency only; the
                // mode's lane is held for the burst. Reads leave no
                // subarray reservation.
                let data_ready = start + t.row_access_time + t.read_time;
                AccessTiming {
                    bank_free_at: issue + t.burst_time(),
                    data_ready_at: data_ready,
                    bus_occupancy: t.burst_time(),
                    energy: self.energies.read_per_cell * cells,
                }
            }
            MemOp::Write => {
                // The data burst lands in the interface buffer immediately
                // (the switch set-up proceeds in parallel); programming
                // starts once both the switch and the data are in, and is
                // sustained by the subarray's SOA stages.
                let data_ready = issue + t.burst_time();
                let program_start = issue + switch.max(t.burst_time());
                let program_done = program_start + t.write_occupancy();
                self.subarray_busy
                    .insert((loc.channel, subarray), program_done);
                let mut energy = self.energies.write_per_cell * cells;
                if !t.background_erase {
                    energy += self.energies.erase_per_cell * cells;
                }
                AccessTiming {
                    // The switch set-up overlaps with other subarrays'
                    // traffic: the lane is only held for the data burst.
                    bank_free_at: issue + t.burst_time(),
                    data_ready_at: data_ready,
                    bus_occupancy: t.burst_time(),
                    energy,
                }
            }
        }
    }

    fn row_hit(&self, loc: &DecodedAddress) -> bool {
        // "Row hit" for FR-FCFS = the subarray's switch is latched open
        // (avoids the 100 ns GST switch).
        self.open_subarrays[loc.channel as usize].contains(&self.subarray_of(loc))
    }

    fn background_power(&self) -> Power {
        // Under dynamic management the manager accounts the whole stack
        // itself (drained at the end of the run).
        if self.manager.is_some() {
            Power::ZERO
        } else {
            self.background
        }
    }

    fn drain_accumulated_energy(&mut self) -> Energy {
        let horizon = self.horizon;
        match self.manager.as_mut() {
            Some(m) => m.finish(horizon),
            None => Energy::ZERO,
        }
    }

    fn interface_delay(&self) -> Time {
        self.config.timing.interface_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_units::ByteCount;
    use memsim::{run_simulation, MemRequest, SimConfig};

    fn device() -> CometDevice {
        CometDevice::new(CometConfig::comet_4b())
    }

    fn loc(bank: u64, row: u64) -> DecodedAddress {
        // Banks ride on channels (one lane per MDM mode).
        DecodedAddress {
            channel: bank,
            bank: 0,
            row,
            column: 0,
        }
    }

    #[test]
    fn read_latency_matches_table_ii() {
        let mut dev = device();
        let a = dev.access(&loc(0, 0), MemOp::Read, Time::ZERO);
        // First access pays the subarray switch (100) + tune (2) + read (10).
        assert!((a.data_ready_at.as_nanos() - 112.0).abs() < 1e-9);
        // Second access to the same (striped) subarray: 12 ns. With the
        // default 64-way stripe, row 64 shares row 0's subarray.
        let b = dev.access(&loc(0, 64), MemOp::Read, Time::from_nanos(200.0));
        assert!((b.data_ready_at.as_nanos() - 212.0).abs() < 1e-9);
        assert!((dev.interface_delay().as_nanos() - 105.0).abs() < 1e-9);
    }

    #[test]
    fn reads_pipeline_at_burst_rate() {
        let mut dev = device();
        let _ = dev.access(&loc(0, 0), MemOp::Read, Time::ZERO);
        let b = dev.access(&loc(0, 1), MemOp::Read, Time::from_nanos(200.0));
        // Bank frees one burst after issue, not one read-time after.
        assert!((b.bank_free_at.as_nanos() - 204.0).abs() < 1e-9);
    }

    #[test]
    fn subarray_switch_latches() {
        let mut dev = device();
        let sub0 = loc(0, 0);
        let sub1 = loc(0, 1); // striping sends row 1 to a distant subarray
        let a = dev.access(&sub0, MemOp::Read, Time::ZERO);
        assert!(
            (a.data_ready_at.as_nanos() - 112.0).abs() < 1e-9,
            "cold switch"
        );
        let b = dev.access(&sub1, MemOp::Read, Time::from_nanos(500.0));
        assert!(
            (b.data_ready_at.as_nanos() - 612.0).abs() < 1e-9,
            "switch to 1"
        );
        let c = dev.access(&sub1, MemOp::Read, Time::from_nanos(1000.0));
        assert!(
            (c.data_ready_at.as_nanos() - 1012.0).abs() < 1e-9,
            "latched"
        );
        assert!(dev.row_hit(&sub1));
        // The open window keeps sub0 latched too (no thrash)...
        assert!(dev.row_hit(&sub0));
        // ...until enough distinct subarrays evict it (window is 64; rows
        // k·stripe·512 share row 0's stripe class but land in subarray k,
        // so 65 of them flush the whole window).
        let stripe = dev.config().subarray_stripe;
        for k in 1..=65u64 {
            let _ = dev.access(
                &loc(0, k * stripe * 512),
                MemOp::Read,
                Time::from_nanos(2000.0 + k as f64),
            );
        }
        assert!(!dev.row_hit(&sub0), "LRU eviction after window overflow");
    }

    #[test]
    fn writes_occupy_subarray_not_bank() {
        let mut dev = device();
        let w = dev.access(&loc(0, 0), MemOp::Write, Time::ZERO);
        // Bank frees after the burst (the switch set-up is latency only).
        assert!((w.bank_free_at.as_nanos() - 4.0).abs() < 1e-9);
        // But the same (striped) subarray is blocked until programming
        // completes: row 64 shares row 0's subarray.
        let avail = dev.bank_available(&loc(0, 64), Time::from_nanos(110.0));
        // Cold write: switch (100, overlapping the burst) + program (170).
        assert!(
            (avail.as_nanos() - 270.0).abs() < 1e-9,
            "subarray busy until switch+program, got {avail}"
        );
        // A different subarray (row 1, next stripe) is immediately available.
        let other = dev.bank_available(&loc(0, 1), Time::from_nanos(110.0));
        assert!((other.as_nanos() - 110.0).abs() < 1e-9);
    }

    #[test]
    fn inline_erase_lengthens_writes() {
        let mut cfg = CometConfig::comet_4b();
        cfg.timing.background_erase = false;
        let mut dev = CometDevice::new(cfg);
        let w = dev.access(&loc(0, 0), MemOp::Write, Time::ZERO);
        let avail = dev.bank_available(&loc(0, 64), w.bank_free_at);
        // switch 100 (burst overlapped) + erase 210 + write 170 = 480.
        assert!((avail.as_nanos() - 480.0).abs() < 1e-9, "got {avail}");
    }

    #[test]
    fn background_power_is_the_fig7_stack() {
        let dev = device();
        let stack = CometPowerModel::new(CometConfig::comet_4b())
            .stack()
            .total();
        assert!((dev.background_power().as_watts() - stack.as_watts()).abs() < 1e-9);
        assert!(dev.background_power().as_watts() > 10.0);
    }

    #[test]
    fn saturation_read_bandwidth_near_bus_rate() {
        // Streaming reads should approach 4 banks x 128 B / 4 ns = 128 GB/s.
        let mut dev = device();
        let reqs: Vec<MemRequest> = (0..20_000u64)
            .map(|i| MemRequest::new(i, Time::ZERO, MemOp::Read, i * 128, ByteCount::new(128)))
            .collect();
        let stats = run_simulation(&mut dev, &reqs, &SimConfig::saturation("stream"));
        let bw = stats.bandwidth().as_gigabytes_per_second();
        assert!((60.0..=130.0).contains(&bw), "stream read BW {bw} GB/s");
    }

    #[test]
    fn write_programming_parallelism_depends_on_stripe() {
        let mk = || CometDevice::new(CometConfig::comet_4b());
        // Sequential writes ride the 64-way stripe: their 170 ns programming
        // pulses overlap across subarrays, so the stream runs near the bus
        // rate, like reads.
        let seq_writes: Vec<MemRequest> = (0..5000u64)
            .map(|i| MemRequest::new(i, Time::ZERO, MemOp::Write, i * 128, ByteCount::new(128)))
            .collect();
        let seq_reads: Vec<MemRequest> = (0..5000u64)
            .map(|i| MemRequest::new(i, Time::ZERO, MemOp::Read, i * 128, ByteCount::new(128)))
            .collect();
        let sr = run_simulation(&mut mk(), &seq_reads, &SimConfig::saturation("r"));
        let sw = run_simulation(&mut mk(), &seq_writes, &SimConfig::saturation("w"));
        let r = sr.bandwidth().as_gigabytes_per_second();
        let w = sw.bandwidth().as_gigabytes_per_second();
        assert!(
            w > 60.0,
            "striped write BW {w} GB/s should approach the bus rate"
        );
        assert!(
            r > 60.0,
            "streaming read BW {r} GB/s should approach the bus rate"
        );

        // A row stride equal to the full stripe defeats the interleaving:
        // every write in a channel lands in the same subarray and the
        // programming pulses serialize at 170 ns apiece.
        let stripe = CometConfig::comet_4b().subarray_stripe;
        let serial: Vec<MemRequest> = (0..5000u64)
            .map(|i| {
                // Row stride = stripe (x4 channel-interleaved lines/row).
                MemRequest::new(
                    i,
                    Time::ZERO,
                    MemOp::Write,
                    i * stripe * 4 * 128,
                    ByteCount::new(128),
                )
            })
            .collect();
        let ss = run_simulation(&mut mk(), &serial, &SimConfig::saturation("sw"));
        let s = ss.bandwidth().as_gigabytes_per_second();
        assert!(
            s * 5.0 < w,
            "stripe-defeating writes ({s} GB/s) should serialize well below \
             streaming writes ({w} GB/s)"
        );
        // ...but stay in the GB/s decade: 4 banks x 128 B / 170 ns ~ 3 GB/s.
        assert!(s > 1.0, "serialized write BW {s} GB/s");
    }

    #[test]
    fn windowed_laser_policy_saves_energy_on_sparse_traffic() {
        use crate::laser::{LaserPolicy, WindowedPolicy};
        // One access every 20 us: the laser should sleep most of the time.
        let reqs: Vec<MemRequest> = (0..50u64)
            .map(|i| {
                MemRequest::new(
                    i,
                    Time::from_micros(i as f64 * 20.0),
                    MemOp::Read,
                    i * 128,
                    ByteCount::new(128),
                )
            })
            .collect();
        let mut managed = CometDevice::with_policy(
            CometConfig::comet_4b(),
            LaserPolicy::Windowed(WindowedPolicy::default_1us()),
        );
        let mut static_dev = CometDevice::new(CometConfig::comet_4b());
        let sm = run_simulation(&mut managed, &reqs, &SimConfig::paced("sparse"));
        let ss = run_simulation(&mut static_dev, &reqs, &SimConfig::paced("sparse"));
        // Managed run reports its stack through the drained bucket.
        assert_eq!(sm.energy.background, comet_units::Energy::ZERO);
        assert!(sm.energy.refresh > comet_units::Energy::ZERO);
        // Dramatic saving on sparse traffic (idle floor is 10% + always-on).
        let managed_total = sm.energy.total().as_joules();
        let static_total = ss.energy.total().as_joules();
        assert!(
            managed_total < 0.5 * static_total,
            "managed {managed_total} J vs static {static_total} J"
        );
        // Every isolated access after the first pays one wake-up.
        assert_eq!(managed.laser_wakeups(), 49);
    }

    #[test]
    fn windowed_laser_policy_is_neutral_under_saturation() {
        use crate::laser::{LaserPolicy, WindowedPolicy};
        let reqs: Vec<MemRequest> = (0..20_000u64)
            .map(|i| MemRequest::new(i, Time::ZERO, MemOp::Read, i * 128, ByteCount::new(128)))
            .collect();
        let mut managed = CometDevice::with_policy(
            CometConfig::comet_4b(),
            LaserPolicy::Windowed(WindowedPolicy::default_1us()),
        );
        let mut static_dev = CometDevice::new(CometConfig::comet_4b());
        let sm = run_simulation(&mut managed, &reqs, &SimConfig::saturation("stream"));
        let ss = run_simulation(&mut static_dev, &reqs, &SimConfig::saturation("stream"));
        // No wake-ups, no throughput loss under saturation.
        assert_eq!(managed.laser_wakeups(), 0);
        let bm = sm.bandwidth().as_gigabytes_per_second();
        let bs = ss.bandwidth().as_gigabytes_per_second();
        assert!((bm - bs).abs() / bs < 0.01, "managed {bm} vs static {bs}");
        // Energy within a few percent of the static stack (the manager's
        // horizon stops at the last access, the engine integrates to the
        // last completion).
        let ratio = sm.energy.total().as_joules() / ss.energy.total().as_joules();
        assert!((0.9..=1.02).contains(&ratio), "energy ratio {ratio}");
    }

    #[test]
    fn static_policy_matches_plain_constructor() {
        use crate::laser::LaserPolicy;
        let a = CometDevice::with_policy(CometConfig::comet_4b(), LaserPolicy::Static);
        let b = CometDevice::new(CometConfig::comet_4b());
        assert_eq!(a.background_power(), b.background_power());
        assert_eq!(a.laser_wakeups(), 0);
    }

    #[test]
    fn capacity_matches_config() {
        let dev = device();
        assert_eq!(
            dev.topology().capacity().value() * 8,
            CometConfig::comet_4b().capacity_bits().value()
        );
    }
}
