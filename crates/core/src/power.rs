//! The COMET power model (Section III.E, Figs. 7–8).
//!
//! Four components stack:
//!
//! * **Laser** — off-chip comb laser sized so every wavelength delivers the
//!   cell target power through the worst-case access path (coupling,
//!   propagation, bends, GST subarray switch, worst MDM mode penalty, and
//!   the two EO-tuned MR drops into and out of the cell), divided by the
//!   20 % wall-plug efficiency. Intra-subarray losses are covered by the
//!   SOAs, not the laser.
//! * **SOA** — only the accessed subarray's amplifiers are powered:
//!   `B · M_r · M_c / 46 × 1.4 mW` (the paper's formula).
//! * **EO tuning** — `B · 2 · M_c · P_EO` for the accessed row's rings.
//! * **Electrical interface** — modulator/driver/TIA lanes at the
//!   controller boundary.

use crate::arch::CometConfig;
use comet_units::{Decibels, Length, Power};
use photonic::{CellOpticalModel, Laser, ModePenalty, OpticalPath, PathElement};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A decomposed power figure (one bar of the Fig. 7/8 stacks).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerStack {
    /// Off-chip laser wall-plug power.
    pub laser: Power,
    /// Active intra-subarray SOA power.
    pub soa: Power,
    /// EO tuning power.
    pub tuning: Power,
    /// Electrical interface power.
    pub interface: Power,
}

impl PowerStack {
    /// Total power.
    pub fn total(&self) -> Power {
        self.laser + self.soa + self.tuning + self.interface
    }

    /// `(name, value)` pairs in stack order, for report printing.
    pub fn components(&self) -> [(&'static str, Power); 4] {
        [
            ("laser", self.laser),
            ("soa", self.soa),
            ("eo_tuning", self.tuning),
            ("interface", self.interface),
        ]
    }
}

impl fmt::Display for PowerStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "laser {:.2} W + soa {:.2} W + tuning {:.3} W + interface {:.2} W = {:.2} W",
            self.laser.as_watts(),
            self.soa.as_watts(),
            self.tuning.as_watts(),
            self.interface.as_watts(),
            self.total().as_watts()
        )
    }
}

/// Power model of a COMET configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CometPowerModel {
    /// The architecture being modeled.
    pub config: CometConfig,
    /// On-chip routing distance from coupler to the farthest bank.
    pub routing_length: Length,
    /// 90° bends along the access path.
    pub routing_bends: u32,
    /// Average EO resonance shift the tuner must hold.
    pub tuning_shift: Length,
    /// Per-lane electrical interface power (modulator driver + TIA).
    pub interface_lane_power: Power,
}

impl CometPowerModel {
    /// The default physical assumptions: 2 cm of routing, 4 bends, 1 nm
    /// average EO shift, 1 mW per interface lane.
    pub fn new(config: CometConfig) -> Self {
        CometPowerModel {
            config,
            routing_length: Length::from_centimeters(2.0),
            routing_bends: 4,
            tuning_shift: Length::from_nanometers(1.0),
            interface_lane_power: Power::from_milliwatts(1.0),
        }
    }

    /// The worst-case laser → cell optical path (excluding SOA-compensated
    /// intra-subarray row losses).
    pub fn access_path(&self) -> OpticalPath {
        let mut path = OpticalPath::new();
        path.push(PathElement::Coupler)
            .push(PathElement::Propagation(self.routing_length))
            .push(PathElement::Bends(self.routing_bends))
            .push(PathElement::GstSwitch)
            .push(PathElement::Fixed(self.worst_mode_penalty()))
            .push(PathElement::TunedMrDrop(photonic::MrTuning::ElectroOptic))
            .push(PathElement::TunedMrDrop(photonic::MrTuning::ElectroOptic));
        path
    }

    /// The read-out path: the access path extended through the cell
    /// itself in its most transmissive state, with the insertion loss
    /// taken from a circuit-layer cell model — so the same path budget can
    /// be evaluated under the paper's constants or the physics-derived
    /// model (the divergence `fig7_power_comet` tabulates).
    pub fn read_path(&self, cell: &dyn CellOpticalModel) -> OpticalPath {
        let mut path = self.access_path();
        path.push_cell(cell);
        path
    }

    /// Worst-case power arriving at the detector for the configured cell
    /// target power: the cell's *deepest* level transmittance on top of
    /// the read-path losses past the cell.
    pub fn worst_received_power(&self, cell: &dyn CellOpticalModel) -> Power {
        let at_cell = self.config.optical.max_power_at_cell;
        let past_cell = at_cell.attenuate(cell.min_transmittance().to_decibels());
        // The return trip re-crosses the row gating MR; SOA trim gain has
        // already compensated row-dependent losses (GainLut).
        past_cell.attenuate(self.config.optical.eo_mr_drop_loss)
    }

    /// Worst MDM mode-order penalty for the configured bank count.
    pub fn worst_mode_penalty(&self) -> Decibels {
        ModePenalty::default().worst_mode_loss(self.config.banks as usize)
    }

    /// Laser wall-plug power: all `B × N_c` wavelength-mode channels at
    /// the cell target power through the access path.
    pub fn laser_power(&self) -> Power {
        let laser = Laser::new(self.config.optical.laser_wall_plug_efficiency);
        let loss = self.access_path().total_loss(&self.config.optical);
        let channels = (self.config.banks * self.config.wavelengths()) as usize;
        laser.electrical_power_for_channels(self.config.optical.max_power_at_cell, loss, channels)
    }

    /// Active SOA power: `B·M_r·M_c/46 × 1.4 mW`.
    pub fn soa_power(&self) -> Power {
        self.config.optical.intra_subarray_soa_power * self.config.active_soa_count() as f64
    }

    /// EO tuning power: `B · 2 · M_c · P_EO` at the configured shift.
    pub fn tuning_power(&self) -> Power {
        let per_mr = self.config.optical.eo_tuning_power(self.tuning_shift);
        per_mr * (self.config.banks * 2 * self.config.subarray_cols) as f64
    }

    /// Electrical interface power: one lane per wavelength-mode channel.
    pub fn interface_power(&self) -> Power {
        self.interface_lane_power * (self.config.banks * self.config.wavelengths()) as f64
    }

    /// The full stack (one Fig. 7 bar).
    pub fn stack(&self) -> PowerStack {
        PowerStack {
            laser: self.laser_power(),
            soa: self.soa_power(),
            tuning: self.tuning_power(),
            interface: self.interface_power(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(cfg: CometConfig) -> CometPowerModel {
        CometPowerModel::new(cfg)
    }

    #[test]
    fn soa_power_matches_paper_formula() {
        // (B × M_r × M_c / 46 × 1.4) mW for b=4: 4*512*256/46 * 1.4 mW.
        let m = model(CometConfig::comet_4b());
        let expect_mw = (4 * 512 * 256 / 46) as f64 * 1.4;
        assert!((m.soa_power().as_milliwatts() - expect_mw).abs() < 1.5);
    }

    #[test]
    fn tuning_power_matches_paper_formula() {
        // B × 2 × M_c × 4 uW at 1 nm shift = 4*2*256*4 uW = 8.192 mW.
        let m = model(CometConfig::comet_4b());
        assert!((m.tuning_power().as_milliwatts() - 8.192).abs() < 1e-6);
    }

    #[test]
    fn power_falls_with_bit_density() {
        // Fig. 7: COMET-4b is chosen because its stack is the smallest.
        let totals: Vec<f64> = CometConfig::bit_density_sweep()
            .into_iter()
            .map(|c| model(c).stack().total().as_watts())
            .collect();
        assert!(
            totals[0] > totals[1],
            "1b {} <= 2b {}",
            totals[0],
            totals[1]
        );
        assert!(
            totals[1] > totals[2],
            "2b {} <= 4b {}",
            totals[1],
            totals[2]
        );
        // Halving the wavelength count should roughly halve the stack.
        let ratio = totals[0] / totals[2];
        assert!((3.0..=5.0).contains(&ratio), "1b/4b ratio {ratio}");
    }

    #[test]
    fn comet_4b_total_in_expected_decade() {
        let total = model(CometConfig::comet_4b()).stack().total().as_watts();
        assert!((15.0..=60.0).contains(&total), "total {total} W");
    }

    #[test]
    fn laser_and_soa_dominate() {
        // Fig. 8's observation: laser power is a significant contributor;
        // tuning is negligible.
        let s = model(CometConfig::comet_4b()).stack();
        assert!(s.laser > s.tuning * 100.0);
        assert!(s.soa > s.tuning * 100.0);
        let total = s.total();
        assert!((s.laser + s.soa) / total > 0.8);
    }

    #[test]
    fn stack_components_sum_to_total() {
        let s = model(CometConfig::comet_2b()).stack();
        let sum: Power = s.components().iter().map(|(_, p)| *p).sum();
        assert!((sum.as_watts() - s.total().as_watts()).abs() < 1e-12);
    }

    #[test]
    fn access_path_loss_is_moderate() {
        // The whole point of SOA placement: the laser only covers a fixed
        // few-dB path, not the row-dependent array losses.
        let m = model(CometConfig::comet_4b());
        let loss = m.access_path().total_loss(&m.config.optical);
        assert!((3.0..=9.0).contains(&loss.value()), "path loss {loss}");
    }
}
