//! A functional COMET memory: byte-addressable storage over MLC subarrays.
//!
//! Combines the Eq. (1)–(6) address mapping, the byte↔level packing, the
//! gain LUT and the level codec into a memory you can actually put data in
//! and get data out of — including through the lossy optical read path, so
//! integrity under loss compensation is testable end-to-end (COMET's
//! counterpart to the Fig. 2 corruption study).

use crate::arch::CometConfig;
use crate::cell::{decode_levels, encode_bytes, LevelCodec, Subarray};
use crate::lut::GainLut;
use crate::mapping::AddressMapper;
use comet_units::Decibels;
use memsim::{AddressMap, Interleave};
use std::collections::HashMap;
use std::fmt;

/// A write-verify pass found bytes that did not store correctly (stuck
/// cells, or losses past the decode margin).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteVerifyError {
    /// Byte offsets (relative to the written address) that failed.
    pub bad_offsets: Vec<u64>,
}

impl fmt::Display for WriteVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "write verification failed at {} byte offset(s), first at {}",
            self.bad_offsets.len(),
            self.bad_offsets.first().copied().unwrap_or(0)
        )
    }
}

impl std::error::Error for WriteVerifyError {}

/// A functional COMET memory instance.
///
/// Subarrays are materialized lazily (the full 8 Gbit array would be
/// gigabytes of host memory); untouched cells read as level 0.
///
/// # Examples
///
/// ```
/// use comet::{CometConfig, CometMemory};
///
/// let mut mem = CometMemory::new(CometConfig::comet_4b());
/// let data = b"phase-change photonics".to_vec();
/// mem.write(0x1000, &data);
/// assert_eq!(mem.read(0x1000, data.len()), data);
/// ```
#[derive(Debug, Clone)]
pub struct CometMemory {
    config: CometConfig,
    mapper: AddressMapper,
    addr_map: AddressMap,
    codec: LevelCodec,
    lut: GainLut,
    subarrays: HashMap<(u64, u64), Subarray>,
    /// Extra uncompensated loss injected on reads (fault injection).
    injected_loss: Decibels,
}

impl CometMemory {
    /// Creates an erased memory whose level codec comes from the
    /// configuration's cell model: the paper's transcribed levels in
    /// `Paper` mode (identical to [`LevelCodec::ideal`]), the
    /// physics-derived transmission grid in `Derived` mode.
    pub fn new(config: CometConfig) -> Self {
        let codec =
            LevelCodec::from_cell_model(config.cell_optics().as_ref(), config.bits_per_cell);
        Self::with_codec(config, codec)
    }

    /// Creates a memory with an explicit codec (e.g. derived from a
    /// physics-layer [`opcm_phys::ProgramTable`]).
    pub fn with_codec(config: CometConfig, codec: LevelCodec) -> Self {
        assert_eq!(
            codec.bits(),
            config.bits_per_cell,
            "codec bit density must match the configuration"
        );
        let mapper = AddressMapper::new(&config);
        // Paper mode keeps the published LUT granularity (52/12/46
        // entries); derived mode lets the physical level spacing set it.
        let lut = match config.cell_model {
            photonic::CellModelMode::Paper => {
                GainLut::for_bits(config.bits_per_cell, config.subarray_rows, &config.optical)
            }
            photonic::CellModelMode::Derived => GainLut::for_cell(
                config.cell_optics().as_ref(),
                config.bits_per_cell,
                config.subarray_rows,
                &config.optical,
            ),
        };
        let addr_map = AddressMap::new(
            1,
            config.banks,
            config.subarrays * config.subarray_rows,
            1,
            config.timing.access_bytes(),
            Interleave::RowBankColumnChannel,
        )
        .expect("validated config dimensions");
        CometMemory {
            config,
            mapper,
            addr_map,
            codec,
            lut,
            subarrays: HashMap::new(),
            injected_loss: Decibels::ZERO,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CometConfig {
        &self.config
    }

    /// Injects a fixed uncompensated optical loss into every subsequent
    /// read (fault injection for integrity studies).
    pub fn inject_read_loss(&mut self, loss: Decibels) {
        self.injected_loss = loss;
    }

    /// Number of subarrays materialized so far.
    pub fn touched_subarrays(&self) -> usize {
        self.subarrays.len()
    }

    fn subarray_entry(&mut self, bank: u64, subarray: u64) -> &mut Subarray {
        let rows = self.config.subarray_rows;
        let cols = self.config.subarray_cols;
        self.subarrays
            .entry((bank, subarray))
            .or_insert_with(|| Subarray::new(rows, cols))
    }

    /// Writes one cache line at a line-aligned address.
    ///
    /// # Panics
    ///
    /// Panics if `address` is not line-aligned or `data` is not exactly one
    /// line.
    pub fn write_line(&mut self, address: u64, data: &[u8]) {
        let line = self.config.timing.access_bytes() as usize;
        assert_eq!(data.len(), line, "line writes take exactly {line} bytes");
        assert_eq!(address % line as u64, 0, "address must be line-aligned");
        let flat = self.addr_map.decode(address);
        let loc = self.mapper.map(flat);
        let levels = encode_bytes(data, self.config.bits_per_cell);
        debug_assert_eq!(levels.len() as u64, self.config.cells_per_line());
        self.subarray_entry(loc.bank, loc.subarray)
            .write_span(loc.row, loc.column, &levels);
    }

    /// Reads one cache line through the optical path: per-cell
    /// transmittances suffer the row's LUT-residual loss (plus any injected
    /// fault loss), then decode to levels and bytes.
    pub fn read_line(&mut self, address: u64) -> Vec<u8> {
        let line = self.config.timing.access_bytes() as usize;
        assert_eq!(address % line as u64, 0, "address must be line-aligned");
        let flat = self.addr_map.decode(address);
        let loc = self.mapper.map(flat);
        let cells = self.config.cells_per_line() as usize;
        // Residual after LUT gain trim, plus injected fault loss. A
        // *negative* residual (slight overdrive) is clamped: detectors
        // saturate rather than over-report.
        let residual = self.lut.residual_loss(loc.row).max(Decibels::ZERO);
        let total_loss = residual + self.injected_loss;
        let codec = self.codec.clone();
        let rows = self.config.subarray_rows;
        let cols = self.config.subarray_cols;
        let sub = self
            .subarrays
            .entry((loc.bank, loc.subarray))
            .or_insert_with(|| Subarray::new(rows, cols));
        let levels = sub.read_span_with_loss(&codec, loc.row, loc.column, cells, total_loss);
        decode_levels(&levels, self.config.bits_per_cell)
    }

    /// Writes an arbitrary byte span (line-granular read-modify-write).
    pub fn write(&mut self, address: u64, data: &[u8]) {
        let line = self.config.timing.access_bytes();
        let mut cursor = 0usize;
        let mut addr = address;
        while cursor < data.len() {
            let base = addr / line * line;
            let offset = (addr - base) as usize;
            let take = ((line as usize) - offset).min(data.len() - cursor);
            let mut buf = self.read_line_raw(base);
            buf[offset..offset + take].copy_from_slice(&data[cursor..cursor + take]);
            self.write_line(base, &buf);
            cursor += take;
            addr += take as u64;
        }
    }

    /// Reads an arbitrary byte span through the optical path.
    pub fn read(&mut self, address: u64, len: usize) -> Vec<u8> {
        let line = self.config.timing.access_bytes();
        let mut out = Vec::with_capacity(len);
        let mut addr = address;
        while out.len() < len {
            let base = addr / line * line;
            let offset = (addr - base) as usize;
            let take = ((line as usize) - offset).min(len - out.len());
            let buf = self.read_line(base);
            out.extend_from_slice(&buf[offset..offset + take]);
            addr += take as u64;
        }
        out
    }

    /// Pins the cell backing byte-offset `cell` of the line at `address`
    /// to a stuck level (fault injection for write-verify studies).
    ///
    /// # Panics
    ///
    /// Panics if `address` is not line-aligned or `cell` exceeds the line's
    /// cell count.
    pub fn inject_stuck_cell(&mut self, address: u64, cell: u64, level: u8) {
        let line = self.config.timing.access_bytes();
        assert_eq!(address % line, 0, "address must be line-aligned");
        assert!(
            cell < self.config.cells_per_line(),
            "cell index out of range"
        );
        let flat = self.addr_map.decode(address);
        let loc = self.mapper.map(flat);
        self.subarray_entry(loc.bank, loc.subarray)
            .inject_stuck_cell(loc.row, loc.column + cell, level);
    }

    /// Writes a byte span and verifies it through the optical read path —
    /// the write-verify pass a PCM controller runs to catch worn-out
    /// (stuck) cells before they corrupt data silently.
    ///
    /// # Errors
    ///
    /// Returns the byte offsets (relative to `address`) that failed to
    /// verify. The data is still written to every healthy cell.
    pub fn write_verified(&mut self, address: u64, data: &[u8]) -> Result<(), WriteVerifyError> {
        self.write(address, data);
        let got = self.read(address, data.len());
        let bad_offsets: Vec<u64> = got
            .iter()
            .zip(data)
            .enumerate()
            .filter(|(_, (g, d))| g != d)
            .map(|(i, _)| i as u64)
            .collect();
        if bad_offsets.is_empty() {
            Ok(())
        } else {
            Err(WriteVerifyError { bad_offsets })
        }
    }

    /// Reads a line without the optical path (ground truth for RMW).
    fn read_line_raw(&mut self, address: u64) -> Vec<u8> {
        let flat = self.addr_map.decode(address);
        let loc = self.mapper.map(flat);
        let cells = self.config.cells_per_line() as usize;
        let rows = self.config.subarray_rows;
        let cols = self.config.subarray_cols;
        let sub = self
            .subarrays
            .entry((loc.bank, loc.subarray))
            .or_insert_with(|| Subarray::new(rows, cols));
        let levels = sub.read_span(loc.row, loc.column, cells).to_vec();
        decode_levels(&levels, self.config.bits_per_cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory() -> CometMemory {
        CometMemory::new(CometConfig::comet_4b())
    }

    #[test]
    fn derived_cell_model_memory_roundtrips() {
        use photonic::CellModelMode;
        // The physics-derived level grid stores and recovers data just
        // like the paper grid, and still tolerates sub-margin read loss.
        let cfg = CometConfig::comet_4b().with_cell_model(CellModelMode::Derived);
        let mut mem = CometMemory::new(cfg);
        let data: Vec<u8> = (0..64).map(|i| i * 3).collect();
        mem.write(0x40, &data);
        assert_eq!(mem.read(0x40, data.len()), data);
        mem.inject_read_loss(Decibels::new(0.05));
        assert_eq!(mem.read(0x40, data.len()), data);
    }

    #[test]
    fn line_roundtrip() {
        let mut mem = memory();
        let line: Vec<u8> = (0..128).collect();
        mem.write_line(0, &line);
        assert_eq!(mem.read_line(0), line);
    }

    #[test]
    fn unaligned_span_roundtrip() {
        let mut mem = memory();
        let data: Vec<u8> = (0..777).map(|i| (i * 31 % 251) as u8).collect();
        mem.write(1000, &data);
        assert_eq!(mem.read(1000, data.len()), data);
    }

    #[test]
    fn untouched_memory_reads_zeroish() {
        let mut mem = memory();
        // Level 0 everywhere decodes to 0x00 bytes.
        assert_eq!(mem.read(0x8000, 16), vec![0u8; 16]);
    }

    #[test]
    fn distinct_lines_do_not_alias() {
        let mut mem = memory();
        let a = vec![0xAA; 128];
        let b = vec![0x55; 128];
        mem.write_line(0, &a);
        mem.write_line(128, &b);
        mem.write_line(128 * 1024, &a);
        assert_eq!(mem.read_line(0), a);
        assert_eq!(mem.read_line(128), b);
        assert_eq!(mem.read_line(128 * 1024), a);
    }

    #[test]
    fn lut_compensated_reads_survive_all_rows() {
        // Data integrity across rows with different SOA-stage distances —
        // the core COMET reliability claim.
        let mut mem = memory();
        let line: Vec<u8> = (0..128).map(|i| (i * 7 % 256) as u8).collect();
        // Touch rows across several SOA periods via widely spaced lines.
        for k in 0..200u64 {
            mem.write_line(k * 128 * 37, &line);
        }
        for k in 0..200u64 {
            assert_eq!(mem.read_line(k * 128 * 37), line, "line {k}");
        }
    }

    #[test]
    fn injected_loss_corrupts_data() {
        let mut mem = memory();
        let line: Vec<u8> = (0..128).collect();
        mem.write_line(0, &line);
        mem.inject_read_loss(Decibels::new(2.0));
        assert_ne!(
            mem.read_line(0),
            line,
            "2 dB fault must corrupt 4-bit cells"
        );
        mem.inject_read_loss(Decibels::ZERO);
        assert_eq!(mem.read_line(0), line, "data itself is intact");
    }

    #[test]
    fn small_injected_loss_is_tolerated() {
        let mut mem = memory();
        let line: Vec<u8> = (0..128).rev().collect();
        mem.write_line(0, &line);
        // Below half the ~6% level spacing (~0.13 dB): still decodes.
        mem.inject_read_loss(Decibels::new(0.1));
        assert_eq!(mem.read_line(0), line);
    }

    #[test]
    fn lazy_materialization() {
        let mut mem = memory();
        assert_eq!(mem.touched_subarrays(), 0);
        mem.write_line(0, &[1u8; 128]);
        assert_eq!(mem.touched_subarrays(), 1);
        // A far-away line touches a different subarray.
        mem.write_line(1 << 24, &[2u8; 128]);
        assert_eq!(mem.touched_subarrays(), 2);
    }

    #[test]
    #[should_panic(expected = "line-aligned")]
    fn misaligned_line_write_rejected() {
        let mut mem = memory();
        mem.write_line(64, &[0u8; 128]);
    }

    #[test]
    fn write_verify_passes_on_healthy_cells() {
        let mut mem = memory();
        let data: Vec<u8> = (0..300).map(|i| (i % 256) as u8).collect();
        assert!(mem.write_verified(0x2000, &data).is_ok());
    }

    #[test]
    fn write_verify_catches_stuck_cells() {
        let mut mem = memory();
        // Pin cell 6 of line 0 at level 0xF: whatever is written, the cell
        // reads back 0xF. Cell 6 holds the high nibble of byte 3 (4 bits
        // per cell, MSB-first).
        mem.inject_stuck_cell(0, 6, 0xF);
        let data = vec![0u8; 128];
        let err = mem
            .write_verified(0, &data)
            .expect_err("stuck cell must fail verify");
        assert_eq!(err.bad_offsets, vec![3]);
        // The rest of the line stored fine.
        let got = mem.read(0, 128);
        assert_eq!(got[0], 0);
        assert_eq!(got[3], 0xF0);
        // An error formats usefully.
        assert!(err.to_string().contains("1 byte offset"));
    }

    #[test]
    fn stuck_cells_survive_rewrites() {
        let mut mem = memory();
        mem.inject_stuck_cell(0, 0, 0xA);
        for pattern in [0x00u8, 0xFF, 0x55] {
            mem.write(0, &[pattern; 16]);
            let got = mem.read(0, 1);
            // High nibble pinned at 0xA, low nibble takes the write.
            assert_eq!(got[0], 0xA0 | (pattern & 0x0F), "pattern {pattern:#x}");
        }
    }

    #[test]
    fn verify_after_repair_is_clean() {
        // A verify failure followed by remapping the data elsewhere (what a
        // controller's spare-line table would do) succeeds.
        let mut mem = memory();
        mem.inject_stuck_cell(0, 0, 0xC);
        let data: Vec<u8> = (0..128).collect();
        assert!(mem.write_verified(0, &data).is_err());
        // "Remap": same payload on a spare line.
        assert!(mem.write_verified(1 << 20, &data).is_ok());
    }
}
