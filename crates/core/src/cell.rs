//! Functional multi-level cells: level coding, byte packing and subarrays.
//!
//! The timing model ([`crate::CometDevice`]) answers *when*; this module
//! answers *what*: how user bytes become cell levels, how levels read back
//! as transmittances, and how read-out losses corrupt (or don't corrupt)
//! the decoded data. The corruption comparisons against the COSMOS
//! crossbar (paper Fig. 2) run on top of these primitives.

use comet_units::{Decibels, Transmittance};
use opcm_phys::ProgramTable;
use photonic::{CellOpticalModel, PaperCellModel};
use serde::{Deserialize, Serialize};

/// Maps level indices to read-out transmittances and back.
///
/// # Examples
///
/// ```
/// use comet_units::Decibels;
/// use comet::LevelCodec;
///
/// let codec = LevelCodec::ideal(4);
/// let t = codec.transmittance(7);
/// assert_eq!(codec.decode(t), 7);
/// // Half a level spacing of unexpected loss still decodes...
/// let drifted = codec.apply_loss(t, Decibels::new(0.1));
/// assert_eq!(codec.decode(drifted), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelCodec {
    bits: u8,
    /// Transmittance per level, index 0 = most transmissive.
    levels: Vec<f64>,
}

impl LevelCodec {
    /// An idealized codec: `2^bits` equally spaced levels from 0.95 down,
    /// matching the paper's ~6 % spacing at 4 bits. Equivalent to
    /// [`LevelCodec::from_cell_model`] over the paper-constants provider.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 6`.
    pub fn ideal(bits: u8) -> Self {
        Self::from_cell_model(&PaperCellModel::paper_constants(), bits)
    }

    /// A codec carrying the transmission levels of a circuit-layer cell
    /// model — the cross-layer hook: pass the physics-derived provider and
    /// every decode in this codec runs against real device optics.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 6`.
    pub fn from_cell_model(model: &dyn CellOpticalModel, bits: u8) -> Self {
        LevelCodec {
            bits,
            levels: model
                .transmission_levels(bits)
                .iter()
                .map(|t| t.value())
                .collect(),
        }
    }

    /// A codec carrying the exact transmittances of a generated
    /// physics-layer programming table.
    pub fn from_table(table: &ProgramTable) -> Self {
        LevelCodec {
            bits: table.bits,
            levels: table
                .levels
                .iter()
                .map(|l| l.transmittance.value())
                .collect(),
        }
    }

    /// A codec with explicit level transmittances (e.g. the corrected
    /// COSMOS 2-bit levels 0.99/0.90/0.81/0.72).
    ///
    /// # Panics
    ///
    /// Panics unless the level count is a power of two matching a whole
    /// number of bits, strictly decreasing.
    pub fn from_levels(levels: Vec<f64>) -> Self {
        let n = levels.len();
        assert!(
            n.is_power_of_two() && n >= 2,
            "level count must be a power of two"
        );
        assert!(
            levels.windows(2).all(|w| w[0] > w[1]),
            "levels must strictly decrease"
        );
        LevelCodec {
            bits: n.trailing_zeros() as u8,
            levels,
        }
    }

    /// Bits per cell.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of levels.
    pub fn level_count(&self) -> u16 {
        self.levels.len() as u16
    }

    /// Spacing between the first two levels (≈ uniform).
    pub fn spacing(&self) -> f64 {
        self.levels[0] - self.levels[1]
    }

    /// The nominal transmittance of a level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn transmittance(&self, level: u8) -> Transmittance {
        Transmittance::new(self.levels[level as usize])
    }

    /// Applies an optical loss to an observed transmittance.
    pub fn apply_loss(&self, t: Transmittance, loss: Decibels) -> Transmittance {
        Transmittance::new(t.value() * loss.to_linear())
    }

    /// Decodes an observed transmittance to the nearest level.
    pub fn decode(&self, observed: Transmittance) -> u8 {
        let mut best = 0usize;
        let mut best_err = f64::INFINITY;
        for (i, &t) in self.levels.iter().enumerate() {
            let err = (t - observed.value()).abs();
            if err < best_err {
                best_err = err;
                best = i;
            }
        }
        best as u8
    }
}

/// Packs bytes into cell levels at `bits` per cell (MSB-first).
///
/// # Panics
///
/// Panics unless `bits` is 1, 2 or 4 (the even densities the paper
/// considers practical).
///
/// # Examples
///
/// ```
/// use comet::{encode_bytes, decode_levels};
///
/// let data = [0xA5u8, 0x3C];
/// let levels = encode_bytes(&data, 4);
/// assert_eq!(levels, vec![0xA, 0x5, 0x3, 0xC]);
/// assert_eq!(decode_levels(&levels, 4), data);
/// ```
pub fn encode_bytes(bytes: &[u8], bits: u8) -> Vec<u8> {
    assert!(
        matches!(bits, 1 | 2 | 4),
        "bit densities are multiples of two up to 4 (paper Section IV.A)"
    );
    let per_byte = 8 / bits as usize;
    let mask = (1u16 << bits) as u8 - 1;
    let mut out = Vec::with_capacity(bytes.len() * per_byte);
    for &b in bytes {
        for i in (0..per_byte).rev() {
            out.push((b >> (i * bits as usize)) & mask);
        }
    }
    out
}

/// Unpacks cell levels back into bytes (inverse of [`encode_bytes`]).
///
/// # Panics
///
/// Panics on unsupported densities or a level count that is not a whole
/// number of bytes.
pub fn decode_levels(levels: &[u8], bits: u8) -> Vec<u8> {
    assert!(matches!(bits, 1 | 2 | 4), "unsupported bit density");
    let per_byte = 8 / bits as usize;
    assert!(
        levels.len() % per_byte == 0,
        "level count {} is not a whole number of bytes",
        levels.len()
    );
    levels
        .chunks(per_byte)
        .map(|chunk| {
            chunk.iter().fold(0u8, |acc, &l| {
                (acc << bits) | (l & ((1u16 << bits) as u8 - 1))
            })
        })
        .collect()
}

/// A functional subarray: an `rows × cols` grid of level-holding cells.
///
/// Supports stuck-cell fault injection: a stuck cell holds its fault level
/// regardless of what is programmed into it (endurance failures leave GST
/// cells pinned near one phase), which is what a controller's write-verify
/// pass exists to catch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subarray {
    rows: u64,
    cols: u64,
    levels: Vec<u8>,
    /// Sparse stuck-cell list: `(flat index, stuck level)`.
    stuck: Vec<(usize, u8)>,
}

impl Subarray {
    /// Creates an erased (level 0) subarray.
    pub fn new(rows: u64, cols: u64) -> Self {
        Subarray {
            rows,
            cols,
            levels: vec![0; (rows * cols) as usize],
            stuck: Vec::new(),
        }
    }

    /// Pins a cell to `level` forever (fault injection). Subsequent writes
    /// to the cell are silently absorbed, as a worn-out GST cell would.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn inject_stuck_cell(&mut self, row: u64, col: u64, level: u8) {
        let i = self.index(row, col);
        self.levels[i] = level;
        if let Some(entry) = self.stuck.iter_mut().find(|(j, _)| *j == i) {
            entry.1 = level;
        } else {
            self.stuck.push((i, level));
        }
    }

    /// Number of injected stuck cells.
    pub fn stuck_cells(&self) -> usize {
        self.stuck.len()
    }

    /// Re-pins every stuck cell after a write that may have overwritten
    /// its stored value.
    fn reassert_stuck(&mut self, start: usize, end: usize) {
        for &(i, level) in &self.stuck {
            if i >= start && i < end {
                self.levels[i] = level;
            }
        }
    }

    /// Rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> u64 {
        self.cols
    }

    fn index(&self, row: u64, col: u64) -> usize {
        assert!(row < self.rows, "row {row} out of range");
        assert!(col < self.cols, "col {col} out of range");
        (row * self.cols + col) as usize
    }

    /// The stored level of one cell.
    pub fn level(&self, row: u64, col: u64) -> u8 {
        self.levels[self.index(row, col)]
    }

    /// Programs one cell's level (ineffective on stuck cells).
    pub fn set_level(&mut self, row: u64, col: u64, level: u8) {
        let i = self.index(row, col);
        self.levels[i] = level;
        self.reassert_stuck(i, i + 1);
    }

    /// Writes a span of levels along a row starting at `col` (stuck cells
    /// in the span keep their fault level).
    ///
    /// # Panics
    ///
    /// Panics if the span exceeds the row.
    pub fn write_span(&mut self, row: u64, col: u64, levels: &[u8]) {
        let start = self.index(row, col);
        assert!(
            col + levels.len() as u64 <= self.cols,
            "span exceeds row width"
        );
        self.levels[start..start + levels.len()].copy_from_slice(levels);
        self.reassert_stuck(start, start + levels.len());
    }

    /// Reads a span of levels along a row.
    pub fn read_span(&self, row: u64, col: u64, count: usize) -> &[u8] {
        let start = self.index(row, col);
        assert!(col + count as u64 <= self.cols, "span exceeds row width");
        &self.levels[start..start + count]
    }

    /// Reads a span through the optical path: each level becomes a
    /// transmittance, suffers `loss`, and is re-decoded. With zero residual
    /// loss this is the identity; with enough loss, adjacent levels merge.
    pub fn read_span_with_loss(
        &self,
        codec: &LevelCodec,
        row: u64,
        col: u64,
        count: usize,
        loss: Decibels,
    ) -> Vec<u8> {
        self.read_span(row, col, count)
            .iter()
            .map(|&l| codec.decode(codec.apply_loss(codec.transmittance(l), loss)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip_all_densities() {
        let data: Vec<u8> = (0..=255).collect();
        for bits in [1u8, 2, 4] {
            let levels = encode_bytes(&data, bits);
            assert_eq!(levels.len(), data.len() * (8 / bits as usize));
            assert!(levels.iter().all(|&l| l < (1 << bits)));
            assert_eq!(decode_levels(&levels, bits), data);
        }
    }

    #[test]
    fn ideal_codec_roundtrip() {
        for bits in [1u8, 2, 4] {
            let codec = LevelCodec::ideal(bits);
            for level in 0..codec.level_count() as u8 {
                assert_eq!(codec.decode(codec.transmittance(level)), level);
            }
        }
    }

    #[test]
    fn codec_tolerates_sub_margin_loss() {
        let codec = LevelCodec::ideal(4);
        // Residual loss below half a spacing never corrupts any level.
        let t7 = codec.transmittance(7);
        let safe = codec.apply_loss(t7, Decibels::new(0.1));
        assert_eq!(codec.decode(safe), 7);
    }

    #[test]
    fn codec_corrupts_past_margin() {
        let codec = LevelCodec::ideal(4);
        // 1.5 dB on a mid transmittance shifts ~2 levels at 6% spacing.
        let t4 = codec.transmittance(4);
        let lost = codec.apply_loss(t4, Decibels::new(1.5));
        assert_ne!(codec.decode(lost), 4);
    }

    #[test]
    fn ideal_codec_is_the_paper_cell_model() {
        // `ideal` is defined as the paper-constants provider; the derived
        // provider gives a close but distinct grid.
        for bits in [1u8, 2, 4] {
            let ideal = LevelCodec::ideal(bits);
            let paper = LevelCodec::from_cell_model(&PaperCellModel::paper_constants(), bits);
            assert_eq!(ideal, paper);
            let derived =
                LevelCodec::from_cell_model(&photonic::DerivedCellModel::comet_gst(), bits);
            assert_eq!(derived.bits(), bits);
            assert_ne!(derived, ideal, "derived grid should differ (b={bits})");
            // Both decode their own levels exactly.
            for level in 0..derived.level_count() as u8 {
                assert_eq!(derived.decode(derived.transmittance(level)), level);
            }
        }
    }

    #[test]
    fn cosmos_levels_constructor() {
        let codec = LevelCodec::from_levels(vec![0.99, 0.90, 0.81, 0.72]);
        assert_eq!(codec.bits(), 2);
        assert!((codec.spacing() - 0.09).abs() < 1e-12);
        assert_eq!(codec.decode(Transmittance::new(0.89)), 1);
    }

    #[test]
    #[should_panic(expected = "strictly decrease")]
    fn rejects_non_monotone_levels() {
        let _ = LevelCodec::from_levels(vec![0.9, 0.95]);
    }

    #[test]
    fn subarray_write_read() {
        let mut s = Subarray::new(8, 16);
        s.write_span(3, 4, &[1, 2, 3, 4]);
        assert_eq!(s.read_span(3, 4, 4), &[1, 2, 3, 4]);
        assert_eq!(s.level(3, 3), 0);
        assert_eq!(s.level(3, 4), 1);
    }

    #[test]
    fn lossless_optical_read_is_identity() {
        let codec = LevelCodec::ideal(4);
        let mut s = Subarray::new(4, 16);
        let levels: Vec<u8> = (0..16).collect();
        s.write_span(0, 0, &levels);
        let read = s.read_span_with_loss(&codec, 0, 0, 16, Decibels::ZERO);
        assert_eq!(read, levels);
    }

    #[test]
    fn lossy_optical_read_corrupts() {
        let codec = LevelCodec::ideal(4);
        let mut s = Subarray::new(4, 16);
        let levels: Vec<u8> = (0..16).collect();
        s.write_span(0, 0, &levels);
        let read = s.read_span_with_loss(&codec, 0, 0, 16, Decibels::new(2.0));
        assert_ne!(read, levels, "2 dB of uncompensated loss must corrupt");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subarray_bounds_checked() {
        let s = Subarray::new(4, 4);
        let _ = s.level(4, 0);
    }
}
