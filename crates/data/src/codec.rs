//! The MLC line codec: bytes ↔ Gray-coded cell levels.
//!
//! A `bits`-per-cell memory stores a cache line as a sequence of level
//! indices. The codec walks the line as a bitstream (MSB-first), slices it
//! into `bits`-wide chunks, and maps each chunk to its **Gray-coded**
//! level — adjacent levels differ in exactly one data bit, so a one-level
//! read-out drift corrupts one bit instead of up to `bits` (the standard
//! MLC assignment; the paper's Fig. 6 grid is equally spaced in
//! transmittance, which makes one-level drift the dominant error).
//!
//! The round trip is exact for any byte content and any `bits` in 1..=6
//! (the [`opcm_phys::ProgramTable`] range), including non-divisors of 8:
//! the final partial chunk is zero-padded on encode and the pad is
//! discarded on decode.

/// Binary-reflected Gray code of `v` (within `bits` bits).
fn gray(v: u8) -> u8 {
    v ^ (v >> 1)
}

/// Inverse Gray code: recovers `v` from `gray(v)`.
fn ungray(mut g: u8) -> u8 {
    let mut v = g;
    while g > 0 {
        g >>= 1;
        v ^= g;
    }
    v
}

/// Packs line bytes into MLC levels and back.
///
/// # Examples
///
/// ```
/// use comet_data::LineCodec;
///
/// let codec = LineCodec::new(4);
/// let data = [0xDE, 0xAD, 0xBE, 0xEF];
/// let levels = codec.encode(&data);
/// assert_eq!(levels.len(), 8); // two 4-bit cells per byte
/// assert_eq!(codec.decode(&levels, data.len()), data);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCodec {
    bits: u8,
}

impl LineCodec {
    /// A codec for `bits`-per-cell storage.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` is in 1..=6 (the programming-table range).
    pub fn new(bits: u8) -> Self {
        assert!((1..=6).contains(&bits), "bits per cell must be in 1..=6");
        LineCodec { bits }
    }

    /// Bits per cell.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of levels a cell distinguishes.
    pub fn levels(&self) -> u8 {
        1 << self.bits
    }

    /// Cells needed to store `len` bytes.
    pub fn cells_for(&self, len: usize) -> usize {
        (len * 8).div_ceil(self.bits as usize)
    }

    /// Encodes bytes into one Gray-coded level per cell.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        let b = self.bits as usize;
        let total_bits = data.len() * 8;
        let mut levels = Vec::with_capacity(self.cells_for(data.len()));
        let mut bit = 0usize;
        while bit < total_bits {
            let mut chunk = 0u8;
            for k in 0..b {
                chunk <<= 1;
                let i = bit + k;
                if i < total_bits {
                    let byte = data[i / 8];
                    chunk |= (byte >> (7 - i % 8)) & 1;
                }
                // Past the end: zero pad (the shift already inserted 0).
            }
            levels.push(gray(chunk));
            bit += b;
        }
        levels
    }

    /// Decodes levels back into `len` bytes (the inverse of
    /// [`LineCodec::encode`] for `levels = encode(data)`, `len = data.len()`).
    pub fn decode(&self, levels: &[u8], len: usize) -> Vec<u8> {
        let b = self.bits as usize;
        let mut data = vec![0u8; len];
        let total_bits = len * 8;
        for (cell, &g) in levels.iter().enumerate() {
            let v = ungray(g);
            for k in 0..b {
                let i = cell * b + k;
                if i >= total_bits {
                    break;
                }
                let bit = (v >> (b - 1 - k)) & 1;
                data[i / 8] |= bit << (7 - i % 8);
            }
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_is_a_bijection_with_unit_steps() {
        for bits in 1..=6u8 {
            let n = 1u16 << bits;
            for v in 0..n as u8 {
                assert_eq!(ungray(gray(v)), v);
            }
            // Adjacent codes differ in exactly one bit.
            for v in 0..(n - 1) as u8 {
                let d = gray(v) ^ gray(v + 1);
                assert_eq!(d.count_ones(), 1, "gray({v})^gray({})", v + 1);
            }
        }
    }

    #[test]
    fn roundtrip_all_bit_widths() {
        let data: Vec<u8> = (0..=255u8).cycle().take(64).collect();
        for bits in 1..=6u8 {
            let codec = LineCodec::new(bits);
            let levels = codec.encode(&data);
            assert_eq!(levels.len(), codec.cells_for(data.len()));
            assert!(levels.iter().all(|&l| l < codec.levels()));
            assert_eq!(codec.decode(&levels, data.len()), data, "bits={bits}");
        }
    }

    #[test]
    fn cell_counts() {
        assert_eq!(LineCodec::new(4).cells_for(64), 128);
        assert_eq!(LineCodec::new(1).cells_for(64), 512);
        assert_eq!(LineCodec::new(3).cells_for(64), 171); // 512 bits / 3, ceil
        assert_eq!(LineCodec::new(2).cells_for(0), 0);
    }

    #[test]
    fn nibble_encoding_is_msb_first() {
        let codec = LineCodec::new(4);
        let levels = codec.encode(&[0xA3]);
        assert_eq!(levels, vec![gray(0xA), gray(0x3)]);
    }
}
