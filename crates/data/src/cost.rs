//! Per-transition write costs derived from the physics layer.
//!
//! [`opcm_phys::ProgramTable`] already knows, per MLC level, the pulse
//! that programs it *from the reset state* — energy and duration from the
//! inverted optics+thermal model (the paper's Fig. 6, and the
//! per-level-transition measurements of Sevison et al.'s 2-dimensional
//! 4-bit GST memory). [`TransitionCostModel`] turns that table into a
//! level→level price:
//!
//! * **Along the programming direction** (toward the state writes move
//!   the cell — crystallizing in amorphous-reset mode), programming is
//!   cumulative: continuing from level `a` to a deeper level `b` costs the
//!   pulse *difference* `E(b) − E(a)` (the table's energies are monotone
//!   along this axis, pinned by `opcm-phys` tests).
//! * **Against it**, the cell must be reset first: `reset + E(b)`.
//! * Either way the price is capped at the **via-reset** path, so no
//!   transition ever costs more than erase-and-rewrite.
//!
//! A content-oblivious write prices every cell at the via-reset path —
//! the device cannot skip the erase without reading first — which is what
//! makes DCW's read-modify-compare a strict win: a conserved cell costs
//! one read probe instead of a full reset+program.

use comet_units::{Energy, Time};
use opcm_phys::{CellThermalModel, ProgramMode, ProgramTable};
use std::fmt;

/// A `(energy, latency)` price pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Price {
    /// Pulse energy.
    pub energy: Energy,
    /// Pulse duration (cells program in parallel; callers take the max).
    pub latency: Time,
}

impl Price {
    /// The zero price (conserved cell).
    pub const ZERO: Price = Price {
        energy: Energy::ZERO,
        latency: Time::ZERO,
    };

    fn add(self, other: Price) -> Price {
        Price {
            energy: self.energy + other.energy,
            latency: self.latency + other.latency,
        }
    }
}

/// Level→level write prices for one cell technology.
///
/// # Examples
///
/// ```no_run
/// use comet_data::TransitionCostModel;
/// use comet_units::Energy;
///
/// let costs = TransitionCostModel::gst(4);
/// // A conserved cell is free; every real transition costs energy.
/// assert_eq!(costs.transition(3, 3).energy, Energy::ZERO);
/// assert!(costs.transition(3, 9).energy > Energy::ZERO);
/// // No transition beats erase-and-rewrite.
/// assert!(costs.transition(9, 3).energy <= costs.oblivious(3).energy);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionCostModel {
    /// Bits per cell.
    bits: u8,
    /// Per-level program price from the reset state, index = level.
    program: Vec<Price>,
    /// The reset (erase) price.
    reset: Price,
    /// The level of the reset state (0 in amorphous-reset mode,
    /// `levels-1` in crystalline-reset mode).
    reset_level: u8,
    /// Per-cell read probe price (the RMW overhead DCW-class policies pay
    /// on every cell of every write).
    read: Price,
}

impl TransitionCostModel {
    /// Derives the price matrix from a generated programming table. The
    /// read probe defaults to the COMET read pulse (0.1 mW × 10 ns = 1 pJ).
    pub fn from_program_table(table: &ProgramTable) -> Self {
        let program = table
            .levels
            .iter()
            .map(|l| Price {
                energy: l.energy(),
                latency: l.latency(),
            })
            .collect();
        let reset_level = match table.mode {
            ProgramMode::AmorphousReset => 0,
            ProgramMode::CrystallineReset => (table.levels.len() - 1) as u8,
        };
        TransitionCostModel {
            bits: table.bits,
            program,
            reset: Price {
                energy: table.reset.energy(),
                latency: table.reset.pulse.duration,
            },
            reset_level,
            read: Price {
                energy: Energy::from_picojoules(1.0),
                latency: Time::from_nanos(10.0),
            },
        }
    }

    /// The workspace's reference model: the COMET GST cell programmed in
    /// amorphous-reset mode (the paper's Fig. 6 case 2) at `bits`/cell.
    /// The table generation is memoized process-wide by `opcm-phys`, so
    /// repeated construction is cheap.
    ///
    /// # Panics
    ///
    /// Panics if the cell cannot host `2^bits` distinguishable levels
    /// (GST supports up to 4 bits).
    pub fn gst(bits: u8) -> Self {
        let table = ProgramTable::generate(
            &CellThermalModel::comet_gst(),
            ProgramMode::AmorphousReset,
            bits,
        )
        .expect("the COMET GST cell hosts up to 4 bits/cell");
        Self::from_program_table(&table)
    }

    /// Bits per cell.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of levels.
    pub fn levels(&self) -> u8 {
        self.program.len() as u8
    }

    /// The per-cell read probe price.
    pub fn read_probe(&self) -> Price {
        self.read
    }

    /// The erase (reset) price — also the Flip-N-Write flip margin: a
    /// flip must bank at least one erase's worth of energy.
    pub fn reset_price(&self) -> Price {
        self.reset
    }

    /// The level the erased array sits at (0 for amorphous-reset tables,
    /// `levels - 1` for crystalline-reset ones).
    pub fn reset_level(&self) -> u8 {
        self.reset_level
    }

    /// Whether programming moves cells from `from` toward `to` without an
    /// intervening reset (cumulative pulses).
    fn along_programming_axis(&self, from: u8, to: u8) -> bool {
        if self.reset_level == 0 {
            to >= from
        } else {
            to <= from
        }
    }

    /// The price of moving one cell from level `old` to level `new`:
    /// zero when conserved, the cumulative pulse difference along the
    /// programming direction, and the via-reset path otherwise — never
    /// more than [`TransitionCostModel::oblivious`].
    pub fn transition(&self, old: u8, new: u8) -> Price {
        assert!(old < self.levels() && new < self.levels(), "level range");
        if old == new {
            return Price::ZERO;
        }
        let via_reset = self.oblivious(new);
        if self.along_programming_axis(old, new) {
            let (a, b) = (self.program[old as usize], self.program[new as usize]);
            let direct = Price {
                energy: (b.energy - a.energy).max(Energy::ZERO),
                latency: (b.latency - a.latency).max(Time::ZERO),
            };
            if direct.energy <= via_reset.energy {
                return direct;
            }
        }
        via_reset
    }

    /// The content-oblivious per-cell price: erase, then program the
    /// target level from reset — what a write costs when the device does
    /// not know the cell's current state.
    pub fn oblivious(&self, new: u8) -> Price {
        assert!(new < self.levels(), "level range");
        self.reset.add(self.program[new as usize])
    }

    /// The worst per-cell price in the matrix (used to price writes whose
    /// content is unknown).
    pub fn worst_case(&self) -> Price {
        let energy = self
            .program
            .iter()
            .map(|p| p.energy)
            .fold(Energy::ZERO, Energy::max);
        let latency = self
            .program
            .iter()
            .map(|p| p.latency)
            .fold(Time::ZERO, Time::max);
        self.reset.add(Price { energy, latency })
    }
}

impl fmt::Display for TransitionCostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-level transition costs (reset {:.0} pJ, worst program {:.0} pJ)",
            self.levels(),
            self.reset.energy.as_picojoules(),
            self.worst_case().energy.as_picojoules() - self.reset.energy.as_picojoules(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn model() -> &'static TransitionCostModel {
        static MODEL: OnceLock<TransitionCostModel> = OnceLock::new();
        MODEL.get_or_init(|| TransitionCostModel::gst(4))
    }

    #[test]
    fn conserved_cells_are_free_and_transitions_are_not() {
        let m = model();
        assert_eq!(m.levels(), 16);
        for l in 0..16 {
            assert_eq!(m.transition(l, l), Price::ZERO);
        }
        // Deeper crystallization from a shallower level costs the delta.
        let t = m.transition(2, 10);
        assert!(t.energy > Energy::ZERO);
        assert!(t.latency > Time::ZERO);
    }

    #[test]
    fn no_transition_beats_erase_and_rewrite() {
        let m = model();
        for old in 0..16u8 {
            for new in 0..16u8 {
                let t = m.transition(old, new);
                let o = m.oblivious(new);
                assert!(
                    t.energy <= o.energy,
                    "{old}->{new}: {} > {}",
                    t.energy,
                    o.energy
                );
                assert!(o.energy <= m.worst_case().energy);
            }
        }
    }

    #[test]
    fn amorphizing_transitions_pay_the_reset() {
        let m = model();
        // Going back toward amorphous (lower level) requires erase.
        let back = m.transition(12, 3);
        assert_eq!(back, m.oblivious(3));
        assert!(back.energy >= m.transition(0, 3).energy);
    }

    #[test]
    fn cumulative_pulses_compose() {
        let m = model();
        // Programming 0 -> a -> b along the axis costs the same energy as
        // 0 -> b directly (telescoping deltas).
        let direct = m.transition(0, 9).energy;
        let stepped = m.transition(0, 4).energy + m.transition(4, 9).energy;
        assert!((direct.as_picojoules() - stepped.as_picojoules()).abs() < 1e-6);
    }

    #[test]
    fn read_probe_is_orders_cheaper_than_a_reset() {
        let m = model();
        assert!(m.read_probe().energy.as_picojoules() * 20.0 < m.reset.energy.as_picojoules());
    }
}
