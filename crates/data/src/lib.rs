//! `comet-data` — the data-content-aware data plane.
//!
//! Until this crate, every write in the stack cost a flat `write_line`
//! energy and requests carried no content, so the biggest PCM lever the
//! literature names — *most written bits don't change* — was invisible to
//! every figure the workspace produces. `comet-data` threads real line
//! payloads through the whole stack and prices writes from them:
//!
//! * [`PayloadSpec`] / [`PayloadGen`] — seeded payload sources with
//!   controllable entropy: all-zero, uniform, sparse in-place updates, a
//!   DOTA transformer-weight distribution (fp16, DeiT init scale via
//!   [`PayloadSpec::transformer`]), and complement-heavy toggling;
//! * [`LineCodec`] — bytes ↔ Gray-coded MLC levels, `bits`-aware, exact
//!   round trip for every width the programming tables support;
//! * [`TransitionCostModel`] — level→level write prices derived from the
//!   physics layer's [`opcm_phys::ProgramTable`] (cumulative pulses along
//!   the programming direction, erase-and-rewrite against it), replacing
//!   the flat constant;
//! * [`DataWriteModel`] — the [`memsim::WritePricer`] implementing the
//!   write-reduction policies of the DCW/Flip-N-Write literature
//!   ([`DataPolicy::Oblivious`] | [`DataPolicy::Dcw`] |
//!   [`DataPolicy::DcwFnw`]).
//!
//! Integration: `memsim` requests carry an optional [`memsim::LineData`]
//! and the EPCM device dispatches to a pricer over a backing line store;
//! `comet-serve` tenants source payloads online (and the batch stage
//! merges them on same-line coalescing); `comet-lab` registers the
//! `EPCM-oblivious`/`EPCM-DCW`/`EPCM-DCW-FNW` devices and the
//! policy/entropy axes; `comet-bench`'s `fig_write_energy_vs_entropy`
//! plots write energy per policy across payload entropy and asserts
//! DCW+FNW ≤ DCW ≤ oblivious at every point.
//!
//! # Quick start
//!
//! ```no_run
//! use comet_data::{DataPolicy, DataWriteModel, PayloadSpec};
//! use memsim::{EpcmConfig, EpcmDevice, WritePricer};
//!
//! let pricer = DataWriteModel::gst(4, DataPolicy::Dcw);
//! let mut gen = PayloadSpec::SparseUpdate { flip_fraction: 0.05 }.instantiate(42);
//! let line = gen.next_line(0x80, 64);
//! let priced = pricer.price_write(None, &line);
//! assert!(priced.cost.cells_written <= priced.cost.cells_total);
//!
//! // Or plug it into the simulator wholesale:
//! let _dev = EpcmDevice::with_pricer(EpcmConfig::epcm_mm(), Box::new(pricer));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod codec;
mod cost;
mod payload;
mod policy;

pub use codec::LineCodec;
pub use cost::{Price, TransitionCostModel};
pub use payload::{attach_payloads, rewrite_intensity, sample_lines, PayloadGen, PayloadSpec};
pub use policy::{DataPolicy, DataWriteModel};
