//! Seeded payload generators with controllable entropy.
//!
//! Every figure the data plane produces sweeps *what the writes contain*,
//! so payloads are first-class, declarative and seeded exactly like the
//! traffic shapes: a [`PayloadSpec`] is the serializable description (it
//! rides on serve tenants and in campaign spec files) and
//! [`PayloadSpec::instantiate`] builds the deterministic [`PayloadGen`]
//! that materializes one [`LineData`] per write.
//!
//! The sources span the entropy range the DCW/Flip-N-Write literature
//! cares about:
//!
//! * [`PayloadSpec::Zero`] — all-zero lines (logging/zeroing traffic; the
//!   degenerate low-entropy floor where nearly every cell is conserved);
//! * [`PayloadSpec::SparseUpdate`] — each write mutates a small fraction
//!   of the line's bytes in place (counters, in-place field updates — the
//!   regime DCW was designed for);
//! * [`PayloadSpec::TransformerWeights`] — fp16 weights drawn from a
//!   zero-mean bell distribution at a DOTA model's initialization scale
//!   (checkpoint/weight-streaming traffic: structured exponent bytes,
//!   near-uniform mantissas);
//! * [`PayloadSpec::ToggleWords`] — every write complements the line
//!   (bitmap inversion / toggling flags: the Flip-N-Write showcase);
//! * [`PayloadSpec::Uniform`] — uniform random bytes (encrypted or
//!   compressed traffic; the max-entropy ceiling where content-awareness
//!   helps least).

use dota::TransformerWorkload;
use memsim::{LineData, MemOp, MemRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;

/// A declarative, serializable payload source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PayloadSpec {
    /// All-zero lines.
    Zero,
    /// Each write to a line mutates `flip_fraction` of its bytes in place
    /// (at least one), leaving the rest as last written.
    SparseUpdate {
        /// Fraction of the line's bytes rewritten per store, in (0, 1].
        flip_fraction: f64,
    },
    /// fp16 weights from a zero-mean bell distribution with the given
    /// standard deviation (see [`PayloadSpec::transformer`]).
    TransformerWeights {
        /// Weight standard deviation.
        std: f64,
    },
    /// Every write complements the previous line content.
    ToggleWords,
    /// Uniform random bytes.
    Uniform,
}

impl PayloadSpec {
    /// The entropy sweep in write-intensity order: zero, sparse (5 %),
    /// transformer weights (DeiT-Base), toggle, uniform.
    pub fn entropy_sweep() -> Vec<PayloadSpec> {
        vec![
            PayloadSpec::Zero,
            PayloadSpec::SparseUpdate {
                flip_fraction: 0.05,
            },
            PayloadSpec::transformer(&TransformerWorkload::deit_base()),
            PayloadSpec::ToggleWords,
            PayloadSpec::Uniform,
        ]
    }

    /// Weight payloads at a DOTA model's initialization scale: DeiT
    /// truncated-normal init, std = (2 / (5·d))^0.5 with the family's
    /// hidden dimension recovered from the parameter count.
    pub fn transformer(model: &TransformerWorkload) -> PayloadSpec {
        // DeiT-T/S/B hidden dims; anything larger extrapolates to 768.
        let hidden: f64 = match model.parameters {
            p if p <= 10_000_000 => 192.0,
            p if p <= 40_000_000 => 384.0,
            _ => 768.0,
        };
        PayloadSpec::TransformerWeights {
            std: (2.0 / (5.0 * hidden)).sqrt(),
        }
    }

    /// A compact report label (`zero`, `sparse-0.05`, `weights`, `toggle`,
    /// `uniform`).
    pub fn label(&self) -> String {
        match self {
            PayloadSpec::Zero => "zero".into(),
            PayloadSpec::SparseUpdate { flip_fraction } => format!("sparse-{flip_fraction}"),
            PayloadSpec::TransformerWeights { .. } => "weights".into(),
            PayloadSpec::ToggleWords => "toggle".into(),
            PayloadSpec::Uniform => "uniform".into(),
        }
    }

    /// Builds the seeded generator.
    pub fn instantiate(&self, seed: u64) -> PayloadGen {
        PayloadGen {
            spec: *self,
            rng: StdRng::seed_from_u64(seed ^ 0xDA7A_0DA7_A0DA_7A0D),
            last: HashMap::new(),
        }
    }
}

impl fmt::Display for PayloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Encodes `x` as IEEE 754 binary16 bits (mantissa truncation via the f32
/// path — bit-exactness against a reference half library is not needed
/// here, only a faithful byte distribution; overflow saturates to ±inf,
/// which never occurs at weight scales).
fn f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32 - 127;
    let mantissa = bits & 0x7F_FFFF;
    if exp < -24 {
        return sign; // underflow to signed zero
    }
    if exp < -14 {
        // Subnormal half: implicit bit joins the mantissa.
        let shift = (-14 - exp) as u32;
        let sub = (0x80_0000 | mantissa) >> (13 + shift);
        return sign | sub as u16;
    }
    if exp > 15 {
        return sign | 0x7C00; // infinity
    }
    sign | (((exp + 15) as u16) << 10) | (mantissa >> 13) as u16
}

/// A deterministic per-seed payload stream.
///
/// Stateful sources ([`PayloadSpec::SparseUpdate`],
/// [`PayloadSpec::ToggleWords`]) remember the last line written per
/// address, so consecutive stores to one line relate the way the workload
/// intends; the memory is bounded by the workload footprint's line count.
#[derive(Debug, Clone)]
pub struct PayloadGen {
    spec: PayloadSpec,
    rng: StdRng,
    last: HashMap<u64, LineData>,
}

impl PayloadGen {
    /// The spec this generator was built from.
    pub fn spec(&self) -> PayloadSpec {
        self.spec
    }

    /// The next payload for a store of `line_bytes` bytes at `address`.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` exceeds [`memsim::MAX_LINE_BYTES`].
    pub fn next_line(&mut self, address: u64, line_bytes: u64) -> LineData {
        let len = line_bytes as usize;
        match self.spec {
            PayloadSpec::Zero => LineData::zeroes(len),
            PayloadSpec::Uniform => {
                let bytes: Vec<u8> = (0..len)
                    .map(|_| self.rng.gen_range(0u16..256) as u8)
                    .collect();
                LineData::from_bytes(&bytes)
            }
            PayloadSpec::SparseUpdate { flip_fraction } => {
                let mut bytes = match self.last.get(&address) {
                    Some(prev) => prev.bytes().to_vec(),
                    None => (0..len)
                        .map(|_| self.rng.gen_range(0u16..256) as u8)
                        .collect(),
                };
                bytes.resize(len, 0);
                let touches = ((len as f64 * flip_fraction).ceil() as usize).clamp(1, len);
                for _ in 0..touches {
                    let i = self.rng.gen_range(0..len as u64) as usize;
                    bytes[i] = self.rng.gen_range(0u16..256) as u8;
                }
                let line = LineData::from_bytes(&bytes);
                self.last.insert(address, line);
                line
            }
            PayloadSpec::ToggleWords => {
                let bytes: Vec<u8> = match self.last.get(&address) {
                    Some(prev) => {
                        let mut b: Vec<u8> = prev.bytes().iter().map(|&x| !x).collect();
                        b.resize(len, 0);
                        b
                    }
                    None => (0..len)
                        .map(|_| self.rng.gen_range(0u16..256) as u8)
                        .collect(),
                };
                let line = LineData::from_bytes(&bytes);
                self.last.insert(address, line);
                line
            }
            PayloadSpec::TransformerWeights { std } => {
                let mut bytes = Vec::with_capacity(len);
                for _ in 0..len / 2 {
                    // Irwin–Hall(4): near-Gaussian, mean 0, variance 1/3;
                    // scale to the requested std.
                    let sum: f64 = (0..4).map(|_| self.rng.gen_range(0.0..1.0)).sum();
                    let w = (sum - 2.0) * std * (3.0f64).sqrt();
                    let h = f16_bits(w as f32);
                    bytes.extend_from_slice(&h.to_le_bytes());
                }
                bytes.resize(len, 0); // odd line widths pad with zero
                LineData::from_bytes(&bytes)
            }
        }
    }

    /// Attaches payloads to every write of a trace (replay-engine path;
    /// the serve engine sources payloads online instead).
    pub fn attach(&mut self, trace: &mut [MemRequest]) {
        for req in trace {
            if req.op == MemOp::Write {
                req.payload = Some(self.next_line(req.address, req.size.value()));
            }
        }
    }
}

/// Attaches payloads from `spec` to a trace's writes, seeded.
///
/// # Examples
///
/// ```
/// use comet_data::{attach_payloads, PayloadSpec};
/// use comet_units::{ByteCount, Time};
/// use memsim::{MemOp, MemRequest};
///
/// let mut trace = vec![
///     MemRequest::new(0, Time::ZERO, MemOp::Write, 0x00, ByteCount::new(64)),
///     MemRequest::new(1, Time::ZERO, MemOp::Read, 0x40, ByteCount::new(64)),
/// ];
/// attach_payloads(&mut trace, PayloadSpec::Uniform, 42);
/// assert!(trace[0].payload.is_some());
/// assert!(trace[1].payload.is_none(), "reads carry no payload");
/// ```
pub fn attach_payloads(trace: &mut [MemRequest], spec: PayloadSpec, seed: u64) {
    spec.instantiate(seed).attach(trace);
}

/// The bytes a spec would stream for `n` lines of `line_bytes` at
/// synthetic increasing addresses — a convenience for tests and entropy
/// measurements.
pub fn sample_lines(spec: PayloadSpec, seed: u64, n: usize, line_bytes: u64) -> Vec<LineData> {
    let mut gen = spec.instantiate(seed);
    (0..n)
        .map(|i| gen.next_line((i as u64 % 8) * line_bytes, line_bytes))
        .collect()
}

/// Mean fraction of byte positions that differ between consecutive writes
/// to the same address — the "write intensity" a policy actually sees.
pub fn rewrite_intensity(spec: PayloadSpec, seed: u64, writes: usize, line_bytes: u64) -> f64 {
    let mut gen = spec.instantiate(seed);
    let address = 0u64;
    let mut prev = gen.next_line(address, line_bytes);
    let mut changed = 0usize;
    let mut total = 0usize;
    for _ in 1..writes.max(2) {
        let next = gen.next_line(address, line_bytes);
        changed += prev
            .bytes()
            .iter()
            .zip(next.bytes())
            .filter(|(a, b)| a != b)
            .count();
        total += line_bytes as usize;
        prev = next;
    }
    changed as f64 / total.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_units::ByteCount;

    #[test]
    fn generators_are_deterministic_per_seed() {
        for spec in PayloadSpec::entropy_sweep() {
            let a = sample_lines(spec, 7, 20, 64);
            let b = sample_lines(spec, 7, 20, 64);
            assert_eq!(a, b, "{spec}");
            if spec != PayloadSpec::Zero {
                let c = sample_lines(spec, 8, 20, 64);
                assert_ne!(a, c, "{spec}: seed must matter");
            }
        }
    }

    #[test]
    fn zero_is_zero_and_uniform_is_not() {
        let z = sample_lines(PayloadSpec::Zero, 1, 4, 64);
        assert!(z.iter().all(|l| l.bytes().iter().all(|&b| b == 0)));
        let u = sample_lines(PayloadSpec::Uniform, 1, 4, 64);
        assert!(u.iter().any(|l| l.bytes().iter().any(|&b| b != 0)));
    }

    #[test]
    fn sparse_updates_mutate_few_bytes_in_place() {
        let spec = PayloadSpec::SparseUpdate {
            flip_fraction: 0.05,
        };
        let intensity = rewrite_intensity(spec, 3, 50, 64);
        assert!(
            intensity > 0.0 && intensity < 0.10,
            "sparse intensity {intensity}"
        );
        // Different addresses evolve independently.
        let mut gen = spec.instantiate(3);
        let a0 = gen.next_line(0, 64);
        let b0 = gen.next_line(64, 64);
        assert_ne!(a0, b0);
    }

    #[test]
    fn toggle_complements_every_write() {
        let mut gen = PayloadSpec::ToggleWords.instantiate(5);
        let a = gen.next_line(0, 64);
        let b = gen.next_line(0, 64);
        for (x, y) in a.bytes().iter().zip(b.bytes()) {
            assert_eq!(*x, !*y);
        }
        assert!((rewrite_intensity(PayloadSpec::ToggleWords, 5, 20, 64) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weights_look_like_small_fp16_values() {
        let spec = PayloadSpec::transformer(&TransformerWorkload::deit_base());
        let PayloadSpec::TransformerWeights { std } = spec else {
            panic!("transformer spec")
        };
        assert!((0.01..0.1).contains(&std), "DeiT-B init std {std}");
        let lines = sample_lines(spec, 11, 8, 64);
        for line in &lines {
            for pair in line.bytes().chunks(2) {
                let h = u16::from_le_bytes([pair[0], pair[1]]);
                let exp = (h >> 10) & 0x1F;
                assert!(exp < 0x1F, "no infinities at weight scale");
            }
        }
        // Structured exponents: consecutive rewrites change fewer bytes
        // than uniform noise would.
        let wi = rewrite_intensity(spec, 11, 40, 64);
        let ui = rewrite_intensity(PayloadSpec::Uniform, 11, 40, 64);
        assert!(wi < ui, "weights {wi} vs uniform {ui}");
    }

    #[test]
    fn f16_encoding_anchors() {
        assert_eq!(f16_bits(0.0), 0x0000);
        assert_eq!(f16_bits(-0.0), 0x8000);
        assert_eq!(f16_bits(1.0), 0x3C00);
        assert_eq!(f16_bits(-2.0), 0xC000);
        assert_eq!(f16_bits(65504.0), 0x7BFF); // f16::MAX
        assert_eq!(f16_bits(1.0e9), 0x7C00); // +inf
        assert_eq!(f16_bits(6.0e-8), 0x0001); // smallest subnormal
    }

    #[test]
    fn attach_only_touches_writes() {
        use comet_units::Time;
        let mut trace: Vec<MemRequest> = (0..10)
            .map(|i| {
                MemRequest::new(
                    i,
                    Time::ZERO,
                    if i % 2 == 0 {
                        MemOp::Write
                    } else {
                        MemOp::Read
                    },
                    i * 64,
                    ByteCount::new(64),
                )
            })
            .collect();
        attach_payloads(&mut trace, PayloadSpec::Uniform, 9);
        for req in &trace {
            assert_eq!(req.payload.is_some(), req.op == MemOp::Write);
        }
    }
}
