//! Write-reduction policies: content-oblivious pricing, DCW, Flip-N-Write.
//!
//! [`DataWriteModel`] is the crate's [`memsim::WritePricer`]: it owns a
//! [`LineCodec`] and a [`TransitionCostModel`] and prices a line write
//! under one of three policies (Song et al., *Improving Phase Change
//! Memory Performance with Data Content Aware Access*):
//!
//! * [`DataPolicy::Oblivious`] — the array programs every cell to its
//!   target level (erase + program, no read): the content-priced
//!   baseline. The line store is unused.
//! * [`DataPolicy::Dcw`] — data-comparison write: the array reads the
//!   line first (one probe per cell), then programs only the cells whose
//!   level changes, each at its [`TransitionCostModel::transition`]
//!   price.
//! * [`DataPolicy::DcwFnw`] — DCW plus Flip-N-Write: cells group into
//!   32-data-bit words, each with one flip cell; per word the model keeps
//!   or toggles the flip state, toggling only on a Pareto win with
//!   margin (no more programmed cells, at least one erase's worth of
//!   energy saved). With one-bit cells and direction-symmetric costs
//!   this reduces to the classic bound — at most half a word's cells
//!   (flip cell included) ever program; with MLC chunks the flip inverts
//!   each cell's data bits.
//!
//! The stored cell image is *physical*: the post-flip levels plus one
//! flip byte per word, so the policy's decisions persist across writes.
//! First touch prices from the all-reset state (an erased array), which
//! keeps runs deterministic.
//!
//! **What the FNW ≤ DCW ordering does and does not guarantee.** From
//! equal stored state, FNW's keep option *is* the DCW write, so each
//! decision is never worse than DCW on programmed cells or energy — a
//! structural per-write property. Across a write *sequence* the two
//! stores diverge once a word flips, and a greedy flip can in principle
//! cost more later than it saved (a flipped word turns a cheap
//! along-axis transition into erase-and-rewrite); the margin exists to
//! drop exactly the marginal flips where that regret risk is largest.
//! The cumulative ordering over the swept payload sources is therefore
//! asserted empirically — `fig_write_energy_vs_entropy` and
//! `tests/data_plane.rs` pin it at fixed seeds as a regression gate —
//! not claimed as a theorem for adversarial write sequences.

use crate::codec::LineCodec;
use crate::cost::{Price, TransitionCostModel};
use comet_units::{Energy, Time};
use memsim::{LineData, PricedWrite, WriteCost, WritePricer};
use std::fmt;

/// Data bits per Flip-N-Write word (the classic granularity).
const WORD_BITS: usize = 32;

/// How a [`DataWriteModel`] prices writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataPolicy {
    /// Erase + program every cell; no read-modify-compare.
    Oblivious,
    /// Data-comparison write: program only changed cells.
    Dcw,
    /// DCW plus per-word Flip-N-Write.
    DcwFnw,
}

impl DataPolicy {
    /// All policies, in the cost-ordering direction (most to least
    /// expensive at equal content).
    pub const ALL: [DataPolicy; 3] = [DataPolicy::Oblivious, DataPolicy::Dcw, DataPolicy::DcwFnw];

    /// The registry/report label.
    pub fn label(self) -> &'static str {
        match self {
            DataPolicy::Oblivious => "oblivious",
            DataPolicy::Dcw => "dcw",
            DataPolicy::DcwFnw => "dcw-fnw",
        }
    }
}

impl fmt::Display for DataPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The crate's [`WritePricer`]: codec + transition costs + policy.
///
/// # Examples
///
/// ```no_run
/// use comet_data::{DataPolicy, DataWriteModel};
/// use memsim::{LineData, WritePricer};
///
/// let dcw = DataWriteModel::gst(4, DataPolicy::Dcw);
/// let line = LineData::from_bytes(&[0x5A; 64]);
/// let first = dcw.price_write(None, &line);
/// // Rewriting identical content conserves every cell.
/// let again = dcw.price_write(first.image.as_deref(), &line);
/// assert_eq!(again.cost.cells_written, 0);
/// assert!(again.cost.energy < first.cost.energy);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DataWriteModel {
    codec: LineCodec,
    costs: TransitionCostModel,
    policy: DataPolicy,
}

impl DataWriteModel {
    /// Builds a model from a codec and a cost table.
    ///
    /// # Panics
    ///
    /// Panics if the codec and the cost table disagree on bits per cell,
    /// or if the table was generated in crystalline-reset mode — the
    /// policies' first-touch state and flip-cell direction assume an
    /// erased array at level 0, so a crystalline-reset table would be
    /// silently mispriced rather than loudly rejected.
    pub fn new(codec: LineCodec, costs: TransitionCostModel, policy: DataPolicy) -> Self {
        assert_eq!(
            codec.bits(),
            costs.bits(),
            "codec and cost table must agree on bits/cell"
        );
        assert_eq!(
            costs.reset_level(),
            0,
            "DataWriteModel prices amorphous-reset tables only"
        );
        DataWriteModel {
            codec,
            costs,
            policy,
        }
    }

    /// The reference model: the COMET GST cell at `bits`/cell (see
    /// [`TransitionCostModel::gst`]).
    pub fn gst(bits: u8, policy: DataPolicy) -> Self {
        Self::new(LineCodec::new(bits), TransitionCostModel::gst(bits), policy)
    }

    /// The policy in force.
    pub fn policy(&self) -> DataPolicy {
        self.policy
    }

    /// The codec in force.
    pub fn codec(&self) -> &LineCodec {
        &self.codec
    }

    /// The transition cost table in force.
    pub fn costs(&self) -> &TransitionCostModel {
        &self.costs
    }

    /// Cells per Flip-N-Write word for this codec (32 data bits).
    pub fn word_cells(&self) -> usize {
        (WORD_BITS / self.codec.bits() as usize).max(1)
    }

    /// The mask that complements one cell's data chunk.
    fn flip_mask(&self) -> u8 {
        (1u16 << self.codec.bits()) as u8 - 1
    }

    /// Splits a stored image into (cell levels, flip bytes). Images are
    /// written by this model, so the split is by construction; a missing
    /// image means an erased line (all cells at the reset level, flips 0).
    fn split_image<'i>(&self, image: &'i [u8], cells: usize) -> (&'i [u8], &'i [u8]) {
        image.split_at(cells.min(image.len()))
    }

    /// Prices one word under a fixed flip state. `old` holds physical
    /// levels, `logical` the target data chunks (pre-Gray values are not
    /// needed: flipping complements the chunk, and the codec's Gray map is
    /// applied per cell here).
    fn word_price(
        &self,
        old: &[u8],
        target_plain: &[u8],
        flip: bool,
        old_flip: bool,
    ) -> (u64, Price) {
        let mask = self.flip_mask();
        let mut cells = 0u64;
        let mut energy = Energy::ZERO;
        let mut latency = Time::ZERO;
        for (&o, &t) in old.iter().zip(target_plain) {
            let target = if flip { flip_level(t, mask) } else { t };
            if o != target {
                let p = self.costs.transition(o, target);
                cells += 1;
                energy += p.energy;
                latency = latency.max(p.latency);
            }
        }
        if flip != old_flip {
            // The flip cell toggles between the reset level and the
            // deepest level — one more transition on the same array.
            let (from, to) = if old_flip {
                (self.costs.levels() - 1, 0)
            } else {
                (0, self.costs.levels() - 1)
            };
            let p = self.costs.transition(from, to);
            cells += 1;
            energy += p.energy;
            latency = latency.max(p.latency);
        }
        (cells, Price { energy, latency })
    }
}

/// Complements a Gray-coded level's data chunk: decode, invert the data
/// bits, re-encode. Gray of the complement is the Gray code with its top
/// bit flipped, so this is an involution on levels.
fn flip_level(level: u8, mask: u8) -> u8 {
    // gray(~v) = ~v ^ (~v >> 1) = (v ^ (v >> 1)) ^ top_bit  (within mask)
    level ^ (mask & !(mask >> 1))
}

impl WritePricer for DataWriteModel {
    fn price_write(&self, stored: Option<&[u8]>, data: &LineData) -> PricedWrite {
        let new_levels = self.codec.encode(data.bytes());
        let cells = new_levels.len();

        if self.policy == DataPolicy::Oblivious {
            // Erase + program every cell; no state kept.
            let mut energy = Energy::ZERO;
            let mut latency = Time::ZERO;
            for &l in &new_levels {
                let p = self.costs.oblivious(l);
                energy += p.energy;
                latency = latency.max(p.latency);
            }
            return PricedWrite {
                cost: WriteCost {
                    energy,
                    latency,
                    cells_written: cells as u64,
                    cells_total: cells as u64,
                },
                image: None,
            };
        }

        // DCW-class policies read the whole line first (probes fire in
        // parallel across cells: one probe latency, per-cell energy).
        let probe = self.costs.read_probe();
        let mut energy = probe.energy * cells as f64;
        let mut pulse = Time::ZERO;
        let mut written = 0u64;

        let reset_level = self.costs.reset_level(); // 0: enforced by `new`
        let empty: &[u8] = &[];
        let (old_levels, old_flips) = match stored {
            Some(image) => self.split_image(image, cells),
            None => (empty, empty),
        };
        let old_at = |c: usize| old_levels.get(c).copied().unwrap_or(reset_level);

        let word = self.word_cells();
        let words = cells.div_ceil(word.max(1));
        let flip_margin = self.costs.reset_price().energy;
        let mut image_levels = vec![0u8; cells];
        let mut image_flips = vec![0u8; words];

        for (w, flip_slot) in image_flips.iter_mut().enumerate() {
            let span = (w * word)..((w * word + word).min(cells));
            let old: Vec<u8> = span.clone().map(old_at).collect();
            let target = &new_levels[span.clone()];
            let old_flip = old_flips.get(w).copied().unwrap_or(0) != 0;

            let (keep_cells, keep_price) = self.word_price(&old, target, old_flip, old_flip);
            let (cells_chosen, price, flip) = if self.policy == DataPolicy::DcwFnw {
                let (toggle_cells, toggle_price) =
                    self.word_price(&old, target, !old_flip, old_flip);
                // Toggle only on a Pareto win with margin: no more
                // programmed cells AND at least one erase's worth of
                // energy saved. The keep option *is* the plain DCW write,
                // so from equal stored state Flip-N-Write is never worse
                // than DCW on either axis. (Classic count-only FNW would
                // flip whenever it writes fewer cells; with per-transition
                // costs that can buy fewer-but-deeper pulses, so energy
                // gates the flip too. The margin drops *marginal* flips —
                // the ones whose banked saving could be dwarfed by a later
                // write's cost of being in the flipped domain; only
                // high-yield flips like full complements survive. The
                // greedy decision still cannot bound cumulative regret
                // structurally — see the module docs — which is why the
                // swept ordering is asserted as a pinned-seed regression
                // gate, not claimed as a theorem.)
                let improves = toggle_cells <= keep_cells
                    && toggle_price.energy + flip_margin <= keep_price.energy;
                if improves {
                    (toggle_cells, toggle_price, !old_flip)
                } else {
                    (keep_cells, keep_price, old_flip)
                }
            } else {
                (keep_cells, keep_price, old_flip)
            };

            written += cells_chosen;
            energy += price.energy;
            pulse = pulse.max(price.latency);
            let mask = self.flip_mask();
            for (i, c) in span.enumerate() {
                image_levels[c] = if flip {
                    flip_level(target[i], mask)
                } else {
                    target[i]
                };
            }
            *flip_slot = flip as u8;
        }

        image_levels.extend_from_slice(&image_flips);
        PricedWrite {
            cost: WriteCost {
                energy,
                // Read-modify-write: the probe precedes the slowest pulse.
                latency: probe.latency + pulse,
                cells_written: written,
                cells_total: cells as u64,
            },
            image: Some(image_levels),
        }
    }

    fn price_unknown(&self, line_bytes: u64) -> WriteCost {
        let cells = self.codec.cells_for(line_bytes as usize) as u64;
        let worst = self.costs.worst_case();
        WriteCost {
            energy: worst.energy * cells as f64,
            latency: worst.latency,
            cells_written: cells,
            cells_total: cells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn models() -> &'static [DataWriteModel; 3] {
        static MODELS: OnceLock<[DataWriteModel; 3]> = OnceLock::new();
        MODELS.get_or_init(|| {
            [
                DataWriteModel::gst(4, DataPolicy::Oblivious),
                DataWriteModel::gst(4, DataPolicy::Dcw),
                DataWriteModel::gst(4, DataPolicy::DcwFnw),
            ]
        })
    }

    fn line(fill: u8) -> LineData {
        LineData::from_bytes(&[fill; 64])
    }

    #[test]
    fn flip_level_is_the_data_complement() {
        for bits in 1..=6u8 {
            let codec = LineCodec::new(bits);
            let mask = (1u16 << bits) as u8 - 1;
            let data: Vec<u8> = (0..32u8).collect();
            let plain = codec.encode(&data);
            let inverted: Vec<u8> = data.iter().map(|b| !b).collect();
            let flipped = codec.encode(&inverted);
            // Only cells fully inside the data: the padded tail cell's pad
            // bits flip with the chunk but stay zero under byte inversion
            // (harmless — pads are discarded on decode, and the flip is
            // applied consistently to old and new images).
            let full = (data.len() * 8) / bits as usize;
            for (p, f) in plain.iter().zip(&flipped).take(full) {
                assert_eq!(flip_level(*p, mask), *f, "bits={bits}");
                assert_eq!(flip_level(flip_level(*p, mask), mask), *p, "involution");
            }
        }
    }

    #[test]
    fn identical_rewrite_is_conserved_under_dcw() {
        let [_, dcw, fnw] = models();
        for model in [dcw, fnw] {
            let first = model.price_write(None, &line(0x5A));
            let again = model.price_write(first.image.as_deref(), &line(0x5A));
            assert_eq!(again.cost.cells_written, 0, "{}", model.policy());
            // Only the read probe remains.
            assert!(again.cost.energy < first.cost.energy);
            assert_eq!(again.cost.latency, model.costs.read_probe().latency);
        }
    }

    #[test]
    fn policies_order_on_a_first_write() {
        let [obl, dcw, fnw] = models();
        for fill in [0x00u8, 0xFF, 0x5A, 0x13] {
            let o = obl.price_write(None, &line(fill)).cost.energy;
            let d = dcw.price_write(None, &line(fill)).cost.energy;
            let f = fnw.price_write(None, &line(fill)).cost.energy;
            assert!(f <= d, "fill {fill:#x}: fnw {f} > dcw {d}");
            assert!(d <= o, "fill {fill:#x}: dcw {d} > oblivious {o}");
        }
    }

    #[test]
    fn fnw_wins_on_complement_heavy_updates() {
        let [_, dcw, fnw] = models();
        let a = line(0x33);
        let b = line(!0x33); // full complement: every cell flips
        let dcw_img = dcw.price_write(None, &a);
        let fnw_img = fnw.price_write(None, &a);
        let d = dcw.price_write(dcw_img.image.as_deref(), &b).cost;
        let f = fnw.price_write(fnw_img.image.as_deref(), &b).cost;
        // DCW programs every cell; FNW toggles one flip cell per word.
        assert_eq!(d.cells_written, d.cells_total);
        assert_eq!(
            f.cells_written as usize,
            128usize.div_ceil(fnw.word_cells())
        );
        assert!(f.energy < d.energy);
    }

    #[test]
    #[should_panic(expected = "amorphous-reset")]
    fn crystalline_reset_tables_are_rejected() {
        use opcm_phys::{CellThermalModel, ProgramMode, ProgramTable};
        let table = ProgramTable::generate(
            &CellThermalModel::comet_gst(),
            ProgramMode::CrystallineReset,
            1,
        )
        .expect("generates");
        let costs = TransitionCostModel::from_program_table(&table);
        let _ = DataWriteModel::new(LineCodec::new(1), costs, DataPolicy::Dcw);
    }

    #[test]
    fn oblivious_keeps_no_image_and_unknown_is_worst_case() {
        let [obl, dcw, _] = models();
        let priced = obl.price_write(None, &line(0x77));
        assert!(priced.image.is_none());
        let unknown = dcw.price_unknown(64);
        let known = dcw.price_write(None, &line(0xFF)).cost;
        assert!(unknown.energy >= known.energy - dcw.costs.read_probe().energy * 128.0);
        assert_eq!(unknown.cells_written, 128);
    }

    #[test]
    fn zero_lines_cost_only_probes_after_first_touch() {
        // An all-zero line maps every cell to level 0 = the reset state,
        // so even the first DCW write conserves everything.
        let [_, dcw, _] = models();
        let priced = dcw.price_write(None, &line(0x00));
        assert_eq!(priced.cost.cells_written, 0);
    }
}
