//! Property-based tests for the data plane.
//!
//! Invariants: the MLC codec round-trips any byte content at any
//! supported bit width; Flip-N-Write conserves bit flips (never programs
//! more cells than DCW from the same state, and with one-bit cells never
//! more than half of each word, flip cell included); the per-transition
//! cost model orders the policies DCW+FNW ≤ DCW ≤ oblivious on every
//! write from a shared state.

use comet_data::{DataPolicy, DataWriteModel, LineCodec, PayloadSpec, TransitionCostModel};
use memsim::{LineData, WritePricer};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One memoized cost table per bit width keeps table generation (the
/// workspace's slowest kernel) out of the per-case loop.
fn costs(bits: u8) -> TransitionCostModel {
    static TABLES: OnceLock<Vec<TransitionCostModel>> = OnceLock::new();
    TABLES.get_or_init(|| (1..=4).map(TransitionCostModel::gst).collect())[bits as usize - 1]
        .clone()
}

fn model(bits: u8, policy: DataPolicy) -> DataWriteModel {
    DataWriteModel::new(LineCodec::new(bits), costs(bits), policy)
}

fn any_line() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 1..128)
}

/// A synthetic one-bit programming table whose SET and RESET pulses cost
/// the same, so energy is proportional to programmed cells and the FNW
/// flip decision reduces to the classic count rule.
fn symmetric_slc_table() -> opcm_phys::ProgramTable {
    use comet_units::{Power, Time, Transmittance};
    use opcm_phys::{LevelSpec, ProgramMode, ProgramTable, PulseSpec, ResetSpec};
    let pulse = PulseSpec::new(Power::from_milliwatts(1.0), Time::from_nanos(100.0));
    ProgramTable {
        mode: ProgramMode::AmorphousReset,
        bits: 1,
        levels: vec![
            LevelSpec {
                level: 0,
                transmittance: Transmittance::new(0.95),
                crystalline_fraction: 0.0,
                pulse: PulseSpec::new(Power::from_milliwatts(1.0), Time::ZERO),
            },
            LevelSpec {
                level: 1,
                transmittance: Transmittance::new(0.05),
                crystalline_fraction: 1.0,
                pulse,
            },
        ],
        reset: ResetSpec {
            pulse,
            fraction: 0.0,
        },
        spacing: 0.9,
    }
}

proptest! {
    // --- codec ---------------------------------------------------------------

    #[test]
    fn codec_roundtrip_is_exact(
        data in any_line(),
        bits in 1u8..=6,
    ) {
        let codec = LineCodec::new(bits);
        let levels = codec.encode(&data);
        prop_assert_eq!(levels.len(), codec.cells_for(data.len()));
        for &l in &levels {
            prop_assert!(l < codec.levels());
        }
        prop_assert_eq!(codec.decode(&levels, data.len()), data);
    }

    // --- Flip-N-Write conservation -------------------------------------------

    #[test]
    fn fnw_never_programs_more_cells_than_dcw_from_equal_state(
        first in any_line(),
        second in any_line(),
        bits in 1u8..=4,
    ) {
        // Both policies start from the erased array; after one identical
        // write their stores describe the same logical content, and FNW's
        // per-word decision includes "keep the flip state" — exactly the
        // DCW write — so it can only do better.
        let dcw = model(bits, DataPolicy::Dcw);
        let fnw = model(bits, DataPolicy::DcwFnw);
        let line = |b: &[u8]| LineData::from_bytes(b);

        let d0 = dcw.price_write(None, &line(&first));
        let f0 = fnw.price_write(None, &line(&first));
        prop_assert!(f0.cost.cells_written <= d0.cost.cells_written);
        prop_assert!(f0.cost.energy <= d0.cost.energy);

        let mut padded = second.clone();
        padded.resize(first.len(), 0);
        let d1 = dcw.price_write(d0.image.as_deref(), &line(&padded));
        let f1 = fnw.price_write(f0.image.as_deref(), &line(&padded));
        prop_assert!(f1.cost.cells_total == d1.cost.cells_total);
        // From the same first write, FNW's flip freedom never loses on
        // programmed cells.
        if f0.image == d0.image {
            prop_assert!(f1.cost.cells_written <= d1.cost.cells_written,
                "fnw {} vs dcw {}", f1.cost.cells_written, d1.cost.cells_written);
        }
    }

    #[test]
    fn fnw_writes_at_most_half_of_each_binary_word(
        writes in proptest::collection::vec(any_line(), 1..5),
        len in 1usize..64,
    ) {
        // The classic SLC bound: with one-bit cells, 32-cell words and
        // direction-symmetric pulse costs, FNW degenerates to the classic
        // count rule (the Pareto energy gate never blocks a flip), so
        // min(d, n - d + 1) ≤ ⌈(n+1)/2⌉ per word regardless of history —
        // a line never programs more than half its cells plus one flip
        // cell per word. (Under the GST table SET and RESET prices
        // differ, and an energy-blocked flip legitimately keeps the plain
        // DCW write — covered by the ≤-DCW property above.)
        let fnw = DataWriteModel::new(
            LineCodec::new(1),
            TransitionCostModel::from_program_table(&symmetric_slc_table()),
            DataPolicy::DcwFnw,
        );
        let mut image: Option<Vec<u8>> = None;
        for bytes in &writes {
            let mut bytes = bytes.clone();
            bytes.resize(len, 0);
            let priced = fnw.price_write(image.as_deref(), &LineData::from_bytes(&bytes));
            let cells = priced.cost.cells_total;
            let words = (cells as usize).div_ceil(fnw.word_cells()) as u64;
            prop_assert!(
                priced.cost.cells_written <= cells / 2 + words,
                "{} cells written of {} (+{} flip cells allowed)",
                priced.cost.cells_written, cells, words
            );
            image = priced.image;
        }
    }

    // --- policy cost ordering ------------------------------------------------

    #[test]
    fn policies_order_on_every_write_from_shared_state(
        base in any_line(),
        update in any_line(),
        bits in 1u8..=4,
    ) {
        let obl = model(bits, DataPolicy::Oblivious);
        let dcw = model(bits, DataPolicy::Dcw);
        let fnw = model(bits, DataPolicy::DcwFnw);
        let line = |b: &[u8]| LineData::from_bytes(b);

        // First write: all three price from the erased array.
        let o0 = obl.price_write(None, &line(&base)).cost.energy;
        let d = dcw.price_write(None, &line(&base));
        let f = fnw.price_write(None, &line(&base));
        prop_assert!(f.cost.energy <= d.cost.energy, "fnw > dcw on first write");
        prop_assert!(d.cost.energy <= o0, "dcw > oblivious on first write");

        // Second write over DCW's own image: never above oblivious plus
        // the read-modify-compare overhead. The probe allowance is real,
        // not slack: when every changed cell moves *against* the
        // programming axis (e.g. 0xFF -> 0x00 lines) each prices at
        // exactly the via-reset = oblivious cost, and the probes are the
        // policy's net loss on that write. (Conserved cells each save at
        // least a reset, which dwarfs the whole line's probes — that is
        // why the aggregate ordering over real payloads still holds.)
        let mut padded = update.clone();
        padded.resize(base.len(), 0);
        let o1 = obl.price_write(None, &line(&padded)).cost.energy;
        let d1p = dcw.price_write(d.image.as_deref(), &line(&padded)).cost;
        let probes = dcw.costs().read_probe().energy * d1p.cells_total as f64;
        prop_assert!(
            d1p.energy <= o1 + probes,
            "dcw {} > oblivious {o1} + probes {probes} on rewrite",
            d1p.energy
        );
    }

    // --- payload generators --------------------------------------------------

    #[test]
    fn payload_streams_are_deterministic_and_sized(
        seed in any::<u64>(),
        line_bytes in prop_oneof![Just(32u64), Just(64u64), Just(128u64)],
    ) {
        for spec in PayloadSpec::entropy_sweep() {
            let mut a = spec.instantiate(seed);
            let mut b = spec.instantiate(seed);
            for i in 0..24u64 {
                let address = (i % 6) * line_bytes;
                let la = a.next_line(address, line_bytes);
                prop_assert_eq!(la, b.next_line(address, line_bytes), "{}", spec);
                prop_assert_eq!(la.len() as u64, line_bytes);
            }
        }
    }
}
