//! Property-based tests for the COSMOS crossbar baseline.
//!
//! Invariants: the crossbar is a faithful store in the absence of disturb,
//! subtractive reads recover data on freshly-corrected arrays, thermo-optic
//! disturb accumulates monotonically with aggressor writes, and the
//! corrupted-image experiment degrades monotonically in write count.

use cosmos::{run_corruption_experiment, CosmosConfig, Crossbar, TestImage};
use proptest::prelude::*;

fn small_levels(cols: u64, bits: u32, seed: u64) -> Vec<u8> {
    let max = 1u64 << bits;
    (0..cols)
        .map(|c| {
            let x = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(c.wrapping_mul(1442695040888963407));
            (x % max) as u8
        })
        .collect()
}

proptest! {
    #[test]
    fn stored_levels_roundtrip_without_disturb(
        rows in 2u64..12,
        cols in 1u64..16,
        seed in any::<u64>(),
    ) {
        // One write per row, then a drift-correction pass: ideal reads see
        // exactly what was stored.
        let config = CosmosConfig::corrected();
        let mut xb = Crossbar::new(&config, rows, cols);
        for r in 0..rows {
            xb.write_row(r, &small_levels(cols, 2, seed ^ r));
        }
        xb.verify_and_correct();
        for r in 0..rows {
            prop_assert_eq!(xb.ideal_read_row(r), xb.stored_row(r));
            prop_assert!(xb.row_error_rate(r).abs() < 1e-12);
        }
    }

    #[test]
    fn subtractive_read_recovers_in_steady_state(
        rows in 4u64..10,
        cols in 1u64..12,
        seed in any::<u64>(),
        target_seed in any::<u64>(),
    ) {
        // Steady-state operation: rows written in order, so every row's
        // neighbours have saturated their thermo-optic drift before it is
        // read back. (A read right after a drift-correction pass is the
        // pathological transient: the embedded erase re-disturbs the
        // neighbours *between* the two read passes and poisons the ratio —
        // the very fragility the paper's Section II.B argues.)
        let target = target_seed % (rows - 2);
        let config = CosmosConfig::corrected();
        let mut xb = Crossbar::new(&config, rows, cols);
        for r in 0..rows {
            xb.write_row(r, &small_levels(cols, 2, seed ^ r));
        }
        let expect = xb.stored_row(target);
        let got = xb.subtractive_read_row(target);
        prop_assert_eq!(&got, &expect);
        // The write-back restored the row contents.
        prop_assert_eq!(&xb.stored_row(target), &expect);
    }

    #[test]
    fn disturb_accumulates_with_aggressor_writes(
        cols in 1u64..12,
        seed in any::<u64>(),
        w1 in 1usize..6,
        w2 in 1usize..6,
    ) {
        // More writes to an adjacent row never *reduce* a victim's error
        // rate (drift accumulation is monotone until saturation).
        let run = |writes: usize| {
            let config = CosmosConfig::original();
            let mut xb = Crossbar::new(&config, 3, cols);
            let victim = small_levels(cols, 4, seed);
            xb.write_row(1, &victim);
            xb.verify_and_correct();
            for k in 0..writes {
                xb.write_row(0, &small_levels(cols, 4, seed ^ (k as u64 + 1)));
            }
            xb.row_error_rate(1)
        };
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        prop_assert!(run(hi) >= run(lo) - 1e-12);
    }

    #[test]
    fn corrected_config_is_disturb_immune(
        cols in 1u64..12,
        seed in any::<u64>(),
        writes in 1usize..8,
    ) {
        // The corrected b=2 / 9 %-spacing configuration absorbs the 8 %
        // worst-case crystalline-fraction shift without decode errors.
        let config = CosmosConfig::corrected();
        let mut xb = Crossbar::new(&config, 3, cols);
        let victim = small_levels(cols, 2, seed);
        xb.write_row(1, &victim);
        xb.verify_and_correct();
        for k in 0..writes {
            xb.write_row(0, &small_levels(cols, 2, seed ^ (k as u64 + 1)));
            xb.write_row(2, &small_levels(cols, 2, seed ^ (k as u64 + 101)));
        }
        prop_assert!(xb.row_error_rate(1).abs() < 1e-12, "corrected COSMOS must not corrupt");
    }

    #[test]
    fn corruption_grows_with_write_rounds(seed_w in 8u64..24, rounds1 in 0u32..4, rounds2 in 0u32..4) {
        let image = TestImage::synthetic(seed_w, 8, 16);
        let (lo, hi) = if rounds1 <= rounds2 { (rounds1, rounds2) } else { (rounds2, rounds1) };
        let e_lo = run_corruption_experiment(&CosmosConfig::original(), &image, lo).pixel_error_rate;
        let e_hi = run_corruption_experiment(&CosmosConfig::original(), &image, hi).pixel_error_rate;
        prop_assert!(e_hi >= e_lo - 1e-12, "corruption must grow: {lo} rounds {e_lo} vs {hi} rounds {e_hi}");
    }

    #[test]
    fn zero_write_rounds_preserve_image(seed_w in 8u64..24) {
        let image = TestImage::synthetic(seed_w, 8, 16);
        let report = run_corruption_experiment(&CosmosConfig::original(), &image, 0);
        prop_assert!(report.pixel_error_rate.abs() < 1e-12);
    }
}
