//! COSMOS as a [`memsim::MemoryDevice`] for the Fig. 9 comparison.
//!
//! Timing semantics (Table II, corrected COSMOS):
//!
//! * **Reads** use the *subtractive* sequence — read pass (25 ns), row
//!   reset (250 ns), read pass (25 ns) — which monopolizes the bank's
//!   shared crossbar wavelengths for the full 300 ns (no isolation ⇒ no
//!   pipelining; any concurrent pulse corrupts cells). The erased row is
//!   restored lazily: the restore write (1.6 µs) occupies the target
//!   *subarray row* in the background and blocks only accesses that touch
//!   it again early — a generous assumption, like the paper's.
//! * **Writes** hold the bank for the full 1.6 µs program pulse.
//! * The PCM-switch row gating the paper added costs 100 ns when a bank
//!   re-targets a different subarray row.
//!
//! Energy: 5 mW-class pulse energies per access plus the architecture's
//! power stack as background (same accounting as COMET).

use crate::arch::CosmosConfig;
use crate::power::CosmosPowerModel;
use comet_units::{Energy, Power, Time};
use memsim::{AccessTiming, DecodedAddress, DeviceFactory, MemOp, MemoryDevice, Topology};
use std::collections::HashMap;

/// The COSMOS timing/energy device.
///
/// # Examples
///
/// ```
/// use cosmos::{CosmosConfig, CosmosDevice};
/// use memsim::MemoryDevice;
///
/// let dev = CosmosDevice::new(CosmosConfig::corrected());
/// assert_eq!(dev.name(), "COSMOS");
/// assert_eq!(dev.topology().channels, 16);
/// ```
#[derive(Debug, Clone)]
pub struct CosmosDevice {
    config: CosmosConfig,
    background: Power,
    /// Latched PCM-switch subarray-row per bank.
    current_subrow: Vec<Option<u64>>,
    /// Lazily restoring rows: (bank, row) -> restore completion time.
    restore_busy: HashMap<(u64, u64), Time>,
}

impl CosmosDevice {
    /// Creates a device with the configuration's power stack as background.
    pub fn new(config: CosmosConfig) -> Self {
        let background = CosmosPowerModel::new(config.clone()).stack().total();
        Self::with_background(config, background)
    }

    /// Creates a device with an explicit background power.
    pub fn with_background(config: CosmosConfig, background: Power) -> Self {
        let banks = config.banks as usize;
        CosmosDevice {
            config,
            background,
            current_subrow: vec![None; banks],
            restore_busy: HashMap::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CosmosConfig {
        &self.config
    }

    fn subarray_row_of(&self, loc: &DecodedAddress) -> u64 {
        loc.row / self.config.subarray_side
    }
}

/// The controller-visible shape of a COSMOS configuration — 16 banks over
/// 16 MDM modes, each with its own lane (the paper's generous zero-loss
/// 16-mode assumption).
fn controller_topology(config: &CosmosConfig) -> Topology {
    Topology {
        channels: config.banks,
        banks: 1,
        rows: config.rows,
        columns: config.line_slots_per_row(),
        line_bytes: config.timing.access_bytes(),
    }
}

impl DeviceFactory for CosmosConfig {
    fn device_name(&self) -> String {
        self.name.clone()
    }

    fn build(&self) -> Box<dyn MemoryDevice> {
        Box::new(CosmosDevice::new(self.clone()))
    }

    fn device_topology(&self) -> Topology {
        controller_topology(self)
    }
}

impl MemoryDevice for CosmosDevice {
    fn name(&self) -> String {
        self.config.name.clone()
    }

    fn topology(&self) -> Topology {
        controller_topology(&self.config)
    }

    fn bank_available(&mut self, loc: &DecodedAddress, at: Time) -> Time {
        match self.restore_busy.get(&(loc.channel, loc.row)) {
            Some(&busy) => at.max(busy),
            None => at,
        }
    }

    fn access(&mut self, loc: &DecodedAddress, op: MemOp, issue: Time) -> AccessTiming {
        let t = self.config.timing;
        let bank = loc.channel as usize;
        let subrow = self.subarray_row_of(loc);

        let switch = if self.current_subrow[bank] == Some(subrow) {
            Time::ZERO
        } else {
            self.current_subrow[bank] = Some(subrow);
            t.subarray_switch_time
        };
        let start = issue + switch;
        let cells = self.config.cells_per_line() as f64;
        let pulse_energy = self.config.write_energy;

        match op {
            MemOp::Read => {
                if self.config.model_subtractive_read {
                    let sequence = t.subtractive_read_time();
                    let data_ready = start + sequence;
                    // The erased row restores lazily (1.6 us write-back).
                    self.restore_busy
                        .insert((loc.channel, loc.row), data_ready + t.write_time);
                    AccessTiming {
                        bank_free_at: data_ready,
                        data_ready_at: data_ready,
                        bus_occupancy: t.burst_time() * 2.0,
                        // Two read passes + one reset pulse per cell.
                        energy: pulse_energy * 0.4 * cells,
                    }
                } else {
                    // The original paper's optimistic single-pass read.
                    let data_ready = start + t.read_time;
                    AccessTiming {
                        bank_free_at: data_ready,
                        data_ready_at: data_ready,
                        bus_occupancy: t.burst_time(),
                        energy: pulse_energy * 0.02 * cells,
                    }
                }
            }
            MemOp::Write => {
                let data_ready = start + t.burst_time();
                let done = start + t.write_time;
                AccessTiming {
                    // The crossbar's shared wavelengths are held for the
                    // whole program pulse: no write pipelining.
                    bank_free_at: done,
                    data_ready_at: data_ready,
                    bus_occupancy: t.burst_time(),
                    energy: pulse_energy * cells,
                }
            }
        }
    }

    fn row_hit(&self, loc: &DecodedAddress) -> bool {
        self.current_subrow[loc.channel as usize] == Some(self.subarray_row_of(loc))
    }

    fn background_power(&self) -> Power {
        self.background
    }

    fn interface_delay(&self) -> Time {
        self.config.timing.interface_delay
    }
}

/// Convenience: the per-line write energy of the corrected COSMOS (used in
/// energy cross-checks).
pub fn line_write_energy(config: &CosmosConfig) -> Energy {
    config.write_energy * config.cells_per_line() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_units::ByteCount;
    use memsim::{run_simulation, MemRequest, SimConfig};

    fn device() -> CosmosDevice {
        CosmosDevice::new(CosmosConfig::corrected())
    }

    fn loc(bank: u64, row: u64, col: u64) -> DecodedAddress {
        DecodedAddress {
            channel: bank,
            bank: 0,
            row,
            column: col,
        }
    }

    #[test]
    fn subtractive_read_occupies_bank_300ns() {
        let mut dev = device();
        let a = dev.access(&loc(0, 0, 0), MemOp::Read, Time::ZERO);
        // 100 (switch) + 300 (read+reset+read).
        assert!((a.bank_free_at.as_nanos() - 400.0).abs() < 1e-9);
        let b = dev.access(&loc(0, 5, 0), MemOp::Read, a.bank_free_at);
        // Same subarray row block (row 5 < 32): no switch, 300 ns.
        assert!((b.bank_free_at - a.bank_free_at).as_nanos() - 300.0 < 1e-9);
    }

    #[test]
    fn restore_blocks_same_row_reaccess() {
        let mut dev = device();
        let a = dev.access(&loc(0, 0, 0), MemOp::Read, Time::ZERO);
        // Re-access of the same row must wait for the 1.6 us restore.
        let avail = dev.bank_available(&loc(0, 0, 1), a.bank_free_at);
        assert!(avail >= a.bank_free_at + Time::from_micros(1.5));
        // A different row is free immediately.
        let other = dev.bank_available(&loc(0, 40, 0), a.bank_free_at);
        assert_eq!(other, a.bank_free_at);
    }

    #[test]
    fn writes_hold_bank_for_1_6_us() {
        let mut dev = device();
        let w = dev.access(&loc(0, 0, 0), MemOp::Write, Time::ZERO);
        assert!((w.bank_free_at.as_nanos() - 1700.0).abs() < 1e-9); // 100 + 1600
    }

    #[test]
    fn cosmos_is_much_slower_than_comet_on_mixed_traffic() {
        use comet::{CometConfig, CometDevice};
        let reqs: Vec<MemRequest> = (0..4000u64)
            .map(|i| {
                let op = if i % 5 == 0 {
                    MemOp::Write
                } else {
                    MemOp::Read
                };
                MemRequest::new(i, Time::ZERO, op, i * 131 * 128, ByteCount::new(128))
            })
            .collect();
        let mut cosmos = device();
        let mut comet = CometDevice::new(CometConfig::comet_4b());
        let sc = run_simulation(&mut cosmos, &reqs, &SimConfig::saturation("mix"));
        let sk = run_simulation(&mut comet, &reqs, &SimConfig::saturation("mix"));
        let ratio = sk.bandwidth() / sc.bandwidth();
        // This strided pattern revisits COMET subarrays mid-programming
        // (pessimal for its write overlap), so the gap here is a floor;
        // the Fig. 9 workload suite shows the full separation.
        assert!(
            ratio > 2.0,
            "COMET should be several x faster, got {ratio:.1}x \
             (COMET {}, COSMOS {})",
            sk.bandwidth(),
            sc.bandwidth()
        );
        // And ~3x lower latency (paper: 3x).
        assert!(sk.avg_latency() < sc.avg_latency());
    }

    #[test]
    fn optimistic_read_variant_is_faster() {
        let mut cfg = CosmosConfig::corrected();
        cfg.model_subtractive_read = false;
        let mut opt = CosmosDevice::new(cfg);
        let mut real = device();
        let a = opt.access(&loc(0, 0, 0), MemOp::Read, Time::ZERO);
        let b = real.access(&loc(0, 0, 0), MemOp::Read, Time::ZERO);
        assert!(a.bank_free_at < b.bank_free_at);
        assert!(a.energy < b.energy);
    }

    #[test]
    fn capacity_is_8_gbit() {
        let dev = device();
        assert_eq!(
            dev.topology().capacity().value() * 8,
            CosmosConfig::corrected().capacity_bits().value()
        );
    }
}
