//! COSMOS — the crossbar OPCM main-memory baseline (Narayan et al., ACM
//! TACO 2022) as re-modeled by the COMET paper (Section IV.B).
//!
//! Two configurations:
//!
//! * [`CosmosConfig::original`] — 4-bit crossbar cells without crosstalk
//!   mitigation; [`run_corruption_experiment`] reproduces the paper's
//!   Fig. 2 data-destruction demonstration on it.
//! * [`CosmosConfig::corrected`] — the paper's fixed-up baseline (5 mW
//!   pulses, b=2 with 9 % level spacing, subarray ports, PCM row switches,
//!   6 SOA arrays per subarray) used in the Fig. 8/9 comparisons via
//!   [`CosmosDevice`] and [`CosmosPowerModel`].
//!
//! The functional [`Crossbar`] models what makes crossbars hard:
//! multiplicative column read-out (hence subtractive reads) and
//! thermo-optic write disturb of adjacent rows.
//!
//! # Quick start
//!
//! ```
//! use cosmos::{run_corruption_experiment, CosmosConfig, TestImage};
//!
//! let image = TestImage::synthetic(32, 16, 16);
//! let report = run_corruption_experiment(&CosmosConfig::original(), &image, 4);
//! assert!(report.pixel_error_rate > 0.1); // Fig. 2: visibly corrupted
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arch;
mod corruption;
mod crossbar;
mod device;
mod power;

pub use arch::{CosmosConfig, CosmosTiming};
pub use corruption::{run_corruption_experiment, CorruptionReport, TestImage};
pub use crossbar::Crossbar;
pub use device::{line_write_energy, CosmosDevice};
pub use power::CosmosPowerModel;
