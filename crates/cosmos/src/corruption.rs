//! The Fig. 2 image-corruption study.
//!
//! The paper stores an image in the original (4-bit, crosstalk-unmitigated)
//! COSMOS crossbar, performs four writes to adjoining rows, and shows the
//! image visibly destroyed. This module reproduces the experiment on a
//! deterministic synthetic image and reports per-row/aggregate error rates,
//! for any crossbar configuration — so the same harness also demonstrates
//! that the corrected b=2 variant and COMET's isolated cells survive.

use crate::arch::CosmosConfig;
use crate::crossbar::Crossbar;
use serde::{Deserialize, Serialize};

/// A grayscale test image stored one pixel per cell (pixel values are
/// quantized to the cell's level count).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestImage {
    /// Width in pixels.
    pub width: u64,
    /// Height in pixels.
    pub height: u64,
    /// Row-major pixel levels.
    pub pixels: Vec<u8>,
}

impl TestImage {
    /// A deterministic synthetic photograph stand-in: smooth gradients
    /// with circular features, quantized to `levels` gray levels.
    pub fn synthetic(width: u64, height: u64, levels: u16) -> Self {
        let mut pixels = Vec::with_capacity((width * height) as usize);
        let (cx, cy) = (width as f64 / 2.0, height as f64 / 2.0);
        for y in 0..height {
            for x in 0..width {
                let dx = x as f64 - cx;
                let dy = y as f64 - cy;
                let r = (dx * dx + dy * dy).sqrt() / (cx.min(cy));
                let wave = (r * 6.0).sin() * 0.5 + 0.5;
                let grad = x as f64 / width as f64;
                let v = (0.6 * wave + 0.4 * grad).clamp(0.0, 1.0);
                pixels.push(((v * (levels - 1) as f64).round()) as u8);
            }
        }
        TestImage {
            width,
            height,
            pixels,
        }
    }

    /// Pixel at (row, col).
    pub fn pixel(&self, row: u64, col: u64) -> u8 {
        self.pixels[(row * self.width + col) as usize]
    }
}

/// Result of one corruption experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorruptionReport {
    /// Configuration name.
    pub config: String,
    /// Number of aggressor writes performed.
    pub aggressor_writes: u32,
    /// Fraction of all image cells whose decode changed.
    pub pixel_error_rate: f64,
    /// Per-row error rates.
    pub row_error_rates: Vec<f64>,
    /// Mean absolute level error across the image.
    pub mean_level_error: f64,
}

/// Stores `image` in a crossbar built from `config`, performs
/// `aggressor_writes` writes to rows adjoining the image region, and
/// measures the corruption.
///
/// The image occupies rows `1..=height` so that row 0 and row `height+1`
/// are available as aggressor rows (the "4 writes to adjoining rows" of
/// Fig. 2 alternate between the two edges and interior re-writes).
pub fn run_corruption_experiment(
    config: &CosmosConfig,
    image: &TestImage,
    aggressor_writes: u32,
) -> CorruptionReport {
    let rows = image.height + 2;
    let mut xb = Crossbar::new(config, rows, image.width);
    let max_level = xb.codec().level_count() as u8;

    // Store the image in rows 1..=height, then run the write-verify pass
    // a bulk load ends with (the paper's clean "original image" state) —
    // without it, storing the image row-by-row already disturbs it.
    for r in 0..image.height {
        let levels: Vec<u8> = (0..image.width)
            .map(|c| image.pixel(r, c).min(max_level - 1))
            .collect();
        xb.write_row(r + 1, &levels);
    }
    xb.verify_and_correct();

    // Aggressor writes to the adjoining rows (the Fig. 2 scenario writes
    // rows bordering the stored image; each write disturbs its inner
    // neighbour through the -18 dB crosstalk).
    for k in 0..aggressor_writes {
        let target = if k % 2 == 0 { 0 } else { rows - 1 };
        let pattern: Vec<u8> = (0..image.width)
            .map(|c| ((c + k as u64) % max_level as u64) as u8)
            .collect();
        xb.write_row(target, &pattern);
    }

    // Measure: compare stored (programmed) levels against observed decode.
    let mut row_error_rates = Vec::with_capacity(image.height as usize);
    let mut total_errors = 0u64;
    let mut total_level_error = 0u64;
    for r in 0..image.height {
        let row = r + 1;
        row_error_rates.push(xb.row_error_rate(row));
        let stored = xb.stored_row(row);
        let observed = xb.ideal_read_row(row);
        for (s, o) in stored.iter().zip(&observed) {
            if s != o {
                total_errors += 1;
            }
            total_level_error += (*s as i16 - *o as i16).unsigned_abs() as u64;
        }
    }
    let cells = image.width * image.height;
    CorruptionReport {
        config: config.name.clone(),
        aggressor_writes,
        pixel_error_rate: total_errors as f64 / cells as f64,
        row_error_rates,
        mean_level_error: total_level_error as f64 / cells as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_image_is_deterministic_and_in_range() {
        let a = TestImage::synthetic(32, 32, 16);
        let b = TestImage::synthetic(32, 32, 16);
        assert_eq!(a, b);
        assert!(a.pixels.iter().all(|&p| p < 16));
        // Non-trivial content: many distinct values.
        let distinct: std::collections::HashSet<_> = a.pixels.iter().collect();
        assert!(distinct.len() > 8);
    }

    #[test]
    fn fig2_original_cosmos_corrupts() {
        // Paper Fig. 2: 4 writes to adjoining rows visibly corrupt the
        // image in the original 4-bit COSMOS.
        let image = TestImage::synthetic(32, 16, 16);
        let report = run_corruption_experiment(&CosmosConfig::original(), &image, 4);
        assert!(
            report.pixel_error_rate > 0.10,
            "expected visible corruption, got {}",
            report.pixel_error_rate
        );
        // Edge rows (adjacent to aggressors) are the worst hit.
        assert!(report.row_error_rates[0] > 0.9);
    }

    #[test]
    fn corrected_cosmos_survives() {
        let image = TestImage::synthetic(32, 16, 4);
        let report = run_corruption_experiment(&CosmosConfig::corrected(), &image, 4);
        assert_eq!(
            report.pixel_error_rate, 0.0,
            "corrected 2-bit COSMOS must tolerate the disturb"
        );
    }

    #[test]
    fn corruption_grows_with_writes_then_saturates() {
        let image = TestImage::synthetic(32, 16, 16);
        let few = run_corruption_experiment(&CosmosConfig::original(), &image, 1);
        let many = run_corruption_experiment(&CosmosConfig::original(), &image, 8);
        assert!(many.pixel_error_rate >= few.pixel_error_rate);
        assert!(many.mean_level_error >= few.mean_level_error);
    }
}
