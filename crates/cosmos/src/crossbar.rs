//! Functional crossbar array with write-crosstalk disturb — the mechanism
//! behind the paper's Fig. 2 corruption demonstration.
//!
//! A COSMOS crossbar cell sits at a waveguide crossing with **no isolation**
//! from its row neighbours; a write pulse on row `r` leaks ≈ −18 dB of its
//! energy into rows `r±1`, heating their GST through the thermo-optic
//! effect and dragging their transmittance. The drift saturates (the
//! disturb drives partial crystallization toward the equilibrium set by the
//! leaked power) at a level that sits **between** the decode margins of
//! 2-bit and 4-bit cells — which is exactly the paper's argument for
//! dropping the corrected COSMOS to b=2 with 9 % level spacing:
//!
//! * b=4, 6 % spacing ⇒ 3 % margin < drift ⇒ corruption (Fig. 2);
//! * b=2, 9 % spacing ⇒ 4.5 % margin > saturated drift ⇒ tolerated.
//!
//! Reads are **multiplicative**: a column read-out sees the product of all
//! cell transmittances along the column (the cells share the waveguide),
//! which is why COSMOS needs the *subtractive* read: read the column, erase
//! the target row, read again, and divide (subtract in dB) at the
//! controller.

use crate::arch::CosmosConfig;
use comet::LevelCodec;
use comet_units::{Energy, Transmittance};
use photonic::CrossbarCrosstalk;
use serde::{Deserialize, Serialize};

/// Saturation ceiling of the thermo-optic drift, in transmittance units.
///
/// Calibrated between the b=4 margin (3 %) and the b=2/9 % margin (4.5 %):
/// one adjacent write corrupts 4-bit cells while 2-bit cells tolerate any
/// number of writes — reproducing both of the paper's claims.
const DRIFT_SATURATION: f64 = 0.042;

/// Transmittance drift induced per unit leaked energy, relative to the
/// saturation ceiling, at the paper's 750 pJ reference write.
const REFERENCE_WRITE_PJ: f64 = 750.0;

/// A functional COSMOS crossbar bank region.
///
/// # Examples
///
/// ```
/// use cosmos::{Crossbar, CosmosConfig};
///
/// let mut xb = Crossbar::new(&CosmosConfig::original(), 8, 8);
/// xb.write_row(0, &[5; 8]);
/// // A clean read (subtractive) returns the written levels:
/// assert_eq!(xb.subtractive_read_row(0), vec![5; 8]);
/// // Writing the adjacent row disturbs row 0's stored analog state
/// // past the 4-bit decode margin:
/// xb.write_row(1, &[2; 8]);
/// assert_ne!(xb.ideal_read_row(0), vec![5; 8]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Crossbar {
    rows: u64,
    cols: u64,
    codec: LevelCodec,
    crosstalk: CrossbarCrosstalk,
    write_energy: Energy,
    /// Programmed level per cell.
    levels: Vec<u8>,
    /// Accumulated thermo-optic transmittance drift per cell (towards
    /// lower transmittance / higher crystallinity).
    drift: Vec<f64>,
}

impl Crossbar {
    /// Creates an erased crossbar of `rows × cols` cells with the
    /// configuration's level coding and write energy.
    pub fn new(config: &CosmosConfig, rows: u64, cols: u64) -> Self {
        Crossbar {
            rows,
            cols,
            codec: LevelCodec::from_levels(config.level_transmittances.clone()),
            crosstalk: CrossbarCrosstalk::cosmos(),
            write_energy: config.write_energy,
            levels: vec![0; (rows * cols) as usize],
            drift: vec![0.0; (rows * cols) as usize],
        }
    }

    /// Rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// The level codec in use.
    pub fn codec(&self) -> &LevelCodec {
        &self.codec
    }

    fn index(&self, row: u64, col: u64) -> usize {
        assert!(row < self.rows, "row {row} out of range");
        assert!(col < self.cols, "col {col} out of range");
        (row * self.cols + col) as usize
    }

    /// The *observed* transmittance of a cell (nominal level minus the
    /// accumulated thermo-optic drift).
    pub fn observed_transmittance(&self, row: u64, col: u64) -> Transmittance {
        let i = self.index(row, col);
        let nominal = self.codec.transmittance(self.levels[i]).value();
        Transmittance::new((nominal - self.drift[i]).max(0.0))
    }

    /// Applies the thermo-optic disturb of one aggressor pulse of `energy`
    /// to a victim cell (saturating accumulation).
    fn disturb(&mut self, row: u64, col: u64, energy: Energy) {
        let i = self.index(row, col);
        let raw_shift = DRIFT_SATURATION * (energy.as_picojoules() / REFERENCE_WRITE_PJ).min(4.0);
        let headroom = DRIFT_SATURATION - self.drift[i];
        self.drift[i] += headroom.max(0.0) * (raw_shift / DRIFT_SATURATION).min(1.0);
    }

    /// Writes one full row of levels. Each cell's write pulse leaks
    /// −18 dB-scaled energy into the same column of the adjacent rows.
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the column count or any
    /// level is out of range.
    pub fn write_row(&mut self, row: u64, levels: &[u8]) {
        assert_eq!(levels.len() as u64, self.cols, "need one level per column");
        let max_level = self.codec.level_count() as u8;
        for (col, &level) in levels.iter().enumerate() {
            assert!(level < max_level, "level {level} out of range");
            let i = self.index(row, col as u64);
            self.levels[i] = level;
            self.drift[i] = 0.0; // programming re-sets the cell's state
            for neighbour in [row.checked_sub(1), Some(row + 1)].into_iter().flatten() {
                if neighbour < self.rows {
                    self.disturb(neighbour, col as u64, self.write_energy);
                }
            }
        }
    }

    /// The raw column read-out: the **product** of every cell's observed
    /// transmittance along the column — what a single optical read pass
    /// actually measures in a crossbar.
    pub fn column_transmission(&self, col: u64) -> Transmittance {
        let mut t = Transmittance::UNITY;
        for row in 0..self.rows {
            t = t.cascade(self.observed_transmittance(row, col));
        }
        t
    }

    /// The subtractive read of one row (paper Section II.B): read every
    /// column, erase the target row (a reset pulse that also disturbs its
    /// neighbours!), read again, and divide out. Restores the row
    /// afterwards (write-back), as the controller must.
    ///
    /// Returns the decoded levels.
    pub fn subtractive_read_row(&mut self, row: u64) -> Vec<u8> {
        let before: Vec<f64> = (0..self.cols)
            .map(|c| self.column_transmission(c).value())
            .collect();

        // Erase the target row to the reference (most transmissive) level.
        let stored: Vec<u8> = (0..self.cols)
            .map(|c| self.levels[self.index(row, c)])
            .collect();
        let reset_energy = self.write_energy; // reset pulses carry similar energy
        for col in 0..self.cols {
            let i = self.index(row, col);
            self.levels[i] = 0;
            self.drift[i] = 0.0;
            for neighbour in [row.checked_sub(1), Some(row + 1)].into_iter().flatten() {
                if neighbour < self.rows {
                    self.disturb(neighbour, col, reset_energy);
                }
            }
        }

        let after: Vec<f64> = (0..self.cols)
            .map(|c| self.column_transmission(c).value())
            .collect();

        // Recover T_row = T_before / T_after * T_reference and decode.
        let reference = self.codec.transmittance(0).value();
        let decoded: Vec<u8> = before
            .iter()
            .zip(&after)
            .map(|(&b, &a)| {
                let t_row = if a > 0.0 { b / a * reference } else { 0.0 };
                self.codec.decode(Transmittance::new(t_row))
            })
            .collect();

        // Restore the row (more writes, more neighbour disturb).
        self.write_row(row, &stored);
        decoded
    }

    /// Clears all accumulated drift — a write-verify / refresh pass over
    /// the whole array (what a deployment would run after bulk-loading
    /// data, and what the paper's pristine "original image" implies).
    pub fn verify_and_correct(&mut self) {
        self.drift.iter_mut().for_each(|d| *d = 0.0);
    }

    /// Reads a row assuming ideal per-cell access (no crossbar effects) —
    /// ground truth for corruption measurements.
    pub fn ideal_read_row(&self, row: u64) -> Vec<u8> {
        (0..self.cols)
            .map(|c| {
                let t = self.observed_transmittance(row, c);
                self.codec.decode(t)
            })
            .collect()
    }

    /// Stored (programmed) levels of a row, ignoring drift entirely.
    pub fn stored_row(&self, row: u64) -> Vec<u8> {
        (0..self.cols)
            .map(|c| self.levels[self.index(row, c)])
            .collect()
    }

    /// Fraction of cells in a row whose *observed* decode differs from the
    /// stored level — the corruption metric of the Fig. 2 study.
    pub fn row_error_rate(&self, row: u64) -> f64 {
        let stored = self.stored_row(row);
        let observed = self.ideal_read_row(row);
        let errors = stored.iter().zip(&observed).filter(|(s, o)| s != o).count();
        errors as f64 / stored.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn original_xb(rows: u64, cols: u64) -> Crossbar {
        Crossbar::new(&CosmosConfig::original(), rows, cols)
    }

    fn corrected_xb(rows: u64, cols: u64) -> Crossbar {
        Crossbar::new(&CosmosConfig::corrected(), rows, cols)
    }

    #[test]
    fn clean_write_read_roundtrip() {
        let mut xb = original_xb(8, 16);
        let levels: Vec<u8> = (0..16).map(|i| i % 16).collect();
        xb.write_row(3, &levels);
        assert_eq!(xb.subtractive_read_row(3), levels);
    }

    #[test]
    fn adjacent_write_corrupts_4bit_cells() {
        // The Fig. 2 mechanism: one adjacent-row write shifts 4-bit cells
        // past their 3% decode margin.
        let mut xb = original_xb(4, 8);
        xb.write_row(1, &[7; 8]);
        assert_eq!(xb.row_error_rate(1), 0.0);
        xb.write_row(2, &[3; 8]);
        assert!(
            xb.row_error_rate(1) > 0.9,
            "error rate {}",
            xb.row_error_rate(1)
        );
    }

    #[test]
    fn corrected_2bit_cells_tolerate_disturb() {
        // The corrected COSMOS claim: 9% level spacing rides out the
        // saturated thermo-optic drift.
        let mut xb = corrected_xb(4, 8);
        xb.write_row(1, &[2; 8]);
        for _ in 0..10 {
            xb.write_row(2, &[1; 8]);
            xb.write_row(0, &[3; 8]);
        }
        assert_eq!(
            xb.row_error_rate(1),
            0.0,
            "2-bit cells must tolerate repeated neighbour writes"
        );
    }

    #[test]
    fn drift_saturates() {
        let mut xb = original_xb(4, 4);
        xb.write_row(1, &[0; 4]);
        for _ in 0..50 {
            xb.write_row(2, &[5; 4]);
        }
        // Observed transmittance dropped by at most the saturation cap.
        let t = xb.observed_transmittance(1, 0).value();
        let nominal = xb.codec().transmittance(0).value();
        assert!(nominal - t <= DRIFT_SATURATION + 1e-9);
        assert!(nominal - t > DRIFT_SATURATION * 0.9);
    }

    #[test]
    fn column_transmission_is_multiplicative() {
        let mut xb = original_xb(3, 1);
        xb.write_row(0, &[0]);
        xb.write_row(1, &[15]);
        xb.write_row(2, &[0]);
        let t0 = xb.observed_transmittance(0, 0).value();
        let t1 = xb.observed_transmittance(1, 0).value();
        let t2 = xb.observed_transmittance(2, 0).value();
        let col = xb.column_transmission(0).value();
        assert!((col - t0 * t1 * t2).abs() < 1e-12);
    }

    #[test]
    fn subtractive_read_restores_contents() {
        let mut xb = original_xb(6, 8);
        let levels: Vec<u8> = (0..8).collect();
        xb.write_row(2, &levels);
        let _ = xb.subtractive_read_row(2);
        assert_eq!(xb.stored_row(2), levels, "write-back must restore");
    }

    #[test]
    fn subtractive_read_disturbs_neighbours() {
        // Reads are not free in a crossbar: the embedded reset + restore
        // pulses disturb adjacent rows (4-bit variant).
        let mut xb = original_xb(6, 8);
        xb.write_row(2, &[9; 8]);
        xb.write_row(3, &[4; 8]);
        let e_before = xb.row_error_rate(2);
        let _ = xb.subtractive_read_row(3);
        let e_after = xb.row_error_rate(2);
        assert!(e_after >= e_before);
        assert!(e_after > 0.5, "neighbour rows corrupted by read traffic");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn write_validates_levels() {
        let mut xb = corrected_xb(2, 2);
        xb.write_row(0, &[7, 0]); // corrected variant has 4 levels
    }
}
