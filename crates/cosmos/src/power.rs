//! COSMOS power stack (the right-hand bar of the paper's Fig. 8).
//!
//! Component-wise, mirroring the COMET model with the corrected COSMOS's
//! structural differences:
//!
//! * **Laser** — cells need 5 mW (not 1 mW) pulses; per access each bank
//!   lights its `M_c = 32` subarray wavelengths through coupling,
//!   propagation, the PCM row switch, the dedicated subarray ports
//!   (passive MR drop in/out) and the worst in-array cell loss. The 16-way
//!   MDM penalty is waived — the paper's "generous assumption".
//! * **SOA** — 6 SOA arrays per subarray × 32 lines, for the banks'
//!   active subarrays.
//! * **Tuning** — the crossbar has no EO-tuned rings (passive ports), so
//!   only the PCM row switches consume (negligible static) tuning power.
//! * **Interface** — one lane per bus bit per bank.

use crate::arch::CosmosConfig;
use comet::PowerStack;
use comet_units::{Decibels, Power};
use photonic::{Laser, OpticalPath, PathElement};
use serde::{Deserialize, Serialize};

/// Power model of a COSMOS configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CosmosPowerModel {
    /// The architecture being modeled.
    pub config: CosmosConfig,
    /// Cell target power (5 mW for reliable GST operation — the paper's
    /// central correction to COSMOS's 0.5 mW assumption).
    pub cell_target: Power,
    /// Routing distance from coupler to the farthest bank.
    pub routing_length: comet_units::Length,
    /// Per-lane electrical interface power.
    pub interface_lane_power: Power,
}

impl CosmosPowerModel {
    /// Default physical assumptions (matching the COMET model's scale).
    pub fn new(config: CosmosConfig) -> Self {
        CosmosPowerModel {
            config,
            cell_target: Power::from_milliwatts(5.0),
            routing_length: comet_units::Length::from_centimeters(2.0),
            interface_lane_power: Power::from_milliwatts(1.0),
        }
    }

    /// The laser → cell path of the corrected COSMOS.
    pub fn access_path(&self) -> OpticalPath {
        let mut path = OpticalPath::new();
        path.push(PathElement::Coupler)
            .push(PathElement::Propagation(self.routing_length))
            .push(PathElement::Bends(4))
            .push(PathElement::GstSwitch) // PCM subarray-row switch
            .push(PathElement::MrDrop) // dedicated subarray in-port
            .push(PathElement::MrDrop) // dedicated subarray out-port
            // Worst-case in-array traversal before the first SOA stage:
            // the paper's 1.4 dB worst-case figure.
            .push(PathElement::Fixed(Decibels::new(1.4)));
        path
    }

    /// Laser wall-plug power: `B × M_c` active wavelengths at 5 mW targets.
    ///
    /// The subtractive read doubles the illumination duty (the subarray is
    /// read in full before *and* after the row reset), so the laser's
    /// time-averaged draw doubles relative to a single-pass design.
    pub fn laser_power(&self) -> Power {
        let laser = Laser::new(self.config.optical.laser_wall_plug_efficiency);
        let loss = self.access_path().total_loss(&self.config.optical);
        let channels = (self.config.banks * self.config.subarray_side) as usize;
        let activity = if self.config.model_subtractive_read {
            2.0
        } else {
            1.0
        };
        laser.electrical_power_for_channels(self.cell_target, loss, channels) * activity
    }

    /// Active SOA power: 6 arrays × `M_c` lines per active subarray, per
    /// bank, at the subtractive read's *double* activity (the whole
    /// subarray is illuminated twice per read).
    pub fn soa_power(&self) -> Power {
        let per_subarray = self.config.soa_arrays_per_subarray() * self.config.subarray_side;
        let active = per_subarray * self.config.banks;
        let activity = if self.config.model_subtractive_read {
            2.0
        } else {
            1.0
        };
        self.config.optical.intra_subarray_soa_power * active as f64 * activity
    }

    /// Tuning power: the crossbar uses passive ports; only the PCM row
    /// switches hold state (negligible static power, charged at one EO
    /// figure per active bank for fairness).
    pub fn tuning_power(&self) -> Power {
        let per_switch = self
            .config
            .optical
            .eo_tuning_power(comet_units::Length::from_nanometers(1.0));
        per_switch * self.config.banks as f64
    }

    /// Electrical interface power: one lane per bus bit per bank.
    pub fn interface_power(&self) -> Power {
        self.interface_lane_power * (self.config.banks * self.config.timing.bus_bits as u64) as f64
    }

    /// The full stack (Fig. 8's COSMOS bar).
    pub fn stack(&self) -> PowerStack {
        PowerStack {
            laser: self.laser_power(),
            soa: self.soa_power(),
            tuning: self.tuning_power(),
            interface: self.interface_power(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet::{CometConfig, CometPowerModel};

    fn model() -> CosmosPowerModel {
        CosmosPowerModel::new(CosmosConfig::corrected())
    }

    #[test]
    fn laser_dominates_cosmos_stack() {
        // Fig. 8's observation for both architectures.
        let s = model().stack();
        assert!(s.laser.as_watts() > s.soa.as_watts());
        assert!(
            s.laser / s.total() > 0.5,
            "laser share {}",
            s.laser / s.total()
        );
    }

    #[test]
    fn comet_consumes_less_than_cosmos() {
        // Fig. 8 headline: COMET uses a fraction of COSMOS's power (the
        // paper quotes 26%; our component model lands in the same
        // direction — see EXPERIMENTS.md for the measured ratio).
        let cosmos = model().stack().total();
        let comet = CometPowerModel::new(CometConfig::comet_4b())
            .stack()
            .total();
        assert!(
            comet.as_watts() < cosmos.as_watts(),
            "COMET {} should undercut COSMOS {}",
            comet,
            cosmos
        );
    }

    #[test]
    fn five_milliwatt_targets_drive_laser_power() {
        let base = model();
        let mut cheap = model();
        cheap.cell_target = Power::from_milliwatts(1.0);
        assert!(
            (base.laser_power().as_watts() / cheap.laser_power().as_watts() - 5.0).abs() < 0.01
        );
    }

    #[test]
    fn subtractive_read_doubles_soa_activity() {
        let real = model();
        let mut optimistic = model();
        optimistic.config.model_subtractive_read = false;
        assert!(
            (real.soa_power().as_watts() / optimistic.soa_power().as_watts() - 2.0).abs() < 1e-9
        );
    }

    #[test]
    fn stack_total_in_expected_decade() {
        let total = model().stack().total().as_watts();
        assert!((20.0..=120.0).contains(&total), "total {total} W");
    }
}
