//! COSMOS architecture configurations (paper Sections II.B and IV.B).
//!
//! Two variants matter:
//!
//! * [`CosmosConfig::original`] — the architecture as published (ACM TACO
//!   2022): 4-bit crossbar cells with ~6 % level spacing and 135 pJ energy
//!   assumptions. The paper shows this variant corrupts neighbouring rows
//!   on every write (Fig. 2) because the −18 dB write crosstalk shifts
//!   crystalline fractions by ~8 %.
//! * [`CosmosConfig::corrected`] — the paper's re-modeled baseline used in
//!   the Fig. 8/9 comparisons: 5 mW pulses delivering real GST energies,
//!   bit density dropped to b=2 with four asymmetric levels
//!   (0.99/0.90/0.81/0.72, 9 % spacing), `16 × 16384 × 16384 × 2` layout
//!   with 32×32 subarrays, 6 SOA arrays per subarray, dedicated subarray
//!   ports and PCM-switch row gating.

use comet_units::{BitCount, ByteCount, Energy, Time};
use photonic::OpticalParams;
use serde::{Deserialize, Serialize};

/// COSMOS timing parameters (paper Table II, corrected variant).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CosmosTiming {
    /// Data-bus width, bits.
    pub bus_bits: u32,
    /// Burst length.
    pub burst_length: u32,
    /// Per-beat time.
    pub burst_beat: Time,
    /// Single crossbar read pass.
    pub read_time: Time,
    /// Row erase (reset) pulse.
    pub erase_time: Time,
    /// Row write (program) pulse.
    pub write_time: Time,
    /// PCM-switch subarray-row access time (added by the paper's
    /// correction, mirroring COMET's GST switches).
    pub subarray_switch_time: Time,
    /// Electrical interface delay.
    pub interface_delay: Time,
}

impl CosmosTiming {
    /// Table II values for the corrected COSMOS.
    pub fn table_ii() -> Self {
        CosmosTiming {
            bus_bits: 128,
            burst_length: 8,
            burst_beat: Time::from_nanos(1.0),
            read_time: Time::from_nanos(25.0),
            erase_time: Time::from_nanos(250.0),
            write_time: Time::from_micros(1.6),
            subarray_switch_time: Time::from_nanos(100.0),
            interface_delay: Time::from_nanos(105.0),
        }
    }

    /// Bytes per access.
    pub fn access_bytes(&self) -> u64 {
        (self.bus_bits as u64 * self.burst_length as u64) / 8
    }

    /// Bus occupancy of one access.
    pub fn burst_time(&self) -> Time {
        self.burst_beat * self.burst_length as f64
    }

    /// Duration of one subtractive read sequence: read + row reset + read
    /// (the subtraction itself happens electronically at the controller).
    pub fn subtractive_read_time(&self) -> Time {
        self.read_time + self.erase_time + self.read_time
    }
}

impl Default for CosmosTiming {
    fn default() -> Self {
        Self::table_ii()
    }
}

/// A COSMOS memory configuration.
///
/// # Examples
///
/// ```
/// use cosmos::CosmosConfig;
///
/// let cfg = CosmosConfig::corrected();
/// // (B × N_r × N_c × b) = 16 × 16384 × 16384 × 2 = 2^33 bits.
/// assert_eq!(cfg.capacity_bits().value(), 1 << 33);
/// assert_eq!(cfg.bits_per_cell, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CosmosConfig {
    /// Report name.
    pub name: String,
    /// Banks (requires an MDM degree equal to the bank count — the paper
    /// generously assumes the 16-mode losses away).
    pub banks: u64,
    /// Rows per bank (`N_r`).
    pub rows: u64,
    /// Cell columns per bank (`N_c`).
    pub cols: u64,
    /// Subarray side (`M_r = M_c = 32` in the corrected variant).
    pub subarray_side: u64,
    /// Bits per cell.
    pub bits_per_cell: u8,
    /// Read-out transmittance per level, most-transmissive first.
    pub level_transmittances: Vec<f64>,
    /// Write pulse energy actually delivered to a cell.
    pub write_energy: Energy,
    /// Whether the subtractive-read sequence is modeled on the timing
    /// path (true for faithful evaluation; false reproduces the original
    /// paper's optimistic single-read accounting).
    pub model_subtractive_read: bool,
    /// Cache line size.
    pub cache_line: ByteCount,
    /// Optical constants.
    pub optical: OpticalParams,
    /// Timing.
    pub timing: CosmosTiming,
}

impl CosmosConfig {
    /// The corrected COSMOS the paper compares against (Section IV.B).
    pub fn corrected() -> Self {
        CosmosConfig {
            name: "COSMOS".into(),
            banks: 16,
            rows: 16384,
            cols: 16384,
            subarray_side: 32,
            bits_per_cell: 2,
            // Four asymmetric levels, 9% spacing, avoiding the lossy
            // high-crystalline-fraction states.
            level_transmittances: vec![0.99, 0.90, 0.81, 0.72],
            // 5 mW × 150 ns class pulses (250-750 pJ range from [17]).
            write_energy: Energy::from_picojoules(750.0),
            model_subtractive_read: true,
            cache_line: ByteCount::new(128),
            optical: OpticalParams::table_i(),
            timing: CosmosTiming::table_ii(),
        }
    }

    /// COSMOS as originally published: 4 bits/cell with ~6 % spacing and
    /// no crosstalk mitigation — the configuration Fig. 2 corrupts.
    pub fn original() -> Self {
        let spacing = 0.06;
        let levels: Vec<f64> = (0..16).map(|k| 0.95 - spacing * k as f64).collect();
        CosmosConfig {
            name: "COSMOS-original".into(),
            bits_per_cell: 4,
            level_transmittances: levels,
            model_subtractive_read: false,
            ..Self::corrected()
        }
    }

    /// Total capacity in bits: `B × N_r × N_c × b`.
    pub fn capacity_bits(&self) -> BitCount {
        BitCount::new(self.banks * self.rows * self.cols * self.bits_per_cell as u64)
    }

    /// Cells per cache line.
    pub fn cells_per_line(&self) -> u64 {
        self.cache_line.to_bits().value() / self.bits_per_cell as u64
    }

    /// Cache-line slots per bank row.
    pub fn line_slots_per_row(&self) -> u64 {
        self.cols * self.bits_per_cell as u64 / self.cache_line.to_bits().value()
    }

    /// Subarrays per bank (grid of `subarray_side²` cells each).
    pub fn subarrays_per_bank(&self) -> u64 {
        (self.rows / self.subarray_side) * (self.cols / self.subarray_side)
    }

    /// SOA arrays per subarray from the worst-case in-array loss: the
    /// paper derives 6 for the corrected design (1.4 dB worst per-cell loss
    /// over 32 cells against 15.2 dB usable gain, row and column paths).
    pub fn soa_arrays_per_subarray(&self) -> u64 {
        let worst_cell_loss_db = -10.0
            * self
                .level_transmittances
                .last()
                .copied()
                .unwrap_or(0.72)
                .log10();
        // The paper works with the rounded 1.4 dB figure.
        let worst_cell_loss_db = (worst_cell_loss_db * 10.0).round() / 10.0;
        let per_path_db = worst_cell_loss_db * self.subarray_side as f64;
        // Row and column paths both need coverage.
        let total_db = 2.0 * per_path_db;
        (total_db / self.optical.intra_subarray_soa_gain.value()).ceil() as u64
    }
}

impl Default for CosmosConfig {
    fn default() -> Self {
        Self::corrected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrected_capacity_is_8_gbit() {
        assert_eq!(CosmosConfig::corrected().capacity_bits().value(), 1 << 33);
    }

    #[test]
    fn corrected_has_four_asymmetric_levels() {
        let cfg = CosmosConfig::corrected();
        assert_eq!(cfg.level_transmittances.len(), 4);
        for w in cfg.level_transmittances.windows(2) {
            assert!((w[0] - w[1] - 0.09).abs() < 1e-9, "9% spacing");
        }
    }

    #[test]
    fn six_soa_arrays_per_subarray() {
        // The paper: "this also requires 6 SOA arrays ... per subarray".
        assert_eq!(CosmosConfig::corrected().soa_arrays_per_subarray(), 6);
    }

    #[test]
    fn original_is_4_bit() {
        let cfg = CosmosConfig::original();
        assert_eq!(cfg.bits_per_cell, 4);
        assert_eq!(cfg.level_transmittances.len(), 16);
        // Same total cell count, double the bits of the corrected variant.
        assert_eq!(
            cfg.capacity_bits().value(),
            2 * CosmosConfig::corrected().capacity_bits().value()
        );
    }

    #[test]
    fn subtractive_read_time() {
        let t = CosmosTiming::table_ii();
        // 25 + 250 + 25 = 300 ns.
        assert!((t.subtractive_read_time().as_nanos() - 300.0).abs() < 1e-9);
        assert_eq!(t.access_bytes(), 128);
    }

    #[test]
    fn line_geometry() {
        let cfg = CosmosConfig::corrected();
        assert_eq!(cfg.cells_per_line(), 512);
        assert_eq!(cfg.line_slots_per_row(), 32);
        assert_eq!(cfg.subarrays_per_bank(), 512 * 512);
    }
}
