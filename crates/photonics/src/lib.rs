//! Silicon-photonic circuit substrate for the COMET reproduction.
//!
//! Models the circuit layer between the device physics (`opcm-phys`) and
//! the memory architecture (`comet` / `cosmos`):
//!
//! * [`OpticalParams`] — the paper's Table I loss/power constants;
//! * [`PathElement`] / [`OpticalPath`] — composable loss budgets for laser
//!   power sizing and SOA placement;
//! * [`Microring`] — ring spectral response, FSR/finesse, channel limits;
//! * [`MrTuning`] — the thermal-vs-electro-optic access trade-off;
//! * [`WdmMdmLink`] — wavelength × mode multiplexed bandwidth and the
//!   MDM-degree practicality bound;
//! * [`Laser`] — wall-plug laser power from loss budgets;
//! * [`CrossbarCrosstalk`] — the COSMOS write-disturb failure model;
//! * [`LevelBudget`] / [`Photodetector`] — read-out loss tolerance per bit
//!   density and SNR/BER.
//!
//! # Quick start
//!
//! ```
//! use comet_units::Power;
//! use photonic::{Laser, MrTuning, OpticalParams, OpticalPath, PathElement};
//!
//! let params = OpticalParams::table_i();
//! // Access path: coupler, 46 through-rows, the cell-gating MR drop.
//! let mut path = OpticalPath::new();
//! path.push(PathElement::Coupler)
//!     .push_repeated(PathElement::TunedMrThrough(MrTuning::ElectroOptic), 46)
//!     .push(PathElement::TunedMrDrop(MrTuning::ElectroOptic));
//! // 46 rows of EO-MR through-loss ≈ one intra-subarray SOA stage of gain:
//! assert!(path.total_loss(&params).value() > 15.0);
//! let laser = Laser::table_i();
//! let wall_plug = laser.electrical_power_for_path(
//!     Power::from_milliwatts(1.0), &path, &params);
//! assert!(wall_plug.as_milliwatts() > 100.0); // why SOAs are mandatory
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod crosstalk;
mod elements;
mod laser;
mod link;
mod mitigation;
mod mr;
mod params;
mod path;
mod readout;

pub use crosstalk::{CrossbarCrosstalk, IsolatedCell};
pub use elements::{MrTuning, PathElement};
pub use laser::Laser;
pub use link::{ModePenalty, WdmMdmLink};
pub use mitigation::{FilterOrder, WdmCrosstalkAnalysis};
pub use mr::Microring;
pub use params::OpticalParams;
pub use path::OpticalPath;
pub use readout::{erfc, LevelBudget, Photodetector};
