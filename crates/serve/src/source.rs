//! Request sources: open-loop, closed-loop, and the multi-tenant mux.
//!
//! A [`RequestSource`] is the demand side of the service core: polled for
//! its next arrival, asked to materialize the request, and notified of
//! completions (which is how closed-loop clients pace themselves). The
//! [`TenantMux`] interleaves named sources by arrival time — ties resolve
//! to the lowest tenant index, so the interleaving is deterministic — while
//! preserving each tenant's own request order.

use crate::arrival::{ArrivalClock, ArrivalProcess};
use crate::shape::StreamShape;
use comet_units::{ByteCount, Time};
use memsim::{MemOp, WorkloadProfile};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Totally ordered wrapper for event times (f64 seconds under `total_cmp`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdTime(pub f64);

impl Eq for OrdTime {}

impl PartialOrd for OrdTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// What polling a source yields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourcePoll {
    /// A request is ready to arrive at this time.
    Ready(Time),
    /// Nothing until an outstanding request completes (closed-loop with
    /// all clients in flight).
    Blocked,
    /// The source's request budget is spent.
    Exhausted,
}

/// A materialized request, before the core assigns it an id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sourced {
    /// Arrival time at the controller.
    pub arrival: Time,
    /// Operation.
    pub op: MemOp,
    /// Physical byte address.
    pub address: u64,
    /// Transfer size.
    pub size: ByteCount,
}

/// The demand side of the service core.
///
/// Implementations must be deterministic: the sequence of polls, takes and
/// completions fully determines the generated stream.
pub trait RequestSource: Send {
    /// Tenant name used in per-tenant reports.
    fn name(&self) -> &str;

    /// The next arrival, without consuming it.
    fn poll(&mut self) -> SourcePoll;

    /// Consumes and materializes the request last reported ready.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the source is not currently
    /// [`SourcePoll::Ready`].
    fn take(&mut self) -> Sourced;

    /// Notifies the source that one of its requests finished at `finished`
    /// (closed-loop sources schedule their next request from it; open-loop
    /// sources ignore it).
    fn on_complete(&mut self, finished: Time);
}

/// An open-loop source: arrivals from an [`ArrivalProcess`], oblivious to
/// service progress.
#[derive(Debug)]
pub struct OpenLoopSource {
    name: String,
    shape: StreamShape,
    clock: ArrivalClock,
    staged: Option<Time>,
    remaining: usize,
}

impl OpenLoopSource {
    /// A source emitting `requests` accesses of `shape` at the process's
    /// arrival times.
    pub fn new(
        name: impl Into<String>,
        shape: StreamShape,
        process: ArrivalProcess,
        requests: usize,
        seed: u64,
    ) -> Self {
        OpenLoopSource {
            name: name.into(),
            shape,
            clock: process.clock(seed),
            staged: None,
            remaining: requests,
        }
    }
}

impl RequestSource for OpenLoopSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self) -> SourcePoll {
        if self.remaining == 0 {
            return SourcePoll::Exhausted;
        }
        let at = *self.staged.get_or_insert_with(|| self.clock.next_arrival());
        SourcePoll::Ready(at)
    }

    fn take(&mut self) -> Sourced {
        let arrival = self.staged.take().expect("take() without a Ready poll");
        self.remaining -= 1;
        let (op, address, size) = self.shape.next_access();
        Sourced {
            arrival,
            op,
            address,
            size,
        }
    }

    fn on_complete(&mut self, _finished: Time) {}
}

/// A closed-loop source: `clients` independent clients, each keeping one
/// request in flight and re-issuing `think` after its completion — the
/// classic fixed-concurrency load generator whose offered rate self-limits
/// at the service rate.
#[derive(Debug)]
pub struct ClosedLoopSource {
    name: String,
    shape: StreamShape,
    think: Time,
    /// Times at which a client is ready to issue (min-heap).
    ready: BinaryHeap<Reverse<OrdTime>>,
    remaining: usize,
}

impl ClosedLoopSource {
    /// A source of `requests` total accesses from `clients` clients with
    /// the given think time. All clients are ready at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is zero (the source could never issue).
    pub fn new(
        name: impl Into<String>,
        shape: StreamShape,
        clients: usize,
        think: Time,
        requests: usize,
    ) -> Self {
        assert!(clients > 0, "closed loop needs at least one client");
        ClosedLoopSource {
            name: name.into(),
            shape,
            think,
            ready: (0..clients).map(|_| Reverse(OrdTime(0.0))).collect(),
            remaining: requests,
        }
    }
}

impl RequestSource for ClosedLoopSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self) -> SourcePoll {
        if self.remaining == 0 {
            return SourcePoll::Exhausted;
        }
        match self.ready.peek() {
            Some(Reverse(t)) => SourcePoll::Ready(Time::from_seconds(t.0)),
            None => SourcePoll::Blocked,
        }
    }

    fn take(&mut self) -> Sourced {
        let Reverse(t) = self.ready.pop().expect("take() without a Ready poll");
        self.remaining -= 1;
        let (op, address, size) = self.shape.next_access();
        Sourced {
            arrival: Time::from_seconds(t.0),
            op,
            address,
            size,
        }
    }

    fn on_complete(&mut self, finished: Time) {
        self.ready
            .push(Reverse(OrdTime((finished + self.think).as_seconds())));
    }
}

/// What polling the mux yields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MuxPoll {
    /// Tenant `tenant` has a request arriving at `at` (the earliest across
    /// tenants; ties go to the lowest index).
    Ready {
        /// Index of the tenant to take from.
        tenant: usize,
        /// Arrival time of its next request.
        at: Time,
    },
    /// Every non-exhausted tenant is waiting on completions.
    Blocked,
    /// Every tenant's budget is spent.
    Exhausted,
}

/// Interleaves named sources by arrival time with per-tenant bookkeeping.
pub struct TenantMux {
    tenants: Vec<Box<dyn RequestSource>>,
}

impl std::fmt::Debug for TenantMux {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantMux")
            .field("tenants", &self.names())
            .finish()
    }
}

impl TenantMux {
    /// Wraps the tenant sources (index order is the tie-break order).
    ///
    /// # Panics
    ///
    /// Panics on an empty tenant list.
    pub fn new(tenants: Vec<Box<dyn RequestSource>>) -> Self {
        assert!(!tenants.is_empty(), "mux needs at least one tenant");
        TenantMux { tenants }
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the mux has no tenants (never true — construction requires
    /// at least one).
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The tenant names, in index order.
    pub fn names(&self) -> Vec<String> {
        self.tenants.iter().map(|t| t.name().to_string()).collect()
    }

    /// The earliest pending arrival across tenants.
    pub fn poll(&mut self) -> MuxPoll {
        let mut best: Option<(Time, usize)> = None;
        let mut all_exhausted = true;
        for (i, tenant) in self.tenants.iter_mut().enumerate() {
            match tenant.poll() {
                SourcePoll::Ready(at) => {
                    all_exhausted = false;
                    // Strict `<` keeps the lowest index on ties.
                    if best.map_or(true, |(t, _)| at < t) {
                        best = Some((at, i));
                    }
                }
                SourcePoll::Blocked => all_exhausted = false,
                SourcePoll::Exhausted => {}
            }
        }
        match best {
            Some((at, tenant)) => MuxPoll::Ready { tenant, at },
            None if all_exhausted => MuxPoll::Exhausted,
            None => MuxPoll::Blocked,
        }
    }

    /// Takes the next request of tenant `tenant`.
    pub fn take(&mut self, tenant: usize) -> Sourced {
        self.tenants[tenant].take()
    }

    /// Routes a completion back to its tenant.
    pub fn on_complete(&mut self, tenant: usize, finished: Time) {
        self.tenants[tenant].on_complete(finished);
    }
}

/// The golden-ratio stride `comet-lab` also uses for seed derivation.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// FNV-1a over a tenant name (decorelates same-profile tenants).
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// How a declarative tenant offers load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TenantLoad {
    /// Open loop: arrivals from the process regardless of service progress.
    Open(ArrivalProcess),
    /// Closed loop: fixed concurrency with think time.
    Closed {
        /// Clients keeping one request in flight each.
        clients: usize,
        /// Pause between a completion and the client's next request.
        think: Time,
    },
}

/// A declarative tenant: instantiated per campaign cell with the cell's
/// seed and (unless it carries its own) the cell's workload profile.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name (report label; also folded into the tenant's seed).
    pub name: String,
    /// Traffic shape override; `None` uses the cell's workload profile.
    pub profile: Option<WorkloadProfile>,
    /// Load model.
    pub load: TenantLoad,
    /// Request budget.
    pub requests: usize,
}

impl TenantSpec {
    /// An open-loop tenant shaped by the cell's workload profile.
    pub fn open(name: impl Into<String>, process: ArrivalProcess, requests: usize) -> Self {
        TenantSpec {
            name: name.into(),
            profile: None,
            load: TenantLoad::Open(process),
            requests,
        }
    }

    /// A closed-loop tenant shaped by the cell's workload profile.
    pub fn closed(name: impl Into<String>, clients: usize, think: Time, requests: usize) -> Self {
        TenantSpec {
            name: name.into(),
            profile: None,
            load: TenantLoad::Closed { clients, think },
            requests,
        }
    }

    /// Overrides the traffic shape (e.g. a DOTA transformer stream beside
    /// SPEC-like tenants).
    pub fn with_profile(mut self, profile: WorkloadProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Builds the tenant's source. `fallback` supplies the shape when the
    /// spec carries none; `seed` is the cell seed, decorrelated per tenant
    /// by index and name.
    pub fn instantiate(
        &self,
        fallback: &WorkloadProfile,
        seed: u64,
        index: usize,
    ) -> Box<dyn RequestSource> {
        let profile = self.profile.as_ref().unwrap_or(fallback);
        let tenant_seed =
            seed.wrapping_add((index as u64 + 1).wrapping_mul(SEED_STRIDE)) ^ hash_name(&self.name);
        let shape = StreamShape::from_profile(profile, tenant_seed);
        match self.load {
            TenantLoad::Open(process) => Box::new(OpenLoopSource::new(
                &self.name,
                shape,
                process,
                self.requests,
                tenant_seed.rotate_left(32) ^ SEED_STRIDE,
            )),
            TenantLoad::Closed { clients, think } => Box::new(ClosedLoopSource::new(
                &self.name,
                shape,
                clients,
                think,
                self.requests,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_units::ByteCount;
    use memsim::AccessPattern;

    fn profile() -> WorkloadProfile {
        WorkloadProfile {
            name: "src-test".into(),
            read_fraction: 0.5,
            footprint: ByteCount::from_mib(1),
            pattern: AccessPattern::Random,
            interarrival: Time::from_nanos(1.0),
            requests: 0,
            line_bytes: 64,
        }
    }

    #[test]
    fn open_loop_drains_budget_in_order() {
        let spec = TenantSpec::open("t", ArrivalProcess::deterministic(1e9), 10);
        let mut src = spec.instantiate(&profile(), 42, 0);
        let mut last = Time::ZERO;
        for _ in 0..10 {
            match src.poll() {
                SourcePoll::Ready(at) => {
                    let s = src.take();
                    assert_eq!(s.arrival, at);
                    assert!(s.arrival >= last);
                    last = s.arrival;
                }
                other => panic!("expected Ready, got {other:?}"),
            }
        }
        assert_eq!(src.poll(), SourcePoll::Exhausted);
    }

    #[test]
    fn closed_loop_blocks_until_completion_and_honours_think() {
        let spec = TenantSpec::closed("c", 2, Time::from_nanos(50.0), 5);
        let mut src = spec.instantiate(&profile(), 1, 0);
        // Two clients ready at t=0.
        assert_eq!(src.poll(), SourcePoll::Ready(Time::ZERO));
        let _ = src.take();
        let _ = src.take();
        assert_eq!(src.poll(), SourcePoll::Blocked);
        // A completion at 100 ns frees a client at 150 ns.
        src.on_complete(Time::from_nanos(100.0));
        match src.poll() {
            SourcePoll::Ready(at) => assert!((at.as_nanos() - 150.0).abs() < 1e-9),
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn mux_picks_earliest_with_index_tiebreak() {
        let fast = TenantSpec::open("fast", ArrivalProcess::deterministic(2e9), 100);
        let slow = TenantSpec::open("slow", ArrivalProcess::deterministic(1e9), 100);
        let p = profile();
        let mut mux = TenantMux::new(vec![fast.instantiate(&p, 0, 0), slow.instantiate(&p, 0, 1)]);
        // fast's first arrival (0.5 ns) precedes slow's (1 ns).
        match mux.poll() {
            MuxPoll::Ready { tenant, at } => {
                assert_eq!(tenant, 0);
                assert!((at.as_nanos() - 0.5).abs() < 1e-9);
            }
            other => panic!("{other:?}"),
        }
        let _ = mux.take(0);
        // Now both have an arrival at 1 ns: tie goes to tenant 0.
        match mux.poll() {
            MuxPoll::Ready { tenant, at } => {
                assert_eq!(tenant, 0);
                assert!((at.as_nanos() - 1.0).abs() < 1e-9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tenants_with_equal_profiles_decorrelate() {
        let p = profile();
        let a = TenantSpec::open("a", ArrivalProcess::deterministic(1e9), 50);
        let b = TenantSpec::open("b", ArrivalProcess::deterministic(1e9), 50);
        let mut sa = a.instantiate(&p, 7, 0);
        let mut sb = b.instantiate(&p, 7, 1);
        let drain = |s: &mut Box<dyn RequestSource>| {
            (0..50)
                .map(|_| {
                    let _ = s.poll();
                    let r = s.take();
                    (r.address, r.op.is_read())
                })
                .collect::<Vec<_>>()
        };
        assert_ne!(drain(&mut sa), drain(&mut sb));
    }
}
