//! Online tail-latency and queue-depth accounting.
//!
//! The service core cannot afford to keep every sample per tenant, so tail
//! latency streams into a [`TailHistogram`] — a fixed-bucket logarithmic
//! histogram an order of magnitude finer than `memsim`'s ten-bucket
//! [`LatencyHistogram`](memsim::LatencyHistogram) (eight buckets per decade
//! from 1 ns to 1 ms) — and queue depth streams into a [`DepthSeries`]
//! that decimates itself to a bounded number of samples. Both are
//! deterministic: equal event streams produce equal accounting.

use comet_units::{ByteCount, Time};
use memsim::{MemOp, SimStats};

/// Log-bucket resolution: buckets per decade of nanoseconds.
const BUCKETS_PER_DECADE: usize = 8;
/// Bucket bounds span 1 ns (10⁰) to 1 ms (10⁶ ns).
const DECADES: usize = 6;
/// Number of finite bucket bounds.
const NUM_BOUNDS: usize = BUCKETS_PER_DECADE * DECADES + 1;

/// Upper bound of bucket `i` in nanoseconds.
fn bound_ns(i: usize) -> f64 {
    10f64.powf(i as f64 / BUCKETS_PER_DECADE as f64)
}

/// A fixed-bucket streaming latency histogram (1 ns – 1 ms, 8 log buckets
/// per decade, plus an overflow bucket tracked against the recorded max).
///
/// # Examples
///
/// ```
/// use comet_serve::TailHistogram;
/// use comet_units::Time;
///
/// let mut h = TailHistogram::new();
/// for ns in 1..=1000 {
///     h.record(Time::from_nanos(ns as f64));
/// }
/// let p50 = h.percentile(50.0).as_nanos();
/// let p99 = h.percentile(99.0).as_nanos();
/// assert!(p50 < p99);
/// assert!(h.percentile(100.0) <= h.max());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TailHistogram {
    counts: Vec<u64>,
    total: u64,
    max: Time,
    sum: Time,
}

impl TailHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        TailHistogram {
            counts: vec![0; NUM_BOUNDS + 1],
            total: 0,
            max: Time::ZERO,
            sum: Time::ZERO,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Time) {
        let ns = latency.as_nanos();
        let idx = if ns < 1.0 {
            0
        } else if ns >= bound_ns(NUM_BOUNDS - 1) {
            NUM_BOUNDS // overflow bucket
        } else {
            // log10(ns) * 8 rounds down to the bucket whose bound exceeds ns.
            let i = (ns.log10() * BUCKETS_PER_DECADE as f64).floor() as usize + 1;
            // Guard the float boundary: the bucket's bound must exceed ns.
            if ns < bound_ns(i) {
                i
            } else {
                i + 1
            }
        };
        self.counts[idx] += 1;
        self.total += 1;
        self.max = self.max.max(latency);
        self.sum += latency;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest sample recorded.
    pub fn max(&self) -> Time {
        self.max
    }

    /// Mean of the recorded samples.
    pub fn mean(&self) -> Time {
        if self.total == 0 {
            Time::ZERO
        } else {
            self.sum / self.total as f64
        }
    }

    /// Latency at percentile `q` (clamped to `[0, 100]`): nearest-rank over
    /// the bucket distribution, linearly interpolated within the winning
    /// bucket; the overflow bucket interpolates toward the recorded max.
    /// Resolution is the bucket width (< 34 % of the value at eight buckets
    /// per decade); empty histograms report [`Time::ZERO`].
    pub fn percentile(&self, q: f64) -> Time {
        if self.total == 0 {
            return Time::ZERO;
        }
        let q = q.clamp(0.0, 100.0);
        let target = ((self.total as f64 * q / 100.0).ceil()).max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let before = seen;
            seen += c;
            if c > 0 && seen >= target {
                let lower = if i == 0 { 0.0 } else { bound_ns(i - 1) };
                let upper = if i < NUM_BOUNDS {
                    bound_ns(i)
                } else {
                    self.max.as_nanos().max(lower)
                };
                let frac = (target - before) as f64 / c as f64;
                // Clamp to the recorded max: the top bucket's bound can
                // overshoot the largest sample actually seen.
                return Time::from_nanos(lower + (upper - lower) * frac).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one (used to check that tenant
    /// tails sum to the aggregate).
    pub fn merge(&mut self, other: &TailHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }
}

impl Default for TailHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A self-decimating time series of queue depth.
///
/// Every event records `(time, depth)`; when the buffer reaches its
/// capacity it drops every other retained sample and doubles its sampling
/// stride, so memory stays bounded while the series keeps covering the
/// whole run. Decimation depends only on the event sequence, never on
/// wall-clock state, so equal runs produce equal series.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthSeries {
    samples: Vec<(Time, u64)>,
    capacity: usize,
    stride: u64,
    seen: u64,
    max_depth: u64,
    /// Time-weighted depth integral (depth · seconds).
    area: f64,
    last: Option<(Time, u64)>,
}

impl DepthSeries {
    /// A series retaining at most `capacity` samples (at least 2).
    pub fn new(capacity: usize) -> Self {
        DepthSeries {
            samples: Vec::new(),
            capacity: capacity.max(2),
            stride: 1,
            seen: 0,
            max_depth: 0,
            area: 0.0,
            last: None,
        }
    }

    /// Records the instantaneous depth after an event at `now` (event
    /// times must be non-decreasing).
    pub fn record(&mut self, now: Time, depth: u64) {
        if let Some((t, d)) = self.last {
            self.area += d as f64 * (now - t).as_seconds();
        }
        self.last = Some((now, depth));
        self.max_depth = self.max_depth.max(depth);
        if self.seen % self.stride == 0 {
            if self.samples.len() >= self.capacity {
                let mut keep = 0usize;
                self.samples.retain(|_| {
                    keep += 1;
                    (keep - 1) % 2 == 0
                });
                self.stride *= 2;
            }
            // Re-check the stride after decimation.
            if self.seen % self.stride == 0 {
                self.samples.push((now, depth));
            }
        }
        self.seen += 1;
    }

    /// The retained `(time, depth)` samples in time order.
    pub fn samples(&self) -> &[(Time, u64)] {
        &self.samples
    }

    /// The deepest instantaneous queue observed.
    pub fn max_depth(&self) -> u64 {
        self.max_depth
    }

    /// Time-weighted mean depth over `makespan`.
    pub fn mean_depth(&self, makespan: Time) -> f64 {
        if makespan.is_zero() {
            0.0
        } else {
            self.area / makespan.as_seconds()
        }
    }

    /// Events recorded (before decimation).
    pub fn events(&self) -> u64 {
        self.seen
    }
}

/// Per-tenant accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// Tenant name.
    pub name: String,
    /// Requests completed.
    pub completed: u64,
    /// Reads completed.
    pub reads: u64,
    /// Writes completed.
    pub writes: u64,
    /// Bytes transferred.
    pub bytes: ByteCount,
    /// Sum of request latencies.
    pub total_latency: Time,
    /// Maximum request latency.
    pub max_latency: Time,
    /// Streaming latency distribution.
    pub tail: TailHistogram,
}

impl TenantStats {
    /// Empty accounting for a named tenant.
    pub fn new(name: impl Into<String>) -> Self {
        TenantStats {
            name: name.into(),
            completed: 0,
            reads: 0,
            writes: 0,
            bytes: ByteCount::ZERO,
            total_latency: Time::ZERO,
            max_latency: Time::ZERO,
            tail: TailHistogram::new(),
        }
    }

    /// Folds one completion into the record.
    pub fn record(&mut self, op: MemOp, size: ByteCount, latency: Time) {
        self.completed += 1;
        if op.is_read() {
            self.reads += 1;
        } else {
            self.writes += 1;
        }
        self.bytes += size;
        self.total_latency += latency;
        self.max_latency = self.max_latency.max(latency);
        self.tail.record(latency);
    }

    /// Mean latency.
    pub fn avg_latency(&self) -> Time {
        if self.completed == 0 {
            Time::ZERO
        } else {
            self.total_latency / self.completed as f64
        }
    }

    /// Latency percentile from the streaming histogram.
    pub fn percentile(&self, q: f64) -> Time {
        self.tail.percentile(q)
    }

    /// Completed-request throughput over `makespan`, requests per second.
    pub fn throughput_rps(&self, makespan: Time) -> f64 {
        if makespan.is_zero() {
            0.0
        } else {
            self.completed as f64 / makespan.as_seconds()
        }
    }
}

/// Per-logical-channel accounting (sums over channels must equal the
/// aggregate — the sharding soundness check).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelStats {
    /// Logical channel index.
    pub channel: u64,
    /// Requests completed on the channel.
    pub completed: u64,
    /// Bytes moved over the channel's bus.
    pub bytes: ByteCount,
    /// Summed data-bus occupancy.
    pub busy: Time,
}

impl ChannelStats {
    /// Empty accounting for a channel.
    pub fn new(channel: u64) -> Self {
        ChannelStats {
            channel,
            completed: 0,
            bytes: ByteCount::ZERO,
            busy: Time::ZERO,
        }
    }
}

/// The result of one service run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Aggregate statistics in the same shape trace replay produces —
    /// including the exact p50/p95/p99 fields — so campaign reports treat
    /// serve and replay cells uniformly.
    pub stats: SimStats,
    /// Per-tenant accounting, in tenant index order.
    pub tenants: Vec<TenantStats>,
    /// Per-logical-channel accounting.
    pub channels: Vec<ChannelStats>,
    /// Queue-depth time series (requests in system).
    pub depth: DepthSeries,
    /// Fine-grained aggregate latency distribution.
    pub tail: TailHistogram,
    /// Writes that entered the batch stage.
    pub batched_writes: u64,
    /// Same-line writes coalesced away (completed by another access).
    pub coalesced_writes: u64,
    /// Backend instances the simulation was partitioned across.
    pub shards: usize,
}

impl ServeReport {
    /// Sum of per-channel completions (equals `stats.completed` — pinned
    /// by the crate's property tests).
    pub fn channel_total(&self) -> u64 {
        self.channels.iter().map(|c| c.completed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_increasing_and_cover_the_range() {
        for i in 1..NUM_BOUNDS {
            assert!(bound_ns(i) > bound_ns(i - 1));
        }
        assert!((bound_ns(0) - 1.0).abs() < 1e-12);
        assert!((bound_ns(NUM_BOUNDS - 1) - 1.0e6).abs() < 1e-3);
    }

    #[test]
    fn records_land_in_the_right_bucket() {
        let mut h = TailHistogram::new();
        for ns in [0.5, 1.5, 10.0, 99.0, 1.0e5, 5.0e6] {
            h.record(Time::from_nanos(ns));
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts[0], 1, "sub-ns sample in the first bucket");
        assert_eq!(h.counts[NUM_BOUNDS], 1, "5 ms sample overflows");
        assert_eq!(h.max(), Time::from_nanos(5.0e6));
    }

    #[test]
    fn percentiles_bracket_samples_tightly() {
        let mut h = TailHistogram::new();
        for _ in 0..1000 {
            h.record(Time::from_nanos(200.0));
        }
        let p = h.percentile(99.0).as_nanos();
        // Eight buckets per decade: the bucket around 200 ns spans
        // ~178..~237 ns.
        assert!((150.0..=250.0).contains(&p), "p99 {p}");
        // Monotone in q.
        assert!(h.percentile(10.0) <= h.percentile(90.0));
    }

    #[test]
    fn overflow_percentile_interpolates_to_max() {
        let mut h = TailHistogram::new();
        for _ in 0..10 {
            h.record(Time::from_millis(3.0));
        }
        let p100 = h.percentile(100.0);
        assert!(p100 <= h.max());
        assert!(p100.as_nanos() >= bound_ns(NUM_BOUNDS - 1));
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = TailHistogram::new();
        let mut b = TailHistogram::new();
        for ns in 1..100 {
            a.record(Time::from_nanos(ns as f64));
            b.record(Time::from_nanos(10.0 * ns as f64));
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.total(), a.total() + b.total());
        assert_eq!(merged.max(), b.max());
    }

    #[test]
    fn depth_series_decimates_deterministically() {
        let mut s = DepthSeries::new(8);
        for i in 0..1000u64 {
            s.record(Time::from_nanos(i as f64), i % 50);
        }
        assert!(s.samples().len() <= 8);
        assert_eq!(s.max_depth(), 49);
        assert_eq!(s.events(), 1000);
        // Samples stay in time order.
        for w in s.samples().windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
        // Determinism.
        let mut t = DepthSeries::new(8);
        for i in 0..1000u64 {
            t.record(Time::from_nanos(i as f64), i % 50);
        }
        assert_eq!(s, t);
    }

    #[test]
    fn depth_series_mean_is_time_weighted() {
        let mut s = DepthSeries::new(16);
        s.record(Time::ZERO, 10);
        s.record(Time::from_nanos(100.0), 0);
        s.record(Time::from_nanos(200.0), 0);
        // Depth 10 for the first half, 0 for the second: mean 5.
        let mean = s.mean_depth(Time::from_nanos(200.0));
        assert!((mean - 5.0).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn tenant_stats_fold() {
        let mut t = TenantStats::new("t");
        t.record(MemOp::Read, ByteCount::new(64), Time::from_nanos(100.0));
        t.record(MemOp::Write, ByteCount::new(64), Time::from_nanos(300.0));
        assert_eq!(t.completed, 2);
        assert_eq!(t.reads, 1);
        assert_eq!(t.writes, 1);
        assert!((t.avg_latency().as_nanos() - 200.0).abs() < 1e-9);
        assert_eq!(t.max_latency, Time::from_nanos(300.0));
        assert!((t.throughput_rps(Time::from_micros(1.0)) - 2.0e6).abs() < 1.0);
    }
}
