//! The write-coalescing batch stage.
//!
//! PCM writes are an order of magnitude slower and costlier than reads
//! ("Improving Phase Change Memory Performance with Data Content Aware
//! Access" makes the same asymmetry argument electrically; COMET's Table II
//! shows 170 ns programming against 10 ns reads). The batcher exploits the
//! asymmetry at the controller: an admitted write is *held* for a short
//! window keyed by its `(channel, bank, row)`; further writes to the same
//! row within the window join the batch (so their programming pulses issue
//! back-to-back into one subarray reservation), and writes to the *same
//! line* are coalesced outright — one device access completes all of them,
//! since only the last store's data matters.
//!
//! Reads are never delayed. A read arriving for a row with held writes
//! flushes that row's batch ahead of itself, so store→load ordering per
//! row is preserved at the queue level.

use crate::core::Queued;
use comet_units::Time;
use std::collections::HashMap;

/// Write-batching knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// How long a write may be held, measured from the first write of its
    /// row batch.
    pub window: Time,
    /// Distinct (non-coalesced) writes per row batch before it releases
    /// early.
    pub max_writes: usize,
}

impl BatchConfig {
    /// A batching configuration.
    ///
    /// # Panics
    ///
    /// Panics if the window is non-positive or `max_writes` is zero.
    pub fn new(window: Time, max_writes: usize) -> Self {
        assert!(window > Time::ZERO, "batch window must be positive");
        assert!(max_writes >= 1, "a batch holds at least one write");
        BatchConfig { window, max_writes }
    }
}

impl Default for BatchConfig {
    /// 100 ns window (under COMET's 170 ns programming pulse, so holding
    /// never doubles a write's latency), 8 writes per row batch.
    fn default() -> Self {
        BatchConfig {
            window: Time::from_nanos(100.0),
            max_writes: 8,
        }
    }
}

/// One held row batch.
#[derive(Debug)]
struct RowBatch {
    /// Release deadline (first admitted write's arrival + window).
    deadline: Time,
    /// Creation order, the deterministic tie-break for equal deadlines.
    seq: u64,
    /// Held writes in admission order.
    writes: Vec<Queued>,
}

/// The stateful batch stage the service core drives.
#[derive(Debug)]
pub(crate) struct WriteBatcher {
    config: BatchConfig,
    pending: HashMap<(u64, u64, u64), RowBatch>,
    seq: u64,
    coalesced: u64,
    held: usize,
}

impl WriteBatcher {
    pub(crate) fn new(config: BatchConfig) -> Self {
        WriteBatcher {
            config,
            pending: HashMap::new(),
            seq: 0,
            coalesced: 0,
            held: 0,
        }
    }

    /// Same-line writes absorbed into an earlier held write so far.
    pub(crate) fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Requests currently held (distinct writes plus absorbed ones).
    pub(crate) fn held(&self) -> usize {
        self.held
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Admits a write at `now`. Returns a full batch released early, if
    /// admission filled one.
    pub(crate) fn admit(&mut self, q: Queued, now: Time) -> Vec<Queued> {
        debug_assert!(!q.op.is_read(), "the batcher only holds writes");
        let key = (q.loc.channel, q.loc.bank, q.loc.row);
        self.held += 1;
        match self.pending.get_mut(&key) {
            Some(batch) => {
                // Same line already held: coalesce — the held access will
                // complete this request too, and since only the last
                // store's bytes reach the array, the newcomer's payload
                // replaces the host's (a payload-less newcomer makes the
                // merged content unknown, deliberately).
                if let Some(host) = batch.writes.iter_mut().find(|w| w.address == q.address) {
                    host.absorbed.push((q.id, q.tenant, q.arrival));
                    host.payload = q.payload;
                    self.coalesced += 1;
                    return Vec::new();
                }
                batch.writes.push(q);
                if batch.writes.len() >= self.config.max_writes {
                    let batch = self.pending.remove(&key).expect("present");
                    self.held -= Self::batch_len(&batch);
                    return batch.writes;
                }
                Vec::new()
            }
            None => {
                self.pending.insert(
                    key,
                    RowBatch {
                        deadline: now + self.config.window,
                        seq: self.seq,
                        writes: vec![q],
                    },
                );
                self.seq += 1;
                Vec::new()
            }
        }
    }

    fn batch_len(batch: &RowBatch) -> usize {
        batch
            .writes
            .iter()
            .map(|w| 1 + w.absorbed.len())
            .sum::<usize>()
    }

    /// The earliest release deadline, if any batch is held.
    pub(crate) fn next_release(&self) -> Option<Time> {
        self.pending
            .values()
            .min_by(|a, b| {
                a.deadline
                    .as_seconds()
                    .total_cmp(&b.deadline.as_seconds())
                    .then(a.seq.cmp(&b.seq))
            })
            .map(|b| b.deadline)
    }

    /// Releases every batch whose deadline is at or before `now`, ordered
    /// by (deadline, creation order) — deterministic regardless of map
    /// iteration order.
    pub(crate) fn release_due(&mut self, now: Time) -> Vec<Queued> {
        let mut due: Vec<(u64, u64, u64)> = self
            .pending
            .iter()
            .filter(|(_, b)| b.deadline <= now)
            .map(|(k, _)| *k)
            .collect();
        due.sort_by_key(|k| {
            let b = &self.pending[k];
            (b.deadline.as_seconds().to_bits(), b.seq)
        });
        let mut out = Vec::new();
        for key in due {
            let batch = self.pending.remove(&key).expect("present");
            self.held -= Self::batch_len(&batch);
            out.extend(batch.writes);
        }
        out
    }

    /// Flushes the batch holding `(channel, bank, row)`, if any — called
    /// when a read to that row arrives, so it never overtakes a held store.
    pub(crate) fn flush_row(&mut self, channel: u64, bank: u64, row: u64) -> Vec<Queued> {
        match self.pending.remove(&(channel, bank, row)) {
            Some(batch) => {
                self.held -= Self::batch_len(&batch);
                batch.writes
            }
            None => Vec::new(),
        }
    }
}
