//! Open-loop arrival processes.
//!
//! An [`ArrivalProcess`] describes *when* requests of an open-loop tenant
//! arrive, independently of what they access (that is the
//! [`StreamShape`](crate::StreamShape)'s job) and of how fast the memory
//! serves them — the defining property of open-loop load generation, and
//! what makes the saturation hockey-stick measurable: offered load keeps
//! arriving even when the device falls behind.
//!
//! Every process is deterministic for a given seed and produces
//! non-decreasing arrival times (both properties are pinned by the crate's
//! property tests).

use comet_units::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An open-loop arrival process (rates in requests per second).
///
/// # Examples
///
/// ```
/// use comet_serve::ArrivalProcess;
///
/// let p = ArrivalProcess::poisson(1.0e9); // one request per ns on average
/// let mut clock = p.clock(42);
/// let a = clock.next_arrival();
/// let b = clock.next_arrival();
/// assert!(b >= a);
/// // Same seed, same stream.
/// assert_eq!(p.clock(42).next_arrival(), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Evenly spaced arrivals at a fixed rate (deterministic spacing
    /// `1/rate`; the cleanest probe for saturation sweeps).
    Deterministic {
        /// Arrival rate, requests per second.
        rate_rps: f64,
    },
    /// Memoryless arrivals: exponential inter-arrival gaps with mean
    /// `1/rate` (the M in M/G/k).
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_rps: f64,
    },
    /// On/off bursts: evenly spaced arrivals at `rate_rps` during `on`
    /// windows separated by silent `off` windows (mean rate
    /// `rate · on/(on+off)`).
    Bursty {
        /// Arrival rate inside a burst, requests per second.
        rate_rps: f64,
        /// Burst duration.
        on: Time,
        /// Idle duration between bursts.
        off: Time,
    },
}

impl ArrivalProcess {
    /// Evenly spaced arrivals at `rate_rps` requests per second.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is positive and finite.
    pub fn deterministic(rate_rps: f64) -> Self {
        assert!(
            rate_rps > 0.0 && rate_rps.is_finite(),
            "arrival rate must be positive, got {rate_rps}"
        );
        ArrivalProcess::Deterministic { rate_rps }
    }

    /// Poisson arrivals at a mean of `rate_rps` requests per second.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is positive and finite.
    pub fn poisson(rate_rps: f64) -> Self {
        assert!(
            rate_rps > 0.0 && rate_rps.is_finite(),
            "arrival rate must be positive, got {rate_rps}"
        );
        ArrivalProcess::Poisson { rate_rps }
    }

    /// On/off bursts: `rate_rps` inside `on` windows, silence for `off`.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is positive and finite, `on` is positive and
    /// `off` is non-negative.
    pub fn bursty(rate_rps: f64, on: Time, off: Time) -> Self {
        assert!(
            rate_rps > 0.0 && rate_rps.is_finite(),
            "burst rate must be positive, got {rate_rps}"
        );
        assert!(on > Time::ZERO, "burst window must be positive");
        assert!(off >= Time::ZERO, "idle window must be non-negative");
        ArrivalProcess::Bursty { rate_rps, on, off }
    }

    /// The long-run mean arrival rate, requests per second.
    ///
    /// For bursty processes this is the asymptotic `rate · on/(on+off)`:
    /// a burst always emits at least one arrival, so windows shorter than
    /// a few inter-arrival gaps achieve more than the formula says.
    pub fn mean_rate_rps(&self) -> f64 {
        match *self {
            ArrivalProcess::Deterministic { rate_rps } | ArrivalProcess::Poisson { rate_rps } => {
                rate_rps
            }
            ArrivalProcess::Bursty { rate_rps, on, off } => {
                rate_rps * on.as_seconds() / (on + off).as_seconds()
            }
        }
    }

    /// The same process shape at `factor` times the rate (load sweeps keep
    /// burst/idle window lengths and scale only the in-window rate).
    ///
    /// # Panics
    ///
    /// Panics unless the factor is positive and finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "scale factor must be positive, got {factor}"
        );
        match *self {
            ArrivalProcess::Deterministic { rate_rps } => ArrivalProcess::Deterministic {
                rate_rps: rate_rps * factor,
            },
            ArrivalProcess::Poisson { rate_rps } => ArrivalProcess::Poisson {
                rate_rps: rate_rps * factor,
            },
            ArrivalProcess::Bursty { rate_rps, on, off } => ArrivalProcess::Bursty {
                rate_rps: rate_rps * factor,
                on,
                off,
            },
        }
    }

    /// A seeded arrival clock for this process.
    pub fn clock(&self, seed: u64) -> ArrivalClock {
        let burst_end = match *self {
            ArrivalProcess::Bursty { on, .. } => on,
            _ => Time::ZERO,
        };
        ArrivalClock {
            process: *self,
            rng: StdRng::seed_from_u64(seed),
            now: Time::ZERO,
            burst_end,
        }
    }
}

/// A stateful generator of non-decreasing arrival times.
#[derive(Debug, Clone)]
pub struct ArrivalClock {
    process: ArrivalProcess,
    rng: StdRng,
    now: Time,
    /// End of the current on-window (bursty processes only).
    burst_end: Time,
}

impl ArrivalClock {
    /// The next arrival time (non-decreasing across calls).
    pub fn next_arrival(&mut self) -> Time {
        match self.process {
            ArrivalProcess::Deterministic { rate_rps } => {
                self.now += Time::from_seconds(1.0 / rate_rps);
            }
            ArrivalProcess::Poisson { rate_rps } => {
                // Inverse-CDF exponential gap; u in [0, 1) keeps ln finite.
                let u: f64 = self.rng.gen_range(0.0..1.0);
                self.now += Time::from_seconds(-(1.0 - u).ln() / rate_rps);
            }
            ArrivalProcess::Bursty { rate_rps, on, off } => {
                let mut candidate = self.now + Time::from_seconds(1.0 / rate_rps);
                // Snap arrivals that land past the current on-window to the
                // start of the next one.
                while candidate > self.burst_end {
                    let next_start = self.burst_end + off;
                    self.burst_end = next_start + on;
                    if candidate < next_start {
                        candidate = next_start;
                    }
                }
                self.now = candidate;
            }
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_spacing_is_exact() {
        let mut clock = ArrivalProcess::deterministic(1.0e9).clock(0);
        for i in 1..=10 {
            let t = clock.next_arrival();
            assert!((t.as_nanos() - i as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let mut clock = ArrivalProcess::poisson(1.0e9).clock(7);
        let n = 20_000;
        let mut last = Time::ZERO;
        for _ in 0..n {
            last = clock.next_arrival();
        }
        let mean_gap_ns = last.as_nanos() / n as f64;
        assert!(
            (mean_gap_ns - 1.0).abs() < 0.05,
            "mean gap {mean_gap_ns} ns"
        );
    }

    #[test]
    fn bursty_respects_windows_and_mean_rate() {
        let on = Time::from_nanos(10.0);
        let off = Time::from_nanos(30.0);
        let p = ArrivalProcess::bursty(1.0e9, on, off);
        assert!((p.mean_rate_rps() - 0.25e9).abs() < 1.0);
        let mut clock = p.clock(3);
        let times: Vec<f64> = (0..40).map(|_| clock.next_arrival().as_nanos()).collect();
        for w in times.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // No arrival lands strictly inside an off window.
        for &t in &times {
            let phase = t % 40.0;
            assert!(
                phase <= 10.0 + 1e-9 || (40.0 - phase) < 1e-9,
                "arrival at {t} ns is inside the off window (phase {phase})"
            );
        }
    }

    #[test]
    fn burst_longer_than_window_emits_one_per_burst() {
        // gap (100 ns) > on (10 ns): each burst carries one arrival at its
        // start.
        let p = ArrivalProcess::bursty(1.0e7, Time::from_nanos(10.0), Time::from_nanos(90.0));
        let mut clock = p.clock(0);
        let a = clock.next_arrival().as_nanos();
        let b = clock.next_arrival().as_nanos();
        assert!((b - a - 100.0).abs() < 1.0, "a={a} b={b}");
    }

    #[test]
    fn scaling_scales_mean_rate() {
        for p in [
            ArrivalProcess::deterministic(1e8),
            ArrivalProcess::poisson(1e8),
            ArrivalProcess::bursty(1e8, Time::from_nanos(5.0), Time::from_nanos(15.0)),
        ] {
            let scaled = p.scaled(4.0);
            assert!((scaled.mean_rate_rps() / p.mean_rate_rps() - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = ArrivalProcess::deterministic(0.0);
    }
}
