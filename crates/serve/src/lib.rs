//! `comet-serve` — an event-driven, multi-tenant traffic subsystem.
//!
//! `memsim` replays one pre-materialized trace through one device;
//! `comet-serve` turns that engine into a *service*, which is where
//! COMET's headline latency/EPB claims actually live — they are
//! throughput-and-queueing claims, and queueing only exists under a
//! request process:
//!
//! * **Request sources** ([`RequestSource`]) — open-loop arrival processes
//!   ([`ArrivalProcess`]: deterministic-rate, Poisson, bursty on/off) and
//!   closed-loop clients (fixed concurrency with think time), each seeded
//!   and deterministic, interleaved by a multi-tenant [`TenantMux`] with
//!   per-tenant accounting; tenants optionally source *line payloads*
//!   ([`TenantSpec::with_payload`], a `comet_data::PayloadSpec`) so
//!   content-aware devices price every store from its actual bytes;
//! * **A channel-sharded service core** ([`run_service`]) — one logical
//!   simulation partitioned across channel-owned
//!   [`memsim::MemoryDevice`] backends (address-interleaved through
//!   [`memsim::AddressMap`]), per-bank command queues reusing
//!   [`memsim::Scheduler`], and a write-coalescing batch stage
//!   ([`BatchConfig`]) that merges same-row/same-line writes within a
//!   window — exploiting PCM's read/write asymmetry;
//! * **Online tail accounting** — streaming p50/p95/p99/max through a
//!   fixed-bucket [`TailHistogram`], per-tenant throughput, and a
//!   self-decimating queue-depth [`DepthSeries`], all landing in the same
//!   [`memsim::SimStats`] shape trace replay reports, so `comet-lab`
//!   campaigns export serve cells and replay cells uniformly.
//!
//! # Quick start
//!
//! ```
//! use comet_serve::{run_service, ServeSpec};
//! use comet_units::Time;
//! use memsim::{spec_like_suite, EpcmConfig};
//!
//! let profile = &spec_like_suite(400)[0]; // mcf-like shape
//! let spec = ServeSpec::closed_loop(4, Time::from_nanos(50.0), 400);
//! let report = run_service(&EpcmConfig::epcm_mm(), &spec, profile, 42, &profile.name);
//! assert_eq!(report.stats.completed, 400);
//! assert!(report.stats.p99_latency >= report.stats.p50_latency);
//! println!(
//!     "p99 {:.0} ns at {:.2} Mrps",
//!     report.stats.p99_latency.as_nanos(),
//!     report.tenants[0].throughput_rps(report.stats.makespan) / 1e6,
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arrival;
mod batch;
mod core;
mod shape;
mod source;
mod stats;

pub use arrival::{ArrivalClock, ArrivalProcess};
pub use batch::BatchConfig;
pub use core::{run_service, run_service_with_sources, ServeSpec};
pub use shape::StreamShape;
pub use source::{
    ClosedLoopSource, MuxPoll, OpenLoopSource, RequestSource, SourcePoll, Sourced, TenantLoad,
    TenantMux, TenantSpec,
};
pub use stats::{ChannelStats, DepthSeries, ServeReport, TailHistogram, TenantStats};
