//! The event-driven, channel-sharded service core.
//!
//! Where `memsim::run_simulation` replays a pre-materialized trace,
//! [`run_service`] runs a *service*: sources generate requests online
//! (closed-loop ones react to completions), a write-coalescing batch stage
//! sits in front of the per-bank command queues, and one logical device is
//! partitioned across several backend instances by channel.
//!
//! # Event order and determinism
//!
//! The core is a single discrete-event loop. At every step it knows four
//! candidate times — the next completion, the next batch release, the next
//! arrival, and the earliest possible command issue — and processes the
//! smallest; ties resolve in that fixed priority order. Every decision is a
//! function of the spec, the seed and the event history, so a run is
//! deterministic.
//!
//! # Channel sharding
//!
//! `shards` backend instances are built from the same factory and the
//! logical device's channels are partitioned across them (`channel mod
//! shards`). Each instance only ever sees accesses for the channels it
//! owns. Because every provided [`memsim::MemoryDevice`] keeps its mutable
//! state per `(channel, bank)` (open rows, refresh deadlines, subarray
//! reservations), the partitioned instances evolve exactly as the
//! corresponding slices of one monolithic instance would — so the report
//! is **identical for any shard count**, which is what makes sharding a
//! deployment knob rather than a model change. Background power is counted
//! once (the instances are partitions of one device, not replicas);
//! accumulated energy (e.g. DRAM refresh) is drained from every shard and
//! summed, which never double-counts because each bank lives in exactly
//! one shard.

use crate::batch::{BatchConfig, WriteBatcher};
use crate::source::{MuxPoll, RequestSource, TenantMux, TenantSpec};
use crate::stats::{ChannelStats, DepthSeries, ServeReport, TailHistogram, TenantStats};
use comet_units::{ByteCount, Energy, Time};
use memsim::{
    AddressMap, CompletedRequest, DecodedAddress, DeviceFactory, Interleave, LineData, MemOp,
    MemRequest, MemoryDevice, Scheduler, SimStats, WorkloadProfile,
};
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};

/// A queued (admitted but not yet issued) request.
#[derive(Debug, Clone)]
pub(crate) struct Queued {
    pub(crate) id: u64,
    pub(crate) tenant: usize,
    pub(crate) op: MemOp,
    pub(crate) address: u64,
    pub(crate) size: ByteCount,
    /// Original arrival (latency is measured from here).
    pub(crate) arrival: Time,
    /// Earliest issue time (arrival, or the batch release for held writes).
    pub(crate) ready: Time,
    pub(crate) loc: DecodedAddress,
    /// The written line content (the *newest* store's data when same-line
    /// writes coalesce — only the last store's bytes reach the array).
    pub(crate) payload: Option<LineData>,
    /// Same-line writes coalesced into this one: `(id, tenant, arrival)`.
    pub(crate) absorbed: Vec<(u64, usize, Time)>,
}

/// A scheduled completion event.
#[derive(Debug)]
struct Completion {
    finished: Time,
    /// Monotone sequence number — the deterministic tie-break.
    seq: u64,
    issued: Time,
    q: Queued,
}

impl PartialEq for Completion {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Completion {}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> Ordering {
        self.finished
            .as_seconds()
            .total_cmp(&other.finished.as_seconds())
            .then(self.seq.cmp(&other.seq))
    }
}

/// A declarative service scenario: tenant mix, scheduling, sharding and
/// batching — everything a campaign engine point needs to run one cell
/// through the service core.
///
/// # Examples
///
/// ```
/// use comet_serve::{run_service, ArrivalProcess, ServeSpec};
/// use memsim::{spec_like_suite, EpcmConfig};
///
/// let profile = &spec_like_suite(300)[0];
/// let spec = ServeSpec::open_loop(ArrivalProcess::deterministic(5.0e6), 300);
/// let report = run_service(&EpcmConfig::epcm_mm(), &spec, profile, 42, &profile.name);
/// assert_eq!(report.stats.completed, 300);
/// assert!(report.stats.p99_latency >= report.stats.p50_latency);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSpec {
    /// The tenant mix (at least one).
    pub tenants: Vec<TenantSpec>,
    /// Command scheduling policy for the per-bank queues.
    pub scheduler: Scheduler,
    /// Backend instances to partition the device's channels across
    /// (clamped to `1..=channels`; the report is identical for any value).
    pub shards: usize,
    /// Write-coalescing batch stage; `None` sends writes straight to the
    /// queues.
    pub batch: Option<BatchConfig>,
}

impl ServeSpec {
    /// A single open-loop tenant (named `"open"`) shaped by the cell's
    /// workload profile.
    pub fn open_loop(process: crate::ArrivalProcess, requests: usize) -> Self {
        ServeSpec {
            tenants: vec![TenantSpec::open("open", process, requests)],
            scheduler: Scheduler::default(),
            shards: 1,
            batch: None,
        }
    }

    /// A single closed-loop tenant (named `"closed"`) shaped by the cell's
    /// workload profile.
    pub fn closed_loop(clients: usize, think: Time, requests: usize) -> Self {
        ServeSpec {
            tenants: vec![TenantSpec::closed("closed", clients, think, requests)],
            scheduler: Scheduler::default(),
            shards: 1,
            batch: None,
        }
    }

    /// Adds a tenant to the mix.
    pub fn with_tenant(mut self, tenant: TenantSpec) -> Self {
        self.tenants.push(tenant);
        self
    }

    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Enables the write-coalescing batch stage.
    pub fn with_batch(mut self, batch: BatchConfig) -> Self {
        self.batch = Some(batch);
        self
    }

    /// Total request budget across tenants.
    pub fn total_requests(&self) -> usize {
        self.tenants.iter().map(|t| t.requests).sum()
    }
}

/// Runs the scenario against devices built from `factory`, shaping
/// profile-less tenants with `fallback`, and labels the aggregate stats
/// with `workload_label`.
pub fn run_service(
    factory: &dyn DeviceFactory,
    spec: &ServeSpec,
    fallback: &WorkloadProfile,
    seed: u64,
    workload_label: &str,
) -> ServeReport {
    assert!(!spec.tenants.is_empty(), "serve spec needs tenants");
    let sources = spec
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| t.instantiate(fallback, seed, i))
        .collect();
    run_service_with_sources(factory, sources, spec, workload_label)
}

/// [`run_service`] with pre-built sources (library callers that implement
/// their own [`RequestSource`]).
pub fn run_service_with_sources(
    factory: &dyn DeviceFactory,
    sources: Vec<Box<dyn RequestSource>>,
    spec: &ServeSpec,
    workload_label: &str,
) -> ServeReport {
    let shard0 = factory.build();
    let topo = shard0.topology();
    let interface_delay = shard0.interface_delay();
    let background = shard0.background_power();
    let device_name = shard0.name();

    let shard_count = spec.shards.clamp(1, topo.channels as usize);
    let mut shards: Vec<Box<dyn MemoryDevice>> = vec![shard0];
    shards.extend((1..shard_count).map(|_| factory.build()));

    let map = AddressMap::new(
        topo.channels,
        topo.banks,
        topo.rows,
        topo.columns,
        topo.line_bytes,
        // Same permutation interleaving run_simulation uses, so strided
        // streams spread across channels.
        Interleave::RowBankColumnChannelXor,
    )
    .expect("device topology dimensions must be powers of two");

    let nbanks = (topo.channels * topo.banks) as usize;
    let mut queues: Vec<VecDeque<Queued>> = Vec::new();
    queues.resize_with(nbanks, VecDeque::new);
    let mut bank_free = vec![Time::ZERO; nbanks];
    let mut bus_free = vec![Time::ZERO; topo.channels as usize];

    let mut mux = TenantMux::new(sources);
    let mut tenants: Vec<TenantStats> = mux.names().into_iter().map(TenantStats::new).collect();
    let mut channels: Vec<ChannelStats> = (0..topo.channels).map(ChannelStats::new).collect();
    let mut stats = SimStats::new(device_name, workload_label);
    let mut tail = TailHistogram::new();
    let mut depth = DepthSeries::new(512);
    let mut latencies: Vec<Time> = Vec::new();
    let mut completions: BinaryHeap<Reverse<Completion>> = BinaryHeap::new();
    let mut batcher = spec.batch.map(WriteBatcher::new);

    let mut next_id: u64 = 0;
    let mut comp_seq: u64 = 0;
    let mut in_system: u64 = 0;
    let mut batched_writes: u64 = 0;

    // Enqueues a (possibly released) request at its bank queue.
    let enqueue = |queues: &mut Vec<VecDeque<Queued>>, q: Queued| {
        let bank = (q.loc.channel * topo.banks + q.loc.bank) as usize;
        queues[bank].push_back(q);
    };

    loop {
        let t_complete = completions.peek().map(|Reverse(c)| c.finished);
        let t_release = batcher.as_ref().and_then(WriteBatcher::next_release);
        let poll = mux.poll();
        let t_arrival = match poll {
            MuxPoll::Ready { at, .. } => Some(at),
            _ => None,
        };
        let issue = scan_issue(
            &queues,
            &mut shards,
            shard_count,
            topo.banks,
            &bank_free,
            spec.scheduler,
        );
        let t_issue = issue.map(|(t, _, _)| t);

        // Pick the earliest candidate; iteration order is the tie-break
        // priority (completion, release, arrival, issue).
        let mut chosen: Option<(Time, u8)> = None;
        for (i, t) in [t_complete, t_release, t_arrival, t_issue]
            .into_iter()
            .enumerate()
        {
            if let Some(t) = t {
                if chosen.map_or(true, |(best, _)| t < best) {
                    chosen = Some((t, i as u8));
                }
            }
        }

        match chosen {
            None => {
                match poll {
                    MuxPoll::Exhausted => break,
                    // Unreachable: Blocked implies an outstanding request,
                    // whose completion event is in the heap.
                    other => unreachable!("service stalled with mux state {other:?}"),
                }
            }
            Some((now, 0)) => {
                // Completion.
                let Reverse(Completion {
                    finished,
                    issued,
                    q,
                    ..
                }) = completions.pop().expect("peeked");
                debug_assert_eq!(finished, now);
                let ch = q.loc.channel as usize;
                let mut complete_one = |id: u64, tenant: usize, arrival: Time| {
                    let done = CompletedRequest {
                        request: MemRequest::new(id, arrival, q.op, q.address, q.size),
                        issued,
                        finished,
                    };
                    stats.record(&done);
                    let lat = done.latency();
                    latencies.push(lat);
                    tail.record(lat);
                    tenants[tenant].record(q.op, q.size, lat);
                    channels[ch].completed += 1;
                    channels[ch].bytes += q.size;
                    mux.on_complete(tenant, finished);
                    in_system -= 1;
                };
                complete_one(q.id, q.tenant, q.arrival);
                for &(id, tenant, arrival) in &q.absorbed {
                    complete_one(id, tenant, arrival);
                }
                depth.record(finished, in_system);
            }
            Some((now, 1)) => {
                // Batch release: held writes become issuable at `now`.
                let released = batcher
                    .as_mut()
                    .expect("release candidate implies a batcher")
                    .release_due(now);
                for mut w in released {
                    w.ready = now;
                    enqueue(&mut queues, w);
                }
            }
            Some((now, 2)) => {
                // Arrival.
                let tenant = match poll {
                    MuxPoll::Ready { tenant, .. } => tenant,
                    _ => unreachable!("arrival candidate implies Ready"),
                };
                let s = mux.take(tenant);
                debug_assert_eq!(s.arrival, now);
                let loc = map.decode(s.address);
                let q = Queued {
                    id: next_id,
                    tenant,
                    op: s.op,
                    address: s.address,
                    size: s.size,
                    arrival: s.arrival,
                    ready: s.arrival,
                    loc,
                    payload: s.payload,
                    absorbed: Vec::new(),
                };
                next_id += 1;
                in_system += 1;
                depth.record(now, in_system);
                match (&mut batcher, s.op) {
                    (Some(b), MemOp::Write) => {
                        batched_writes += 1;
                        for mut w in b.admit(q, now) {
                            w.ready = now;
                            enqueue(&mut queues, w);
                        }
                    }
                    (Some(b), MemOp::Read) => {
                        // Store→load ordering: held writes to this row go
                        // ahead of the read.
                        for mut w in b.flush_row(loc.channel, loc.bank, loc.row) {
                            w.ready = now;
                            enqueue(&mut queues, w);
                        }
                        enqueue(&mut queues, q);
                    }
                    (None, _) => enqueue(&mut queues, q),
                }
            }
            Some((now, _)) => {
                // Issue.
                let (_, bank, pos) = issue.expect("issue candidate present");
                let q = queues[bank].remove(pos).expect("position was validated");
                let shard = shards[(q.loc.channel as usize) % shard_count].as_mut();
                let timing = shard.access_line(&q.loc, q.op, now, q.payload.as_ref());
                let ch = q.loc.channel as usize;
                let transfer_start = timing.data_ready_at.max(bus_free[ch]);
                let transfer_end = transfer_start + timing.bus_occupancy;
                bus_free[ch] = transfer_end;
                bank_free[bank] = timing.bank_free_at;
                stats.energy.access += timing.energy;
                channels[ch].busy += timing.bus_occupancy;
                completions.push(Reverse(Completion {
                    finished: transfer_end + interface_delay,
                    seq: comp_seq,
                    issued: now,
                    q,
                }));
                comp_seq += 1;
            }
        }
    }

    debug_assert_eq!(in_system, 0, "all admitted requests completed");
    debug_assert!(batcher
        .as_ref()
        .map_or(true, |b| b.is_empty() && b.held() == 0));

    // Drained (refresh / managed) energy accrues in per-shard accumulators,
    // and f64 addition is not associative — summing K partial sums can land
    // one ULP away from the monolithic accumulator. Quantizing each shard's
    // drain to integer femtojoules (~10⁻⁶ of a single DRAM refresh op, far
    // below model fidelity) makes the total independent of how banks were
    // partitioned, which the shard-invariance guarantee requires exactly.
    let mut drained_fj: f64 = 0.0;
    for shard in &mut shards {
        drained_fj += (shard.drain_accumulated_energy().as_joules() * 1e15).round();
    }
    stats.energy.refresh = Energy::from_joules(drained_fj * 1e-15);
    // The shard instances partition one device, so its background power
    // burns once, not per shard.
    stats.finalize_background(background);
    stats.finalize_percentiles(&mut latencies);

    ServeReport {
        stats,
        tenants,
        channels,
        depth,
        tail,
        batched_writes,
        coalesced_writes: batcher.as_ref().map_or(0, WriteBatcher::coalesced),
        shards: shard_count,
    }
}

/// Finds the earliest-issuable queued request: `(issue time, bank index,
/// queue position)`. Mirrors `run_simulation`'s scheduling (FCFS head, or
/// FR-FCFS best-of-window with row hits winning ties).
fn scan_issue(
    queues: &[VecDeque<Queued>],
    shards: &mut [Box<dyn MemoryDevice>],
    shard_count: usize,
    banks: u64,
    bank_free: &[Time],
    scheduler: Scheduler,
) -> Option<(Time, usize, usize)> {
    let mut best: Option<(Time, usize, usize)> = None;
    for (b, queue) in queues.iter().enumerate() {
        if queue.is_empty() {
            continue;
        }
        let ch = b / banks as usize;
        let dev = shards[ch % shard_count].as_mut();
        let (pos, ready) = match scheduler {
            Scheduler::Fcfs => {
                let q = &queue[0];
                let base = bank_free[b].max(q.ready);
                (0, dev.bank_available(&q.loc, base))
            }
            Scheduler::FrFcfs { window } => {
                let mut chosen = (0usize, Time::from_seconds(f64::INFINITY), false);
                for (p, q) in queue.iter().take(window).enumerate() {
                    let base = bank_free[b].max(q.ready);
                    let ready = dev.bank_available(&q.loc, base);
                    let hit = dev.row_hit(&q.loc);
                    let better = ready < chosen.1 || (ready == chosen.1 && hit && !chosen.2);
                    if better {
                        chosen = (p, ready, hit);
                    }
                }
                (chosen.0, chosen.1)
            }
        };
        match best {
            Some((t, _, _)) if ready >= t => {}
            _ => best = Some((ready, b, pos)),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalProcess;
    use memsim::{AccessPattern, DramConfig, EpcmConfig};

    fn profile(name: &str, read_fraction: f64) -> WorkloadProfile {
        WorkloadProfile {
            name: name.into(),
            read_fraction,
            footprint: ByteCount::from_mib(8),
            pattern: AccessPattern::Random,
            interarrival: Time::from_nanos(2.0),
            requests: 0,
            line_bytes: 64,
        }
    }

    #[test]
    fn open_loop_completes_budget_deterministically() {
        let p = profile("open-test", 0.8);
        let spec = ServeSpec::open_loop(ArrivalProcess::poisson(5.0e6), 500);
        let run = || run_service(&EpcmConfig::epcm_mm(), &spec, &p, 42, "open-test");
        let a = run();
        let b = run();
        assert_eq!(a, b, "service runs are deterministic");
        assert_eq!(a.stats.completed, 500);
        assert_eq!(a.stats.completed, a.stats.reads + a.stats.writes);
        assert_eq!(a.channel_total(), 500);
        assert!(a.stats.p50_latency > Time::ZERO);
        assert!(a.stats.p99_latency >= a.stats.p95_latency);
        assert!(a.stats.p95_latency >= a.stats.p50_latency);
        assert_eq!(a.tenants.len(), 1);
        assert_eq!(a.tenants[0].completed, 500);
        assert_eq!(a.depth.events(), 1000, "one sample per arrival+completion");
    }

    #[test]
    fn closed_loop_self_limits_below_open_loop_overload() {
        let p = profile("closed-test", 0.7);
        // Open loop far past EPCM's service rate: latency explodes.
        let open = ServeSpec::open_loop(ArrivalProcess::deterministic(5.0e8), 800);
        let oa = run_service(&EpcmConfig::epcm_mm(), &open, &p, 1, "w");
        // Closed loop with 4 clients: queueing bounded by concurrency.
        let closed = ServeSpec::closed_loop(4, Time::ZERO, 800);
        let ca = run_service(&EpcmConfig::epcm_mm(), &closed, &p, 1, "w");
        assert!(
            ca.stats.p99_latency < oa.stats.p99_latency,
            "closed {} vs open {}",
            ca.stats.p99_latency,
            oa.stats.p99_latency
        );
        // Closed-loop in-flight never exceeds the client count.
        assert!(ca.depth.max_depth() <= 4);
    }

    #[test]
    fn multi_tenant_mix_accounts_per_tenant() {
        let p = profile("mix", 0.9);
        let spec = ServeSpec::open_loop(ArrivalProcess::deterministic(2.0e6), 300).with_tenant(
            TenantSpec::closed("batch-tenant", 2, Time::from_nanos(100.0), 200),
        );
        let report = run_service(&EpcmConfig::epcm_mm(), &spec, &p, 9, "mix");
        assert_eq!(report.stats.completed, 500);
        assert_eq!(report.tenants.len(), 2);
        assert_eq!(report.tenants[0].name, "open");
        assert_eq!(report.tenants[0].completed, 300);
        assert_eq!(report.tenants[1].name, "batch-tenant");
        assert_eq!(report.tenants[1].completed, 200);
        let tenant_total: u64 = report.tenants.iter().map(|t| t.completed).sum();
        assert_eq!(tenant_total, report.stats.completed);
    }

    #[test]
    fn write_batching_coalesces_same_line_writes() {
        // A tiny footprint forces address collisions within the window.
        let mut p = profile("hot-writes", 0.0);
        p.footprint = ByteCount::new(16 * 64);
        let base = ServeSpec::open_loop(ArrivalProcess::deterministic(2.0e8), 600);
        let batched = base
            .clone()
            .with_batch(BatchConfig::new(Time::from_nanos(200.0), 16));
        let plain = run_service(&EpcmConfig::epcm_mm(), &base, &p, 3, "w");
        let coal = run_service(&EpcmConfig::epcm_mm(), &batched, &p, 3, "w");
        // Every request still completes.
        assert_eq!(plain.stats.completed, 600);
        assert_eq!(coal.stats.completed, 600);
        assert_eq!(coal.batched_writes, 600);
        assert!(coal.coalesced_writes > 0, "hot lines must coalesce");
        // Coalesced runs do less array work: lower access energy.
        assert!(coal.stats.energy.access < plain.stats.energy.access);
    }

    #[test]
    fn read_flush_preserves_store_load_order_in_queue() {
        // Directly exercise the batcher path: a write then a read to the
        // same line; the read must not leave its row's write held.
        let mut p = profile("raw", 0.5);
        p.footprint = ByteCount::new(64); // a single line: every access collides
        let spec = ServeSpec::open_loop(ArrivalProcess::deterministic(1.0e7), 100)
            .with_batch(BatchConfig::new(Time::from_micros(10.0), 64));
        let report = run_service(&EpcmConfig::epcm_mm(), &spec, &p, 5, "raw");
        // All requests complete even though the window (10 us) is far
        // longer than the run would otherwise take — reads force flushes.
        assert_eq!(report.stats.completed, 100);
    }

    #[test]
    fn shard_count_does_not_change_the_report() {
        // A 4-channel DRAM variant exercises real partitioning.
        let mut cfg = DramConfig::ddr3_1600_2d();
        cfg.name = "DDR3-4ch".into();
        cfg.topology.channels = 4;
        let p = profile("shard-test", 0.7);
        let mk = |shards: usize| {
            let spec = ServeSpec::closed_loop(8, Time::from_nanos(10.0), 600).with_shards(shards);
            run_service(&cfg, &spec, &p, 11, "shard-test")
        };
        let one = mk(1);
        for shards in [2, 3, 4, 16] {
            let sharded = mk(shards);
            assert_eq!(sharded.stats, one.stats, "shards={shards}");
            assert_eq!(sharded.tenants, one.tenants, "shards={shards}");
            assert_eq!(sharded.channels, one.channels, "shards={shards}");
            assert_eq!(sharded.shards, shards.min(4));
        }
        // Channel totals decompose the aggregate.
        assert_eq!(one.channel_total(), one.stats.completed);
        let bytes: u64 = one.channels.iter().map(|c| c.bytes.value()).sum();
        assert_eq!(bytes, one.stats.bytes.value());
    }
}
