//! Incremental traffic shapes.
//!
//! A [`StreamShape`] is the *what* of a request stream — operation mix and
//! address pattern — generated one access at a time so event-driven sources
//! never materialize a whole trace. It reuses the spatial/mix semantics of
//! [`memsim::WorkloadProfile`] (stream/strided/random/clustered patterns,
//! read fraction, footprint), minus the profile's inter-arrival model:
//! arrival times come from an [`ArrivalProcess`](crate::ArrivalProcess) or
//! from closed-loop client feedback instead.

use comet_units::ByteCount;
use memsim::{AccessPattern, MemOp, WorkloadProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// FNV-1a, matching the name fold `WorkloadProfile::generate` uses, so two
/// shapes with equal seeds but different names decorrelate.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A deterministic, incremental (op, address) generator.
///
/// # Examples
///
/// ```
/// use comet_serve::StreamShape;
/// use memsim::spec_like_suite;
///
/// let profile = &spec_like_suite(100)[0];
/// let mut shape = StreamShape::from_profile(profile, 42);
/// let (_op, address, size) = shape.next_access();
/// assert!(address < profile.footprint.value());
/// assert_eq!(size.value(), profile.line_bytes);
/// ```
#[derive(Debug, Clone)]
pub struct StreamShape {
    pattern: AccessPattern,
    read_fraction: f64,
    lines: u64,
    line_bytes: u64,
    row_lines: u64,
    cursor: u64,
    rng: StdRng,
}

impl StreamShape {
    /// Builds a shape from a profile's spatial/mix parameters, seeded like
    /// [`WorkloadProfile::generate`] (profile name folded into the seed).
    ///
    /// # Panics
    ///
    /// Panics if the profile's read fraction is outside `[0, 1]` or its
    /// footprint is smaller than one line.
    pub fn from_profile(profile: &WorkloadProfile, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&profile.read_fraction),
            "read fraction must be in [0,1]"
        );
        let lines = profile.footprint.value() / profile.line_bytes;
        assert!(lines >= 1, "footprint smaller than one line");
        let mut rng = StdRng::seed_from_u64(seed ^ hash_name(&profile.name));
        let cursor = rng.gen_range(0..lines);
        StreamShape {
            pattern: profile.pattern,
            read_fraction: profile.read_fraction,
            lines,
            line_bytes: profile.line_bytes,
            // Row span used by the Clustered pattern (typical 8 KiB row).
            row_lines: (8192 / profile.line_bytes).max(1),
            cursor,
            rng,
        }
    }

    /// The next access: operation, line-aligned byte address, transfer size.
    pub fn next_access(&mut self) -> (MemOp, u64, ByteCount) {
        let line = match self.pattern {
            AccessPattern::Stream => {
                self.cursor = (self.cursor + 1) % self.lines;
                self.cursor
            }
            AccessPattern::Strided { stride } => {
                self.cursor = (self.cursor + stride / self.line_bytes) % self.lines;
                self.cursor
            }
            AccessPattern::Random => self.rng.gen_range(0..self.lines),
            AccessPattern::Clustered { locality } => {
                if self.rng.gen_bool(locality.clamp(0.0, 1.0)) {
                    let row_base = self.cursor / self.row_lines * self.row_lines;
                    row_base + self.rng.gen_range(0..self.row_lines.min(self.lines))
                } else {
                    self.cursor = self.rng.gen_range(0..self.lines);
                    self.cursor
                }
            }
        };
        let op = if self.rng.gen_bool(self.read_fraction) {
            MemOp::Read
        } else {
            MemOp::Write
        };
        (op, line * self.line_bytes, ByteCount::new(self.line_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_units::Time;

    fn profile(pattern: AccessPattern) -> WorkloadProfile {
        WorkloadProfile {
            name: "shape-test".into(),
            read_fraction: 0.7,
            footprint: ByteCount::from_mib(4),
            pattern,
            interarrival: Time::from_nanos(1.0),
            requests: 0,
            line_bytes: 64,
        }
    }

    #[test]
    fn deterministic_per_seed_and_name() {
        let p = profile(AccessPattern::Random);
        let stream = |seed: u64| {
            let mut s = StreamShape::from_profile(&p, seed);
            (0..100).map(|_| s.next_access()).collect::<Vec<_>>()
        };
        assert_eq!(stream(5), stream(5));
        assert_ne!(stream(5), stream(6));
        let mut renamed = p.clone();
        renamed.name = "other".into();
        let mut s = StreamShape::from_profile(&renamed, 5);
        let other: Vec<_> = (0..100).map(|_| s.next_access()).collect();
        assert_ne!(stream(5), other, "name decorrelates equal seeds");
    }

    #[test]
    fn accesses_stay_in_footprint_and_respect_mix() {
        for pattern in [
            AccessPattern::Stream,
            AccessPattern::Random,
            AccessPattern::Strided { stride: 4096 },
            AccessPattern::Clustered { locality: 0.6 },
        ] {
            let p = profile(pattern);
            let mut shape = StreamShape::from_profile(&p, 9);
            let mut reads = 0usize;
            let n = 4000;
            for _ in 0..n {
                let (op, addr, size) = shape.next_access();
                assert!(addr < p.footprint.value(), "{pattern:?}");
                assert_eq!(addr % 64, 0);
                assert_eq!(size.value(), 64);
                if op.is_read() {
                    reads += 1;
                }
            }
            let frac = reads as f64 / n as f64;
            assert!(
                (frac - 0.7).abs() < 0.05,
                "{pattern:?}: read fraction {frac}"
            );
        }
    }
}
