//! Property-based tests for the traffic subsystem.
//!
//! Invariants: arrival processes are deterministic per seed and monotone
//! in time; the multi-tenant mux preserves per-tenant ordering; one
//! simulation partitioned across channel shards produces the identical
//! report for any shard count, and per-channel stats decompose the
//! aggregate exactly; closed loops bound in-flight depth by their client
//! count; the batch stage never loses requests.

use comet_data::{DataPolicy, DataWriteModel, PayloadSpec};
use comet_serve::{
    run_service, ArrivalProcess, BatchConfig, MuxPoll, ServeSpec, SourcePoll, StreamShape,
    TenantMux, TenantSpec,
};
use comet_units::{ByteCount, Time};
use memsim::{AccessPattern, DramConfig, EpcmConfig, EpcmDevice, FnFactory, WorkloadProfile};
use proptest::prelude::*;

fn any_process() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        (6.0f64..10.0).prop_map(|e| ArrivalProcess::deterministic(10f64.powf(e))),
        (6.0f64..10.0).prop_map(|e| ArrivalProcess::poisson(10f64.powf(e))),
        // Burst windows hold at least a few inter-arrival gaps, where the
        // mean-rate formula is meaningful (shorter bursts still emit one
        // arrival each, overshooting rate·on/(on+off) by quantization).
        ((7.0f64..10.0), (5.0f64..100.0), (0.0f64..200.0)).prop_map(|(e, gaps, off)| {
            let rate = 10f64.powf(e);
            ArrivalProcess::bursty(rate, Time::from_seconds(gaps / rate), Time::from_nanos(off))
        }),
    ]
}

fn any_pattern() -> impl Strategy<Value = AccessPattern> {
    prop_oneof![
        Just(AccessPattern::Stream),
        Just(AccessPattern::Random),
        (64u64..8192).prop_map(|stride| AccessPattern::Strided { stride }),
        (0.0f64..1.0).prop_map(|locality| AccessPattern::Clustered { locality }),
    ]
}

fn profile(name: &str, read_fraction: f64, pattern: AccessPattern) -> WorkloadProfile {
    WorkloadProfile {
        name: name.into(),
        read_fraction,
        footprint: ByteCount::from_mib(4),
        pattern,
        interarrival: Time::from_nanos(1.0),
        requests: 0,
        line_bytes: 64,
    }
}

proptest! {
    // --- arrival processes ---------------------------------------------------

    #[test]
    fn arrivals_are_deterministic_per_seed_and_monotone(
        process in any_process(),
        seed in any::<u64>(),
    ) {
        let mut a = process.clock(seed);
        let mut b = process.clock(seed);
        let mut last = Time::ZERO;
        for _ in 0..200 {
            let ta = a.next_arrival();
            prop_assert_eq!(ta, b.next_arrival(), "same seed, same stream");
            prop_assert!(ta >= last, "arrivals must be non-decreasing");
            last = ta;
        }
        // A different seed changes stochastic streams but never breaks
        // monotonicity.
        let mut c = process.clock(seed.wrapping_add(1));
        let mut last = Time::ZERO;
        for _ in 0..200 {
            let t = c.next_arrival();
            prop_assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn mean_rate_is_respected(process in any_process(), seed in any::<u64>()) {
        let mut clock = process.clock(seed);
        let n = 4000usize;
        let mut end = Time::ZERO;
        for _ in 0..n {
            end = clock.next_arrival();
        }
        let achieved = n as f64 / end.as_seconds();
        let expect = process.mean_rate_rps();
        // Bursty edge effects and Poisson variance stay well within 2x.
        prop_assert!(achieved > expect * 0.5 && achieved < expect * 2.0,
            "achieved {achieved} vs mean {expect}");
    }

    // --- the multi-tenant mux ------------------------------------------------

    #[test]
    fn mux_preserves_per_tenant_ordering(
        rates in proptest::collection::vec(6.5f64..9.5, 2..4),
        seed in any::<u64>(),
    ) {
        // Standalone per-tenant arrival sequences...
        let specs: Vec<TenantSpec> = rates
            .iter()
            .enumerate()
            .map(|(i, &e)| TenantSpec::open(
                format!("t{i}"),
                ArrivalProcess::deterministic(10f64.powf(e)),
                40,
            ))
            .collect();
        let fallback = profile("mux-prop", 0.8, AccessPattern::Random);
        let standalone: Vec<Vec<(Time, u64)>> = specs
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut src = t.instantiate(&fallback, seed, i);
                (0..40)
                    .map(|_| {
                        prop_assert!(matches!(src.poll(), SourcePoll::Ready(_)));
                        let s = src.take();
                        Ok((s.arrival, s.address))
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;

        // ...must reappear, in order, in the mux's interleaving.
        let mut mux = TenantMux::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, t)| t.instantiate(&fallback, seed, i))
                .collect(),
        );
        let mut seen: Vec<Vec<(Time, u64)>> = vec![Vec::new(); specs.len()];
        let mut last = Time::ZERO;
        loop {
            match mux.poll() {
                MuxPoll::Ready { tenant, at } => {
                    prop_assert!(at >= last, "mux emits in global time order");
                    last = at;
                    let s = mux.take(tenant);
                    seen[tenant].push((s.arrival, s.address));
                }
                MuxPoll::Exhausted => break,
                MuxPoll::Blocked => prop_assert!(false, "open-loop mux never blocks"),
            }
        }
        prop_assert_eq!(seen, standalone, "per-tenant streams survive muxing");
    }

    // --- channel sharding ----------------------------------------------------

    #[test]
    fn sharded_totals_equal_channel_sums_for_any_shard_count(
        shards in 1usize..=8,
        pattern in any_pattern(),
        read_fraction in 0.0f64..=1.0,
        clients in 1usize..=8,
    ) {
        let mut cfg = DramConfig::ddr3_1600_2d();
        cfg.name = "DDR3-4ch".into();
        cfg.topology.channels = 4;
        let p = profile("shard-prop", read_fraction, pattern);
        let run = |shards: usize| {
            let spec = ServeSpec::closed_loop(clients, Time::from_nanos(5.0), 160)
                .with_shards(shards);
            run_service(&cfg, &spec, &p, 97, "shard-prop")
        };
        let baseline = run(1);
        let sharded = run(shards);
        prop_assert_eq!(&sharded.stats, &baseline.stats, "shard invariance");
        prop_assert_eq!(&sharded.channels, &baseline.channels);
        // Per-channel stats decompose the aggregate exactly.
        prop_assert_eq!(sharded.channel_total(), sharded.stats.completed);
        let bytes: u64 = sharded.channels.iter().map(|c| c.bytes.value()).sum();
        prop_assert_eq!(bytes, sharded.stats.bytes.value());
        let tenant_total: u64 = sharded.tenants.iter().map(|t| t.completed).sum();
        prop_assert_eq!(tenant_total, sharded.stats.completed);
    }

    // --- payload-carrying traffic --------------------------------------------

    #[test]
    fn payload_enabled_runs_are_shard_invariant(
        shards in 1usize..=8,
        payload_index in 0usize..5,
        read_fraction in 0.0f64..=0.9,
    ) {
        // A 4-channel content-aware EPCM: each shard owns disjoint
        // channels, each channel's line store sees exactly its own lines,
        // so the report — including DCW-priced write energy — must be
        // identical for any shard count.
        let payload = PayloadSpec::entropy_sweep()[payload_index];
        let factory = FnFactory::new("EPCM-4ch-DCW", || {
            let mut cfg = EpcmConfig::epcm_mm();
            cfg.name = "EPCM-4ch-DCW".into();
            cfg.topology.channels = 4;
            Box::new(EpcmDevice::with_pricer(
                cfg,
                Box::new(DataWriteModel::gst(4, DataPolicy::Dcw)),
            ))
        });
        let mut p = profile("payload-prop", read_fraction, AccessPattern::Random);
        p.footprint = ByteCount::new(64 * 64); // revisit lines fast
        let run = |shards: usize| {
            let spec = ServeSpec::open_loop(ArrivalProcess::poisson(2.0e8), 200)
                .with_shards(shards);
            let mut spec = spec;
            spec.tenants[0] = spec.tenants[0].clone().with_payload(payload);
            run_service(&factory, &spec, &p, 31, "payload-prop")
        };
        let baseline = run(1);
        let sharded = run(shards);
        prop_assert_eq!(&sharded.stats, &baseline.stats, "{}", payload);
        prop_assert_eq!(&sharded.tenants, &baseline.tenants);
        prop_assert_eq!(&sharded.channels, &baseline.channels);
        prop_assert!(baseline.stats.energy.access > comet_units::Energy::ZERO);
    }

    // --- closed loops and batching -------------------------------------------

    #[test]
    fn closed_loop_depth_is_bounded_by_clients(
        clients in 1usize..=16,
        think_ns in 0.0f64..100.0,
    ) {
        let p = profile("depth-prop", 0.7, AccessPattern::Random);
        let spec = ServeSpec::closed_loop(clients, Time::from_nanos(think_ns), 200);
        let report = run_service(&EpcmConfig::epcm_mm(), &spec, &p, 5, "depth");
        prop_assert_eq!(report.stats.completed, 200);
        prop_assert!(report.depth.max_depth() <= clients as u64,
            "in-flight {} exceeds {clients} clients", report.depth.max_depth());
    }

    #[test]
    fn batching_conserves_requests_for_any_window(
        window_ns in 1.0f64..5000.0,
        max_writes in 1usize..=32,
        read_fraction in 0.0f64..=1.0,
        footprint_lines in 1u64..256,
    ) {
        let mut p = profile("batch-prop", read_fraction, AccessPattern::Random);
        p.footprint = ByteCount::new(footprint_lines * 64);
        let spec = ServeSpec::open_loop(ArrivalProcess::poisson(2.0e8), 300)
            .with_batch(BatchConfig::new(Time::from_nanos(window_ns), max_writes));
        let report = run_service(&EpcmConfig::epcm_mm(), &spec, &p, 13, "batch");
        // Conservation: every admitted request completes exactly once,
        // whether issued, batched or coalesced.
        prop_assert_eq!(report.stats.completed, 300);
        prop_assert_eq!(report.stats.reads + report.stats.writes, 300);
        prop_assert_eq!(report.channel_total(), 300);
        prop_assert!(report.coalesced_writes <= report.batched_writes);
    }

    // --- shapes --------------------------------------------------------------

    #[test]
    fn stream_shapes_stay_in_footprint(
        pattern in any_pattern(),
        seed in any::<u64>(),
    ) {
        let p = profile("shape-prop", 0.6, pattern);
        let mut shape = StreamShape::from_profile(&p, seed);
        let mut replay = StreamShape::from_profile(&p, seed);
        for _ in 0..300 {
            let (op, addr, size) = shape.next_access();
            prop_assert_eq!((op, addr, size), replay.next_access(), "deterministic");
            prop_assert!(addr < p.footprint.value());
            prop_assert_eq!(addr % 64, 0);
        }
    }
}
