//! Property-based tests for the unit types.
//!
//! The units crate is the vocabulary of every other crate, so its algebra
//! must be watertight: conversions roundtrip, dB math matches linear math,
//! and ordering behaves like the underlying scalars.

use comet_units::{
    ByteCount, DataRate, DecibelMilliwatts, Decibels, Energy, Frequency, Length, Power,
    Temperature, Time, Transmittance, SPEED_OF_LIGHT,
};
use proptest::prelude::*;

/// Relative-tolerance comparison for quantities spanning many decades.
fn close(a: f64, b: f64, rel: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1e-30);
    (a - b).abs() <= rel * scale
}

proptest! {
    // --- conversion roundtrips ------------------------------------------

    #[test]
    fn time_unit_roundtrips(ns in 1e-3..1e12f64) {
        let t = Time::from_nanos(ns);
        prop_assert!(close(t.as_nanos(), ns, 1e-12));
        prop_assert!(close(Time::from_seconds(t.as_seconds()).as_nanos(), ns, 1e-12));
        prop_assert!(close(Time::from_micros(t.as_micros()).as_nanos(), ns, 1e-12));
    }

    #[test]
    fn energy_unit_roundtrips(pj in 1e-6..1e15f64) {
        let e = Energy::from_picojoules(pj);
        prop_assert!(close(e.as_picojoules(), pj, 1e-12));
        prop_assert!(close(Energy::from_nanojoules(e.as_nanojoules()).as_picojoules(), pj, 1e-12));
        prop_assert!(close(Energy::from_joules(e.as_joules()).as_picojoules(), pj, 1e-12));
    }

    #[test]
    fn power_unit_roundtrips(mw in 1e-9..1e9f64) {
        let p = Power::from_milliwatts(mw);
        prop_assert!(close(p.as_milliwatts(), mw, 1e-12));
        prop_assert!(close(Power::from_microwatts(p.as_microwatts()).as_milliwatts(), mw, 1e-12));
    }

    #[test]
    fn length_unit_roundtrips(nm in 1e-3..1e12f64) {
        let l = Length::from_nanometers(nm);
        prop_assert!(close(l.as_nanometers(), nm, 1e-12));
        prop_assert!(close(Length::from_micrometers(l.as_micrometers()).as_nanometers(), nm, 1e-12));
        prop_assert!(close(Length::from_centimeters(l.as_centimeters()).as_nanometers(), nm, 1e-12));
    }

    // --- physical identities --------------------------------------------

    #[test]
    fn energy_is_power_times_time(mw in 1e-3..1e4f64, ns in 1e-3..1e6f64) {
        let e = Power::from_milliwatts(mw) * Time::from_nanos(ns);
        // mW x ns = pJ numerically.
        prop_assert!(close(e.as_picojoules(), mw * ns, 1e-9));
        // And dividing back recovers the power.
        let p = e / Time::from_nanos(ns);
        prop_assert!(close(p.as_milliwatts(), mw, 1e-9));
    }

    #[test]
    fn frequency_wavelength_inverse(nm in 100.0..10_000.0f64) {
        let lambda = Length::from_nanometers(nm);
        let f = Frequency::from_wavelength(lambda);
        prop_assert!(close(f.wavelength().as_nanometers(), nm, 1e-9));
        prop_assert!(close(f.as_hertz() * lambda.as_meters(), SPEED_OF_LIGHT, 1e-9));
    }

    #[test]
    fn frequency_period_inverse(ghz in 1e-3..1e3f64) {
        let f = Frequency::from_gigahertz(ghz);
        prop_assert!(close(f.period().as_seconds() * f.as_hertz(), 1.0, 1e-9));
    }

    // --- decibel algebra --------------------------------------------------

    #[test]
    fn decibel_linear_roundtrip(db in -60.0..60.0f64) {
        let d = Decibels::new(db);
        prop_assert!(close(Decibels::from_linear(d.to_linear()).value(), db, 1e-9));
        // Loss linear x gain linear = 1 at the same magnitude.
        prop_assert!(close(d.to_linear() * d.to_linear_gain(), 1.0, 1e-9));
    }

    #[test]
    fn decibel_addition_is_linear_multiplication(a in 0.0..30.0f64, b in 0.0..30.0f64) {
        let sum = Decibels::new(a) + Decibels::new(b);
        prop_assert!(close(
            sum.to_linear(),
            Decibels::new(a).to_linear() * Decibels::new(b).to_linear(),
            1e-9
        ));
    }

    #[test]
    fn attenuate_then_amplify_is_identity(mw in 1e-6..1e3f64, db in 0.0..40.0f64) {
        let p = Power::from_milliwatts(mw);
        let loss = Decibels::new(db);
        let back = p.attenuate(loss).amplify(loss);
        prop_assert!(close(back.as_milliwatts(), mw, 1e-9));
        // Attenuation by a positive dB never increases power.
        prop_assert!(p.attenuate(loss) <= p);
    }

    #[test]
    fn dbm_power_roundtrip(dbm in -60.0..30.0f64) {
        let x = DecibelMilliwatts::new(dbm);
        prop_assert!(close(x.to_power().to_dbm().value(), dbm, 1e-9));
        // Attenuate in dBm == attenuate in watts.
        let loss = Decibels::new(7.5);
        prop_assert!(close(
            x.attenuate(loss).to_power().as_milliwatts(),
            x.to_power().attenuate(loss).as_milliwatts(),
            1e-9
        ));
    }

    #[test]
    fn power_ratio_matches_db_difference(a in 1e-3..1e3f64, b in 1e-3..1e3f64) {
        // ratio_to reports the loss from the reference down to self:
        // positive when self is below the reference.
        let ratio = Power::from_milliwatts(a).ratio_to(Power::from_milliwatts(b));
        prop_assert!(close(ratio.value(), 10.0 * (b / a).log10(), 1e-9));
        // Attenuating the reference by that ratio recovers self.
        let back = Power::from_milliwatts(b).attenuate(ratio);
        prop_assert!(close(back.as_milliwatts(), a, 1e-9));
    }

    // --- transmittance -----------------------------------------------------

    #[test]
    fn transmittance_cascade_is_product(a in 0.0..1.0f64, b in 0.0..1.0f64) {
        let t = Transmittance::new(a).cascade(Transmittance::new(b));
        prop_assert!(close(t.value(), a * b, 1e-12));
        // Cascading never brightens.
        prop_assert!(t.value() <= a + 1e-15);
        prop_assert!(t.value() <= b + 1e-15);
    }

    #[test]
    fn transmittance_decibels_agree(a in 1e-6..1.0f64) {
        let t = Transmittance::new(a);
        // to_decibels reports a positive loss for sub-unity transmission.
        prop_assert!(close(t.to_decibels().to_linear(), a, 1e-9));
    }

    #[test]
    fn transmittance_clamps(x in -10.0..10.0f64) {
        let t = Transmittance::new(x);
        prop_assert!((0.0..=1.0).contains(&t.value()));
    }

    // --- counting and rates -------------------------------------------------

    #[test]
    fn byte_bit_roundtrip(bytes in 0u64..(1 << 50)) {
        let b = ByteCount::new(bytes);
        prop_assert_eq!(b.to_bits().value(), bytes * 8);
    }

    #[test]
    fn data_rate_consistency(bytes in 1u64..(1 << 40), ns in 1.0..1e9f64) {
        let rate = DataRate::from_transfer(ByteCount::new(bytes), Time::from_nanos(ns));
        let expect_gbps = bytes as f64 / ns; // B/ns == GB/s
        prop_assert!(close(rate.as_gigabytes_per_second(), expect_gbps, 1e-9));
    }

    // --- ordering ------------------------------------------------------------

    #[test]
    fn time_ordering_matches_scalar(a in 0.0..1e9f64, b in 0.0..1e9f64) {
        let (ta, tb) = (Time::from_nanos(a), Time::from_nanos(b));
        // max/min agree with scalar max/min up to conversion rounding.
        prop_assert!(close(ta.max(tb).as_nanos(), a.max(b), 1e-12));
        prop_assert!(close(ta.min(tb).as_nanos(), a.min(b), 1e-12));
        // Ordering is consistent with the stored representation.
        prop_assert_eq!(ta < tb, ta.as_seconds() < tb.as_seconds());
        prop_assert_eq!(ta.max(tb) >= ta.min(tb), true);
    }

    #[test]
    fn temperature_kelvin_celsius_offset(k in 0.0..3000.0f64) {
        let t = Temperature::from_kelvin(k);
        prop_assert!(close(t.as_celsius(), k - 273.15, 1e-9));
        prop_assert!(close(Temperature::from_celsius(t.as_celsius()).as_kelvin(), k, 1e-9));
    }
}
