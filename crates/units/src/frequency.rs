//! Frequencies, stored internally in hertz.

use crate::{Length, SPEED_OF_LIGHT};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A frequency, stored in hertz.
///
/// Used both for optical carriers (≈193 THz in the C-band) and for memory
/// bus clocks (≈1 GHz).
///
/// # Examples
///
/// ```
/// use comet_units::{Frequency, Length};
///
/// let carrier = Frequency::from_wavelength(Length::from_nanometers(1550.0));
/// assert!((carrier.as_terahertz() - 193.4).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Frequency(f64);

impl Frequency {
    /// Creates a frequency from hertz.
    pub const fn from_hertz(hz: f64) -> Self {
        Frequency(hz)
    }

    /// Creates a frequency from megahertz.
    pub fn from_megahertz(mhz: f64) -> Self {
        Frequency(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    pub fn from_gigahertz(ghz: f64) -> Self {
        Frequency(ghz * 1e9)
    }

    /// Creates a frequency from terahertz.
    pub fn from_terahertz(thz: f64) -> Self {
        Frequency(thz * 1e12)
    }

    /// The optical carrier frequency of a vacuum wavelength.
    ///
    /// # Panics
    ///
    /// Panics if the wavelength is not strictly positive.
    pub fn from_wavelength(lambda: Length) -> Self {
        assert!(lambda.as_meters() > 0.0, "wavelength must be positive");
        Frequency(SPEED_OF_LIGHT / lambda.as_meters())
    }

    /// Frequency in hertz.
    pub const fn as_hertz(self) -> f64 {
        self.0
    }

    /// Frequency in megahertz.
    pub fn as_megahertz(self) -> f64 {
        self.0 * 1e-6
    }

    /// Frequency in gigahertz.
    pub fn as_gigahertz(self) -> f64 {
        self.0 * 1e-9
    }

    /// Frequency in terahertz.
    pub fn as_terahertz(self) -> f64 {
        self.0 * 1e-12
    }

    /// The vacuum wavelength of this optical frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not strictly positive.
    pub fn wavelength(self) -> Length {
        assert!(self.0 > 0.0, "frequency must be positive");
        Length::from_meters(SPEED_OF_LIGHT / self.0)
    }

    /// The period of one cycle in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not strictly positive.
    pub fn period(self) -> crate::Time {
        assert!(self.0 > 0.0, "frequency must be positive");
        crate::Time::from_seconds(1.0 / self.0)
    }
}

impl Add for Frequency {
    type Output = Frequency;
    fn add(self, rhs: Frequency) -> Frequency {
        Frequency(self.0 + rhs.0)
    }
}

impl Sub for Frequency {
    type Output = Frequency;
    fn sub(self, rhs: Frequency) -> Frequency {
        Frequency(self.0 - rhs.0)
    }
}

impl Mul<f64> for Frequency {
    type Output = Frequency;
    fn mul(self, rhs: f64) -> Frequency {
        Frequency(self.0 * rhs)
    }
}

impl Div<f64> for Frequency {
    type Output = Frequency;
    fn div(self, rhs: f64) -> Frequency {
        Frequency(self.0 / rhs)
    }
}

impl Div<Frequency> for Frequency {
    type Output = f64;
    fn div(self, rhs: Frequency) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hz = self.0;
        if hz >= 1e12 {
            write!(f, "{:.3} THz", hz * 1e-12)
        } else if hz >= 1e9 {
            write!(f, "{:.3} GHz", hz * 1e-9)
        } else if hz >= 1e6 {
            write!(f, "{:.3} MHz", hz * 1e-6)
        } else {
            write!(f, "{hz:.3} Hz")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_band_carrier() {
        let f = Frequency::from_wavelength(Length::from_nanometers(1530.0));
        assert!(f.as_terahertz() > 195.0 && f.as_terahertz() < 196.5);
    }

    #[test]
    fn period_of_bus_clock() {
        let ddr3 = Frequency::from_megahertz(800.0);
        assert!((ddr3.period().as_nanos() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn display() {
        assert_eq!(
            format!("{}", Frequency::from_terahertz(193.0)),
            "193.000 THz"
        );
        assert_eq!(format!("{}", Frequency::from_gigahertz(1.2)), "1.200 GHz");
    }
}
