//! Typed physical quantities for the COMET photonic memory simulator.
//!
//! Every crate in this workspace moves numbers between three domains —
//! optics (dB, dBm, nm), electronics (W, J, s) and architecture
//! (bits, bytes, GB/s) — and the single most common class of modeling bug is
//! silently mixing them (a loss in dB added to a power in mW, a latency in
//! cycles compared to one in nanoseconds). This crate provides thin newtypes
//! over `f64` so those mistakes become type errors, following the
//! [C-NEWTYPE] guideline.
//!
//! All types are `Copy`, implement the common comparison/formatting traits,
//! and expose explicit constructors/getters naming the unit
//! (`Power::from_milliwatts`, `Time::as_nanos`). Arithmetic is implemented
//! only where it is physically meaningful: you can add two [`Decibels`]
//! (cascaded losses), multiply a [`Power`] by a [`Time`] to get an
//! [`Energy`], or divide an [`Energy`] by a bit count to get energy-per-bit,
//! but you cannot add a `Power` to a `Time`.
//!
//! # Examples
//!
//! ```
//! use comet_units::{Decibels, Power, Time};
//!
//! // A 1 mW signal attenuated by two cascaded 3 dB losses:
//! let input = Power::from_milliwatts(1.0);
//! let loss = Decibels::new(3.0) + Decibels::new(3.0);
//! let output = input.attenuate(loss);
//! assert!((output.as_milliwatts() - 0.251).abs() < 0.01);
//!
//! // Energy delivered by a 5 mW pulse over 150 ns:
//! let pulse = Power::from_milliwatts(5.0) * Time::from_nanos(150.0);
//! assert!((pulse.as_picojoules() - 750.0).abs() < 1e-9);
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod energy;
mod frequency;
mod length;
mod optical;
mod power;
mod rate;
mod temperature;
mod time;

pub use energy::Energy;
pub use frequency::Frequency;
pub use length::Length;
pub use optical::{DecibelMilliwatts, Decibels, Transmittance};
pub use power::Power;
pub use rate::{BitCount, ByteCount, DataRate, EnergyPerBit};
pub use temperature::{Temperature, TemperatureDelta};
pub use time::Time;

/// Speed of light in vacuum, metres per second.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_energy_composition() {
        let e = Power::from_milliwatts(5.0) * Time::from_nanos(150.0);
        assert!((e.as_picojoules() - 750.0).abs() < 1e-9);
    }

    #[test]
    fn wavelength_frequency_roundtrip() {
        let lambda = Length::from_nanometers(1550.0);
        let f = Frequency::from_wavelength(lambda);
        let back = f.wavelength();
        assert!((back.as_nanometers() - 1550.0).abs() < 1e-6);
    }

    #[test]
    fn epb_from_energy_and_bits() {
        let epb = Energy::from_picojoules(400.0) / BitCount::new(100);
        assert!((epb.as_picojoules_per_bit() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn send_sync_impls() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Decibels>();
        assert_send_sync::<Power>();
        assert_send_sync::<Energy>();
        assert_send_sync::<Time>();
        assert_send_sync::<Length>();
        assert_send_sync::<Temperature>();
        assert_send_sync::<DataRate>();
    }
}
