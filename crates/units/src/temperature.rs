//! Temperatures, stored internally in kelvin.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A temperature, stored in kelvin.
///
/// The thermal solver needs absolute temperatures (phase-transition
/// thresholds are material constants in kelvin) but the paper quotes
/// Celsius-style melting points, so both constructors exist.
///
/// # Examples
///
/// ```
/// use comet_units::Temperature;
///
/// let melt = Temperature::from_celsius(600.0); // GST melting point ~873 K
/// assert!((melt.as_kelvin() - 873.15).abs() < 1e-9);
/// assert!(melt > Temperature::from_celsius(150.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Temperature(f64);

impl Temperature {
    /// Absolute zero.
    pub const ZERO: Temperature = Temperature(0.0);

    /// Standard ambient temperature (300 K).
    pub const AMBIENT: Temperature = Temperature(300.0);

    /// Creates a temperature from kelvin.
    pub const fn from_kelvin(k: f64) -> Self {
        Temperature(k)
    }

    /// Creates a temperature from degrees Celsius.
    pub fn from_celsius(c: f64) -> Self {
        Temperature(c + 273.15)
    }

    /// Temperature in kelvin.
    pub const fn as_kelvin(self) -> f64 {
        self.0
    }

    /// Temperature in degrees Celsius.
    pub fn as_celsius(self) -> f64 {
        self.0 - 273.15
    }

    /// Returns the larger of two temperatures.
    pub fn max(self, other: Temperature) -> Temperature {
        Temperature(self.0.max(other.0))
    }

    /// Returns the smaller of two temperatures.
    pub fn min(self, other: Temperature) -> Temperature {
        Temperature(self.0.min(other.0))
    }
}

/// A temperature *difference* in kelvin (identical scale to Celsius deltas).
///
/// Kept distinct from [`Temperature`] so "add 50 K of heating" cannot be
/// confused with "the temperature is 50 K".
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct TemperatureDelta(pub f64);

impl Add<TemperatureDelta> for Temperature {
    type Output = Temperature;
    fn add(self, rhs: TemperatureDelta) -> Temperature {
        Temperature(self.0 + rhs.0)
    }
}

impl AddAssign<TemperatureDelta> for Temperature {
    fn add_assign(&mut self, rhs: TemperatureDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TemperatureDelta> for Temperature {
    type Output = Temperature;
    fn sub(self, rhs: TemperatureDelta) -> Temperature {
        Temperature(self.0 - rhs.0)
    }
}

impl SubAssign<TemperatureDelta> for Temperature {
    fn sub_assign(&mut self, rhs: TemperatureDelta) {
        self.0 -= rhs.0;
    }
}

impl Sub for Temperature {
    type Output = TemperatureDelta;
    fn sub(self, rhs: Temperature) -> TemperatureDelta {
        TemperatureDelta(self.0 - rhs.0)
    }
}

impl Mul<f64> for TemperatureDelta {
    type Output = TemperatureDelta;
    fn mul(self, rhs: f64) -> TemperatureDelta {
        TemperatureDelta(self.0 * rhs)
    }
}

impl Div<f64> for TemperatureDelta {
    type Output = TemperatureDelta;
    fn div(self, rhs: f64) -> TemperatureDelta {
        TemperatureDelta(self.0 / rhs)
    }
}

impl fmt::Display for Temperature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} K", self.0)
    }
}

impl fmt::Display for TemperatureDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.2} K", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin() {
        let t = Temperature::from_celsius(0.0);
        assert!((t.as_kelvin() - 273.15).abs() < 1e-12);
        assert!((Temperature::from_kelvin(300.0).as_celsius() - 26.85).abs() < 1e-9);
    }

    #[test]
    fn deltas() {
        let a = Temperature::from_kelvin(900.0);
        let b = Temperature::from_kelvin(300.0);
        let d = a - b;
        assert!((d.0 - 600.0).abs() < 1e-12);
        let c = b + d;
        assert!((c.as_kelvin() - 900.0).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Temperature::from_kelvin(873.0)), "873.00 K");
        assert_eq!(format!("{}", TemperatureDelta(12.5)), "+12.50 K");
    }
}
