//! Architecture-level quantities: bit/byte counts, data rates and
//! energy-per-bit.

use crate::{Energy, Time};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A count of bits.
///
/// # Examples
///
/// ```
/// use comet_units::{BitCount, ByteCount};
///
/// let line = ByteCount::new(64);
/// assert_eq!(line.to_bits(), BitCount::new(512));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BitCount(u64);

impl BitCount {
    /// Zero bits.
    pub const ZERO: BitCount = BitCount(0);

    /// Creates a bit count.
    pub const fn new(bits: u64) -> Self {
        BitCount(bits)
    }

    /// The raw count.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Converts to whole bytes, rounding up.
    pub const fn to_bytes_ceil(self) -> ByteCount {
        ByteCount(self.0.div_ceil(8))
    }

    /// Expresses the count in gigabits (10^9 bits).
    pub fn as_gigabits(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Expresses the count in gibibits (2^30 bits).
    pub fn as_gibibits(self) -> f64 {
        self.0 as f64 / (1u64 << 30) as f64
    }
}

impl Add for BitCount {
    type Output = BitCount;
    fn add(self, rhs: BitCount) -> BitCount {
        BitCount(self.0 + rhs.0)
    }
}

impl AddAssign for BitCount {
    fn add_assign(&mut self, rhs: BitCount) {
        self.0 += rhs.0;
    }
}

impl Sub for BitCount {
    type Output = BitCount;
    fn sub(self, rhs: BitCount) -> BitCount {
        BitCount(self.0 - rhs.0)
    }
}

impl Mul<u64> for BitCount {
    type Output = BitCount;
    fn mul(self, rhs: u64) -> BitCount {
        BitCount(self.0 * rhs)
    }
}

impl Sum for BitCount {
    fn sum<I: Iterator<Item = BitCount>>(iter: I) -> BitCount {
        iter.fold(BitCount::ZERO, Add::add)
    }
}

impl fmt::Display for BitCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} b", self.0)
    }
}

/// A count of bytes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteCount(u64);

impl ByteCount {
    /// Zero bytes.
    pub const ZERO: ByteCount = ByteCount(0);

    /// Creates a byte count.
    pub const fn new(bytes: u64) -> Self {
        ByteCount(bytes)
    }

    /// Creates a byte count from kibibytes (2^10).
    pub const fn from_kib(kib: u64) -> Self {
        ByteCount(kib << 10)
    }

    /// Creates a byte count from mebibytes (2^20).
    pub const fn from_mib(mib: u64) -> Self {
        ByteCount(mib << 20)
    }

    /// Creates a byte count from gibibytes (2^30).
    pub const fn from_gib(gib: u64) -> Self {
        ByteCount(gib << 30)
    }

    /// The raw count.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The equivalent bit count.
    pub const fn to_bits(self) -> BitCount {
        BitCount(self.0 * 8)
    }

    /// Expresses the count in mebibytes.
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1u64 << 20) as f64
    }

    /// Expresses the count in gibibytes.
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / (1u64 << 30) as f64
    }
}

impl Add for ByteCount {
    type Output = ByteCount;
    fn add(self, rhs: ByteCount) -> ByteCount {
        ByteCount(self.0 + rhs.0)
    }
}

impl AddAssign for ByteCount {
    fn add_assign(&mut self, rhs: ByteCount) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteCount {
    type Output = ByteCount;
    fn sub(self, rhs: ByteCount) -> ByteCount {
        ByteCount(self.0 - rhs.0)
    }
}

impl Mul<u64> for ByteCount {
    type Output = ByteCount;
    fn mul(self, rhs: u64) -> ByteCount {
        ByteCount(self.0 * rhs)
    }
}

impl Sum for ByteCount {
    fn sum<I: Iterator<Item = ByteCount>>(iter: I) -> ByteCount {
        iter.fold(ByteCount::ZERO, Add::add)
    }
}

impl fmt::Display for ByteCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1 << 30 {
            write!(f, "{:.2} GiB", self.as_gib())
        } else if b >= 1 << 20 {
            write!(f, "{:.2} MiB", self.as_mib())
        } else if b >= 1 << 10 {
            write!(f, "{:.2} KiB", b as f64 / 1024.0)
        } else {
            write!(f, "{b} B")
        }
    }
}

/// A sustained data rate, stored in bytes per second.
///
/// # Examples
///
/// ```
/// use comet_units::{ByteCount, DataRate, Time};
///
/// let rate = DataRate::from_transfer(ByteCount::from_mib(64), Time::from_millis(1.0));
/// assert!(rate.as_gigabytes_per_second() > 60.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct DataRate(f64);

impl DataRate {
    /// Zero rate.
    pub const ZERO: DataRate = DataRate(0.0);

    /// Creates a rate from bytes per second.
    pub const fn from_bytes_per_second(bps: f64) -> Self {
        DataRate(bps)
    }

    /// Creates a rate from gigabytes (10^9 B) per second.
    pub fn from_gigabytes_per_second(gbps: f64) -> Self {
        DataRate(gbps * 1e9)
    }

    /// The average rate of moving `bytes` over `elapsed`.
    ///
    /// # Panics
    ///
    /// Panics if `elapsed` is not strictly positive.
    pub fn from_transfer(bytes: ByteCount, elapsed: Time) -> Self {
        assert!(elapsed.as_seconds() > 0.0, "elapsed time must be positive");
        DataRate(bytes.value() as f64 / elapsed.as_seconds())
    }

    /// Rate in bytes per second.
    pub const fn as_bytes_per_second(self) -> f64 {
        self.0
    }

    /// Rate in gigabytes (10^9 B) per second.
    pub fn as_gigabytes_per_second(self) -> f64 {
        self.0 / 1e9
    }

    /// Rate in gigabits (10^9 b) per second.
    pub fn as_gigabits_per_second(self) -> f64 {
        self.0 * 8.0 / 1e9
    }
}

impl Add for DataRate {
    type Output = DataRate;
    fn add(self, rhs: DataRate) -> DataRate {
        DataRate(self.0 + rhs.0)
    }
}

impl Div<DataRate> for DataRate {
    type Output = f64;
    fn div(self, rhs: DataRate) -> f64 {
        self.0 / rhs.0
    }
}

impl Mul<f64> for DataRate {
    type Output = DataRate;
    fn mul(self, rhs: f64) -> DataRate {
        DataRate(self.0 * rhs)
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} GB/s", self.as_gigabytes_per_second())
    }
}

/// Energy spent per bit transferred, stored in joules per bit.
///
/// The headline efficiency metric of the paper's evaluation (Fig. 9(b)).
///
/// # Examples
///
/// ```
/// use comet_units::{BitCount, Energy};
///
/// let epb = Energy::from_picojoules(512.0) / BitCount::new(128);
/// assert!((epb.as_picojoules_per_bit() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct EnergyPerBit(f64);

impl EnergyPerBit {
    /// Zero energy per bit.
    pub const ZERO: EnergyPerBit = EnergyPerBit(0.0);

    /// Creates a value from joules per bit.
    pub const fn from_joules_per_bit(jpb: f64) -> Self {
        EnergyPerBit(jpb)
    }

    /// Creates a value from picojoules per bit.
    pub fn from_picojoules_per_bit(pjpb: f64) -> Self {
        EnergyPerBit(pjpb * 1e-12)
    }

    /// Value in joules per bit.
    pub const fn as_joules_per_bit(self) -> f64 {
        self.0
    }

    /// Value in picojoules per bit.
    pub fn as_picojoules_per_bit(self) -> f64 {
        self.0 * 1e12
    }

    /// Total energy to move `bits` at this efficiency.
    pub fn energy_for(self, bits: BitCount) -> Energy {
        Energy::from_joules(self.0 * bits.value() as f64)
    }

    /// The ratio of another figure to this one (how many times better this
    /// figure is). A result > 1 means `self` is more efficient.
    pub fn improvement_over(self, other: EnergyPerBit) -> f64 {
        other.0 / self.0
    }
}

impl Add for EnergyPerBit {
    type Output = EnergyPerBit;
    fn add(self, rhs: EnergyPerBit) -> EnergyPerBit {
        EnergyPerBit(self.0 + rhs.0)
    }
}

impl Mul<f64> for EnergyPerBit {
    type Output = EnergyPerBit;
    fn mul(self, rhs: f64) -> EnergyPerBit {
        EnergyPerBit(self.0 * rhs)
    }
}

impl Div<EnergyPerBit> for EnergyPerBit {
    type Output = f64;
    fn div(self, rhs: EnergyPerBit) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for EnergyPerBit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} pJ/b", self.as_picojoules_per_bit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_bits() {
        assert_eq!(ByteCount::new(64).to_bits(), BitCount::new(512));
        assert_eq!(BitCount::new(9).to_bytes_ceil(), ByteCount::new(2));
        assert_eq!(BitCount::new(8).to_bytes_ceil(), ByteCount::new(1));
    }

    #[test]
    fn capacity_units() {
        let cap = ByteCount::from_gib(1);
        assert_eq!(cap.to_bits().value(), 8 << 30);
        assert!((cap.to_bits().as_gibibits() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn rate_from_transfer() {
        let r = DataRate::from_transfer(ByteCount::new(1_000_000_000), Time::from_seconds(1.0));
        assert!((r.as_gigabytes_per_second() - 1.0).abs() < 1e-12);
        assert!((r.as_gigabits_per_second() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn epb_energy_roundtrip() {
        let epb = EnergyPerBit::from_picojoules_per_bit(4.0);
        let e = epb.energy_for(BitCount::new(1000));
        assert!((e.as_picojoules() - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn epb_improvement() {
        let comet = EnergyPerBit::from_picojoules_per_bit(10.0);
        let cosmos = EnergyPerBit::from_picojoules_per_bit(129.0);
        assert!((comet.improvement_over(cosmos) - 12.9).abs() < 1e-9);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", ByteCount::from_gib(8)), "8.00 GiB");
        assert_eq!(format!("{}", ByteCount::new(512)), "512 B");
        assert_eq!(
            format!("{}", DataRate::from_gigabytes_per_second(1.5)),
            "1.500 GB/s"
        );
    }
}
