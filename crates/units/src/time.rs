//! Durations, stored internally in seconds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration, stored in seconds.
///
/// Distinct from `std::time::Duration` because simulation timing routinely
/// needs sub-nanosecond fractions and negative intermediate values (slack
/// computations), and because we want physics-style arithmetic
/// (`Power * Time = Energy`).
///
/// # Examples
///
/// ```
/// use comet_units::Time;
///
/// let write = Time::from_nanos(170.0);
/// let erase = Time::from_nanos(210.0);
/// assert!((write + erase).as_nanos() == 380.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Time(f64);

impl Time {
    /// Zero duration.
    pub const ZERO: Time = Time(0.0);

    /// Creates a duration from seconds.
    pub const fn from_seconds(s: f64) -> Self {
        Time(s)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Time(ms * 1e-3)
    }

    /// Creates a duration from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Time(us * 1e-6)
    }

    /// Creates a duration from nanoseconds.
    pub fn from_nanos(ns: f64) -> Self {
        Time(ns * 1e-9)
    }

    /// Creates a duration from picoseconds.
    pub fn from_picos(ps: f64) -> Self {
        Time(ps * 1e-12)
    }

    /// Duration in seconds.
    pub const fn as_seconds(self) -> f64 {
        self.0
    }

    /// Duration in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Duration in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Duration in nanoseconds.
    pub fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// Duration in picoseconds.
    pub fn as_picos(self) -> f64 {
        self.0 * 1e12
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// True if the duration is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Time {
    type Output = Time;
    fn mul(self, rhs: f64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Mul<Time> for f64 {
    type Output = Time;
    fn mul(self, rhs: Time) -> Time {
        Time(self * rhs.0)
    }
}

impl Div<f64> for Time {
    type Output = Time;
    fn div(self, rhs: f64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Div<Time> for Time {
    type Output = f64;
    fn div(self, rhs: Time) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s.abs() >= 1.0 {
            write!(f, "{s:.3} s")
        } else if s.abs() >= 1e-3 {
            write!(f, "{:.3} ms", s * 1e3)
        } else if s.abs() >= 1e-6 {
            write!(f, "{:.3} us", s * 1e6)
        } else {
            write!(f, "{:.3} ns", s * 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let t = Time::from_micros(1.6);
        assert!((t.as_nanos() - 1600.0).abs() < 1e-9);
        assert!((t.as_millis() - 0.0016).abs() < 1e-15);
        assert!((Time::from_picos(500.0).as_nanos() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ordering() {
        assert!(Time::from_nanos(10.0) < Time::from_micros(1.0));
        assert_eq!(
            Time::from_nanos(170.0).max(Time::from_nanos(210.0)),
            Time::from_nanos(210.0)
        );
    }

    #[test]
    fn ratio_of_times() {
        let r = Time::from_micros(1.6) / Time::from_nanos(170.0);
        assert!((r - 9.411).abs() < 0.01);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", Time::from_seconds(1.5)), "1.500 s");
        assert_eq!(format!("{}", Time::from_millis(7.8)), "7.800 ms");
        assert_eq!(format!("{}", Time::from_micros(2.0)), "2.000 us");
        assert_eq!(format!("{}", Time::from_nanos(170.0)), "170.000 ns");
    }
}
