//! Absolute power, stored internally in watts.

use crate::{DecibelMilliwatts, Decibels, Energy, Time};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute power, stored in watts.
///
/// # Examples
///
/// ```
/// use comet_units::{Power, Time};
///
/// let laser = Power::from_milliwatts(5.0);
/// let pulse_energy = laser * Time::from_nanos(100.0);
/// assert!((pulse_energy.as_picojoules() - 500.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from watts.
    pub const fn from_watts(w: f64) -> Self {
        Power(w)
    }

    /// Creates a power from milliwatts.
    pub fn from_milliwatts(mw: f64) -> Self {
        Power(mw * 1e-3)
    }

    /// Creates a power from microwatts.
    pub fn from_microwatts(uw: f64) -> Self {
        Power(uw * 1e-6)
    }

    /// Power in watts.
    pub const fn as_watts(self) -> f64 {
        self.0
    }

    /// Power in milliwatts.
    pub fn as_milliwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// Power in microwatts.
    pub fn as_microwatts(self) -> f64 {
        self.0 * 1e6
    }

    /// Converts to an absolute level in dBm.
    ///
    /// # Panics
    ///
    /// Panics if the power is not strictly positive (log of zero).
    pub fn to_dbm(self) -> DecibelMilliwatts {
        assert!(self.0 > 0.0, "cannot express non-positive power in dBm");
        DecibelMilliwatts::new(10.0 * self.as_milliwatts().log10())
    }

    /// Power remaining after an optical loss.
    pub fn attenuate(self, loss: Decibels) -> Power {
        Power(self.0 * loss.to_linear())
    }

    /// Power after an optical gain.
    pub fn amplify(self, gain: Decibels) -> Power {
        Power(self.0 * gain.to_linear_gain())
    }

    /// The loss/gain ratio between this power and a reference.
    ///
    /// Positive result = this power is *below* the reference (a loss).
    ///
    /// # Panics
    ///
    /// Panics if either power is non-positive.
    pub fn ratio_to(self, reference: Power) -> Decibels {
        assert!(
            self.0 > 0.0 && reference.0 > 0.0,
            "power ratio requires positive powers"
        );
        Decibels::new(10.0 * (reference.0 / self.0).log10())
    }

    /// Returns the larger of two powers.
    pub fn max(self, other: Power) -> Power {
        Power(self.0.max(other.0))
    }

    /// Returns the smaller of two powers.
    pub fn min(self, other: Power) -> Power {
        Power(self.0.min(other.0))
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Sub for Power {
    type Output = Power;
    fn sub(self, rhs: Power) -> Power {
        Power(self.0 - rhs.0)
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Mul<Power> for f64 {
    type Output = Power;
    fn mul(self, rhs: Power) -> Power {
        Power(self * rhs.0)
    }
}

impl Div<f64> for Power {
    type Output = Power;
    fn div(self, rhs: f64) -> Power {
        Power(self.0 / rhs)
    }
}

impl Div<Power> for Power {
    type Output = f64;
    fn div(self, rhs: Power) -> f64 {
        self.0 / rhs.0
    }
}

impl Mul<Time> for Power {
    type Output = Energy;
    fn mul(self, rhs: Time) -> Energy {
        Energy::from_joules(self.0 * rhs.as_seconds())
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, Add::add)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.0;
        if w.abs() >= 1.0 {
            write!(f, "{w:.3} W")
        } else if w.abs() >= 1e-3 {
            write!(f, "{:.3} mW", w * 1e3)
        } else {
            write!(f, "{:.3} uW", w * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let p = Power::from_milliwatts(1.4);
        assert!((p.as_watts() - 0.0014).abs() < 1e-15);
        assert!((p.as_microwatts() - 1400.0).abs() < 1e-9);
    }

    #[test]
    fn dbm_roundtrip() {
        let p = Power::from_milliwatts(2.5);
        let back = p.to_dbm().to_power();
        assert!((p.as_watts() - back.as_watts()).abs() < 1e-15);
    }

    #[test]
    fn attenuate_amplify_inverse() {
        let p = Power::from_milliwatts(1.0);
        let g = Decibels::new(15.2);
        let q = p.attenuate(g).amplify(g);
        assert!((p.as_watts() - q.as_watts()).abs() < 1e-15);
    }

    #[test]
    fn ratio_to_matches_attenuation() {
        let input = Power::from_milliwatts(10.0);
        let output = input.attenuate(Decibels::new(4.2));
        let measured = output.ratio_to(input);
        assert!((measured.value() - 4.2).abs() < 1e-9);
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Power::from_watts(1.0) * Time::from_seconds(2.0);
        assert!((e.as_joules() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sum_powers() {
        let total: Power = (0..10).map(|_| Power::from_milliwatts(1.4)).sum();
        assert!((total.as_milliwatts() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", Power::from_watts(2.0)), "2.000 W");
        assert_eq!(format!("{}", Power::from_milliwatts(5.0)), "5.000 mW");
        assert_eq!(format!("{}", Power::from_microwatts(4.0)), "4.000 uW");
    }
}
