//! Energy, stored internally in joules.

use crate::{BitCount, EnergyPerBit, Power, Time};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An energy, stored in joules.
///
/// # Examples
///
/// ```
/// use comet_units::{Energy, Time};
///
/// let reset = Energy::from_picojoules(880.0);
/// let avg_power = reset / Time::from_nanos(210.0);
/// assert!((avg_power.as_milliwatts() - 4.19).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from joules.
    pub const fn from_joules(j: f64) -> Self {
        Energy(j)
    }

    /// Creates an energy from nanojoules.
    pub fn from_nanojoules(nj: f64) -> Self {
        Energy(nj * 1e-9)
    }

    /// Creates an energy from picojoules.
    pub fn from_picojoules(pj: f64) -> Self {
        Energy(pj * 1e-12)
    }

    /// Energy in joules.
    pub const fn as_joules(self) -> f64 {
        self.0
    }

    /// Energy in nanojoules.
    pub fn as_nanojoules(self) -> f64 {
        self.0 * 1e9
    }

    /// Energy in picojoules.
    pub fn as_picojoules(self) -> f64 {
        self.0 * 1e12
    }

    /// Returns the larger of two energies.
    pub fn max(self, other: Energy) -> Energy {
        Energy(self.0.max(other.0))
    }

    /// Returns the smaller of two energies.
    pub fn min(self, other: Energy) -> Energy {
        Energy(self.0.min(other.0))
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<Energy> for f64 {
    type Output = Energy;
    fn mul(self, rhs: Energy) -> Energy {
        Energy(self * rhs.0)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Div<Energy> for Energy {
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Div<Time> for Energy {
    type Output = Power;
    fn div(self, rhs: Time) -> Power {
        Power::from_watts(self.0 / rhs.as_seconds())
    }
}

impl Div<BitCount> for Energy {
    type Output = EnergyPerBit;
    fn div(self, rhs: BitCount) -> EnergyPerBit {
        EnergyPerBit::from_joules_per_bit(self.0 / rhs.value() as f64)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let j = self.0;
        if j.abs() >= 1.0 {
            write!(f, "{j:.3} J")
        } else if j.abs() >= 1e-9 {
            write!(f, "{:.3} nJ", j * 1e9)
        } else {
            write!(f, "{:.3} pJ", j * 1e12)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e = Energy::from_picojoules(880.0);
        assert!((e.as_nanojoules() - 0.88).abs() < 1e-12);
        assert!((e.as_joules() - 8.8e-10).abs() < 1e-22);
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Energy::from_picojoules(750.0) / Time::from_nanos(150.0);
        assert!((p.as_milliwatts() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn energy_accumulates() {
        let mut total = Energy::ZERO;
        for _ in 0..4 {
            total += Energy::from_picojoules(280.0);
        }
        assert!((total.as_picojoules() - 1120.0).abs() < 1e-9);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", Energy::from_joules(1.5)), "1.500 J");
        assert_eq!(format!("{}", Energy::from_nanojoules(2.0)), "2.000 nJ");
        assert_eq!(format!("{}", Energy::from_picojoules(3.0)), "3.000 pJ");
    }
}
