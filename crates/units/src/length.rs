//! Lengths, stored internally in metres.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A length, stored in metres.
///
/// Spans the full range the simulator needs: nanometre-scale device
/// geometry (GST film thickness), micrometre-scale cells and rings, and
/// centimetre-scale waveguide runs for propagation-loss budgets.
///
/// # Examples
///
/// ```
/// use comet_units::Length;
///
/// let cell = Length::from_micrometers(2.0);
/// let per_mm_loss = 0.073; // dB/mm
/// let loss_db = per_mm_loss * cell.as_millimeters();
/// assert!((loss_db - 0.000146).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Length(f64);

impl Length {
    /// Zero length.
    pub const ZERO: Length = Length(0.0);

    /// Creates a length from metres.
    pub const fn from_meters(m: f64) -> Self {
        Length(m)
    }

    /// Creates a length from centimetres.
    pub fn from_centimeters(cm: f64) -> Self {
        Length(cm * 1e-2)
    }

    /// Creates a length from millimetres.
    pub fn from_millimeters(mm: f64) -> Self {
        Length(mm * 1e-3)
    }

    /// Creates a length from micrometres.
    pub fn from_micrometers(um: f64) -> Self {
        Length(um * 1e-6)
    }

    /// Creates a length from nanometres.
    pub fn from_nanometers(nm: f64) -> Self {
        Length(nm * 1e-9)
    }

    /// Length in metres.
    pub const fn as_meters(self) -> f64 {
        self.0
    }

    /// Length in centimetres.
    pub fn as_centimeters(self) -> f64 {
        self.0 * 1e2
    }

    /// Length in millimetres.
    pub fn as_millimeters(self) -> f64 {
        self.0 * 1e3
    }

    /// Length in micrometres.
    pub fn as_micrometers(self) -> f64 {
        self.0 * 1e6
    }

    /// Length in nanometres.
    pub fn as_nanometers(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns the larger of two lengths.
    pub fn max(self, other: Length) -> Length {
        Length(self.0.max(other.0))
    }

    /// Returns the smaller of two lengths.
    pub fn min(self, other: Length) -> Length {
        Length(self.0.min(other.0))
    }
}

impl Add for Length {
    type Output = Length;
    fn add(self, rhs: Length) -> Length {
        Length(self.0 + rhs.0)
    }
}

impl AddAssign for Length {
    fn add_assign(&mut self, rhs: Length) {
        self.0 += rhs.0;
    }
}

impl Sub for Length {
    type Output = Length;
    fn sub(self, rhs: Length) -> Length {
        Length(self.0 - rhs.0)
    }
}

impl Mul<f64> for Length {
    type Output = Length;
    fn mul(self, rhs: f64) -> Length {
        Length(self.0 * rhs)
    }
}

impl Mul<Length> for f64 {
    type Output = Length;
    fn mul(self, rhs: Length) -> Length {
        Length(self * rhs.0)
    }
}

impl Div<f64> for Length {
    type Output = Length;
    fn div(self, rhs: f64) -> Length {
        Length(self.0 / rhs)
    }
}

impl Div<Length> for Length {
    type Output = f64;
    fn div(self, rhs: Length) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Length {
    fn sum<I: Iterator<Item = Length>>(iter: I) -> Length {
        iter.fold(Length::ZERO, Add::add)
    }
}

impl fmt::Display for Length {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.0;
        if m.abs() >= 1e-2 {
            write!(f, "{:.3} cm", m * 1e2)
        } else if m.abs() >= 1e-3 {
            write!(f, "{:.3} mm", m * 1e3)
        } else if m.abs() >= 1e-6 {
            write!(f, "{:.3} um", m * 1e6)
        } else {
            write!(f, "{:.3} nm", m * 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let l = Length::from_nanometers(1550.0);
        assert!((l.as_micrometers() - 1.55).abs() < 1e-12);
        assert!((Length::from_centimeters(1.0).as_millimeters() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let run = Length::from_micrometers(100.0) + Length::from_micrometers(50.0);
        assert!((run.as_micrometers() - 150.0).abs() < 1e-9);
        assert!((run / Length::from_micrometers(50.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", Length::from_centimeters(2.0)), "2.000 cm");
        assert_eq!(format!("{}", Length::from_millimeters(2.0)), "2.000 mm");
        assert_eq!(format!("{}", Length::from_micrometers(6.0)), "6.000 um");
        assert_eq!(format!("{}", Length::from_nanometers(480.0)), "480.000 nm");
    }
}
