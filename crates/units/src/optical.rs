//! Logarithmic optical quantities: [`Decibels`], [`DecibelMilliwatts`] and
//! linear [`Transmittance`].

use crate::Power;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A relative power ratio expressed in decibels.
///
/// Positive values denote loss *or* gain depending on context; the
/// higher-level APIs in the `photonic` crate always document which. Adding
/// two `Decibels` corresponds to cascading two elements.
///
/// # Examples
///
/// ```
/// use comet_units::Decibels;
///
/// let total = Decibels::new(0.5) + Decibels::new(1.0);
/// assert_eq!(total.value(), 1.5);
/// assert!((Decibels::from_linear(0.5).value() - 3.0103).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Decibels(f64);

impl Decibels {
    /// Zero decibels: a unity (lossless, gainless) ratio.
    pub const ZERO: Decibels = Decibels(0.0);

    /// Creates a value from a raw decibel figure.
    pub const fn new(db: f64) -> Self {
        Decibels(db)
    }

    /// Converts a linear power ratio (e.g. transmittance) to decibels.
    ///
    /// A ratio of 1.0 maps to 0 dB; 0.5 maps to ≈3.01 dB. Ratios are
    /// interpreted as *loss*: `from_linear(0.5)` is a positive 3 dB loss.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not strictly positive.
    pub fn from_linear(ratio: f64) -> Self {
        assert!(
            ratio > 0.0,
            "linear power ratio must be positive, got {ratio}"
        );
        Decibels(-10.0 * ratio.log10())
    }

    /// Raw decibel figure.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The linear power ratio this loss corresponds to (`10^(-dB/10)`).
    ///
    /// A 3.01 dB loss returns ≈0.5.
    pub fn to_linear(self) -> f64 {
        10f64.powf(-self.0 / 10.0)
    }

    /// The linear power ratio interpreting the figure as *gain*
    /// (`10^(+dB/10)`). A 3.01 dB gain returns ≈2.0.
    pub fn to_linear_gain(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Returns the larger of two figures.
    pub fn max(self, other: Decibels) -> Decibels {
        Decibels(self.0.max(other.0))
    }

    /// Returns the smaller of two figures.
    pub fn min(self, other: Decibels) -> Decibels {
        Decibels(self.0.min(other.0))
    }
}

impl Add for Decibels {
    type Output = Decibels;
    fn add(self, rhs: Decibels) -> Decibels {
        Decibels(self.0 + rhs.0)
    }
}

impl AddAssign for Decibels {
    fn add_assign(&mut self, rhs: Decibels) {
        self.0 += rhs.0;
    }
}

impl Sub for Decibels {
    type Output = Decibels;
    fn sub(self, rhs: Decibels) -> Decibels {
        Decibels(self.0 - rhs.0)
    }
}

impl SubAssign for Decibels {
    fn sub_assign(&mut self, rhs: Decibels) {
        self.0 -= rhs.0;
    }
}

impl Neg for Decibels {
    type Output = Decibels;
    fn neg(self) -> Decibels {
        Decibels(-self.0)
    }
}

impl Mul<f64> for Decibels {
    type Output = Decibels;
    fn mul(self, rhs: f64) -> Decibels {
        Decibels(self.0 * rhs)
    }
}

impl Mul<Decibels> for f64 {
    type Output = Decibels;
    fn mul(self, rhs: Decibels) -> Decibels {
        Decibels(self * rhs.0)
    }
}

impl Div<f64> for Decibels {
    type Output = Decibels;
    fn div(self, rhs: f64) -> Decibels {
        Decibels(self.0 / rhs)
    }
}

impl Sum for Decibels {
    fn sum<I: Iterator<Item = Decibels>>(iter: I) -> Decibels {
        iter.fold(Decibels::ZERO, Add::add)
    }
}

impl fmt::Display for Decibels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} dB", self.0)
    }
}

/// An absolute optical power level referenced to 1 mW, in dBm.
///
/// # Examples
///
/// ```
/// use comet_units::{DecibelMilliwatts, Power};
///
/// let p = DecibelMilliwatts::new(0.0);
/// assert!((p.to_power().as_milliwatts() - 1.0).abs() < 1e-12);
/// let q = Power::from_milliwatts(100.0).to_dbm();
/// assert!((q.value() - 20.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct DecibelMilliwatts(f64);

impl DecibelMilliwatts {
    /// Creates a level from a raw dBm figure.
    pub const fn new(dbm: f64) -> Self {
        DecibelMilliwatts(dbm)
    }

    /// Raw dBm figure.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to an absolute [`Power`].
    pub fn to_power(self) -> Power {
        Power::from_milliwatts(10f64.powf(self.0 / 10.0))
    }

    /// The level after applying a loss.
    pub fn attenuate(self, loss: Decibels) -> DecibelMilliwatts {
        DecibelMilliwatts(self.0 - loss.value())
    }

    /// The level after applying a gain.
    pub fn amplify(self, gain: Decibels) -> DecibelMilliwatts {
        DecibelMilliwatts(self.0 + gain.value())
    }
}

impl fmt::Display for DecibelMilliwatts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} dBm", self.0)
    }
}

/// A linear optical power transmission ratio in `[0, 1]`.
///
/// Used for OPCM cell read-out levels, where the *difference* between
/// adjacent level transmittances determines the noise margin.
///
/// # Examples
///
/// ```
/// use comet_units::Transmittance;
///
/// let t = Transmittance::new(0.90);
/// assert!((t.cascade(Transmittance::new(0.5)).value() - 0.45).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Transmittance(f64);

impl Transmittance {
    /// Fully transparent (ratio 1.0).
    pub const UNITY: Transmittance = Transmittance(1.0);
    /// Fully opaque (ratio 0.0).
    pub const OPAQUE: Transmittance = Transmittance(0.0);

    /// Creates a transmittance, clamping into `[0, 1]`.
    pub fn new(ratio: f64) -> Self {
        Transmittance(ratio.clamp(0.0, 1.0))
    }

    /// The linear ratio.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Transmission through this element followed by another.
    pub fn cascade(self, other: Transmittance) -> Transmittance {
        Transmittance(self.0 * other.0)
    }

    /// Equivalent loss in decibels.
    ///
    /// Returns a very large loss (300 dB) for a fully opaque element rather
    /// than infinity so downstream budget arithmetic stays finite.
    pub fn to_decibels(self) -> Decibels {
        if self.0 <= 1e-30 {
            Decibels::new(300.0)
        } else {
            Decibels::from_linear(self.0)
        }
    }
}

impl Default for Transmittance {
    fn default() -> Self {
        Transmittance::UNITY
    }
}

impl Mul for Transmittance {
    type Output = Transmittance;
    fn mul(self, rhs: Transmittance) -> Transmittance {
        self.cascade(rhs)
    }
}

impl fmt::Display for Transmittance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_linear_roundtrip() {
        for ratio in [1.0, 0.5, 0.1, 0.9999, 1e-6] {
            let db = Decibels::from_linear(ratio);
            assert!((db.to_linear() - ratio).abs() < 1e-12, "ratio {ratio}");
        }
    }

    #[test]
    fn db_gain_is_reciprocal_of_loss() {
        let db = Decibels::new(7.3);
        assert!((db.to_linear() * db.to_linear_gain() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cascaded_losses_add() {
        let a = Decibels::from_linear(0.5);
        let b = Decibels::from_linear(0.25);
        let sum = a + b;
        assert!((sum.to_linear() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn dbm_attenuate_then_amplify_is_identity() {
        let p = DecibelMilliwatts::new(3.0);
        let q = p.attenuate(Decibels::new(5.0)).amplify(Decibels::new(5.0));
        assert!((p.value() - q.value()).abs() < 1e-12);
    }

    #[test]
    fn transmittance_clamps() {
        assert_eq!(Transmittance::new(1.7).value(), 1.0);
        assert_eq!(Transmittance::new(-0.2).value(), 0.0);
    }

    #[test]
    fn opaque_transmittance_has_finite_loss() {
        let db = Transmittance::OPAQUE.to_decibels();
        assert!(db.value().is_finite());
        assert!(db.value() >= 300.0 - 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn from_linear_rejects_zero() {
        let _ = Decibels::from_linear(0.0);
    }

    #[test]
    fn sum_of_decibels() {
        let total: Decibels = [0.5, 1.0, 0.25].iter().map(|&d| Decibels::new(d)).sum();
        assert!((total.value() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Decibels::new(1.5)), "1.500 dB");
        assert_eq!(format!("{}", DecibelMilliwatts::new(-2.0)), "-2.000 dBm");
        assert_eq!(format!("{}", Transmittance::new(0.72)), "0.7200");
    }
}
