//! Typed campaign results with real JSON and CSV export.
//!
//! A [`CampaignReport`] is the aggregate of one campaign run: one
//! [`CellReport`] per grid cell, in grid order. Exports are deterministic —
//! two runs of the same spec produce byte-identical JSON and CSV no matter
//! how many threads ran the cells — and the JSON round-trips exactly:
//! `CampaignReport::from_json(report.to_json())` reconstructs an equal
//! report (floats are serialized in their native units at
//! shortest-round-trip precision).

use crate::json::{Json, JsonError};
use comet_serve::TenantStats;
use comet_units::{ByteCount, Energy, Time};
use memsim::{EnergyBreakdown, LatencyHistogram, SimStats};
use std::fmt;

/// Per-tenant results of one serve cell, in tenant index order — the
/// exportable subset of [`comet_serve::TenantStats`] (plain scalars; the
/// tail percentiles are materialized from the streaming histogram at
/// capture time so the JSON round trip stays exact).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// Tenant name.
    pub name: String,
    /// Requests completed.
    pub completed: u64,
    /// Reads completed.
    pub reads: u64,
    /// Writes completed.
    pub writes: u64,
    /// Bytes transferred.
    pub bytes: ByteCount,
    /// Sum of request latencies (exact mean = total / completed).
    pub total_latency: Time,
    /// Maximum request latency.
    pub max_latency: Time,
    /// Median latency (streaming-histogram resolution).
    pub p50_latency: Time,
    /// 95th-percentile latency (streaming-histogram resolution).
    pub p95_latency: Time,
    /// 99th-percentile latency (streaming-histogram resolution).
    pub p99_latency: Time,
}

impl TenantSummary {
    /// Captures a serve run's tenant accounting.
    pub fn from_stats(t: &TenantStats) -> Self {
        TenantSummary {
            name: t.name.clone(),
            completed: t.completed,
            reads: t.reads,
            writes: t.writes,
            bytes: t.bytes,
            total_latency: t.total_latency,
            max_latency: t.max_latency,
            p50_latency: t.percentile(50.0),
            p95_latency: t.percentile(95.0),
            p99_latency: t.percentile(99.0),
        }
    }

    /// Mean request latency.
    pub fn avg_latency(&self) -> Time {
        if self.completed == 0 {
            Time::ZERO
        } else {
            self.total_latency / self.completed as f64
        }
    }
}

/// The result of one campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Cell index in grid order.
    pub index: usize,
    /// Device label (the factory's `device_name`).
    pub device: String,
    /// Workload name.
    pub workload: String,
    /// Engine-point label.
    pub engine: String,
    /// Replicate number.
    pub replicate: usize,
    /// The seed this cell's trace was instantiated with.
    pub seed: u64,
    /// Aggregate simulation statistics.
    pub stats: SimStats,
    /// Per-tenant results (serve cells only; empty for trace replay).
    pub tenants: Vec<TenantSummary>,
}

/// The aggregate results of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Master seed.
    pub seed: u64,
    /// Replicates per grid point.
    pub replicates: usize,
    /// Whether profile workloads were resized to device-native lines.
    pub normalize_lines: bool,
    /// Per-cell results in grid order.
    pub cells: Vec<CellReport>,
}

/// Per-device averages over a report's cells (the Fig. 9 summary shape).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSummary {
    /// Device label.
    pub device: String,
    /// Cells aggregated.
    pub cells: usize,
    /// Mean per-cell bandwidth, GB/s.
    pub avg_bandwidth_gbs: f64,
    /// Mean per-cell energy per bit, pJ/b.
    pub avg_epb_pjb: f64,
    /// Mean per-cell average latency, ns.
    pub avg_latency_ns: f64,
}

impl DeviceSummary {
    /// The paper's Fig. 9(c) efficiency metric over the averages.
    pub fn bw_per_epb(&self) -> f64 {
        if self.avg_epb_pjb == 0.0 {
            0.0
        } else {
            self.avg_bandwidth_gbs / self.avg_epb_pjb
        }
    }
}

/// A failure to reconstruct a report from JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportParseError {
    /// The text is not well-formed JSON.
    Json(JsonError),
    /// The JSON does not have the report schema.
    Schema(String),
}

impl fmt::Display for ReportParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportParseError::Json(e) => write!(f, "{e}"),
            ReportParseError::Schema(m) => write!(f, "report schema error: {m}"),
        }
    }
}

impl std::error::Error for ReportParseError {}

impl From<JsonError> for ReportParseError {
    fn from(e: JsonError) -> Self {
        ReportParseError::Json(e)
    }
}

fn schema(m: impl Into<String>) -> ReportParseError {
    ReportParseError::Schema(m.into())
}

fn field<'j>(obj: &'j Json, key: &str) -> Result<&'j Json, ReportParseError> {
    obj.get(key)
        .ok_or_else(|| schema(format!("missing '{key}'")))
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, ReportParseError> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| schema(format!("'{key}' is not an integer")))
}

fn f64_field(obj: &Json, key: &str) -> Result<f64, ReportParseError> {
    field(obj, key)?
        .as_f64()
        .ok_or_else(|| schema(format!("'{key}' is not a number")))
}

fn str_field(obj: &Json, key: &str) -> Result<String, ReportParseError> {
    Ok(field(obj, key)?
        .as_str()
        .ok_or_else(|| schema(format!("'{key}' is not a string")))?
        .to_string())
}

fn tenant_to_json(t: &TenantSummary) -> Json {
    Json::object([
        ("name", Json::string(&t.name)),
        ("completed", Json::integer(t.completed)),
        ("reads", Json::integer(t.reads)),
        ("writes", Json::integer(t.writes)),
        ("bytes", Json::integer(t.bytes.value())),
        ("total_latency_s", Json::float(t.total_latency.as_seconds())),
        ("max_latency_s", Json::float(t.max_latency.as_seconds())),
        ("p50_latency_s", Json::float(t.p50_latency.as_seconds())),
        ("p95_latency_s", Json::float(t.p95_latency.as_seconds())),
        ("p99_latency_s", Json::float(t.p99_latency.as_seconds())),
    ])
}

fn tenant_from_json(t: &Json) -> Result<TenantSummary, ReportParseError> {
    Ok(TenantSummary {
        name: str_field(t, "name")?,
        completed: u64_field(t, "completed")?,
        reads: u64_field(t, "reads")?,
        writes: u64_field(t, "writes")?,
        bytes: ByteCount::new(u64_field(t, "bytes")?),
        total_latency: Time::from_seconds(f64_field(t, "total_latency_s")?),
        max_latency: Time::from_seconds(f64_field(t, "max_latency_s")?),
        p50_latency: Time::from_seconds(f64_field(t, "p50_latency_s")?),
        p95_latency: Time::from_seconds(f64_field(t, "p95_latency_s")?),
        p99_latency: Time::from_seconds(f64_field(t, "p99_latency_s")?),
    })
}

impl CellReport {
    fn to_json(&self) -> Json {
        let s = &self.stats;
        Json::object([
            ("index", Json::integer(self.index as u64)),
            ("device", Json::string(&self.device)),
            ("workload", Json::string(&self.workload)),
            ("engine", Json::string(&self.engine)),
            ("replicate", Json::integer(self.replicate as u64)),
            ("seed", Json::integer(self.seed)),
            (
                "stats",
                Json::object([
                    ("device", Json::string(&s.device)),
                    ("workload", Json::string(&s.workload)),
                    ("completed", Json::integer(s.completed)),
                    ("reads", Json::integer(s.reads)),
                    ("writes", Json::integer(s.writes)),
                    ("bytes", Json::integer(s.bytes.value())),
                    ("makespan_s", Json::float(s.makespan.as_seconds())),
                    ("total_latency_s", Json::float(s.total_latency.as_seconds())),
                    ("max_latency_s", Json::float(s.max_latency.as_seconds())),
                    ("p50_latency_s", Json::float(s.p50_latency.as_seconds())),
                    ("p95_latency_s", Json::float(s.p95_latency.as_seconds())),
                    ("p99_latency_s", Json::float(s.p99_latency.as_seconds())),
                    (
                        "histogram",
                        Json::Array(
                            s.histogram
                                .counts()
                                .iter()
                                .map(|&c| Json::integer(c))
                                .collect(),
                        ),
                    ),
                    (
                        "energy_j",
                        Json::object([
                            ("access", Json::float(s.energy.access.as_joules())),
                            ("background", Json::float(s.energy.background.as_joules())),
                            ("refresh", Json::float(s.energy.refresh.as_joules())),
                        ]),
                    ),
                ]),
            ),
            (
                "tenants",
                Json::Array(self.tenants.iter().map(tenant_to_json).collect()),
            ),
            // Redundant human-facing metrics; recomputed (not parsed) on
            // import so the round trip stays exact.
            (
                "derived",
                Json::object([
                    (
                        "bandwidth_gbs",
                        Json::float(s.bandwidth().as_gigabytes_per_second()),
                    ),
                    ("avg_latency_ns", Json::float(s.avg_latency().as_nanos())),
                    ("p50_latency_ns", Json::float(s.p50_latency.as_nanos())),
                    ("p95_latency_ns", Json::float(s.p95_latency.as_nanos())),
                    ("p99_latency_ns", Json::float(s.p99_latency.as_nanos())),
                    (
                        "epb_pjb",
                        Json::float(s.energy_per_bit().as_picojoules_per_bit()),
                    ),
                    ("bw_per_epb", Json::float(s.bandwidth_per_epb())),
                ]),
            ),
        ])
    }

    fn from_json(cell: &Json) -> Result<CellReport, ReportParseError> {
        let stats = field(cell, "stats")?;
        let hist = field(stats, "histogram")?
            .as_array()
            .ok_or_else(|| schema("'histogram' is not an array"))?;
        if hist.len() != 10 {
            return Err(schema(format!(
                "histogram has {} buckets, want 10",
                hist.len()
            )));
        }
        let mut counts = [0u64; 10];
        for (i, c) in hist.iter().enumerate() {
            counts[i] = c
                .as_u64()
                .ok_or_else(|| schema("histogram bucket is not an integer"))?;
        }
        let energy = field(stats, "energy_j")?;
        // Absent means a pre-tenant-export report: parse as no tenants.
        let tenants = match cell.get("tenants") {
            None => Vec::new(),
            Some(t) => t
                .as_array()
                .ok_or_else(|| schema("'tenants' is not an array"))?
                .iter()
                .map(tenant_from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(CellReport {
            index: u64_field(cell, "index")? as usize,
            device: str_field(cell, "device")?,
            workload: str_field(cell, "workload")?,
            engine: str_field(cell, "engine")?,
            replicate: u64_field(cell, "replicate")? as usize,
            seed: u64_field(cell, "seed")?,
            tenants,
            stats: SimStats {
                device: str_field(stats, "device")?,
                workload: str_field(stats, "workload")?,
                completed: u64_field(stats, "completed")?,
                reads: u64_field(stats, "reads")?,
                writes: u64_field(stats, "writes")?,
                bytes: ByteCount::new(u64_field(stats, "bytes")?),
                makespan: Time::from_seconds(f64_field(stats, "makespan_s")?),
                total_latency: Time::from_seconds(f64_field(stats, "total_latency_s")?),
                max_latency: Time::from_seconds(f64_field(stats, "max_latency_s")?),
                p50_latency: Time::from_seconds(f64_field(stats, "p50_latency_s")?),
                p95_latency: Time::from_seconds(f64_field(stats, "p95_latency_s")?),
                p99_latency: Time::from_seconds(f64_field(stats, "p99_latency_s")?),
                histogram: LatencyHistogram::from_counts(counts),
                energy: EnergyBreakdown {
                    access: Energy::from_joules(f64_field(energy, "access")?),
                    background: Energy::from_joules(f64_field(energy, "background")?),
                    refresh: Energy::from_joules(f64_field(energy, "refresh")?),
                },
            },
        })
    }
}

impl CampaignReport {
    /// Serializes the report as deterministic, pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let doc = Json::object([
            ("campaign", Json::string(&self.name)),
            ("seed", Json::integer(self.seed)),
            ("replicates", Json::integer(self.replicates as u64)),
            ("normalize_lines", Json::Bool(self.normalize_lines)),
            (
                "cells",
                Json::Array(self.cells.iter().map(CellReport::to_json).collect()),
            ),
        ]);
        let mut text = doc.to_string();
        text.push('\n');
        text
    }

    /// Reconstructs a report from its JSON serialization.
    ///
    /// # Errors
    ///
    /// Returns [`ReportParseError`] on malformed JSON or schema mismatch.
    ///
    /// # Examples
    ///
    /// ```
    /// use comet_lab::CampaignReport;
    ///
    /// let empty = CampaignReport {
    ///     name: "demo".into(),
    ///     seed: 42,
    ///     replicates: 1,
    ///     normalize_lines: true,
    ///     cells: Vec::new(),
    /// };
    /// let back = CampaignReport::from_json(&empty.to_json())?;
    /// assert_eq!(back, empty);
    /// # Ok::<(), comet_lab::ReportParseError>(())
    /// ```
    pub fn from_json(text: &str) -> Result<CampaignReport, ReportParseError> {
        let doc = Json::parse(text)?;
        let cells = field(&doc, "cells")?
            .as_array()
            .ok_or_else(|| schema("'cells' is not an array"))?
            .iter()
            .map(CellReport::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CampaignReport {
            name: str_field(&doc, "campaign")?,
            seed: u64_field(&doc, "seed")?,
            replicates: u64_field(&doc, "replicates")? as usize,
            normalize_lines: field(&doc, "normalize_lines")?
                .as_bool()
                .ok_or_else(|| schema("'normalize_lines' is not a bool"))?,
            cells,
        })
    }

    /// Serializes the per-cell summary metrics as CSV (header + one row
    /// per cell; no histogram — use the JSON export for full fidelity).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "index,device,workload,engine,replicate,seed,completed,reads,writes,bytes,\
             makespan_ns,avg_latency_ns,p50_latency_ns,p95_latency_ns,p99_latency_ns,\
             max_latency_ns,bandwidth_gbs,epb_pjb,bw_per_epb,energy_access_pj,\
             energy_background_pj,energy_refresh_pj\n",
        );
        for c in &self.cells {
            let s = &c.stats;
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.6},{:.6},{:.6},{:.3},{:.3},{:.3}\n",
                c.index,
                csv_quote(&c.device),
                csv_quote(&c.workload),
                csv_quote(&c.engine),
                c.replicate,
                c.seed,
                s.completed,
                s.reads,
                s.writes,
                s.bytes.value(),
                s.makespan.as_nanos(),
                s.avg_latency().as_nanos(),
                s.p50_latency.as_nanos(),
                s.p95_latency.as_nanos(),
                s.p99_latency.as_nanos(),
                s.max_latency.as_nanos(),
                s.bandwidth().as_gigabytes_per_second(),
                s.energy_per_bit().as_picojoules_per_bit(),
                s.bandwidth_per_epb(),
                s.energy.access.as_picojoules(),
                s.energy.background.as_picojoules(),
                s.energy.refresh.as_picojoules(),
            ));
        }
        out
    }

    /// Serializes per-tenant serve results as CSV: one row per (cell,
    /// tenant), empty below replay cells (header always present, so the
    /// export is deterministic for any engine mix).
    pub fn to_tenant_csv(&self) -> String {
        let mut out = String::from(
            "index,device,workload,engine,replicate,tenant,completed,reads,writes,bytes,\
             avg_latency_ns,p50_latency_ns,p95_latency_ns,p99_latency_ns,max_latency_ns\n",
        );
        for c in &self.cells {
            for t in &c.tenants {
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{},{},{},{:.3},{:.3},{:.3},{:.3},{:.3}\n",
                    c.index,
                    csv_quote(&c.device),
                    csv_quote(&c.workload),
                    csv_quote(&c.engine),
                    c.replicate,
                    csv_quote(&t.name),
                    t.completed,
                    t.reads,
                    t.writes,
                    t.bytes.value(),
                    t.avg_latency().as_nanos(),
                    t.p50_latency.as_nanos(),
                    t.p95_latency.as_nanos(),
                    t.p99_latency.as_nanos(),
                    t.max_latency.as_nanos(),
                ));
            }
        }
        out
    }

    /// Per-device averages over all cells, in first-appearance order (the
    /// Fig. 9 summary aggregation: plain means of per-cell bandwidth, EPB
    /// and average latency).
    pub fn device_summaries(&self) -> Vec<DeviceSummary> {
        let mut order: Vec<String> = Vec::new();
        for c in &self.cells {
            if !order.contains(&c.device) {
                order.push(c.device.clone());
            }
        }
        order
            .into_iter()
            .map(|device| {
                let cells: Vec<&CellReport> =
                    self.cells.iter().filter(|c| c.device == device).collect();
                let n = cells.len() as f64;
                DeviceSummary {
                    device,
                    cells: cells.len(),
                    avg_bandwidth_gbs: cells
                        .iter()
                        .map(|c| c.stats.bandwidth().as_gigabytes_per_second())
                        .sum::<f64>()
                        / n,
                    avg_epb_pjb: cells
                        .iter()
                        .map(|c| c.stats.energy_per_bit().as_picojoules_per_bit())
                        .sum::<f64>()
                        / n,
                    avg_latency_ns: cells
                        .iter()
                        .map(|c| c.stats.avg_latency().as_nanos())
                        .sum::<f64>()
                        / n,
                }
            })
            .collect()
    }

    /// The cells of one device, in grid order.
    pub fn cells_for(&self, device: &str) -> Vec<&CellReport> {
        self.cells.iter().filter(|c| c.device == device).collect()
    }
}

/// Quotes a CSV field if it contains a delimiter (report names are normally
/// plain identifiers, but the format stays correct for any input).
fn csv_quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats(seed: u64) -> SimStats {
        let mut s = SimStats::new("DEV", "wl");
        s.completed = 3 + seed;
        s.reads = 2;
        s.writes = 1 + seed;
        s.bytes = ByteCount::new(192);
        s.makespan = Time::from_nanos(350.5);
        s.total_latency = Time::from_nanos(410.25);
        s.max_latency = Time::from_nanos(200.125);
        s.p50_latency = Time::from_nanos(120.5);
        s.p95_latency = Time::from_nanos(190.25);
        s.p99_latency = Time::from_nanos(200.125);
        s.histogram = LatencyHistogram::from_counts([0, 1, 0, 2, 0, 0, 0, 0, 0, 0]);
        s.energy = EnergyBreakdown {
            access: Energy::from_picojoules(512.5),
            background: Energy::from_picojoules(17.0),
            refresh: Energy::ZERO,
        };
        s
    }

    fn sample_report() -> CampaignReport {
        CampaignReport {
            name: "unit".into(),
            seed: (1 << 60) + 3,
            replicates: 2,
            normalize_lines: true,
            cells: (0..4)
                .map(|i| CellReport {
                    index: i,
                    device: format!("dev{}", i / 2),
                    workload: "wl".into(),
                    engine: "frfcfs8-paced".into(),
                    replicate: i % 2,
                    seed: 42 + i as u64,
                    stats: sample_stats(i as u64),
                    tenants: (0..i % 3)
                        .map(|t| TenantSummary {
                            name: format!("tenant{t}"),
                            completed: 10 + t as u64,
                            reads: 8,
                            writes: 2 + t as u64,
                            bytes: ByteCount::new(640),
                            total_latency: Time::from_nanos(1200.5),
                            max_latency: Time::from_nanos(400.25),
                            p50_latency: Time::from_nanos(90.0),
                            p95_latency: Time::from_nanos(200.0),
                            p99_latency: Time::from_nanos(300.0),
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let r = sample_report();
        let text = r.to_json();
        let back = CampaignReport::from_json(&text).expect("parses");
        assert_eq!(back, r);
        // Re-emission is byte-identical (determinism).
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn csv_has_header_and_all_cells() {
        let r = sample_report();
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + r.cells.len());
        assert!(lines[0].starts_with("index,device,workload"));
        assert!(lines[1].starts_with("0,dev0,wl,frfcfs8-paced,0,42,"));
    }

    #[test]
    fn tenant_csv_has_one_row_per_cell_tenant() {
        let r = sample_report();
        let csv = r.to_tenant_csv();
        let lines: Vec<&str> = csv.lines().collect();
        let expected: usize = r.cells.iter().map(|c| c.tenants.len()).sum();
        assert!(expected > 0, "sample report carries tenants");
        assert_eq!(lines.len(), 1 + expected);
        assert!(lines[0].starts_with("index,device,workload,engine,replicate,tenant"));
        assert!(lines[1].contains(",tenant0,"));
    }

    #[test]
    fn reports_without_tenant_arrays_still_parse() {
        // Backwards compatibility: exports from before per-tenant stats
        // carry no "tenants" key and parse as tenant-less cells.
        let mut r = sample_report();
        for c in &mut r.cells {
            c.tenants.clear();
        }
        let stripped = {
            // Emit, then surgically drop the tenants arrays.
            let text = r.to_json();
            text.replace("\"tenants\": [],\n      ", "")
        };
        assert_ne!(stripped, r.to_json(), "substitution applied");
        let back = CampaignReport::from_json(&stripped).expect("parses without tenants");
        assert_eq!(back, r);
    }

    #[test]
    fn device_summaries_group_and_average() {
        let r = sample_report();
        let sums = r.device_summaries();
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].device, "dev0");
        assert_eq!(sums[0].cells, 2);
        let manual = (r.cells[0].stats.bandwidth().as_gigabytes_per_second()
            + r.cells[1].stats.bandwidth().as_gigabytes_per_second())
            / 2.0;
        assert!((sums[0].avg_bandwidth_gbs - manual).abs() < 1e-12);
    }

    #[test]
    fn schema_errors_are_reported() {
        assert!(matches!(
            CampaignReport::from_json("{}"),
            Err(ReportParseError::Schema(_))
        ));
        assert!(matches!(
            CampaignReport::from_json("not json"),
            Err(ReportParseError::Json(_))
        ));
        // A cell missing its stats.
        let bad = "{\"campaign\":\"x\",\"seed\":1,\"replicates\":1,\
                   \"normalize_lines\":true,\"cells\":[{\"index\":0}]}";
        assert!(CampaignReport::from_json(bad).is_err());
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_quote("plain"), "plain");
        assert_eq!(csv_quote("a,b"), "\"a,b\"");
        assert_eq!(csv_quote("q\"q"), "\"q\"\"q\"");
    }
}
