//! Declarative experiment-campaign specifications.
//!
//! A [`CampaignSpec`] is a grid: every combination of device factory,
//! workload source, engine point and replicate is one *cell*, and running
//! the campaign simulates every cell (in parallel — see
//! [`run_campaign`](crate::run_campaign)). The spec layer is deliberately
//! dumb data: all policy (sharding, seeding, aggregation) lives in the
//! runner so that a spec describes *what* to measure, never *how*.
//!
//! Any configuration knob a device factory captures becomes a sweepable
//! axis by registering one factory per setting. The cross-layer cell-model
//! mode works exactly this way: the registry's `COMET-paper` and
//! `COMET-derived` names (see [`cell_model_axis`](crate::cell_model_axis))
//! put the transcribed-constants and physics-derived level grids side by
//! side on the device axis, so a single campaign measures
//! derived-vs-paper divergence under identical workloads, seeds and
//! engine points:
//!
//! ```
//! use comet_lab::{cell_model_axis, run_campaign, CampaignSpec, WorkloadSource};
//! use memsim::spec_like_suite;
//!
//! let spec = CampaignSpec::new(
//!     "derived-vs-paper",
//!     42,
//!     cell_model_axis(),
//!     spec_like_suite(200).into_iter().take(1).map(WorkloadSource::Profile).collect(),
//! );
//! let report = run_campaign(&spec, 2);
//! assert_eq!(report.cells.len(), 2); // one cell per provider
//! ```

use comet_serve::ServeSpec;
use memsim::{DeviceFactory, MemRequest, ReplayMode, Scheduler, SimConfig, WorkloadProfile};
use std::fmt;
use std::sync::Arc;

/// Where a cell's request stream comes from.
#[derive(Debug, Clone)]
pub enum WorkloadSource {
    /// A synthetic profile, instantiated per cell with the cell's seed.
    Profile(WorkloadProfile),
    /// A fixed, pre-generated trace (shared by every cell that uses it;
    /// the cell seed does not apply).
    Trace {
        /// Report name of the trace.
        name: String,
        /// The request stream.
        requests: Arc<Vec<MemRequest>>,
    },
}

impl WorkloadSource {
    /// Wraps a fixed trace under a report name.
    pub fn trace(name: impl Into<String>, requests: Vec<MemRequest>) -> Self {
        WorkloadSource::Trace {
            name: name.into(),
            requests: Arc::new(requests),
        }
    }

    /// The workload's report name.
    pub fn name(&self) -> &str {
        match self {
            WorkloadSource::Profile(p) => &p.name,
            WorkloadSource::Trace { name, .. } => name,
        }
    }
}

/// One point on the engine-configuration axis: a trace-replay engine
/// (scheduler × replay mode), or — when [`EnginePoint::serve`] is used —
/// a `comet-serve` service scenario (tenant mix × arrival process ×
/// sharding × batching) run through the event-driven core instead.
#[derive(Debug, Clone, PartialEq)]
pub struct EnginePoint {
    /// Report label (e.g. `"frfcfs8-paced"`).
    pub label: String,
    /// Scheduling policy (replay engine; serve points carry their own).
    pub scheduler: Scheduler,
    /// Arrival pacing (replay engine only).
    pub replay: ReplayMode,
    /// When set, the cell runs this service scenario through
    /// [`comet_serve::run_service`], shaping profile-less tenants with the
    /// cell's workload profile. `None` replays the cell's trace.
    pub serve: Option<ServeSpec>,
}

impl EnginePoint {
    /// The default high-performance point: FR-FCFS(8), paced arrivals —
    /// what `SimConfig::paced` builds.
    pub fn paced() -> Self {
        EnginePoint {
            label: "frfcfs8-paced".into(),
            scheduler: Scheduler::default(),
            replay: ReplayMode::Paced,
            serve: None,
        }
    }

    /// FR-FCFS(8) with saturation replay (throughput measurement).
    pub fn saturation() -> Self {
        EnginePoint {
            label: "frfcfs8-saturation".into(),
            scheduler: Scheduler::default(),
            replay: ReplayMode::Saturation,
            serve: None,
        }
    }

    /// A custom replay point under an explicit report label.
    pub fn new(label: impl Into<String>, scheduler: Scheduler, replay: ReplayMode) -> Self {
        EnginePoint {
            label: label.into(),
            scheduler,
            replay,
            serve: None,
        }
    }

    /// A service point: the cell runs `spec` through the `comet-serve`
    /// event-driven core (see [`comet_serve::run_service`]).
    pub fn serve(label: impl Into<String>, spec: ServeSpec) -> Self {
        EnginePoint {
            label: label.into(),
            scheduler: spec.scheduler,
            replay: ReplayMode::Paced,
            serve: Some(spec),
        }
    }

    /// The engine configuration for a cell of this point.
    pub fn sim_config(&self, workload: &str) -> SimConfig {
        SimConfig {
            scheduler: self.scheduler,
            replay: self.replay,
            workload: workload.into(),
        }
    }
}

impl Default for EnginePoint {
    fn default() -> Self {
        Self::paced()
    }
}

/// A full campaign: the experiment grid plus global knobs.
///
/// Cells are ordered device-major (device, then workload, then engine,
/// then replicate); the order — and therefore the report — is independent
/// of how cells are sharded across threads.
pub struct CampaignSpec {
    /// Campaign name (used for report file names).
    pub name: String,
    /// Master seed; per-cell seeds derive from it (see
    /// [`CampaignSpec::cell_seed`]).
    pub seed: u64,
    /// Trace instantiations per grid point (≥ 1). Replicate `0` uses the
    /// master seed itself, so a one-replicate campaign reproduces a plain
    /// sequential sweep at that seed exactly.
    pub replicates: usize,
    /// Resize profile workloads to each device's native cache line
    /// (preserving total bytes), so every device moves the same data — the
    /// paper's Fig. 9 methodology. Fixed traces are never resized.
    pub normalize_lines: bool,
    /// The device axis.
    pub devices: Vec<Box<dyn DeviceFactory>>,
    /// The workload axis.
    pub workloads: Vec<WorkloadSource>,
    /// The engine axis.
    pub engines: Vec<EnginePoint>,
}

impl CampaignSpec {
    /// A single-engine, single-replicate campaign — the common case.
    pub fn new(
        name: impl Into<String>,
        seed: u64,
        devices: Vec<Box<dyn DeviceFactory>>,
        workloads: Vec<WorkloadSource>,
    ) -> Self {
        CampaignSpec {
            name: name.into(),
            seed,
            replicates: 1,
            normalize_lines: true,
            devices,
            workloads,
            engines: vec![EnginePoint::default()],
        }
    }

    /// Number of cells in the grid.
    pub fn cells(&self) -> usize {
        self.devices.len() * self.workloads.len() * self.engines.len() * self.replicates.max(1)
    }

    /// The seed of replicate `r`: the master seed advanced by `r` strides
    /// of the 64-bit golden ratio (SplitMix64's stream constant), so
    /// replicate 0 *is* the master seed and further replicates decorrelate.
    /// Workload-level decorrelation happens inside
    /// `WorkloadProfile::generate` (it folds the profile name into the
    /// seed), so the same replicate uses the same trace instantiation on
    /// every device — a paired design.
    pub fn cell_seed(&self, replicate: usize) -> u64 {
        self.seed
            .wrapping_add((replicate as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Grid coordinates of cell `index` (inverse of the device-major
    /// enumeration order).
    pub fn coords(&self, index: usize) -> CellCoords {
        let reps = self.replicates.max(1);
        let replicate = index % reps;
        let rest = index / reps;
        let engine = rest % self.engines.len();
        let rest = rest / self.engines.len();
        let workload = rest % self.workloads.len();
        let device = rest / self.workloads.len();
        CellCoords {
            device,
            workload,
            engine,
            replicate,
        }
    }
}

impl fmt::Debug for CampaignSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignSpec")
            .field("name", &self.name)
            .field("seed", &self.seed)
            .field("replicates", &self.replicates)
            .field("normalize_lines", &self.normalize_lines)
            .field(
                "devices",
                &self
                    .devices
                    .iter()
                    .map(|d| d.device_name())
                    .collect::<Vec<_>>(),
            )
            .field(
                "workloads",
                &self
                    .workloads
                    .iter()
                    .map(|w| w.name().to_string())
                    .collect::<Vec<_>>(),
            )
            .field(
                "engines",
                &self
                    .engines
                    .iter()
                    .map(|e| e.label.clone())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// Grid coordinates of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellCoords {
    /// Index on the device axis.
    pub device: usize,
    /// Index on the workload axis.
    pub workload: usize,
    /// Index on the engine axis.
    pub engine: usize,
    /// Replicate number.
    pub replicate: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{DramConfig, EpcmConfig};

    fn spec() -> CampaignSpec {
        let mut s = CampaignSpec::new(
            "t",
            7,
            vec![
                Box::new(DramConfig::ddr3_1600_2d()),
                Box::new(EpcmConfig::epcm_mm()),
            ],
            vec![
                WorkloadSource::trace("a", Vec::new()),
                WorkloadSource::trace("b", Vec::new()),
                WorkloadSource::trace("c", Vec::new()),
            ],
        );
        s.engines = vec![EnginePoint::paced(), EnginePoint::saturation()];
        s.replicates = 2;
        s
    }

    #[test]
    fn grid_size_and_coords_roundtrip() {
        let s = spec();
        assert_eq!(s.cells(), 2 * 3 * 2 * 2);
        for i in 0..s.cells() {
            let c = s.coords(i);
            let back = ((c.device * s.workloads.len() + c.workload) * s.engines.len() + c.engine)
                * s.replicates
                + c.replicate;
            assert_eq!(back, i);
        }
        // Device-major: the last cell is the last device.
        assert_eq!(s.coords(s.cells() - 1).device, 1);
        assert_eq!(
            s.coords(0),
            CellCoords {
                device: 0,
                workload: 0,
                engine: 0,
                replicate: 0
            }
        );
    }

    #[test]
    fn replicate_zero_uses_master_seed() {
        let s = spec();
        assert_eq!(s.cell_seed(0), 7);
        assert_ne!(s.cell_seed(1), 7);
        assert_ne!(s.cell_seed(1), s.cell_seed(2));
    }

    #[test]
    fn engine_point_matches_sim_config_constructors() {
        assert_eq!(EnginePoint::paced().sim_config("w"), SimConfig::paced("w"));
        assert_eq!(
            EnginePoint::saturation().sim_config("w"),
            SimConfig::saturation("w")
        );
    }
}
