//! `comet-lab` — a sharded, parallel experiment-campaign subsystem.
//!
//! The paper's Section IV evaluation is a device × workload grid run by
//! hand; this crate makes that grid a first-class, declarative object:
//!
//! * a [`CampaignSpec`] enumerates cells (device factory × workload ×
//!   engine point × replicate);
//! * [`run_campaign`] shards the cells across OS threads
//!   (`std::thread::scope`), each cell simulated on a private device built
//!   from its [`memsim::DeviceFactory`], with its trace instantiated from
//!   a seed derived deterministically from the campaign seed — so the
//!   resulting [`CampaignReport`] is identical for any thread count;
//! * [`CampaignReport`] exports real [JSON](CampaignReport::to_json) (with
//!   an exact [parse-back](CampaignReport::from_json)) and
//!   [CSV](CampaignReport::to_csv), through the crate's own deterministic
//!   [`Json`] emitter/parser (the offline `serde` shim derives nothing —
//!   see `shims/README.md`).
//!
//! The `comet-lab` binary runs a campaign from command-line axes — or
//! from a JSON spec file via `comet-lab run spec.json` (see
//! [`spec_from_json`]) — and writes `results/<name>.json` +
//! `results/<name>.csv`; the `fig9`, `fig_latency_vs_load` and ablation
//! binaries in `comet-bench` are thin wrappers over campaign specs.
//!
//! Engine points cover two engines: trace replay (`memsim`) and the
//! event-driven `comet-serve` service core ([`EnginePoint::serve`]), whose
//! open/closed-loop scenarios make arrival rate, tenant mix, channel-shard
//! count and write batching sweepable campaign axes (see
//! [`serve_load_axis`], [`serve_mix_axis`], [`serve_concurrency_axis`]).
//!
//! # Quick start
//!
//! ```
//! use comet_lab::{run_campaign, CampaignReport, CampaignSpec, WorkloadSource};
//! use memsim::{spec_like_suite, DramConfig, EpcmConfig};
//!
//! let spec = CampaignSpec::new(
//!     "quickstart",
//!     42,
//!     vec![
//!         Box::new(DramConfig::ddr3_1600_2d()),
//!         Box::new(EpcmConfig::epcm_mm()),
//!     ],
//!     spec_like_suite(300).into_iter().take(3).map(WorkloadSource::Profile).collect(),
//! );
//! let report = run_campaign(&spec, 4);
//! assert_eq!(report.cells.len(), 6);
//! let json = report.to_json();
//! assert_eq!(CampaignReport::from_json(&json).unwrap(), report);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod json;
mod registry;
mod report;
mod runner;
mod spec;
mod spec_json;

pub use json::{Json, JsonError};
pub use registry::{
    cell_model_axis, comet_variant, data_policy_axis, device_by_name, device_names,
    epcm_data_variant, fig9_device_axis, payload_entropy_axis, serve_concurrency_axis,
    serve_device_axis, serve_load_axis, serve_mix_axis, workload_names, workloads_by_name,
    FIG9_DEVICES,
};
pub use report::{CampaignReport, CellReport, DeviceSummary, ReportParseError, TenantSummary};
pub use runner::{default_threads, run_campaign};
pub use spec::{CampaignSpec, CellCoords, EnginePoint, WorkloadSource};
pub use spec_json::{spec_from_json, spec_to_json, SpecError};
