//! A minimal, deterministic JSON emitter and parser.
//!
//! The workspace builds offline against a `serde` shim whose derives expand
//! to nothing (see `shims/README.md`), so this module is what actually
//! moves campaign reports on and off disk. Two properties matter more than
//! generality:
//!
//! * **Determinism** — objects keep insertion order and floats print via
//!   Rust's shortest-round-trip formatting, so semantically equal reports
//!   serialize to byte-identical text (the campaign runner's
//!   thread-count-invariance guarantee rests on this);
//! * **Exact round trips** — integers are kept as literals (no `f64`
//!   detour), and shortest-round-trip floats re-parse to the same bits, so
//!   `parse(emit(v)) == v` including for `u64` seeds above 2^53.
//!
//! Not supported (not needed by reports): non-string keys, `NaN`/`Inf`
//! (rejected at emit time), and streaming input.

use std::fmt;

/// A JSON document node.
///
/// Numbers are stored as their literal text, which keeps `u64` exact and
/// floats at shortest-round-trip precision; use [`Json::integer`] /
/// [`Json::float`] to construct them and [`Json::as_u64`] / [`Json::as_f64`]
/// to read them back.
///
/// # Examples
///
/// ```
/// use comet_lab::Json;
///
/// let doc = Json::object([
///     ("name", Json::string("smoke")),
///     ("seed", Json::integer(u64::MAX)),
///     ("ratio", Json::float(0.1)),
/// ]);
/// let text = doc.to_string();
/// let back = Json::parse(&text)?;
/// assert_eq!(back, doc);
/// assert_eq!(back.get("seed").and_then(Json::as_u64), Some(u64::MAX));
/// # Ok::<(), comet_lab::JsonError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A numeric literal (kept as text for exactness).
    Number(String),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object in insertion order (duplicate keys are not merged).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An exact unsigned-integer node.
    pub fn integer(v: u64) -> Json {
        Json::Number(v.to_string())
    }

    /// A float node at shortest-round-trip precision.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values (JSON cannot represent them; reports
    /// never contain them).
    pub fn float(v: f64) -> Json {
        assert!(v.is_finite(), "JSON cannot represent {v}");
        // `{:?}` is Rust's shortest representation that round-trips to the
        // same f64; it is valid JSON for all finite values (e.g. `1.0`,
        // `6.5e-9`) except that it may omit a fraction for integral floats
        // (`1.0` does include it).
        Json::Number(format!("{v:?}"))
    }

    /// A string node.
    pub fn string(v: impl Into<String>) -> Json {
        Json::String(v.into())
    }

    /// An object node from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object node.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array node.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The text of a string node.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a number node as `u64` (exact; rejects floats).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// Parses a number node as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The value of a bool node.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => out.push_str(n),
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; arrays of containers
                // get one element per line.
                let scalar = items
                    .iter()
                    .all(|i| !matches!(i, Json::Array(_) | Json::Object(_)));
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if !scalar {
                        newline(out, indent + 1);
                    } else if i > 0 {
                        out.push(' ');
                    }
                    item.write(out, indent + 1);
                }
                if !scalar {
                    newline(out, indent);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, 0);
        f.write_str(&out)
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Reports only escape control characters; reject
                            // surrogate pairs rather than mis-decoding them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; `pos` always sits on a char
                    // boundary because advances are whole chars or ASCII.
                    let c = self.text[self.pos..].chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if text.is_empty() || text == "-" || text.parse::<f64>().is_err() {
            return Err(self.err("malformed number"));
        }
        Ok(Json::Number(text.to_string()))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let text = v.to_string();
        let back = Json::parse(&text).expect("own output parses");
        assert_eq!(&back, v, "text was: {text}");
        assert_eq!(back.to_string(), text, "re-emission is stable");
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::integer(0),
            Json::integer(u64::MAX),
            Json::float(0.1),
            Json::float(-6.5e-19),
            Json::float(1.0),
            Json::string(""),
            Json::string("tab\tnewline\nquote\"backslash\\"),
            Json::string("unicode: λ=1550nm"),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let doc = Json::object([
            ("empty_arr", Json::Array(vec![])),
            ("empty_obj", Json::Object(vec![])),
            (
                "cells",
                Json::Array(vec![
                    Json::object([("a", Json::integer(1))]),
                    Json::object([("a", Json::integer(2))]),
                ]),
            ),
            ("hist", Json::Array((0..10).map(Json::integer).collect())),
        ]);
        roundtrip(&doc);
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        // 2^53 + 1 is not representable as f64: literal storage keeps it.
        let seed = (1u64 << 53) + 1;
        let doc = Json::object([("seed", Json::integer(seed))]);
        let back = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(back.get("seed").unwrap().as_u64(), Some(seed));
    }

    #[test]
    fn float_bits_survive() {
        for bits in [
            0x3FB999999999999Au64,
            0x7FEFFFFFFFFFFFFF,
            0x0000000000000001,
        ] {
            let v = f64::from_bits(bits);
            let doc = Json::float(v);
            let back = Json::parse(&doc.to_string()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), bits);
        }
    }

    #[test]
    fn object_key_order_is_preserved() {
        let text = "{\"b\": 1, \"a\": 2}";
        let doc = Json::parse(text).unwrap();
        match &doc {
            Json::Object(pairs) => {
                assert_eq!(pairs[0].0, "b");
                assert_eq!(pairs[1].0, "a");
            }
            _ => panic!("object expected"),
        }
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "-",
            "1e",
            "{\"a\": 1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let doc = Json::parse(" \n\t{ \"a\" : [ 1 , 2 ] , \"b\" : null } \r\n").unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(doc.get("b"), Some(&Json::Null));
    }

    #[test]
    #[should_panic(expected = "cannot represent")]
    fn non_finite_floats_rejected_at_emit() {
        let _ = Json::float(f64::NAN);
    }
}
