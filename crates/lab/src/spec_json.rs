//! Campaign specifications on disk.
//!
//! [`spec_to_json`] / [`spec_from_json`] move a [`CampaignSpec`] through
//! the crate's own deterministic [`Json`] emitter/parser (the same one
//! reports use), closing the ROADMAP's "campaign specs loaded from JSON
//! files" item: `comet-lab run spec.json` runs a campaign somebody wrote,
//! versioned, or generated — including `comet-serve` service scenarios
//! with their full tenant mixes.
//!
//! Devices serialize by **registry name** (resolved back through
//! [`device_by_name`](crate::device_by_name)); workloads serialize as full
//! synthetic profiles. Fixed in-memory traces are deliberately not
//! serializable — a spec file describes how to *generate* an experiment,
//! not megabytes of trace data — and are rejected with
//! [`SpecError::Unsupported`].
//!
//! Round trips are exact: `spec_to_json(&spec_from_json(text)?)`
//! re-emits `text` byte-for-byte for any emitted spec (pinned by tests).

use crate::json::{Json, JsonError};
use crate::registry::{device_by_name, device_names};
use crate::spec::{CampaignSpec, EnginePoint, WorkloadSource};
use comet_data::PayloadSpec;
use comet_serve::{ArrivalProcess, BatchConfig, ServeSpec, TenantLoad, TenantSpec};
use comet_units::{ByteCount, Time};
use memsim::{AccessPattern, ReplayMode, Scheduler, WorkloadProfile};
use std::fmt;

/// A failure to serialize or reconstruct a campaign spec.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The text is not well-formed JSON.
    Json(JsonError),
    /// The JSON does not have the spec schema.
    Schema(String),
    /// A device name is not in the registry.
    UnknownDevice(String),
    /// The spec holds something that does not serialize (fixed traces).
    Unsupported(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "{e}"),
            SpecError::Schema(m) => write!(f, "spec schema error: {m}"),
            SpecError::UnknownDevice(d) => {
                write!(
                    f,
                    "unknown device '{d}'; registered devices: {}",
                    device_names().join(", ")
                )
            }
            SpecError::Unsupported(m) => write!(f, "unsupported in spec files: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<JsonError> for SpecError {
    fn from(e: JsonError) -> Self {
        SpecError::Json(e)
    }
}

fn schema(m: impl Into<String>) -> SpecError {
    SpecError::Schema(m.into())
}

fn field<'j>(obj: &'j Json, key: &str) -> Result<&'j Json, SpecError> {
    obj.get(key)
        .ok_or_else(|| schema(format!("missing '{key}'")))
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, SpecError> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| schema(format!("'{key}' is not an integer")))
}

fn f64_field(obj: &Json, key: &str) -> Result<f64, SpecError> {
    field(obj, key)?
        .as_f64()
        .ok_or_else(|| schema(format!("'{key}' is not a number")))
}

fn str_field(obj: &Json, key: &str) -> Result<String, SpecError> {
    Ok(field(obj, key)?
        .as_str()
        .ok_or_else(|| schema(format!("'{key}' is not a string")))?
        .to_string())
}

// --- emission ---------------------------------------------------------------

fn pattern_to_json(p: AccessPattern) -> Json {
    match p {
        AccessPattern::Stream => Json::object([("kind", Json::string("stream"))]),
        AccessPattern::Strided { stride } => Json::object([
            ("kind", Json::string("strided")),
            ("stride", Json::integer(stride)),
        ]),
        AccessPattern::Random => Json::object([("kind", Json::string("random"))]),
        AccessPattern::Clustered { locality } => Json::object([
            ("kind", Json::string("clustered")),
            ("locality", Json::float(locality)),
        ]),
    }
}

fn profile_to_json(p: &WorkloadProfile) -> Json {
    Json::object([
        ("name", Json::string(&p.name)),
        ("read_fraction", Json::float(p.read_fraction)),
        ("footprint_bytes", Json::integer(p.footprint.value())),
        ("pattern", pattern_to_json(p.pattern)),
        ("interarrival_s", Json::float(p.interarrival.as_seconds())),
        ("requests", Json::integer(p.requests as u64)),
        ("line_bytes", Json::integer(p.line_bytes)),
    ])
}

fn scheduler_to_json(s: Scheduler) -> Json {
    match s {
        Scheduler::Fcfs => Json::object([("kind", Json::string("fcfs"))]),
        Scheduler::FrFcfs { window } => Json::object([
            ("kind", Json::string("frfcfs")),
            ("window", Json::integer(window as u64)),
        ]),
    }
}

fn process_to_json(p: ArrivalProcess) -> Json {
    match p {
        ArrivalProcess::Deterministic { rate_rps } => Json::object([
            ("kind", Json::string("deterministic")),
            ("rate_rps", Json::float(rate_rps)),
        ]),
        ArrivalProcess::Poisson { rate_rps } => Json::object([
            ("kind", Json::string("poisson")),
            ("rate_rps", Json::float(rate_rps)),
        ]),
        ArrivalProcess::Bursty { rate_rps, on, off } => Json::object([
            ("kind", Json::string("bursty")),
            ("rate_rps", Json::float(rate_rps)),
            ("on_s", Json::float(on.as_seconds())),
            ("off_s", Json::float(off.as_seconds())),
        ]),
    }
}

fn payload_to_json(p: PayloadSpec) -> Json {
    match p {
        PayloadSpec::Zero => Json::object([("kind", Json::string("zero"))]),
        PayloadSpec::Uniform => Json::object([("kind", Json::string("uniform"))]),
        PayloadSpec::ToggleWords => Json::object([("kind", Json::string("toggle"))]),
        PayloadSpec::SparseUpdate { flip_fraction } => Json::object([
            ("kind", Json::string("sparse")),
            ("flip_fraction", Json::float(flip_fraction)),
        ]),
        PayloadSpec::TransformerWeights { std } => {
            Json::object([("kind", Json::string("weights")), ("std", Json::float(std))])
        }
    }
}

fn tenant_to_json(t: &TenantSpec) -> Json {
    let load = match t.load {
        TenantLoad::Open(process) => Json::object([
            ("kind", Json::string("open")),
            ("process", process_to_json(process)),
        ]),
        TenantLoad::Closed { clients, think } => Json::object([
            ("kind", Json::string("closed")),
            ("clients", Json::integer(clients as u64)),
            ("think_s", Json::float(think.as_seconds())),
        ]),
    };
    Json::object([
        ("name", Json::string(&t.name)),
        ("requests", Json::integer(t.requests as u64)),
        (
            "profile",
            t.profile.as_ref().map_or(Json::Null, profile_to_json),
        ),
        ("payload", t.payload.map_or(Json::Null, payload_to_json)),
        ("load", load),
    ])
}

fn serve_to_json(s: &ServeSpec) -> Json {
    Json::object([
        ("shards", Json::integer(s.shards as u64)),
        ("scheduler", scheduler_to_json(s.scheduler)),
        (
            "batch",
            s.batch.map_or(Json::Null, |b| {
                Json::object([
                    ("window_s", Json::float(b.window.as_seconds())),
                    ("max_writes", Json::integer(b.max_writes as u64)),
                ])
            }),
        ),
        (
            "tenants",
            Json::Array(s.tenants.iter().map(tenant_to_json).collect()),
        ),
    ])
}

fn engine_to_json(e: &EnginePoint) -> Json {
    match &e.serve {
        Some(serve) => Json::object([
            ("label", Json::string(&e.label)),
            ("serve", serve_to_json(serve)),
        ]),
        None => Json::object([
            ("label", Json::string(&e.label)),
            ("scheduler", scheduler_to_json(e.scheduler)),
            (
                "replay",
                Json::string(match e.replay {
                    ReplayMode::Paced => "paced",
                    ReplayMode::Saturation => "saturation",
                }),
            ),
        ]),
    }
}

/// Serializes a campaign spec as deterministic, pretty-printed JSON.
///
/// # Errors
///
/// Returns [`SpecError::Unsupported`] if the spec holds fixed in-memory
/// traces (spec files describe generated experiments only).
pub fn spec_to_json(spec: &CampaignSpec) -> Result<String, SpecError> {
    let mut workloads = Vec::new();
    for w in &spec.workloads {
        match w {
            WorkloadSource::Profile(p) => workloads.push(profile_to_json(p)),
            WorkloadSource::Trace { name, .. } => {
                return Err(SpecError::Unsupported(format!(
                    "fixed trace workload '{name}'"
                )))
            }
        }
    }
    let doc = Json::object([
        ("campaign", Json::string(&spec.name)),
        ("seed", Json::integer(spec.seed)),
        ("replicates", Json::integer(spec.replicates as u64)),
        ("normalize_lines", Json::Bool(spec.normalize_lines)),
        (
            "devices",
            Json::Array(
                spec.devices
                    .iter()
                    .map(|d| Json::string(d.device_name()))
                    .collect(),
            ),
        ),
        ("workloads", Json::Array(workloads)),
        (
            "engines",
            Json::Array(spec.engines.iter().map(engine_to_json).collect()),
        ),
    ]);
    let mut text = doc.to_string();
    text.push('\n');
    Ok(text)
}

// --- parsing ----------------------------------------------------------------
//
// Spec files are untrusted input, so every value with an invariant is
// validated here with a SpecError instead of being fed raw into the
// serve/memsim constructors (whose asserts would panic mid-campaign, or —
// for enum variants built directly — silently produce garbage like
// infinite arrival times from a zero rate).

fn positive_f64(obj: &Json, key: &str) -> Result<f64, SpecError> {
    let v = f64_field(obj, key)?;
    if v > 0.0 && v.is_finite() {
        Ok(v)
    } else {
        Err(schema(format!(
            "'{key}' must be positive and finite, got {v}"
        )))
    }
}

fn non_negative_f64(obj: &Json, key: &str) -> Result<f64, SpecError> {
    let v = f64_field(obj, key)?;
    if v >= 0.0 && v.is_finite() {
        Ok(v)
    } else {
        Err(schema(format!(
            "'{key}' must be non-negative and finite, got {v}"
        )))
    }
}

fn pattern_from_json(j: &Json) -> Result<AccessPattern, SpecError> {
    match str_field(j, "kind")?.as_str() {
        "stream" => Ok(AccessPattern::Stream),
        "strided" => Ok(AccessPattern::Strided {
            stride: u64_field(j, "stride")?,
        }),
        "random" => Ok(AccessPattern::Random),
        "clustered" => Ok(AccessPattern::Clustered {
            locality: f64_field(j, "locality")?,
        }),
        other => Err(schema(format!("unknown pattern kind '{other}'"))),
    }
}

fn profile_from_json(j: &Json) -> Result<WorkloadProfile, SpecError> {
    let read_fraction = f64_field(j, "read_fraction")?;
    if !(0.0..=1.0).contains(&read_fraction) {
        return Err(schema(format!(
            "'read_fraction' must be in [0, 1], got {read_fraction}"
        )));
    }
    let line_bytes = u64_field(j, "line_bytes")?;
    if line_bytes == 0 {
        return Err(schema("'line_bytes' must be at least 1"));
    }
    let footprint = u64_field(j, "footprint_bytes")?;
    if footprint < line_bytes {
        return Err(schema(format!(
            "'footprint_bytes' ({footprint}) smaller than one line ({line_bytes})"
        )));
    }
    Ok(WorkloadProfile {
        name: str_field(j, "name")?,
        read_fraction,
        footprint: ByteCount::new(footprint),
        pattern: pattern_from_json(field(j, "pattern")?)?,
        interarrival: Time::from_seconds(non_negative_f64(j, "interarrival_s")?),
        requests: u64_field(j, "requests")? as usize,
        line_bytes,
    })
}

fn scheduler_from_json(j: &Json) -> Result<Scheduler, SpecError> {
    match str_field(j, "kind")?.as_str() {
        "fcfs" => Ok(Scheduler::Fcfs),
        "frfcfs" => Ok(Scheduler::FrFcfs {
            window: u64_field(j, "window")? as usize,
        }),
        other => Err(schema(format!("unknown scheduler kind '{other}'"))),
    }
}

fn process_from_json(j: &Json) -> Result<ArrivalProcess, SpecError> {
    // The validating constructors (not raw variants) keep the crate's
    // documented invariants — positive finite rates, positive burst
    // windows — out of reach of malformed files.
    match str_field(j, "kind")?.as_str() {
        "deterministic" => Ok(ArrivalProcess::deterministic(positive_f64(j, "rate_rps")?)),
        "poisson" => Ok(ArrivalProcess::poisson(positive_f64(j, "rate_rps")?)),
        "bursty" => Ok(ArrivalProcess::bursty(
            positive_f64(j, "rate_rps")?,
            Time::from_seconds(positive_f64(j, "on_s")?),
            Time::from_seconds(non_negative_f64(j, "off_s")?),
        )),
        other => Err(schema(format!("unknown arrival process kind '{other}'"))),
    }
}

fn payload_from_json(j: &Json) -> Result<PayloadSpec, SpecError> {
    match str_field(j, "kind")?.as_str() {
        "zero" => Ok(PayloadSpec::Zero),
        "uniform" => Ok(PayloadSpec::Uniform),
        "toggle" => Ok(PayloadSpec::ToggleWords),
        "sparse" => {
            let flip_fraction = positive_f64(j, "flip_fraction")?;
            if flip_fraction > 1.0 {
                return Err(schema(format!(
                    "'flip_fraction' must be in (0, 1], got {flip_fraction}"
                )));
            }
            Ok(PayloadSpec::SparseUpdate { flip_fraction })
        }
        "weights" => Ok(PayloadSpec::TransformerWeights {
            std: positive_f64(j, "std")?,
        }),
        other => Err(schema(format!(
            "unknown payload kind '{other}' (zero|uniform|toggle|sparse|weights)"
        ))),
    }
}

fn tenant_from_json(j: &Json) -> Result<TenantSpec, SpecError> {
    let load_json = field(j, "load")?;
    let load = match str_field(load_json, "kind")?.as_str() {
        "open" => TenantLoad::Open(process_from_json(field(load_json, "process")?)?),
        "closed" => {
            let clients = u64_field(load_json, "clients")? as usize;
            if clients == 0 {
                return Err(schema("'clients' must be at least 1"));
            }
            TenantLoad::Closed {
                clients,
                think: Time::from_seconds(non_negative_f64(load_json, "think_s")?),
            }
        }
        other => Err(schema(format!("unknown tenant load kind '{other}'")))?,
    };
    let profile = match field(j, "profile")? {
        Json::Null => None,
        p => Some(profile_from_json(p)?),
    };
    // Absent and null both mean "no payload", so pre-payload spec files
    // keep parsing.
    let payload = match j.get("payload") {
        None | Some(Json::Null) => None,
        Some(p) => Some(payload_from_json(p)?),
    };
    Ok(TenantSpec {
        name: str_field(j, "name")?,
        profile,
        load,
        requests: u64_field(j, "requests")? as usize,
        payload,
    })
}

fn serve_from_json(j: &Json) -> Result<ServeSpec, SpecError> {
    let batch = match field(j, "batch")? {
        Json::Null => None,
        b => {
            let max_writes = u64_field(b, "max_writes")? as usize;
            if max_writes == 0 {
                return Err(schema("'max_writes' must be at least 1"));
            }
            Some(BatchConfig::new(
                Time::from_seconds(positive_f64(b, "window_s")?),
                max_writes,
            ))
        }
    };
    let tenants = field(j, "tenants")?
        .as_array()
        .ok_or_else(|| schema("'tenants' is not an array"))?
        .iter()
        .map(tenant_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    if tenants.is_empty() {
        return Err(schema("a serve engine point needs at least one tenant"));
    }
    Ok(ServeSpec {
        tenants,
        scheduler: scheduler_from_json(field(j, "scheduler")?)?,
        shards: u64_field(j, "shards")? as usize,
        batch,
    })
}

fn engine_from_json(j: &Json) -> Result<EnginePoint, SpecError> {
    let label = str_field(j, "label")?;
    if let Some(serve) = j.get("serve") {
        return Ok(EnginePoint::serve(label, serve_from_json(serve)?));
    }
    let replay = match str_field(j, "replay")?.as_str() {
        "paced" => ReplayMode::Paced,
        "saturation" => ReplayMode::Saturation,
        other => return Err(schema(format!("unknown replay mode '{other}'"))),
    };
    Ok(EnginePoint::new(
        label,
        scheduler_from_json(field(j, "scheduler")?)?,
        replay,
    ))
}

/// Reconstructs a campaign spec from its JSON serialization, resolving
/// device names through the registry.
///
/// # Errors
///
/// Returns [`SpecError`] on malformed JSON, schema mismatch, or a device
/// name the registry does not know.
///
/// # Examples
///
/// ```
/// use comet_lab::{run_campaign, spec_from_json};
///
/// let text = r#"{
///   "campaign": "doc", "seed": 7, "replicates": 1, "normalize_lines": true,
///   "devices": ["2D_DDR3"],
///   "workloads": [{
///     "name": "probe", "read_fraction": 0.8, "footprint_bytes": 8388608,
///     "pattern": {"kind": "random"}, "interarrival_s": 2.0e-9,
///     "requests": 64, "line_bytes": 64
///   }],
///   "engines": [{"label": "frfcfs8-paced",
///                "scheduler": {"kind": "frfcfs", "window": 8},
///                "replay": "paced"}]
/// }"#;
/// let spec = spec_from_json(text)?;
/// assert_eq!(run_campaign(&spec, 1).cells.len(), 1);
/// # Ok::<(), comet_lab::SpecError>(())
/// ```
pub fn spec_from_json(text: &str) -> Result<CampaignSpec, SpecError> {
    let doc = Json::parse(text)?;
    let mut devices = Vec::new();
    for d in field(&doc, "devices")?
        .as_array()
        .ok_or_else(|| schema("'devices' is not an array"))?
    {
        let name = d
            .as_str()
            .ok_or_else(|| schema("device entry is not a string"))?;
        devices.push(device_by_name(name).ok_or_else(|| SpecError::UnknownDevice(name.into()))?);
    }
    let workloads = field(&doc, "workloads")?
        .as_array()
        .ok_or_else(|| schema("'workloads' is not an array"))?
        .iter()
        .map(|w| profile_from_json(w).map(WorkloadSource::Profile))
        .collect::<Result<Vec<_>, _>>()?;
    let engines = field(&doc, "engines")?
        .as_array()
        .ok_or_else(|| schema("'engines' is not an array"))?
        .iter()
        .map(engine_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    if devices.is_empty() || workloads.is_empty() || engines.is_empty() {
        return Err(schema("devices, workloads and engines must be non-empty"));
    }
    Ok(CampaignSpec {
        name: str_field(&doc, "campaign")?,
        seed: u64_field(&doc, "seed")?,
        replicates: u64_field(&doc, "replicates")? as usize,
        normalize_lines: field(&doc, "normalize_lines")?
            .as_bool()
            .ok_or_else(|| schema("'normalize_lines' is not a bool"))?,
        devices,
        workloads,
        engines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{
        payload_entropy_axis, serve_concurrency_axis, serve_load_axis, serve_mix_axis,
    };
    use crate::runner::run_campaign;

    fn sample_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::new(
            "spec-json",
            (1 << 60) + 9,
            vec![
                device_by_name("2D_DDR3").unwrap(),
                device_by_name("COMET").unwrap(),
            ],
            memsim::spec_like_suite(120)
                .into_iter()
                .take(2)
                .map(WorkloadSource::Profile)
                .collect(),
        );
        spec.replicates = 2;
        spec.engines = vec![EnginePoint::paced()];
        spec.engines.extend(serve_load_axis(&[2.0e7], 100));
        spec.engines
            .extend(serve_mix_axis(ArrivalProcess::poisson(1.5e7), 80));
        spec.engines
            .extend(serve_concurrency_axis(&[4], Time::from_nanos(30.0), 60));
        spec.engines[1].serve.as_mut().unwrap().batch =
            Some(BatchConfig::new(Time::from_seconds(1.5e-7), 4));
        // Every payload kind, so the round trip covers the data plane.
        spec.engines
            .extend(payload_entropy_axis(ArrivalProcess::poisson(2.5e7), 40));
        spec
    }

    #[test]
    fn roundtrip_is_byte_exact() {
        let spec = sample_spec();
        let text = spec_to_json(&spec).expect("serializes");
        let back = spec_from_json(&text).expect("parses");
        assert_eq!(spec_to_json(&back).unwrap(), text, "re-emission stable");
        // Semantically identical: both run to the same report.
        assert_eq!(run_campaign(&spec, 2), run_campaign(&back, 2));
    }

    #[test]
    fn fixed_traces_are_rejected() {
        let mut spec = sample_spec();
        spec.workloads
            .push(WorkloadSource::trace("raw", Vec::new()));
        assert!(matches!(
            spec_to_json(&spec),
            Err(SpecError::Unsupported(_))
        ));
    }

    #[test]
    fn invalid_values_are_schema_errors_not_panics() {
        let text = spec_to_json(&sample_spec()).unwrap();
        for (from, to) in [
            // Zero rate would make every arrival land at t = +inf.
            ("\"rate_rps\": 20000000.0", "\"rate_rps\": 0.0"),
            // Negative rate would run arrivals backwards.
            ("\"rate_rps\": 20000000.0", "\"rate_rps\": -1.0"),
            // Zero batch window/writes trip constructor asserts.
            ("\"max_writes\": 4", "\"max_writes\": 0"),
            ("\"window_s\": 1.5e-7", "\"window_s\": 0.0"),
            // Out-of-range profile knobs trip generation asserts.
            ("\"read_fraction\": 0.85", "\"read_fraction\": 1.5"),
            ("\"line_bytes\": 64", "\"line_bytes\": 0"),
            // Payload knobs: a zero or >1 flip fraction is meaningless.
            ("\"flip_fraction\": 0.05", "\"flip_fraction\": 0.0"),
            ("\"flip_fraction\": 0.05", "\"flip_fraction\": 1.5"),
            ("\"kind\": \"weights\"", "\"kind\": \"entropy9000\""),
        ] {
            let bad = text.replace(from, to);
            assert_ne!(bad, text, "substitution '{from}' must apply");
            assert!(
                matches!(spec_from_json(&bad), Err(SpecError::Schema(_))),
                "'{to}' must be rejected as a schema error"
            );
        }
        // Zero closed-loop clients would deadlock the service.
        let bad = text.replace("\"clients\": 4", "\"clients\": 0");
        assert_ne!(bad, text);
        assert!(matches!(spec_from_json(&bad), Err(SpecError::Schema(_))));
    }

    #[test]
    fn unknown_devices_and_bad_schema_are_reported() {
        let text = spec_to_json(&sample_spec()).unwrap();
        let renamed = text.replace("\"COMET\"", "\"NVRAM-9000\"");
        assert!(matches!(
            spec_from_json(&renamed),
            Err(SpecError::UnknownDevice(_))
        ));
        assert!(matches!(spec_from_json("{}"), Err(SpecError::Schema(_))));
        assert!(matches!(spec_from_json("nope"), Err(SpecError::Json(_))));
        // Empty axes are invalid.
        let empty = text.replace("\"devices\": [\"2D_DDR3\", \"COMET\"]", "\"devices\": []");
        assert!(matches!(spec_from_json(&empty), Err(SpecError::Schema(_))));
    }
}
