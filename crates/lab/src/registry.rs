//! Named device and workload registries for declarative campaign assembly.
//!
//! The CLI (and any spec written by name rather than by constructor) looks
//! devices and workloads up here. Device names match the report names the
//! paper's Fig. 9 uses; workload names are the SPEC-like suite of
//! `memsim::spec_like_suite` plus `"all"`.
//!
//! The cross-layer cell-model mode is a first-class axis: `COMET-paper`
//! and `COMET-derived` are COMET-4b with the transcribed-constants and
//! physics-derived cell models respectively, so a single grid (see
//! [`cell_model_axis`]) sweeps derived-vs-paper like any other device
//! comparison:
//!
//! ```text
//! comet-lab --devices COMET-paper,COMET-derived --workloads all
//! ```

use crate::spec::{EnginePoint, WorkloadSource};
use comet::CometConfig;
use comet_data::{DataPolicy, DataWriteModel, PayloadSpec};
use comet_serve::{ArrivalProcess, ServeSpec, TenantSpec};
use comet_units::Time;
use cosmos::CosmosConfig;
use dota::TransformerWorkload;
use memsim::{spec_like_suite, DeviceFactory, DramConfig, EpcmConfig, EpcmDevice, FnFactory};
use photonic::CellModelMode;

/// The seven memory systems of the paper's Fig. 9 evaluation, in its
/// canonical order.
pub const FIG9_DEVICES: [&str; 7] = [
    "2D_DDR3", "3D_DDR3", "2D_DDR4", "3D_DDR4", "EPCM-MM", "COSMOS", "COMET",
];

/// All registered device names: the Fig. 9 seven, the COMET bit-density
/// variants, the cell-model modes (paper-transcribed vs physics-derived
/// cell optics), and the data-plane write policies (EPCM-MM with
/// content-priced writes).
pub fn device_names() -> Vec<&'static str> {
    let mut names = FIG9_DEVICES.to_vec();
    names.extend([
        "COMET-1b",
        "COMET-2b",
        "COMET-4b",
        "COMET-paper",
        "COMET-derived",
        "EPCM-oblivious",
        "EPCM-DCW",
        "EPCM-DCW-FNW",
    ]);
    names
}

/// Builds the factory registered under `name`, or `None` for unknown names.
pub fn device_by_name(name: &str) -> Option<Box<dyn DeviceFactory>> {
    Some(match name {
        "2D_DDR3" => Box::new(DramConfig::ddr3_1600_2d()),
        "3D_DDR3" => Box::new(DramConfig::ddr3_3d()),
        "2D_DDR4" => Box::new(DramConfig::ddr4_2400_2d()),
        "3D_DDR4" => Box::new(DramConfig::ddr4_3d()),
        "EPCM-MM" => Box::new(EpcmConfig::epcm_mm()),
        "COSMOS" => Box::new(CosmosConfig::corrected()),
        "COMET" => Box::new(CometConfig::comet_4b()),
        // Bit-density variants report under their variant name.
        "COMET-1b" => comet_variant("COMET-1b", CometConfig::comet_1b()),
        "COMET-2b" => comet_variant("COMET-2b", CometConfig::comet_2b()),
        "COMET-4b" => comet_variant("COMET-4b", CometConfig::comet_4b()),
        // Cell-model modes: the same COMET-4b architecture with its level
        // grid taken from the paper constants vs derived from the physics
        // layer, so campaigns sweep derived-vs-paper in one grid.
        "COMET-paper" => comet_variant(
            "COMET-paper",
            CometConfig::comet_4b().with_cell_model(CellModelMode::Paper),
        ),
        "COMET-derived" => comet_variant(
            "COMET-derived",
            CometConfig::comet_4b().with_cell_model(CellModelMode::Derived),
        ),
        // Data-plane policy variants: the EPCM-MM array with per-cell
        // transition pricing from the physics layer's GST programming
        // table, under the three write policies. `EPCM-MM` itself stays
        // the flat-cost (legacy) baseline.
        "EPCM-oblivious" => epcm_data_variant("EPCM-oblivious", DataPolicy::Oblivious),
        "EPCM-DCW" => epcm_data_variant("EPCM-DCW", DataPolicy::Dcw),
        "EPCM-DCW-FNW" => epcm_data_variant("EPCM-DCW-FNW", DataPolicy::DcwFnw),
        _ => return None,
    })
}

/// An EPCM-MM factory whose devices price writes content-aware under
/// `policy` (4-bit GST transition costs; see `comet_data`).
pub fn epcm_data_variant(label: &str, policy: DataPolicy) -> Box<dyn DeviceFactory> {
    let label = label.to_string();
    Box::new(FnFactory::new(label.clone(), move || {
        let mut cfg = EpcmConfig::epcm_mm();
        cfg.name = label.clone();
        Box::new(EpcmDevice::with_pricer(
            cfg,
            Box::new(DataWriteModel::gst(4, policy)),
        ))
    }))
}

/// The data-policy device axis: content-oblivious, DCW, and DCW +
/// Flip-N-Write pricing over the same EPCM-MM array — the write-energy
/// ordering every `fig_write_energy_vs_entropy` point must respect.
pub fn data_policy_axis() -> Vec<Box<dyn DeviceFactory>> {
    ["EPCM-oblivious", "EPCM-DCW", "EPCM-DCW-FNW"]
        .iter()
        .map(|n| device_by_name(n).expect("registry covers its own names"))
        .collect()
}

/// The payload-entropy engine axis: one open-loop serve point per payload
/// source of [`PayloadSpec::entropy_sweep`] (all-zero → sparse updates →
/// transformer weights → complement toggling → uniform), labels
/// `payload-<source>` in sweep order. Crossed with [`data_policy_axis`],
/// one campaign grid measures write energy per policy × entropy ×
/// workload.
pub fn payload_entropy_axis(process: ArrivalProcess, requests: usize) -> Vec<EnginePoint> {
    PayloadSpec::entropy_sweep()
        .into_iter()
        .map(|payload| {
            EnginePoint::serve(
                format!("payload-{}", payload.label()),
                ServeSpec {
                    tenants: vec![
                        TenantSpec::open("data", process, requests).with_payload(payload)
                    ],
                    scheduler: memsim::Scheduler::default(),
                    shards: 1,
                    batch: None,
                },
            )
        })
        .collect()
}

/// The derived-vs-paper device axis: COMET-4b under both cell-model
/// providers, for campaigns that measure how far transcribed constants
/// drift from the physics layer.
pub fn cell_model_axis() -> Vec<Box<dyn DeviceFactory>> {
    ["COMET-paper", "COMET-derived"]
        .iter()
        .map(|n| device_by_name(n).expect("registry covers its own names"))
        .collect()
}

/// A COMET config as a factory reporting under an explicit variant label.
pub fn comet_variant(label: &str, config: CometConfig) -> Box<dyn DeviceFactory> {
    Box::new(FnFactory::new(label, move || {
        Box::new(comet::CometDevice::new(config.clone()))
    }))
}

/// The Fig. 9 device axis, in paper order.
pub fn fig9_device_axis() -> Vec<Box<dyn DeviceFactory>> {
    FIG9_DEVICES
        .iter()
        .map(|n| device_by_name(n).expect("registry covers its own names"))
        .collect()
}

/// The latency-vs-load device axis: COMET against the strongest 2D DRAM
/// and the COSMOS photonic baseline (the Fig. 9/10 protagonists whose
/// headline wins are throughput-and-queueing claims).
pub fn serve_device_axis() -> Vec<Box<dyn DeviceFactory>> {
    ["2D_DDR4", "COSMOS", "COMET"]
        .iter()
        .map(|n| device_by_name(n).expect("registry covers its own names"))
        .collect()
}

/// The open-loop load-level engine axis: one serve point per mean arrival
/// rate, each issuing `requests` Poisson-arriving requests shaped by the
/// cell's workload profile. Poisson (not evenly spaced) arrivals matter
/// here: a deterministic grid beats against DRAM's refresh period, so
/// light loads alias into refresh blackouts that heavier loads dodge and
/// the tail-vs-load curve wiggles; memoryless arrivals sample every
/// blackout phase uniformly at every load, keeping p99 monotone in
/// offered load. Labels are `serve-open-<rate>` in grid order, so
/// sweeping this axis against [`serve_device_axis`] produces the
/// latency-vs-load hockey stick.
pub fn serve_load_axis(rates_rps: &[f64], requests: usize) -> Vec<EnginePoint> {
    rates_rps
        .iter()
        .map(|&rate| {
            EnginePoint::serve(
                format!("serve-open-{rate:.3e}"),
                ServeSpec::open_loop(ArrivalProcess::poisson(rate), requests),
            )
        })
        .collect()
}

/// The closed-loop concurrency engine axis: one serve point per client
/// count at a fixed think time (labels `serve-closed-<clients>`).
pub fn serve_concurrency_axis(clients: &[usize], think: Time, requests: usize) -> Vec<EnginePoint> {
    clients
        .iter()
        .map(|&n| {
            EnginePoint::serve(
                format!("serve-closed-{n}"),
                ServeSpec::closed_loop(n, think, requests),
            )
        })
        .collect()
}

/// The tenant-mix engine axis: the cell's workload alone
/// (`serve-solo`), and the same stream sharing the memory with a DOTA
/// DeiT-Base inference tenant (`serve-dota-mix`) — the multi-tenant QoS
/// scenario where a latency-sensitive stream contends with an
/// accelerator's weight stream. Both tenants offer `process` arrivals and
/// issue `requests` requests each.
pub fn serve_mix_axis(process: ArrivalProcess, requests: usize) -> Vec<EnginePoint> {
    let solo = EnginePoint::serve("serve-solo", ServeSpec::open_loop(process, requests));
    let dota_tenant = TenantSpec::open("dota", process, requests)
        .with_profile(TransformerWorkload::deit_base().profile(requests));
    let mix = EnginePoint::serve(
        "serve-dota-mix",
        ServeSpec::open_loop(process, requests).with_tenant(dota_tenant),
    );
    vec![solo, mix]
}

/// Resolves a workload name against the SPEC-like suite sized to
/// `requests`. `"all"` yields the whole suite.
pub fn workloads_by_name(name: &str, requests: usize) -> Vec<WorkloadSource> {
    let suite = spec_like_suite(requests);
    if name == "all" {
        return suite.into_iter().map(WorkloadSource::Profile).collect();
    }
    suite
        .into_iter()
        .filter(|p| p.name == name)
        .map(WorkloadSource::Profile)
        .collect()
}

/// The names of the SPEC-like workload suite.
pub fn workload_names() -> Vec<String> {
    spec_like_suite(1).into_iter().map(|p| p.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_builds_and_labels_consistently() {
        for name in device_names() {
            let f = device_by_name(name).expect(name);
            assert_eq!(f.device_name(), name, "factory label");
            let dev = f.build();
            assert!(dev.topology().line_bytes > 0, "{name} builds");
            // Factory topology shortcuts must agree with built devices.
            assert_eq!(f.device_topology(), dev.topology(), "{name} topology");
        }
        assert!(device_by_name("NVRAM-9000").is_none());
    }

    #[test]
    fn fig9_axis_is_the_paper_order() {
        let axis = fig9_device_axis();
        let names: Vec<String> = axis.iter().map(|f| f.device_name()).collect();
        assert_eq!(names, FIG9_DEVICES);
    }

    #[test]
    fn serve_axes_are_labelled_and_sized() {
        let devices = serve_device_axis();
        let names: Vec<String> = devices.iter().map(|f| f.device_name()).collect();
        assert_eq!(names, ["2D_DDR4", "COSMOS", "COMET"]);

        let loads = serve_load_axis(&[1.0e7, 1.0e8], 500);
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0].label, "serve-open-1.000e7");
        assert!(loads.iter().all(|e| e.serve.is_some()));

        let closed = serve_concurrency_axis(&[1, 8], Time::from_nanos(10.0), 300);
        assert_eq!(closed[1].label, "serve-closed-8");

        let mixes = serve_mix_axis(ArrivalProcess::poisson(1.0e8), 200);
        assert_eq!(mixes.len(), 2);
        let mix_spec = mixes[1].serve.as_ref().unwrap();
        assert_eq!(mix_spec.tenants.len(), 2);
        assert_eq!(mix_spec.tenants[1].name, "dota");
        assert!(mix_spec.tenants[1].profile.is_some());
    }

    #[test]
    fn data_axes_are_labelled_and_ordered() {
        let policies = data_policy_axis();
        let names: Vec<String> = policies.iter().map(|f| f.device_name()).collect();
        assert_eq!(names, ["EPCM-oblivious", "EPCM-DCW", "EPCM-DCW-FNW"]);
        // Policy variants keep the EPCM-MM shape (same topology, so the
        // same traffic hits every policy).
        for f in &policies {
            assert_eq!(
                f.device_topology(),
                EpcmConfig::epcm_mm().topology,
                "{}",
                f.device_name()
            );
        }

        let entropies = payload_entropy_axis(ArrivalProcess::poisson(1.0e7), 100);
        assert_eq!(entropies.len(), 5);
        assert_eq!(entropies[0].label, "payload-zero");
        assert_eq!(entropies[4].label, "payload-uniform");
        for point in &entropies {
            let serve = point.serve.as_ref().expect("entropy axis is serve");
            assert_eq!(serve.tenants.len(), 1);
            assert!(serve.tenants[0].payload.is_some(), "{}", point.label);
        }
    }

    #[test]
    fn workload_lookup() {
        assert_eq!(workloads_by_name("all", 10).len(), 8);
        let one = workloads_by_name("mcf-like", 10);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].name(), "mcf-like");
        assert!(workloads_by_name("spec2077-like", 10).is_empty());
        assert_eq!(workload_names().len(), 8);
    }
}
