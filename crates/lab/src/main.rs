//! The `comet-lab` CLI: run an experiment campaign and export results.
//!
//! ```text
//! comet-lab [--devices A,B,..] [--workloads all|name,..] [--requests N]
//!           [--seed S] [--replicates R] [--engine paced|saturation|both]
//!           [--threads T] [--name NAME] [--out DIR] [--list]
//! comet-lab run SPEC.json [--threads T] [--out DIR] [--name NAME]
//!           [--shards S]
//! ```
//!
//! The `run` form loads a full campaign spec — including `comet-serve`
//! service scenarios — from a JSON file (the format `spec_to_json`
//! emits). `--shards` overrides the channel-shard count of every serve
//! engine point; like `--threads` it is a simulation-infrastructure knob,
//! so the report is byte-identical for any value (CI asserts this).
//!
//! Both forms write `DIR/NAME.json` and `DIR/NAME.csv`, then re-parse the
//! JSON and verify it reconstructs the in-memory report exactly (so a
//! zero exit code certifies the export round-trips).

use comet_lab::{
    default_threads, device_by_name, device_names, run_campaign, spec_from_json, workload_names,
    workloads_by_name, CampaignReport, CampaignSpec, EnginePoint, WorkloadSource,
};
use memsim::DeviceFactory;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    devices: Vec<String>,
    workloads: Vec<String>,
    requests: usize,
    seed: u64,
    replicates: usize,
    engine: String,
    threads: usize,
    name: String,
    out: String,
    list: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        devices: vec!["2D_DDR3".into(), "EPCM-MM".into(), "COMET".into()],
        workloads: vec!["all".into()],
        requests: 2000,
        seed: 42,
        replicates: 1,
        engine: "paced".into(),
        threads: default_threads(),
        name: "campaign".into(),
        out: "results".into(),
        list: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a {what}"))
        };
        match flag.as_str() {
            "--devices" => {
                args.devices = value("comma list")?.split(',').map(String::from).collect()
            }
            "--workloads" => {
                args.workloads = value("comma list")?.split(',').map(String::from).collect()
            }
            "--requests" => {
                args.requests = value("count")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--seed" => args.seed = value("seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--replicates" => {
                args.replicates = value("count")?
                    .parse()
                    .map_err(|e| format!("--replicates: {e}"))?
            }
            "--engine" => args.engine = value("mode")?,
            "--threads" => {
                args.threads = value("count")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--name" => args.name = value("name")?,
            "--out" => args.out = value("dir")?,
            "--list" => args.list = true,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

const USAGE: &str =
    "usage: comet-lab [--devices A,B,..] [--workloads all|name,..] [--requests N]\n\
                 [--seed S] [--replicates R] [--engine paced|saturation|both]\n\
                 [--threads T] [--name NAME] [--out DIR] [--list]\n\
       comet-lab run SPEC.json [--threads T] [--out DIR] [--name NAME] [--shards S]\n\
\n\
  --list      print every registered device and workload name\n\
  --shards S  (run form) override the channel-shard count of every serve\n\
              engine point; like --threads it is simulation infrastructure,\n\
              so the report is byte-identical for any value\n\
\n\
  Data-plane axes: devices EPCM-oblivious | EPCM-DCW | EPCM-DCW-FNW sweep\n\
  the content-aware write policies (EPCM-MM stays the flat-cost baseline);\n\
  spec-file tenants take a \"payload\" source (zero | sparse | weights |\n\
  toggle | uniform) to sweep payload entropy. Outputs: NAME.json, NAME.csv\n\
  and NAME.tenants.csv (per-tenant serve results).";

/// Arguments of the `run SPEC.json` form.
struct RunArgs {
    spec_path: String,
    threads: usize,
    out: String,
    name: Option<String>,
    shards: Option<usize>,
}

fn parse_run_args(argv: &[String]) -> Result<RunArgs, String> {
    let mut it = argv.iter();
    let spec_path = it
        .next()
        .cloned()
        .ok_or_else(|| "run needs a SPEC.json path".to_string())?;
    let mut args = RunArgs {
        spec_path,
        threads: default_threads(),
        out: "results".into(),
        name: None,
        shards: None,
    };
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a {what}"))
        };
        match flag.as_str() {
            "--threads" => {
                args.threads = value("count")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--out" => args.out = value("dir")?,
            "--name" => args.name = Some(value("name")?),
            "--shards" => {
                args.shards = Some(
                    value("count")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?,
                )
            }
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn run_from_spec(argv: &[String]) -> ExitCode {
    let args = match parse_run_args(argv) {
        Ok(a) => a,
        Err(e) if e == "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("comet-lab: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&args.spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("comet-lab: cannot read {}: {e}", args.spec_path);
            return ExitCode::FAILURE;
        }
    };
    let mut spec = match spec_from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("comet-lab: {}: {e}", args.spec_path);
            return ExitCode::FAILURE;
        }
    };
    if let Some(name) = args.name {
        spec.name = name;
    }
    if let Some(shards) = args.shards {
        for engine in &mut spec.engines {
            if let Some(serve) = &mut engine.serve {
                serve.shards = shards;
            }
        }
    }
    execute(spec, args.threads, &args.out)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("run") {
        return run_from_spec(&argv[1..]);
    }
    let args = match parse_args(&argv) {
        Ok(a) => a,
        // Requested help goes to stdout and exits 0; errors go to stderr
        // and exit 2.
        Err(e) if e == "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("comet-lab: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.list {
        println!("devices:");
        for d in device_names() {
            println!("  {d}");
        }
        println!("workloads (plus 'all'):");
        for w in workload_names() {
            println!("  {w}");
        }
        return ExitCode::SUCCESS;
    }

    let mut devices: Vec<Box<dyn DeviceFactory>> = Vec::new();
    for name in &args.devices {
        match device_by_name(name) {
            Some(f) => devices.push(f),
            None => {
                eprintln!(
                    "comet-lab: unknown device '{name}'; registered: {}",
                    device_names().join(", ")
                );
                return ExitCode::from(2);
            }
        }
    }

    let mut workloads: Vec<WorkloadSource> = Vec::new();
    for name in &args.workloads {
        let mut found = workloads_by_name(name, args.requests);
        if found.is_empty() {
            eprintln!(
                "comet-lab: unknown workload '{name}'; registered: all, {}",
                workload_names().join(", ")
            );
            return ExitCode::from(2);
        }
        workloads.append(&mut found);
    }

    let engines = match args.engine.as_str() {
        "paced" => vec![EnginePoint::paced()],
        "saturation" => vec![EnginePoint::saturation()],
        "both" => vec![EnginePoint::paced(), EnginePoint::saturation()],
        other => {
            eprintln!("comet-lab: unknown engine '{other}'; registered: paced, saturation, both");
            return ExitCode::from(2);
        }
    };

    let mut spec = CampaignSpec::new(&args.name, args.seed, devices, workloads);
    spec.replicates = args.replicates.max(1);
    spec.engines = engines;
    execute(spec, args.threads, &args.out)
}

/// Runs a fully assembled spec and exports/validates its results.
fn execute(spec: CampaignSpec, threads: usize, out: &str) -> ExitCode {
    let cells = spec.cells();
    println!(
        "# campaign '{}': {} cells ({} devices x {} workloads x {} engines x {} replicates) on {} threads",
        spec.name,
        cells,
        spec.devices.len(),
        spec.workloads.len(),
        spec.engines.len(),
        spec.replicates,
        threads,
    );

    let started = Instant::now();
    let report = run_campaign(&spec, threads);
    let elapsed = started.elapsed();
    println!(
        "# ran {} cells in {:.2} s ({:.1} cells/s)",
        cells,
        elapsed.as_secs_f64(),
        cells as f64 / elapsed.as_secs_f64().max(1e-9),
    );

    for summary in report.device_summaries() {
        println!(
            "# {}: avg BW {:.3} GB/s, avg EPB {:.2} pJ/b, avg latency {:.1} ns over {} cells",
            summary.device,
            summary.avg_bandwidth_gbs,
            summary.avg_epb_pjb,
            summary.avg_latency_ns,
            summary.cells,
        );
    }

    if let Err(e) = std::fs::create_dir_all(out) {
        eprintln!("comet-lab: cannot create {out}: {e}");
        return ExitCode::FAILURE;
    }
    let json_path = format!("{}/{}.json", out, spec.name);
    let csv_path = format!("{}/{}.csv", out, spec.name);
    let tenants_path = format!("{}/{}.tenants.csv", out, spec.name);
    let json = report.to_json();
    if let Err(e) = std::fs::write(&json_path, &json) {
        eprintln!("comet-lab: cannot write {json_path}: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&csv_path, report.to_csv()) {
        eprintln!("comet-lab: cannot write {csv_path}: {e}");
        return ExitCode::FAILURE;
    }
    // Per-tenant serve results ride in a third export (header-only for
    // pure replay campaigns, so the output set is always the same).
    if let Err(e) = std::fs::write(&tenants_path, report.to_tenant_csv()) {
        eprintln!("comet-lab: cannot write {tenants_path}: {e}");
        return ExitCode::FAILURE;
    }

    // Self-check: the exported JSON must reconstruct the report exactly.
    let reread = match std::fs::read_to_string(&json_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("comet-lab: cannot re-read {json_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match CampaignReport::from_json(&reread) {
        Ok(back) if back == report => {
            println!(
                "# wrote {json_path}, {csv_path} and {tenants_path}; \
                 JSON parse-back verified ({cells} cells)"
            );
            ExitCode::SUCCESS
        }
        Ok(_) => {
            eprintln!("comet-lab: parse-back mismatch in {json_path}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("comet-lab: exported JSON does not parse: {e}");
            ExitCode::FAILURE
        }
    }
}
