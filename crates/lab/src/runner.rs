//! The sharded campaign runner.
//!
//! Cells are independent simulations, so the runner is an embarrassingly
//! parallel work queue: `threads` scoped OS threads pull cell indices from
//! a shared atomic counter, each builds a private device from the cell's
//! factory, instantiates the cell's trace with the cell's derived seed,
//! runs the sequential engine, and deposits the result at the cell's slot.
//! Determinism is structural — a cell's inputs depend only on the spec and
//! the cell index, never on scheduling — so any thread count produces the
//! identical [`CampaignReport`] (and therefore byte-identical exports).

use crate::report::{CampaignReport, CellReport, TenantSummary};
use crate::spec::{CampaignSpec, WorkloadSource};
use memsim::run_simulation;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// The default worker count for campaign runners and their CLI wrappers:
/// every hardware thread, or one when parallelism cannot be queried.
pub fn default_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs every cell of `spec` across `threads` worker threads (clamped to
/// at least one; one thread reproduces the plain sequential sweep).
///
/// # Examples
///
/// ```
/// use comet_lab::{run_campaign, CampaignSpec, WorkloadSource};
/// use memsim::{spec_like_suite, DramConfig, EpcmConfig};
///
/// let spec = CampaignSpec::new(
///     "doc",
///     42,
///     vec![
///         Box::new(DramConfig::ddr3_1600_2d()),
///         Box::new(EpcmConfig::epcm_mm()),
///     ],
///     spec_like_suite(200).into_iter().take(2).map(WorkloadSource::Profile).collect(),
/// );
/// let report = run_campaign(&spec, 2);
/// assert_eq!(report.cells.len(), 4);
/// assert_eq!(report.cells[0].stats.completed, 200);
/// ```
pub fn run_campaign(spec: &CampaignSpec, threads: usize) -> CampaignReport {
    let n = spec.cells();
    let workers = threads.max(1).min(n.max(1));
    let next = AtomicUsize::new(0);

    let mut slots: Vec<Option<CellReport>> = Vec::new();
    slots.resize_with(n, || None);

    if workers <= 1 {
        for (index, slot) in slots.iter_mut().enumerate() {
            *slot = Some(run_cell(spec, index));
        }
    } else {
        let mut chunks: Vec<Vec<(usize, CellReport)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done = Vec::new();
                        loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            if index >= n {
                                return done;
                            }
                            done.push((index, run_cell(spec, index)));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("campaign worker panicked"))
                .collect()
        });
        for (index, cell) in chunks.drain(..).flatten() {
            slots[index] = Some(cell);
        }
    }

    CampaignReport {
        name: spec.name.clone(),
        seed: spec.seed,
        replicates: spec.replicates.max(1),
        normalize_lines: spec.normalize_lines,
        cells: slots
            .into_iter()
            .map(|s| s.expect("every cell index was claimed exactly once"))
            .collect(),
    }
}

/// Resizes a profile to a device-native cache line, preserving total
/// bytes (the Fig. 9 equal-bytes methodology). Rounded division, floored
/// at one request: a non-divisible count lands within half a line of the
/// target bytes instead of silently truncating to an empty cell.
fn normalize_profile(profile: &memsim::WorkloadProfile, line: u64) -> memsim::WorkloadProfile {
    let mut profile = profile.clone();
    let total_bytes = profile.requests as u64 * profile.line_bytes;
    profile.requests = ((total_bytes + line / 2) / line).max(1) as usize;
    profile.line_bytes = line;
    profile
}

/// Runs one cell: private device(s), seeded trace or service scenario,
/// sequential engine.
fn run_cell(spec: &CampaignSpec, index: usize) -> CellReport {
    let c = spec.coords(index);
    let factory = &spec.devices[c.device];
    let workload = &spec.workloads[c.workload];
    let engine = &spec.engines[c.engine];
    let seed = spec.cell_seed(c.replicate);

    let (stats, tenants) = if let Some(serve) = &engine.serve {
        // Service cell: the event-driven comet-serve core. Sources are
        // generative, so the workload must be a profile (it shapes every
        // tenant that carries no profile of its own).
        let profile = match workload {
            WorkloadSource::Profile(p) => p,
            WorkloadSource::Trace { name, .. } => panic!(
                "serve engine point '{}' needs a profile workload, got fixed trace '{name}'",
                engine.label
            ),
        };
        let profile = if spec.normalize_lines {
            normalize_profile(profile, factory.device_topology().line_bytes)
        } else {
            profile.clone()
        };
        let report =
            comet_serve::run_service(factory.as_ref(), serve, &profile, seed, workload.name());
        let tenants = report
            .tenants
            .iter()
            .map(TenantSummary::from_stats)
            .collect();
        (report.stats, tenants)
    } else {
        let mut device = factory.build();
        let config = engine.sim_config(workload.name());
        let stats = match workload {
            WorkloadSource::Profile(profile) => {
                let profile = if spec.normalize_lines {
                    normalize_profile(profile, device.topology().line_bytes)
                } else {
                    profile.clone()
                };
                let trace = profile.generate(seed);
                run_simulation(device.as_mut(), &trace, &config)
            }
            WorkloadSource::Trace { requests, .. } => {
                run_simulation(device.as_mut(), requests.as_slice(), &config)
            }
        };
        (stats, Vec::new())
    };

    CellReport {
        index,
        device: factory.device_name(),
        workload: workload.name().to_string(),
        engine: engine.label.clone(),
        replicate: c.replicate,
        seed,
        stats,
        tenants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::EnginePoint;
    use comet_units::{ByteCount, Time};
    use memsim::{
        AccessPattern, DramConfig, EpcmConfig, MemOp, MemRequest, SimConfig, WorkloadProfile,
    };

    fn small_profile(name: &str) -> WorkloadSource {
        WorkloadSource::Profile(WorkloadProfile {
            name: name.into(),
            read_fraction: 0.8,
            footprint: ByteCount::from_mib(8),
            pattern: AccessPattern::Random,
            interarrival: Time::from_nanos(2.0),
            requests: 120,
            line_bytes: 64,
        })
    }

    fn small_spec() -> CampaignSpec {
        CampaignSpec::new(
            "runner-test",
            9,
            vec![
                Box::new(DramConfig::ddr3_1600_2d()),
                Box::new(EpcmConfig::epcm_mm()),
            ],
            vec![small_profile("alpha"), small_profile("beta")],
        )
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let spec = small_spec();
        let sequential = run_campaign(&spec, 1);
        for threads in [2, 3, 8] {
            let parallel = run_campaign(&spec, threads);
            assert_eq!(parallel, sequential, "threads={threads}");
            assert_eq!(parallel.to_json(), sequential.to_json());
            assert_eq!(parallel.to_csv(), sequential.to_csv());
        }
    }

    #[test]
    fn cells_are_in_grid_order_with_correct_labels() {
        let report = run_campaign(&small_spec(), 4);
        assert_eq!(report.cells.len(), 4);
        let labels: Vec<(String, String)> = report
            .cells
            .iter()
            .map(|c| (c.device.clone(), c.workload.clone()))
            .collect();
        assert_eq!(labels[0], ("2D_DDR3".to_string(), "alpha".to_string()));
        assert_eq!(labels[1], ("2D_DDR3".to_string(), "beta".to_string()));
        assert_eq!(labels[2], ("EPCM-MM".to_string(), "alpha".to_string()));
        assert_eq!(labels[3], ("EPCM-MM".to_string(), "beta".to_string()));
        for (i, c) in report.cells.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(c.stats.completed, 120);
        }
    }

    #[test]
    fn cell_matches_direct_engine_run() {
        // A campaign cell must be bit-identical to hand-running the same
        // trace through the engine — the runner adds nothing.
        let spec = small_spec();
        let report = run_campaign(&spec, 2);
        let profile = match &spec.workloads[0] {
            WorkloadSource::Profile(p) => p.clone(),
            _ => unreachable!(),
        };
        let trace = profile.generate(9);
        let mut dev = memsim::DramDevice::new(DramConfig::ddr3_1600_2d());
        let direct = run_simulation(&mut dev, &trace, &SimConfig::paced("alpha"));
        assert_eq!(report.cells[0].stats, direct);
    }

    #[test]
    fn normalize_lines_rescales_requests() {
        // COMET-like 128 B lines halve the request count of a 64 B profile.
        let mut spec = small_spec();
        spec.devices = vec![Box::new(comet_config_128())];
        let report = run_campaign(&spec, 1);
        assert_eq!(report.cells[0].stats.completed, 60);
        assert_eq!(report.cells[0].stats.bytes.value(), 60 * 128);

        spec.normalize_lines = false;
        let raw = run_campaign(&spec, 1);
        assert_eq!(raw.cells[0].stats.completed, 120);
    }

    // A minimal 128-B-line device factory without pulling the comet crate
    // into memsim-level tests: EPCM config with a widened line.
    fn comet_config_128() -> EpcmConfig {
        let mut cfg = EpcmConfig::epcm_mm();
        cfg.name = "EPCM-128".into();
        cfg.topology.line_bytes = 128;
        cfg
    }

    #[test]
    fn normalize_lines_never_empties_a_cell() {
        // Regression: truncating division used to turn a 1-request 64 B
        // profile into 0 requests on a 128 B device (and to shave odd
        // counts short of the byte target); rounded division floored at 1
        // keeps every cell populated and within half a line of the target.
        let mut spec = small_spec();
        spec.devices = vec![Box::new(comet_config_128())];
        for (requests, expect) in [(1usize, 1u64), (3, 2), (1001, 501)] {
            for w in &mut spec.workloads {
                if let WorkloadSource::Profile(p) = w {
                    p.requests = requests;
                }
            }
            let report = run_campaign(&spec, 1);
            assert_eq!(
                report.cells[0].stats.completed, expect,
                "requests={requests}"
            );
        }
    }

    #[test]
    fn serve_cells_run_the_service_core_and_stay_thread_invariant() {
        let mut spec = small_spec();
        spec.engines = vec![
            EnginePoint::paced(),
            EnginePoint::serve(
                "serve-closed4",
                comet_serve::ServeSpec::closed_loop(4, Time::from_nanos(20.0), 150),
            ),
        ];
        let sequential = run_campaign(&spec, 1);
        let parallel = run_campaign(&spec, 4);
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.to_json(), parallel.to_json());
        let serve_cells: Vec<_> = sequential
            .cells
            .iter()
            .filter(|c| c.engine == "serve-closed4")
            .collect();
        assert_eq!(serve_cells.len(), 4);
        for cell in serve_cells {
            // Serve cells complete the scenario budget, not the profile's
            // request count, and carry exact tail percentiles.
            assert_eq!(cell.stats.completed, 150, "{}", cell.device);
            assert!(cell.stats.p99_latency >= cell.stats.p50_latency);
            assert!(cell.stats.p50_latency > Time::ZERO);
            // Per-tenant results ride on the cell and decompose the
            // aggregate exactly.
            assert_eq!(cell.tenants.len(), 1);
            assert_eq!(cell.tenants[0].name, "closed");
            assert_eq!(cell.tenants[0].completed, 150);
            assert!(cell.tenants[0].p99_latency >= cell.tenants[0].p50_latency);
        }
        // Replay cells carry no tenants.
        for cell in sequential
            .cells
            .iter()
            .filter(|c| c.engine != "serve-closed4")
        {
            assert!(cell.tenants.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "needs a profile workload")]
    fn serve_cells_reject_fixed_traces() {
        let mut spec = CampaignSpec::new(
            "serve-trace",
            1,
            vec![Box::new(DramConfig::ddr3_1600_2d())],
            vec![WorkloadSource::trace("fixed", Vec::new())],
        );
        spec.engines = vec![EnginePoint::serve(
            "serve",
            comet_serve::ServeSpec::closed_loop(1, Time::ZERO, 10),
        )];
        let _ = run_campaign(&spec, 1);
    }

    #[test]
    fn fixed_traces_ignore_seed_and_replicates() {
        let reqs: Vec<MemRequest> = (0..50)
            .map(|i| MemRequest::new(i, Time::ZERO, MemOp::Read, i * 64, ByteCount::new(64)))
            .collect();
        let mut spec = CampaignSpec::new(
            "trace-test",
            1234,
            vec![Box::new(DramConfig::ddr3_1600_2d())],
            vec![WorkloadSource::trace("fixed", reqs)],
        );
        spec.replicates = 2;
        spec.engines = vec![EnginePoint::saturation()];
        let report = run_campaign(&spec, 2);
        assert_eq!(report.cells.len(), 2);
        // Same trace, same engine: replicates are identical runs.
        assert_eq!(report.cells[0].stats, report.cells[1].stats);
        assert_ne!(report.cells[0].seed, report.cells[1].seed);
    }
}
