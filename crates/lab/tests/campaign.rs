//! Campaign-level acceptance tests: a realistic multi-device grid sharded
//! over several threads must produce byte-identical exports regardless of
//! thread count, round-trip through JSON exactly, and agree with the
//! sequential engine it wraps.

use comet_lab::{
    device_by_name, run_campaign, workloads_by_name, CampaignReport, CampaignSpec, EnginePoint,
    WorkloadSource,
};
use comet_units::{ByteCount, Time};
use memsim::{DeviceFactory, MemOp, MemRequest};

/// The ISSUE acceptance grid: ≥ 12 cells over ≥ 2 device models. Four
/// devices (two electronic, two photonic) × four SPEC-like workloads.
fn acceptance_spec(requests: usize) -> CampaignSpec {
    let devices: Vec<Box<dyn DeviceFactory>> = ["2D_DDR3", "EPCM-MM", "COSMOS", "COMET"]
        .iter()
        .map(|n| device_by_name(n).expect("registered"))
        .collect();
    let workloads: Vec<WorkloadSource> = ["mcf-like", "lbm-like", "gcc-like", "libquantum-like"]
        .iter()
        .flat_map(|n| workloads_by_name(n, requests))
        .collect();
    CampaignSpec::new("acceptance", 42, devices, workloads)
}

#[test]
fn sixteen_cell_campaign_is_thread_count_invariant() {
    let spec = acceptance_spec(400);
    assert!(spec.cells() >= 12, "acceptance grid size");

    let sequential = run_campaign(&spec, 1);
    let two = run_campaign(&spec, 2);
    let four = run_campaign(&spec, 4);

    assert_eq!(sequential, two);
    assert_eq!(sequential, four);
    // Byte-identical exports, not just equal values.
    assert_eq!(sequential.to_json(), two.to_json());
    assert_eq!(sequential.to_json(), four.to_json());
    assert_eq!(sequential.to_csv(), four.to_csv());

    // Every cell completed its full workload.
    assert_eq!(sequential.cells.len(), 16);
    for cell in &sequential.cells {
        assert!(
            cell.stats.completed > 0,
            "{}/{}",
            cell.device,
            cell.workload
        );
        assert_eq!(cell.stats.completed, cell.stats.reads + cell.stats.writes);
    }
    // Equal-bytes methodology: every device moved the same bytes per
    // workload (line normalization preserves totals).
    let bytes0: Vec<u64> = sequential
        .cells_for("2D_DDR3")
        .iter()
        .map(|c| c.stats.bytes.value())
        .collect();
    let bytes_comet: Vec<u64> = sequential
        .cells_for("COMET")
        .iter()
        .map(|c| c.stats.bytes.value())
        .collect();
    assert_eq!(bytes0, bytes_comet);
}

#[test]
fn report_roundtrips_through_json_exactly() {
    let report = run_campaign(&acceptance_spec(200), 3);
    let json = report.to_json();
    let back = CampaignReport::from_json(&json).expect("own export parses");
    assert_eq!(back, report);
    assert_eq!(back.to_json(), json, "re-emission is stable");
}

#[test]
fn photonic_devices_outperform_electronic_in_campaign() {
    // The paper's headline (Fig. 9): photonic bandwidth >> electronic at
    // memory-bound demand. The campaign must preserve that ordering.
    let report = run_campaign(&acceptance_spec(600), 2);
    let summaries = report.device_summaries();
    let bw = |name: &str| {
        summaries
            .iter()
            .find(|s| s.device == name)
            .expect(name)
            .avg_bandwidth_gbs
    };
    assert!(
        bw("COMET") > 5.0 * bw("2D_DDR3"),
        "COMET {} vs DDR3 {}",
        bw("COMET"),
        bw("2D_DDR3")
    );
    assert!(
        bw("COMET") > 5.0 * bw("COSMOS"),
        "COMET {} vs COSMOS {}",
        bw("COMET"),
        bw("COSMOS")
    );
    // COMET also has the lowest average latency of the grid.
    let comet_lat = summaries
        .iter()
        .find(|s| s.device == "COMET")
        .unwrap()
        .avg_latency_ns;
    for s in &summaries {
        assert!(
            s.avg_latency_ns >= comet_lat,
            "{} faster than COMET",
            s.device
        );
    }
}

#[test]
fn multi_axis_campaign_covers_engines_and_replicates() {
    let mut spec = CampaignSpec::new(
        "axes",
        7,
        vec![
            device_by_name("2D_DDR3").unwrap(),
            device_by_name("EPCM-MM").unwrap(),
        ],
        workloads_by_name("gcc-like", 150),
    );
    spec.engines = vec![EnginePoint::paced(), EnginePoint::saturation()];
    spec.replicates = 3;
    assert_eq!(spec.cells(), 12);

    let report = run_campaign(&spec, 4);
    assert_eq!(report.cells.len(), 12);
    // Replicates differ (different trace instantiations)...
    let r0 = &report.cells[0];
    let r1 = &report.cells[1];
    assert_eq!(r0.engine, r1.engine);
    assert_ne!(r0.seed, r1.seed);
    assert_ne!(r0.stats.makespan, r1.stats.makespan);
    // ...and the engine axis is enumerated engine-major over replicates:
    // per device, three paced cells then three saturation cells.
    for chunk in report.cells.chunks(6) {
        assert!(chunk[..3].iter().all(|c| c.engine == "frfcfs8-paced"));
        assert!(chunk[3..].iter().all(|c| c.engine == "frfcfs8-saturation"));
        // The same replicate re-uses the same seed on both engine points.
        assert_eq!(chunk[0].seed, chunk[3].seed);
    }
}

#[test]
fn custom_trace_campaign_over_comet_variants() {
    // The ablation pattern: fixed trace, closure-built device variants.
    let trace: Vec<MemRequest> = (0..800u64)
        .map(|i| {
            MemRequest::new(
                i,
                Time::from_nanos(i as f64 * 0.5),
                if i % 5 == 0 {
                    MemOp::Write
                } else {
                    MemOp::Read
                },
                i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (1 << 26),
                ByteCount::new(128),
            )
        })
        .collect();
    let mut spec = CampaignSpec::new(
        "variants",
        0,
        vec![
            device_by_name("COMET-1b").unwrap(),
            device_by_name("COMET-2b").unwrap(),
            device_by_name("COMET-4b").unwrap(),
        ],
        vec![WorkloadSource::trace("mixed", trace)],
    );
    spec.normalize_lines = false;
    let report = run_campaign(&spec, 2);
    assert_eq!(report.cells.len(), 3);
    let names: Vec<&str> = report.cells.iter().map(|c| c.device.as_str()).collect();
    assert_eq!(names, ["COMET-1b", "COMET-2b", "COMET-4b"]);
    for c in &report.cells {
        assert_eq!(c.stats.completed, 800);
        // Variant labels come from the factory; the device itself reports
        // the architecture name.
        assert_eq!(c.stats.device, "COMET");
    }
}
