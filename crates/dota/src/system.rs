//! System-level EPB of DOTA paired with each main memory (Fig. 10).
//!
//! DOTA is a photonic tensor engine: its operands arrive as modulated
//! light. Feeding it from an *electronic* memory requires a full
//! electro-optic conversion stage per bit (DAC + driver + modulator);
//! feeding it from a *photonic* memory (COMET, COSMOS) injects the
//! read-out light directly — the paper's headline argument for photonic
//! main memory in optical-compute systems.
//!
//! `system EPB = memory EPB (simulated) + conversion EPB (per feed type)`.

use crate::workload::TransformerWorkload;
use comet_units::EnergyPerBit;
use memsim::{run_simulation, MemoryDevice, SimConfig};
use serde::{Deserialize, Serialize};

/// How a memory's read-out reaches the photonic tensor core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeedKind {
    /// Electronic memory: every bit pays DAC + driver + modulator energy.
    Electronic,
    /// Photonic memory: light is re-amplified and injected directly.
    Photonic,
}

impl FeedKind {
    /// Conversion energy per bit at the accelerator boundary.
    ///
    /// Electronic: ~45 pJ/b for the high-speed 8-bit DAC + serializer +
    /// MZM driver chain that turns DRAM read-outs into modulated light for
    /// the tensor core (multi-GHz analog modulation is expensive; published
    /// full E-O paths run 30-100 pJ/b). Photonic: ~2 pJ/b of SOA
    /// re-amplification and clock alignment — the direct-injection
    /// advantage Section IV.D describes.
    pub fn conversion_energy(self) -> EnergyPerBit {
        match self {
            FeedKind::Electronic => EnergyPerBit::from_picojoules_per_bit(45.0),
            FeedKind::Photonic => EnergyPerBit::from_picojoules_per_bit(2.0),
        }
    }
}

/// One Fig. 10 bar: a (memory, model) pairing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemEpbReport {
    /// Memory system name.
    pub memory: String,
    /// Transformer model name.
    pub model: String,
    /// Feed type.
    pub feed: FeedKind,
    /// Memory-side EPB from trace simulation.
    pub memory_epb: EnergyPerBit,
    /// Conversion EPB at the accelerator boundary.
    pub conversion_epb: EnergyPerBit,
    /// Observed memory bandwidth, GB/s.
    pub bandwidth_gbs: f64,
}

impl SystemEpbReport {
    /// Total system EPB.
    pub fn total_epb(&self) -> EnergyPerBit {
        self.memory_epb + self.conversion_epb
    }
}

/// Runs a transformer workload against a memory device and composes the
/// system EPB.
pub fn evaluate_system(
    device: &mut dyn MemoryDevice,
    feed: FeedKind,
    model: &TransformerWorkload,
    inferences: u32,
    sampling: u64,
    seed: u64,
) -> SystemEpbReport {
    let trace = model.trace(inferences, sampling, seed);
    let stats = run_simulation(device, &trace, &SimConfig::paced(&model.name));
    SystemEpbReport {
        memory: stats.device.clone(),
        model: model.name.clone(),
        feed,
        memory_epb: stats.energy_per_bit(),
        conversion_epb: feed.conversion_energy(),
        bandwidth_gbs: stats.bandwidth().as_gigabytes_per_second(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet::{CometConfig, CometDevice};
    use cosmos::{CosmosConfig, CosmosDevice};
    use memsim::{DramConfig, DramDevice};

    fn tiny() -> TransformerWorkload {
        TransformerWorkload::deit_tiny()
    }

    #[test]
    fn comet_beats_3d_ddr4_with_dota() {
        // Fig. 10: COMET+DOTA achieves lower EPB than 3D_DDR4+DOTA because
        // the electronic feed pays the conversion stage.
        let mut comet = CometDevice::new(CometConfig::comet_4b());
        let mut ddr = DramDevice::new(DramConfig::ddr4_3d());
        let c = evaluate_system(&mut comet, FeedKind::Photonic, &tiny(), 1, 40, 1);
        let d = evaluate_system(&mut ddr, FeedKind::Electronic, &tiny(), 1, 40, 1);
        assert!(
            c.total_epb() < d.total_epb(),
            "COMET {} vs 3D_DDR4 {}",
            c.total_epb(),
            d.total_epb()
        );
    }

    #[test]
    fn comet_beats_cosmos_with_dota() {
        let mut comet = CometDevice::new(CometConfig::comet_4b());
        let mut cosmos = CosmosDevice::new(CosmosConfig::corrected());
        let c = evaluate_system(&mut comet, FeedKind::Photonic, &tiny(), 1, 40, 1);
        let k = evaluate_system(&mut cosmos, FeedKind::Photonic, &tiny(), 1, 40, 1);
        assert!(
            c.total_epb() < k.total_epb(),
            "COMET {} vs COSMOS {}",
            c.total_epb(),
            k.total_epb()
        );
    }

    #[test]
    fn conversion_energies_ordered() {
        assert!(FeedKind::Electronic.conversion_energy() > FeedKind::Photonic.conversion_energy());
    }

    #[test]
    fn report_total_is_sum() {
        let r = SystemEpbReport {
            memory: "X".into(),
            model: "Y".into(),
            feed: FeedKind::Electronic,
            memory_epb: EnergyPerBit::from_picojoules_per_bit(10.0),
            conversion_epb: EnergyPerBit::from_picojoules_per_bit(30.0),
            bandwidth_gbs: 1.0,
        };
        assert!((r.total_epb().as_picojoules_per_bit() - 40.0).abs() < 1e-12);
    }
}
