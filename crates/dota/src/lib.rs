//! DOTA case study — a photonic tensor-core transformer accelerator fed by
//! different main memories (paper Section IV.D, Fig. 10).
//!
//! The question the paper asks: once the *compute* is photonic, which main
//! memory minimizes the energy per bit delivered to it? Electronic
//! memories pay an electro-optic conversion stage per bit; photonic
//! memories (COMET, COSMOS) inject light directly.
//!
//! # Quick start
//!
//! ```
//! use comet::{CometConfig, CometDevice};
//! use dota::{evaluate_system, FeedKind, TransformerWorkload};
//!
//! let mut mem = CometDevice::new(CometConfig::comet_4b());
//! let report = evaluate_system(
//!     &mut mem,
//!     FeedKind::Photonic,
//!     &TransformerWorkload::deit_tiny(),
//!     1,   // inferences
//!     100, // traffic sampling divisor
//!     42,  // seed
//! );
//! println!("{} + DOTA: {}", report.memory, report.total_epb());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod system;
mod workload;

pub use system::{evaluate_system, FeedKind, SystemEpbReport};
pub use workload::TransformerWorkload;
