//! Transformer inference workloads for the accelerator case study.
//!
//! The paper evaluates DOTA with the two DeiT vision transformers its
//! source publication uses. What the memory system sees is a
//! streaming-read-dominant traffic pattern: weight matrices stream once
//! per inference, activations spill and reload between layers.

use comet_units::{ByteCount, Time};
use memsim::{AccessPattern, MemOp, MemRequest, WorkloadProfile};
use serde::{Deserialize, Serialize};

/// A transformer model's memory-relevant shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformerWorkload {
    /// Model name.
    pub name: String,
    /// Parameter count.
    pub parameters: u64,
    /// Forward-pass compute, GFLOPs.
    pub gflops: f64,
    /// Bytes moved from main memory per inference (weights at fp16 plus
    /// activation spills).
    pub bytes_per_inference: ByteCount,
    /// Fraction of traffic that is reads (weights dominate).
    pub read_fraction: f64,
}

impl TransformerWorkload {
    /// DeiT-Tiny: 5.7 M parameters, 1.3 GFLOPs.
    pub fn deit_tiny() -> Self {
        let params: u64 = 5_700_000;
        TransformerWorkload {
            name: "DeiT-T".into(),
            parameters: params,
            gflops: 1.3,
            // fp16 weights + ~1.2x activation spill factor.
            bytes_per_inference: ByteCount::new((params * 2) * 22 / 10),
            read_fraction: 0.9,
        }
    }

    /// DeiT-Small: 22 M parameters, 4.6 GFLOPs (the middle sibling of the
    /// DeiT family; not in the paper's Fig. 10 but useful for scaling
    /// studies).
    pub fn deit_small() -> Self {
        let params: u64 = 22_000_000;
        TransformerWorkload {
            name: "DeiT-S".into(),
            parameters: params,
            gflops: 4.6,
            bytes_per_inference: ByteCount::new((params * 2) * 22 / 10),
            read_fraction: 0.9,
        }
    }

    /// DeiT-Base: 86 M parameters, 17.6 GFLOPs.
    pub fn deit_base() -> Self {
        let params: u64 = 86_000_000;
        TransformerWorkload {
            name: "DeiT-B".into(),
            parameters: params,
            gflops: 17.6,
            bytes_per_inference: ByteCount::new((params * 2) * 22 / 10),
            read_fraction: 0.9,
        }
    }

    /// Both case-study models, paper order.
    pub fn fig10_models() -> Vec<TransformerWorkload> {
        vec![Self::deit_tiny(), Self::deit_base()]
    }

    /// The whole DeiT family, smallest first (extension past Fig. 10).
    pub fn deit_family() -> Vec<TransformerWorkload> {
        vec![Self::deit_tiny(), Self::deit_small(), Self::deit_base()]
    }

    /// A batched variant: weights are re-streamed once per batch while
    /// activation traffic scales with the batch size, so larger batches
    /// raise arithmetic intensity and *lower* the per-sample memory
    /// traffic — the standard serving trade-off.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn batched(&self, batch: u32) -> Self {
        assert!(batch > 0, "batch must be nonzero");
        let weights = self.parameters * 2;
        let activations = self.bytes_per_inference.value() - weights;
        TransformerWorkload {
            name: format!("{}xb{batch}", self.name),
            parameters: self.parameters,
            gflops: self.gflops * batch as f64,
            // Whole-batch traffic: one weight stream + per-sample spills.
            bytes_per_inference: ByteCount::new(weights + activations * batch as u64),
            read_fraction: {
                // Reads are the weight stream plus re-loaded spills; the
                // write share grows with the batch's activation traffic.
                let writes = (1.0 - self.read_fraction) * (activations * batch as u64) as f64;
                let total = (weights + activations * batch as u64) as f64;
                1.0 - writes / total
            },
        }
    }

    /// Per-sample bytes moved at a given batch size (amortizes weights).
    pub fn bytes_per_sample(&self, batch: u32) -> ByteCount {
        ByteCount::new(self.batched(batch).bytes_per_inference.value() / batch as u64)
    }

    /// The model's traffic as a [`memsim::WorkloadProfile`] — the stream
    /// adapter for `comet-serve` tenants: streaming accesses over the
    /// weight region at the tensor core's demand intensity (a line every
    /// 0.25 ns), with the model's read fraction deciding the write share.
    /// Where [`TransformerWorkload::trace`] materializes one replayable
    /// vector, this shape can sit behind any arrival process or
    /// closed-loop client mix, beside SPEC-like tenants in one mux.
    pub fn profile(&self, requests: usize) -> WorkloadProfile {
        let weight_region = (self.parameters * 2).next_power_of_two().max(1 << 21);
        WorkloadProfile {
            name: format!("{}-stream", self.name),
            read_fraction: self.read_fraction,
            footprint: ByteCount::new(weight_region),
            pattern: AccessPattern::Stream,
            interarrival: Time::from_nanos(0.25),
            requests,
            line_bytes: 128,
        }
    }

    /// The memory request stream of `inferences` back-to-back inferences,
    /// scaled down by `sampling` (model 1/sampling of the traffic to keep
    /// simulations fast; EPB is traffic-shape, not length, dependent).
    ///
    /// The structure matters: weights stream as reads through the weight
    /// region, while activation spills write to a *separate* region with
    /// tile-sized strides (a tiled tensor engine never interleaves writes
    /// into the weight stream). The photonic tensor core demands a line
    /// every 0.25 ns in the aggregate (hundreds of GB/s — the feed rates
    /// that motivate photonic memory in the first place).
    ///
    /// # Panics
    ///
    /// Panics if `sampling == 0` or `inferences == 0`.
    pub fn trace(&self, inferences: u32, sampling: u64, _seed: u64) -> Vec<MemRequest> {
        assert!(sampling > 0, "sampling must be nonzero");
        assert!(inferences > 0, "need at least one inference");
        let line = 128u64;
        let bytes = self.bytes_per_inference.value() * inferences as u64 / sampling;
        let requests = (bytes / line).max(1) as usize;
        let weight_region = (self.parameters * 2).next_power_of_two().max(1 << 21);
        // Activation tiles stride one full subarray block apart (plus one
        // line so consecutive spills rotate across banks) so programming
        // pulses overlap and no single bank becomes the spill hotspot.
        let act_stride = (512 * 4 + 1) * line;
        let interarrival = Time::from_nanos(0.25);
        let write_period = (1.0 / (1.0 - self.read_fraction)).round() as usize;

        let mut out = Vec::with_capacity(requests);
        let mut weight_cursor = 0u64;
        let mut act_cursor = 0u64;
        for i in 0..requests {
            let arrival = interarrival * i as f64;
            if (i + 1) % write_period == 0 {
                let addr = weight_region + (act_cursor * act_stride) % weight_region;
                act_cursor += 1;
                out.push(MemRequest::new(
                    i as u64,
                    arrival,
                    MemOp::Write,
                    addr,
                    ByteCount::new(line),
                ));
            } else {
                let addr = (weight_cursor * line) % weight_region;
                weight_cursor += 1;
                out.push(MemRequest::new(
                    i as u64,
                    arrival,
                    MemOp::Read,
                    addr,
                    ByteCount::new(line),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_shapes() {
        let t = TransformerWorkload::deit_tiny();
        let b = TransformerWorkload::deit_base();
        assert!(b.parameters > 10 * t.parameters);
        assert!(b.bytes_per_inference.value() > b.parameters * 2);
        assert!((b.gflops / t.gflops - 13.5).abs() < 0.1);
    }

    #[test]
    fn trace_sizes_scale_with_model() {
        let t = TransformerWorkload::deit_tiny().trace(1, 100, 7);
        let b = TransformerWorkload::deit_base().trace(1, 100, 7);
        assert!(b.len() > 10 * t.len());
        assert!(!t.is_empty());
    }

    #[test]
    fn traces_are_read_dominant_streams() {
        let trace = TransformerWorkload::deit_tiny().trace(1, 50, 3);
        let reads = trace.iter().filter(|r| r.op.is_read()).count() as f64;
        assert!(reads / trace.len() as f64 > 0.85);
    }

    #[test]
    #[should_panic(expected = "sampling")]
    fn zero_sampling_rejected() {
        let _ = TransformerWorkload::deit_tiny().trace(1, 0, 0);
    }

    #[test]
    fn family_is_ordered_by_size() {
        let family = TransformerWorkload::deit_family();
        assert_eq!(family.len(), 3);
        for w in family.windows(2) {
            assert!(w[1].parameters > w[0].parameters);
            assert!(w[1].gflops > w[0].gflops);
            assert!(w[1].bytes_per_inference > w[0].bytes_per_inference);
        }
    }

    #[test]
    fn batching_amortizes_weight_traffic() {
        let t = TransformerWorkload::deit_base();
        // Per-sample traffic falls monotonically with batch size...
        let mut last = u64::MAX;
        for batch in [1u32, 2, 4, 8, 16] {
            let per_sample = t.bytes_per_sample(batch).value();
            assert!(per_sample < last, "batch {batch}: {per_sample} >= {last}");
            last = per_sample;
        }
        // ...but floors at the activation traffic (weights fully amortized).
        let activations = t.bytes_per_inference.value() - t.parameters * 2;
        assert!(t.bytes_per_sample(1024).value() >= activations);
        assert!(t.bytes_per_sample(1024).value() < activations + activations / 10);
    }

    #[test]
    fn batching_shifts_mix_toward_writes() {
        let t = TransformerWorkload::deit_tiny();
        let b1 = t.batched(1);
        let b16 = t.batched(16);
        assert!(b16.read_fraction < b1.read_fraction);
        assert!(b16.read_fraction > 0.5, "weights still dominate");
        // Batch 1 preserves the original traffic volume.
        assert_eq!(b1.bytes_per_inference, t.bytes_per_inference);
    }

    #[test]
    #[should_panic(expected = "batch")]
    fn zero_batch_rejected() {
        let _ = TransformerWorkload::deit_tiny().batched(0);
    }

    #[test]
    fn profile_adapter_matches_trace_character() {
        let model = TransformerWorkload::deit_base();
        let p = model.profile(1000);
        assert_eq!(p.name, "DeiT-B-stream");
        assert_eq!(p.line_bytes, 128);
        assert!((p.read_fraction - model.read_fraction).abs() < 1e-12);
        // Footprint covers the weight region the trace walks.
        let max_trace_addr = model
            .trace(1, 100, 0)
            .iter()
            .map(|r| r.address)
            .max()
            .unwrap();
        assert!(p.footprint.value() >= model.parameters * 2);
        assert!(max_trace_addr < 2 * p.footprint.value());
        // Generates a valid stream (the serve shape path consumes this).
        let reqs = p.generate(3);
        assert_eq!(reqs.len(), 1000);
        assert!(reqs.iter().all(|r| r.address < p.footprint.value()));
    }
}
