//! Crosstalk and thermo-optic disturb models.
//!
//! Two distinct crosstalk mechanisms matter in OPCM memories:
//!
//! 1. **Spectral crosstalk** between WDM channels through imperfect ring
//!    filters — modeled in [`crate::Microring`].
//! 2. **Spatial crosstalk** in crossbar arrays (the COSMOS design, paper
//!    Fig. 1): a write pulse on one row leaks ≈ −18 dB into adjacent rows'
//!    cells. The leaked energy heats the neighbour's GST through the
//!    thermo-optic effect and shifts its crystalline fraction — enough, at
//!    multi-bit level spacings, to corrupt stored data (paper Fig. 2).
//!
//! COMET's MR-gated isolated cells eliminate mechanism 2 by construction;
//! the model here is what the `cosmos` crate uses to reproduce the failure.

use comet_units::{Decibels, Energy};
use serde::{Deserialize, Serialize};

/// Crossbar write-crosstalk parameters.
///
/// # Examples
///
/// ```
/// use comet_units::Energy;
/// use photonic::CrossbarCrosstalk;
///
/// let xt = CrossbarCrosstalk::cosmos();
/// // A 750 pJ write leaks ~11.9 pJ into each adjacent cell:
/// let leaked = xt.leaked_energy(Energy::from_picojoules(750.0));
/// assert!((leaked.as_picojoules() - 11.9).abs() < 0.5);
/// // ...which shifts the neighbour's crystalline fraction by ~8%:
/// let shift = xt.fraction_shift(Energy::from_picojoules(750.0));
/// assert!((shift - 0.08).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossbarCrosstalk {
    /// Coupling from an aggressor write into an adjacent victim cell.
    /// The paper measures ≈ −18 dB at the COSMOS crossbar (Fig. 1(b)).
    pub coupling: Decibels,
    /// Crystalline-fraction shift per joule of leaked energy absorbed by a
    /// victim cell. Calibrated from the paper: 12.6 pJ of extraneous energy
    /// triggers an 8 % refractive-index/fraction change.
    pub fraction_shift_per_joule: f64,
}

impl CrossbarCrosstalk {
    /// The paper's COSMOS crossbar numbers: −18 dB coupling; 8 % shift per
    /// ~12.6 pJ leaked.
    pub fn cosmos() -> Self {
        CrossbarCrosstalk {
            coupling: Decibels::new(18.0),
            fraction_shift_per_joule: 0.08 / 12.6e-12,
        }
    }

    /// Energy leaked into one adjacent cell by an aggressor write of
    /// `write_energy`.
    pub fn leaked_energy(&self, write_energy: Energy) -> Energy {
        write_energy * self.coupling.to_linear()
    }

    /// Crystalline-fraction shift induced in an adjacent victim by an
    /// aggressor write of `write_energy`.
    pub fn fraction_shift(&self, write_energy: Energy) -> f64 {
        self.leaked_energy(write_energy).as_joules() * self.fraction_shift_per_joule
    }

    /// Number of adjacent-row writes before a victim cell's accumulated
    /// fraction shift exceeds half a level spacing (the decode margin) for
    /// a cell storing `levels` equally spaced states over `fraction_span`
    /// of crystalline fraction.
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2` or `fraction_span` is not in `(0, 1]`.
    pub fn writes_to_corruption(
        &self,
        write_energy: Energy,
        levels: u16,
        fraction_span: f64,
    ) -> u32 {
        assert!(levels >= 2, "need at least two levels");
        assert!(
            fraction_span > 0.0 && fraction_span <= 1.0,
            "fraction span must be in (0,1]"
        );
        let level_spacing = fraction_span / (levels - 1) as f64;
        let margin = level_spacing / 2.0;
        let per_write = self.fraction_shift(write_energy);
        if per_write <= 0.0 {
            return u32::MAX;
        }
        (margin / per_write).ceil().max(1.0) as u32
    }

    /// [`CrossbarCrosstalk::writes_to_corruption`] with the level count
    /// and crystalline-fraction span taken from a cell model — so the
    /// disturb analysis runs against the same level grid (paper or
    /// physics-derived) as the read-out path.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 6`.
    pub fn writes_to_corruption_for_cell(
        &self,
        write_energy: Energy,
        bits: u8,
        cell: &dyn crate::CellOpticalModel,
    ) -> u32 {
        assert!((1..=6).contains(&bits), "bits must be in 1..=6");
        self.writes_to_corruption(write_energy, 1 << bits, cell.fraction_span())
    }
}

impl Default for CrossbarCrosstalk {
    fn default() -> Self {
        Self::cosmos()
    }
}

/// An isolated (MR-gated) cell's crosstalk: zero by construction.
///
/// COMET's cells only see light when their row MRs are tuned into
/// resonance; adjacent writes cannot reach them. This type exists so
/// architecture code can be generic over the disturb model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IsolatedCell;

impl IsolatedCell {
    /// Leaked energy is always zero.
    pub fn leaked_energy(&self, _write_energy: Energy) -> Energy {
        Energy::ZERO
    }

    /// Fraction shift is always zero.
    pub fn fraction_shift(&self, _write_energy: Energy) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minus_18_db_leak() {
        let xt = CrossbarCrosstalk::cosmos();
        let leaked = xt.leaked_energy(Energy::from_picojoules(750.0));
        // 750 pJ * 10^(-1.8) = 11.88 pJ.
        assert!((leaked.as_picojoules() - 11.88).abs() < 0.05);
    }

    #[test]
    fn paper_anchor_8_percent_shift() {
        let xt = CrossbarCrosstalk::cosmos();
        let shift = xt.fraction_shift(Energy::from_picojoules(750.0));
        assert!((shift - 0.0754).abs() < 0.01, "shift {shift}");
    }

    #[test]
    fn four_bit_cells_corrupt_within_a_few_writes() {
        // 16 levels over ~0.9 fraction span: margin = 0.9/15/2 = 3%.
        // At ~7.5% shift per write, a single adjacent write corrupts.
        let xt = CrossbarCrosstalk::cosmos();
        let n = xt.writes_to_corruption(Energy::from_picojoules(750.0), 16, 0.9);
        assert_eq!(n, 1, "4-bit crossbar cells corrupt after {n} writes");
    }

    #[test]
    fn two_bit_cells_with_9_percent_spacing_tolerate_more() {
        // The corrected COSMOS: 4 levels spaced by 9% transmission
        // (fraction span ~0.27 over 4 levels -> 4.5% margin).
        let xt = CrossbarCrosstalk::cosmos();
        let n4 = xt.writes_to_corruption(Energy::from_picojoules(750.0), 16, 0.9);
        let n2 = xt.writes_to_corruption(Energy::from_picojoules(750.0), 4, 0.9);
        assert!(n2 > n4, "fewer levels should tolerate more writes");
    }

    #[test]
    fn isolated_cell_never_shifts() {
        let iso = IsolatedCell;
        assert_eq!(iso.fraction_shift(Energy::from_picojoules(750.0)), 0.0);
        assert_eq!(
            iso.leaked_energy(Energy::from_picojoules(750.0)),
            Energy::ZERO
        );
    }

    #[test]
    fn weaker_coupling_tolerates_more_writes() {
        let strong = CrossbarCrosstalk::cosmos();
        let weak = CrossbarCrosstalk {
            coupling: Decibels::new(30.0),
            ..strong
        };
        let e = Energy::from_picojoules(750.0);
        assert!(weak.writes_to_corruption(e, 16, 0.9) > strong.writes_to_corruption(e, 16, 0.9));
    }
}
