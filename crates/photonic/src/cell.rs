//! The cross-layer cell contract: what the circuit layer needs to know
//! about a memory cell's optics, and where those numbers come from.
//!
//! COMET's central claim is *cross-layer* optimization: read-out margins,
//! gain-LUT granularity and laser sizing all follow from the physical
//! transmission range of a GST-on-waveguide cell. This module makes that
//! dependency literal. [`CellOpticalModel`] is the contract — a cell is,
//! to the circuit layer, a transmission range, an insertion loss and a
//! level spacing — and two providers implement it:
//!
//! * [`PaperCellModel`] — the constants transcribed from the paper
//!   (levels from 0.95 down to 0.05, ≈6 % spacing at 4 bits), kept so
//!   evaluation binaries reproduce the published figures exactly;
//! * [`DerivedCellModel`] — the same quantities *derived* from the
//!   device-physics layer ([`opcm_phys::CellOpticalModel`]'s calibrated
//!   transmission model), so every downstream readout/BER/ablation result
//!   can run against real physics instead of transcribed numbers.
//!
//! [`CellModelMode`] selects between them; architecture configurations and
//! `comet-lab` campaign grids carry the mode so derived-vs-paper can be
//! swept like any other axis. The two providers are intentionally close —
//! the parity test in `tests/properties.rs` pins the divergence — but not
//! identical: the physics-derived amorphous state is slightly *more*
//! transmissive than the paper's 0.95 top level, which is exactly the kind
//! of divergence the `fig6_levels`/`fig7_power_comet`/`table1_params`
//! binaries tabulate.
//!
//! # Example: a derived transmission level feeding the read-out budget
//!
//! ```
//! use photonic::{CellModelMode, CellOpticalModel, DerivedCellModel, LevelBudget};
//!
//! // Physics-derived 4-bit levels...
//! let cell = DerivedCellModel::comet_gst();
//! let levels = cell.transmission_levels(4);
//! assert_eq!(levels.len(), 16);
//! // ...feed the read-out loss budget: the real level spacing sets how
//! // much loss a read can absorb before adjacent levels merge.
//! let budget = LevelBudget::for_cell(4, &cell);
//! assert!(budget.loss_tolerance.value() < 0.3, "b=4 margins are tight");
//! // The paper-constants provider is the other side of the same contract:
//! let paper = CellModelMode::Paper.model();
//! let paper_budget = LevelBudget::for_cell(4, paper.as_ref());
//! assert!((budget.loss_tolerance.value() - paper_budget.loss_tolerance.value()).abs() < 0.1);
//! ```

use crate::readout::LevelBudget;
use comet_units::{Decibels, Length, Transmittance};
use opcm_phys::{reference_wavelength, CellOpticalModel as PhysCellOptics, ProgramTable};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The circuit layer's view of a memory cell: a transmission range that
/// multi-level read-outs slice into levels.
///
/// Implementors provide the two endpoint transmittances (fully amorphous
/// and fully crystalline, i.e. the most and least transmissive states) and
/// the crystalline-fraction span those endpoints correspond to; everything
/// the circuit layer consumes — equally spaced levels, spacing, insertion
/// loss, loss budgets — is derived from them by the provided methods, so
/// both providers slice their range identically.
pub trait CellOpticalModel {
    /// Provenance label for report rows (`"paper"` or `"derived"`).
    fn source(&self) -> &'static str;

    /// Transmittance of the most transmissive (fully amorphous) state —
    /// the top read-out level.
    fn max_transmittance(&self) -> Transmittance;

    /// Transmittance of the least transmissive usable (deepest
    /// crystalline) state — the bottom read-out level.
    fn min_transmittance(&self) -> Transmittance;

    /// Crystalline-fraction span between the outermost levels (what the
    /// crossbar disturb model divides into corruption margins).
    fn fraction_span(&self) -> f64;

    /// Insertion loss of the most transmissive state: what an amorphous
    /// cell costs an [`OpticalPath`](crate::OpticalPath) it sits on.
    fn insertion_loss(&self) -> Decibels {
        self.max_transmittance().to_decibels()
    }

    /// `2^bits` equally spaced transmission levels across the cell's
    /// range, index 0 = most transmissive (the paper's Fig. 6 layout).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 6`.
    fn transmission_levels(&self, bits: u8) -> Vec<Transmittance> {
        assert!((1..=6).contains(&bits), "bits must be in 1..=6");
        let n = 1u16 << bits;
        let top = self.max_transmittance().value();
        let spacing = self.level_spacing(bits);
        (0..n)
            .map(|k| Transmittance::new(top - spacing * k as f64))
            .collect()
    }

    /// Spacing between adjacent level transmittances (≈0.06 at 4 bits).
    fn level_spacing(&self, bits: u8) -> f64 {
        assert!((1..=6).contains(&bits), "bits must be in 1..=6");
        let n = 1u16 << bits;
        let span = self.max_transmittance().value() - self.min_transmittance().value();
        span / (n - 1) as f64
    }
}

impl fmt::Debug for dyn CellOpticalModel + Send + Sync {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CellOpticalModel({}: {:.3}..{:.3})",
            self.source(),
            self.min_transmittance().value(),
            self.max_transmittance().value()
        )
    }
}

/// The paper's transcribed cell constants.
///
/// Levels span 0.95 down to 0.05 (Section III.B quotes ≈95 % transmission
/// contrast; Fig. 6 slices it into 16 levels ≈6 % apart) over ≈0.9 of
/// crystalline fraction. This is the provider evaluation binaries default
/// to, so published-figure reproductions stay pinned to the paper even as
/// the physics layer is recalibrated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperCellModel {
    /// Top (most transmissive) level transmittance.
    pub top: f64,
    /// Bottom (deepest) level transmittance.
    pub bottom: f64,
    /// Crystalline-fraction span between the outermost levels.
    pub span: f64,
}

impl PaperCellModel {
    /// The constants as transcribed from the paper: levels 0.95 → 0.05
    /// over a 0.9 crystalline-fraction span.
    pub fn paper_constants() -> Self {
        PaperCellModel {
            top: 0.95,
            bottom: 0.05,
            span: 0.9,
        }
    }
}

impl Default for PaperCellModel {
    fn default() -> Self {
        Self::paper_constants()
    }
}

impl CellOpticalModel for PaperCellModel {
    fn source(&self) -> &'static str {
        "paper"
    }

    fn max_transmittance(&self) -> Transmittance {
        Transmittance::new(self.top)
    }

    fn min_transmittance(&self) -> Transmittance {
        Transmittance::new(self.bottom)
    }

    fn fraction_span(&self) -> f64 {
        self.span
    }
}

/// A physics-derived cell model: the device layer's calibrated
/// transmission curve ([`opcm_phys::CellOpticalModel`]) sampled at a fixed
/// read-out wavelength.
///
/// The endpoints come from `T(p)` at `p = 0` (amorphous) and `p = 1`
/// (crystalline) with the same crystalline-end guard band the
/// physics-layer programming tables apply (fully crystalline cells are
/// asymptotically slow to program and suffer the worst read-out loss), and
/// the fraction span is found by inverting `T(p)` — so the circuit layer's
/// level grid is exactly the grid [`opcm_phys::ProgramTable`] programs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DerivedCellModel {
    /// The device-physics transmission model.
    pub cell: PhysCellOptics,
    /// Read-out wavelength the contract is evaluated at.
    pub wavelength: Length,
}

impl DerivedCellModel {
    /// The COMET GST cell (480 nm × 20 nm × 2 µm on 480×220 SOI) at the
    /// 1550 nm reference wavelength.
    pub fn comet_gst() -> Self {
        DerivedCellModel {
            cell: PhysCellOptics::comet_gst(),
            wavelength: reference_wavelength(),
        }
    }

    /// A derived model over an explicit cell and wavelength.
    pub fn new(cell: PhysCellOptics, wavelength: Length) -> Self {
        DerivedCellModel { cell, wavelength }
    }
}

impl CellOpticalModel for DerivedCellModel {
    fn source(&self) -> &'static str {
        "derived"
    }

    fn max_transmittance(&self) -> Transmittance {
        let (_, t_max) = ProgramTable::usable_transmittance_range(&self.cell, self.wavelength);
        Transmittance::new(t_max)
    }

    fn min_transmittance(&self) -> Transmittance {
        // The single authority on the usable range (guard band included)
        // lives in the physics layer, so this grid is exactly the grid
        // ProgramTable programs.
        let (t_min, _) = ProgramTable::usable_transmittance_range(&self.cell, self.wavelength);
        Transmittance::new(t_min)
    }

    fn fraction_span(&self) -> f64 {
        let top = self
            .cell
            .fraction_for_transmittance(self.max_transmittance(), self.wavelength)
            .unwrap_or(0.0);
        let bottom = self
            .cell
            .fraction_for_transmittance(self.min_transmittance(), self.wavelength)
            .unwrap_or(1.0);
        bottom - top
    }
}

/// Which cell-model provider an architecture configuration (or a
/// `comet-lab` campaign cell) uses.
///
/// `Paper` keeps evaluation pinned to the transcribed constants (the
/// published-figure reproductions); `Derived` resolves the same contract
/// from the device-physics layer. Sweeping both in one grid is how the
/// divergence between transcription and physics is measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CellModelMode {
    /// Transcribed paper constants ([`PaperCellModel::paper_constants`]).
    #[default]
    Paper,
    /// Physics-derived ([`DerivedCellModel::comet_gst`]).
    Derived,
}

impl CellModelMode {
    /// Both modes, paper first (the evaluation default).
    pub const ALL: [CellModelMode; 2] = [CellModelMode::Paper, CellModelMode::Derived];

    /// Resolves the mode to its provider.
    pub fn model(self) -> Box<dyn CellOpticalModel + Send + Sync> {
        match self {
            CellModelMode::Paper => Box::new(PaperCellModel::paper_constants()),
            CellModelMode::Derived => Box::new(DerivedCellModel::comet_gst()),
        }
    }
}

impl fmt::Display for CellModelMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellModelMode::Paper => write!(f, "paper"),
            CellModelMode::Derived => write!(f, "derived"),
        }
    }
}

impl FromStr for CellModelMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "paper" => Ok(CellModelMode::Paper),
            "derived" => Ok(CellModelMode::Derived),
            other => Err(format!("unknown cell model mode {other:?} (paper|derived)")),
        }
    }
}

impl LevelBudget {
    /// The loss budget of a `bits`-per-cell read-out over a *real* cell's
    /// transmission range (rather than the idealized full-scale `[0, 1]`
    /// range [`LevelBudget::for_bits`] assumes).
    ///
    /// A uniform optical loss scales every level by the same linear
    /// factor, so the top level drifts the most; decoding breaks when that
    /// drift reaches half a level spacing. The tolerable fractional loss
    /// is therefore `spacing / (2 · T_top)`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 6`.
    pub fn for_cell(bits: u8, cell: &dyn CellOpticalModel) -> Self {
        assert!((1..=6).contains(&bits), "bits must be in 1..=6");
        let levels = 1u16 << bits;
        let spacing = cell.level_spacing(bits);
        let fractional_tolerance = spacing / (2.0 * cell.max_transmittance().value());
        LevelBudget {
            bits,
            levels,
            fractional_tolerance,
            loss_tolerance: Decibels::from_linear(1.0 - fractional_tolerance),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_match_the_transcribed_codec() {
        let m = PaperCellModel::paper_constants();
        let levels = m.transmission_levels(4);
        assert_eq!(levels.len(), 16);
        assert!((levels[0].value() - 0.95).abs() < 1e-12);
        assert!((levels[15].value() - 0.05).abs() < 1e-12);
        assert!((m.level_spacing(4) - 0.06).abs() < 1e-12);
        assert_eq!(m.source(), "paper");
    }

    #[test]
    fn derived_model_resolves_from_physics() {
        let m = DerivedCellModel::comet_gst();
        assert_eq!(m.source(), "derived");
        // The physics-derived amorphous cell is nearly transparent...
        assert!(m.max_transmittance().value() > 0.9);
        // ...and the usable range still hosts 16 distinguishable levels.
        assert!(m.level_spacing(4) > 0.02);
        // The fraction span covers most of the phase range.
        let span = m.fraction_span();
        assert!((0.3..=1.0).contains(&span), "span {span}");
    }

    #[test]
    fn levels_are_strictly_decreasing_in_both_providers() {
        for mode in CellModelMode::ALL {
            let m = mode.model();
            for bits in 1..=6u8 {
                let levels = m.transmission_levels(bits);
                assert_eq!(levels.len(), 1 << bits);
                for w in levels.windows(2) {
                    assert!(w[0].value() > w[1].value(), "{mode} b={bits}");
                }
            }
        }
    }

    #[test]
    fn insertion_loss_orders_with_transmittance() {
        let paper = PaperCellModel::paper_constants();
        let derived = DerivedCellModel::comet_gst();
        // The derived amorphous state is more transmissive than the
        // paper's 0.95 top level, so its insertion loss is smaller.
        assert!(derived.insertion_loss().value() < paper.insertion_loss().value());
        assert!(paper.insertion_loss().value() < 0.3);
    }

    #[test]
    fn budget_tightens_with_bits_for_real_cells() {
        for mode in CellModelMode::ALL {
            let m = mode.model();
            let mut last = f64::INFINITY;
            for bits in 1..=6u8 {
                let b = LevelBudget::for_cell(bits, m.as_ref());
                assert!(b.loss_tolerance.value() < last, "{mode} b={bits}");
                last = b.loss_tolerance.value();
            }
        }
    }

    #[test]
    fn mode_round_trips_through_strings() {
        for mode in CellModelMode::ALL {
            let s = mode.to_string();
            assert_eq!(s.parse::<CellModelMode>().unwrap(), mode);
        }
        assert!("lumerical".parse::<CellModelMode>().is_err());
    }

    #[test]
    fn default_mode_is_paper() {
        assert_eq!(CellModelMode::default(), CellModelMode::Paper);
    }
}
