//! The optical loss and power parameters of the paper's Table I.
//!
//! Every architecture-level power/loss computation in the workspace pulls
//! its constants from [`OpticalParams`] so that a single table (defaulting
//! to the paper's values, with citations preserved in the field docs)
//! parameterizes the whole stack, and sensitivity studies can sweep it.

use comet_units::{Decibels, Length, Power};
use serde::{Deserialize, Serialize};

/// Optical loss and power parameters (paper Table I).
///
/// # Examples
///
/// ```
/// use photonic::OpticalParams;
///
/// let p = OpticalParams::default();
/// assert_eq!(p.coupling_loss.value(), 1.0);
/// assert_eq!(p.laser_wall_plug_efficiency, 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpticalParams {
    /// Fiber/laser-to-chip coupling loss (1 dB, Batten et al. \[33]).
    pub coupling_loss: Decibels,
    /// Passive microring drop loss (0.5 dB, Yahya et al. \[34]).
    pub mr_drop_loss: Decibels,
    /// Passive microring through loss (0.02 dB, Pasricha & Bahirat \[35]).
    pub mr_through_loss: Decibels,
    /// Electro-optically tuned microring drop loss (1.6 dB, Poon et al. \[36]).
    pub eo_mr_drop_loss: Decibels,
    /// Electro-optically tuned microring through loss (0.33 dB, \[36]).
    pub eo_mr_through_loss: Decibels,
    /// Waveguide propagation loss per centimetre (0.1 dB/cm, Zhang et al. \[37]).
    pub propagation_loss_per_cm: Decibels,
    /// Bend loss per 90° (0.01 dB, Behadori et al. \[38]).
    pub bend_loss_per_90: Decibels,
    /// GST waveguide-switch insertion loss in the coupled (amorphous)
    /// state (0.2 dB, Taheri et al. \[39]).
    pub gst_switch_loss: Decibels,
    /// Nominal SOA gain available for loss compensation (20 dB, Table I).
    pub soa_gain: Decibels,
    /// Usable gain of the intra-subarray SOAs (15.2 dB, Lin et al. \[29]):
    /// sets the SOA re-amplification spacing inside subarrays.
    pub intra_subarray_soa_gain: Decibels,
    /// Laser wall-plug efficiency (20%).
    pub laser_wall_plug_efficiency: f64,
    /// Electro-optic tuning power per nm of resonance shift (4 µW/nm,
    /// Stefan et al. \[25]).
    pub eo_tuning_power_per_nm: Power,
    /// Maximum optical power allowed at a GST cell during normal
    /// (crystalline-reset-mode) operation (1 mW).
    pub max_power_at_cell: Power,
    /// Power drawn by one active intra-subarray SOA (1.4 mW for 0 dBm
    /// output, Lin et al. \[29]).
    pub intra_subarray_soa_power: Power,
}

impl Default for OpticalParams {
    fn default() -> Self {
        OpticalParams {
            coupling_loss: Decibels::new(1.0),
            mr_drop_loss: Decibels::new(0.5),
            mr_through_loss: Decibels::new(0.02),
            eo_mr_drop_loss: Decibels::new(1.6),
            eo_mr_through_loss: Decibels::new(0.33),
            propagation_loss_per_cm: Decibels::new(0.1),
            bend_loss_per_90: Decibels::new(0.01),
            gst_switch_loss: Decibels::new(0.2),
            soa_gain: Decibels::new(20.0),
            intra_subarray_soa_gain: Decibels::new(15.2),
            laser_wall_plug_efficiency: 0.2,
            eo_tuning_power_per_nm: Power::from_microwatts(4.0),
            max_power_at_cell: Power::from_milliwatts(1.0),
            intra_subarray_soa_power: Power::from_milliwatts(1.4),
        }
    }
}

impl OpticalParams {
    /// The paper's Table I values (same as `Default`).
    pub fn table_i() -> Self {
        Self::default()
    }

    /// Propagation loss over a waveguide run.
    pub fn propagation_loss(&self, length: Length) -> Decibels {
        self.propagation_loss_per_cm * length.as_centimeters()
    }

    /// Loss of `count` 90° bends.
    pub fn bend_loss(&self, count: u32) -> Decibels {
        self.bend_loss_per_90 * count as f64
    }

    /// EO tuning power for a given resonance shift.
    pub fn eo_tuning_power(&self, shift: Length) -> Power {
        Power::from_watts(self.eo_tuning_power_per_nm.as_watts() * shift.as_nanometers())
    }

    /// How many EO-tuned-MR row passes a signal can survive between
    /// re-amplification points, given the intra-subarray SOA gain:
    /// `floor(gain / through-loss)`. With Table I values this is the
    /// paper's "SOA array at every 46 rows".
    pub fn rows_per_soa_stage(&self) -> usize {
        (self.intra_subarray_soa_gain.value() / self.eo_mr_through_loss.value()).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_values() {
        let p = OpticalParams::table_i();
        assert_eq!(p.mr_drop_loss.value(), 0.5);
        assert_eq!(p.mr_through_loss.value(), 0.02);
        assert_eq!(p.eo_mr_drop_loss.value(), 1.6);
        assert_eq!(p.eo_mr_through_loss.value(), 0.33);
        assert_eq!(p.gst_switch_loss.value(), 0.2);
        assert_eq!(p.soa_gain.value(), 20.0);
        assert!((p.eo_tuning_power_per_nm.as_microwatts() - 4.0).abs() < 1e-12);
        assert!((p.intra_subarray_soa_power.as_milliwatts() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn soa_spacing_is_46_rows() {
        // 15.2 dB / 0.33 dB = 46.06 -> 46 rows, the paper's Section III.E.
        assert_eq!(OpticalParams::table_i().rows_per_soa_stage(), 46);
    }

    #[test]
    fn propagation_and_bends() {
        let p = OpticalParams::table_i();
        let run = p.propagation_loss(Length::from_centimeters(2.0));
        assert!((run.value() - 0.2).abs() < 1e-12);
        assert!((p.bend_loss(4).value() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn eo_tuning_power_scales_with_shift() {
        let p = OpticalParams::table_i();
        let one_nm = p.eo_tuning_power(Length::from_nanometers(1.0));
        assert!((one_nm.as_microwatts() - 4.0).abs() < 1e-12);
        let half = p.eo_tuning_power(Length::from_nanometers(0.5));
        assert!((half.as_microwatts() - 2.0).abs() < 1e-12);
    }
}
