//! Off-chip laser power model.
//!
//! COMET assumes an off-chip comb laser providing the `N_c` wavelengths
//! (Section III.C). The electrical power drawn is the optical power that
//! must be launched — computed from the target power at the GST cell and
//! the worst-case path loss — divided by the wall-plug efficiency (20 %,
//! Table I). Laser power dominates the photonic memory power stacks
//! (Fig. 8), which is why loss-aware design is the paper's central theme.

use crate::params::OpticalParams;
use crate::path::OpticalPath;
use comet_units::{Decibels, Power};
use serde::{Deserialize, Serialize};

/// An off-chip multi-wavelength laser source.
///
/// # Examples
///
/// ```
/// use comet_units::{Decibels, Power};
/// use photonic::Laser;
///
/// let laser = Laser::new(0.2);
/// // Delivering 1 mW through 10 dB of loss needs 10 mW optical,
/// // 50 mW electrical at 20% wall-plug efficiency:
/// let elec = laser.electrical_power_for_target(
///     Power::from_milliwatts(1.0),
///     Decibels::new(10.0),
/// );
/// assert!((elec.as_milliwatts() - 50.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Laser {
    /// Wall-plug efficiency in `(0, 1]`.
    pub wall_plug_efficiency: f64,
}

impl Laser {
    /// Creates a laser with a given wall-plug efficiency.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < efficiency <= 1`.
    pub fn new(wall_plug_efficiency: f64) -> Self {
        assert!(
            wall_plug_efficiency > 0.0 && wall_plug_efficiency <= 1.0,
            "wall-plug efficiency must be in (0,1], got {wall_plug_efficiency}"
        );
        Laser {
            wall_plug_efficiency,
        }
    }

    /// The paper's Table I laser (20 % wall-plug efficiency).
    pub fn table_i() -> Self {
        Laser::new(OpticalParams::table_i().laser_wall_plug_efficiency)
    }

    /// Optical launch power needed to deliver `target` through `loss`.
    pub fn launch_power_for_target(&self, target: Power, loss: Decibels) -> Power {
        target.amplify(loss)
    }

    /// Electrical (wall-plug) power to deliver `target` through `loss`.
    pub fn electrical_power_for_target(&self, target: Power, loss: Decibels) -> Power {
        self.launch_power_for_target(target, loss) / self.wall_plug_efficiency
    }

    /// Electrical power to drive one wavelength through a path so the
    /// destination receives `target`.
    pub fn electrical_power_for_path(
        &self,
        target: Power,
        path: &OpticalPath,
        params: &OpticalParams,
    ) -> Power {
        self.electrical_power_for_target(target, path.total_loss(params))
    }

    /// Total electrical power for `channels` identical wavelengths.
    pub fn electrical_power_for_channels(
        &self,
        target_per_channel: Power,
        loss: Decibels,
        channels: usize,
    ) -> Power {
        self.electrical_power_for_target(target_per_channel, loss) * channels as f64
    }
}

impl Default for Laser {
    fn default() -> Self {
        Self::table_i()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::PathElement;

    #[test]
    fn zero_loss_costs_only_efficiency() {
        let laser = Laser::new(0.2);
        let e = laser.electrical_power_for_target(Power::from_milliwatts(1.0), Decibels::ZERO);
        assert!((e.as_milliwatts() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn three_db_doubles_optical() {
        let laser = Laser::new(1.0);
        let e =
            laser.electrical_power_for_target(Power::from_milliwatts(1.0), Decibels::new(3.0103));
        assert!((e.as_milliwatts() - 2.0).abs() < 1e-3);
    }

    #[test]
    fn channels_scale_linearly() {
        let laser = Laser::table_i();
        let one =
            laser.electrical_power_for_target(Power::from_milliwatts(1.0), Decibels::new(5.0));
        let many = laser.electrical_power_for_channels(
            Power::from_milliwatts(1.0),
            Decibels::new(5.0),
            256,
        );
        assert!((many.as_watts() - one.as_watts() * 256.0).abs() < 1e-12);
    }

    #[test]
    fn path_based_power() {
        let laser = Laser::table_i();
        let params = OpticalParams::table_i();
        let mut path = OpticalPath::new();
        path.push(PathElement::Coupler); // 1 dB
        let e = laser.electrical_power_for_path(Power::from_milliwatts(1.0), &path, &params);
        // 1 mW * 10^(0.1) / 0.2 = 6.295 mW.
        assert!((e.as_milliwatts() - 6.295).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "wall-plug efficiency")]
    fn rejects_bad_efficiency() {
        let _ = Laser::new(0.0);
    }
}
