//! Photonic circuit elements and their signal-level effects.
//!
//! Each element maps to one row of the paper's Table I; an
//! [`OpticalPath`](crate::OpticalPath) strings elements together to produce
//! the loss budgets behind the laser-power model (Section III.E).

use crate::params::OpticalParams;
use comet_units::{Decibels, Length, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a microring resonator is moved in/out of resonance.
///
/// The paper's key circuit-level decision (Section II.B): thermal tuning is
/// nearly lossless but takes microseconds per access; electro-optic (EO)
/// carrier-injection tuning switches in ~2 ns at the cost of extra loss.
/// COMET chooses EO tuning and pays the loss with SOAs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MrTuning {
    /// Thermo-optic (heater) tuning: µs-scale, low loss.
    Thermal,
    /// Electro-optic (PN-junction carrier injection): ns-scale, lossy.
    ElectroOptic,
}

impl MrTuning {
    /// Typical tuning latency of the mechanism.
    pub fn latency(self) -> Time {
        match self {
            // PWM-driven thermally tuned MRs (paper ref [24]) settle in µs.
            MrTuning::Thermal => Time::from_micros(4.0),
            // EO tuning via carrier injection (paper refs [25],[36]): ~2 ns.
            MrTuning::ElectroOptic => Time::from_nanos(2.0),
        }
    }

    /// Through-port loss of an MR tuned with this mechanism.
    pub fn through_loss(self, params: &OpticalParams) -> Decibels {
        match self {
            MrTuning::Thermal => params.mr_through_loss,
            MrTuning::ElectroOptic => params.eo_mr_through_loss,
        }
    }

    /// Drop-port loss of an MR tuned with this mechanism.
    pub fn drop_loss(self, params: &OpticalParams) -> Decibels {
        match self {
            MrTuning::Thermal => params.mr_drop_loss,
            MrTuning::ElectroOptic => params.eo_mr_drop_loss,
        }
    }
}

impl fmt::Display for MrTuning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrTuning::Thermal => write!(f, "thermal"),
            MrTuning::ElectroOptic => write!(f, "electro-optic"),
        }
    }
}

/// One element along an optical signal path.
///
/// Losses are positive [`Decibels`]; the SOA is the only gain element and
/// contributes a negative net figure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PathElement {
    /// Laser/fiber to chip coupler.
    Coupler,
    /// Passive MR passed on its through port.
    MrThrough,
    /// Passive MR used as a drop filter.
    MrDrop,
    /// Actively tuned MR passed on its through port.
    TunedMrThrough(MrTuning),
    /// Actively tuned MR dropping the signal to a cell.
    TunedMrDrop(MrTuning),
    /// Straight waveguide propagation.
    Propagation(Length),
    /// `n` 90° bends.
    Bends(u32),
    /// GST-based waveguide switch in its coupled (amorphous) state.
    GstSwitch,
    /// A 1:N optical power splitter (3.01 dB per doubling, ideal).
    Splitter {
        /// Number of output ways.
        ways: u32,
    },
    /// A PCM memory cell in its most transmissive (amorphous) state,
    /// carrying the insertion loss its
    /// [`CellOpticalModel`](crate::CellOpticalModel) reports — see
    /// [`OpticalPath::push_cell`](crate::OpticalPath::push_cell).
    Cell(Decibels),
    /// A fixed extra loss (e.g. a PCM cell at a known state).
    Fixed(Decibels),
    /// A semiconductor optical amplifier providing gain.
    Soa {
        /// Gain provided (positive value).
        gain: Decibels,
    },
}

impl PathElement {
    /// The net signal-level change of this element: positive = loss,
    /// negative = gain.
    pub fn net_loss(&self, params: &OpticalParams) -> Decibels {
        match *self {
            PathElement::Coupler => params.coupling_loss,
            PathElement::MrThrough => params.mr_through_loss,
            PathElement::MrDrop => params.mr_drop_loss,
            PathElement::TunedMrThrough(t) => t.through_loss(params),
            PathElement::TunedMrDrop(t) => t.drop_loss(params),
            PathElement::Propagation(len) => params.propagation_loss(len),
            PathElement::Bends(n) => params.bend_loss(n),
            PathElement::GstSwitch => params.gst_switch_loss,
            PathElement::Splitter { ways } => {
                assert!(ways >= 1, "splitter must have at least one way");
                Decibels::new(10.0 * (ways as f64).log10())
            }
            PathElement::Cell(insertion) => insertion,
            PathElement::Fixed(db) => db,
            PathElement::Soa { gain } => -gain,
        }
    }

    /// Whether this element amplifies rather than attenuates.
    pub fn is_gain(&self) -> bool {
        matches!(self, PathElement::Soa { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OpticalParams {
        OpticalParams::table_i()
    }

    #[test]
    fn eo_vs_thermal_tradeoff() {
        // EO is ~2000x faster but ~16x lossier on the through port —
        // the crux of the paper's Section II.B argument.
        let p = params();
        let eo = MrTuning::ElectroOptic;
        let th = MrTuning::Thermal;
        assert!(th.latency() / eo.latency() > 1000.0);
        assert!(eo.through_loss(&p).value() / th.through_loss(&p).value() > 10.0);
    }

    #[test]
    fn element_losses_match_table_i() {
        let p = params();
        assert_eq!(PathElement::Coupler.net_loss(&p).value(), 1.0);
        assert_eq!(PathElement::MrThrough.net_loss(&p).value(), 0.02);
        assert_eq!(
            PathElement::TunedMrDrop(MrTuning::ElectroOptic)
                .net_loss(&p)
                .value(),
            1.6
        );
        assert_eq!(PathElement::GstSwitch.net_loss(&p).value(), 0.2);
    }

    #[test]
    fn splitter_loss_is_logarithmic() {
        let p = params();
        let two = PathElement::Splitter { ways: 2 }.net_loss(&p).value();
        let four = PathElement::Splitter { ways: 4 }.net_loss(&p).value();
        assert!((two - 3.0103).abs() < 1e-3);
        assert!((four - 2.0 * two).abs() < 1e-9);
    }

    #[test]
    fn soa_is_negative_loss() {
        let p = params();
        let soa = PathElement::Soa {
            gain: Decibels::new(15.2),
        };
        assert!(soa.is_gain());
        assert_eq!(soa.net_loss(&p).value(), -15.2);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_way_splitter_rejected() {
        let _ = PathElement::Splitter { ways: 0 }.net_loss(&params());
    }
}
