//! Read-out signal integrity: loss tolerance, SNR and error probability.
//!
//! Section III.C of the paper derives per-bit-density loss tolerances: with
//! `b` bits per cell the transmission levels sit `~1/(2^b−1)` apart, so the
//! read-out can only lose so much before adjacent levels are confused —
//! *"For b=2, the transmitted signal can suffer up to 25 % or 1.2 dB of
//! losses before a readout of '10' becomes the same as the readout for
//! '01'. For b=4 ... less than 6 % losses or 0.26 dB."* These numbers set
//! the SOA gain-tuning LUT granularity in the COMET controller.

use comet_units::{Decibels, Power};
use serde::{Deserialize, Serialize};

/// Loss tolerance of a `b`-bit multi-level read-out.
///
/// With `2^b` equally spaced levels spanning the full transmission range,
/// adjacent levels are `1/(2^b − 1)` apart; a read-out is corrupted when it
/// drifts by half a spacing. Expressed as tolerable *fractional* loss of the
/// strongest level and its dB equivalent.
///
/// # Examples
///
/// ```
/// use photonic::LevelBudget;
///
/// let b2 = LevelBudget::for_bits(2);
/// assert!((b2.fractional_tolerance - 0.1667).abs() < 0.01);
/// let b4 = LevelBudget::for_bits(4);
/// assert!(b4.loss_tolerance.value() < b2.loss_tolerance.value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelBudget {
    /// Bits per cell.
    pub bits: u8,
    /// Number of levels (`2^bits`).
    pub levels: u16,
    /// Tolerable fractional signal loss before adjacent levels merge
    /// (half of one level spacing).
    pub fractional_tolerance: f64,
    /// The same tolerance expressed as an optical loss.
    pub loss_tolerance: Decibels,
}

impl LevelBudget {
    /// Computes the budget for `bits` per cell.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 8`.
    pub fn for_bits(bits: u8) -> Self {
        assert!((1..=8).contains(&bits), "bits must be in 1..=8");
        let levels = 1u16 << bits;
        let spacing = 1.0 / (levels - 1) as f64;
        let fractional_tolerance = spacing / 2.0;
        LevelBudget {
            bits,
            levels,
            fractional_tolerance,
            loss_tolerance: Decibels::from_linear(1.0 - fractional_tolerance),
        }
    }

    /// How many cascaded elements of loss `per_element` a signal can absorb
    /// before decoding becomes ambiguous.
    pub fn elements_within_budget(&self, per_element: Decibels) -> usize {
        if per_element.value() <= 0.0 {
            return usize::MAX;
        }
        (self.loss_tolerance.value() / per_element.value()).floor() as usize
    }
}

/// A p-i-n photodetector read-out chain.
///
/// Converts received optical power into an electrical SNR and a
/// probability that one multi-level read lands in the wrong level bin.
/// Gaussian noise with shot + thermal contributions; the level decision is
/// a nearest-neighbour slicer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Photodetector {
    /// Responsivity, A/W.
    pub responsivity: f64,
    /// Input-referred RMS noise current, A (thermal + TIA).
    pub noise_current: f64,
    /// Detection bandwidth, Hz.
    pub bandwidth: f64,
}

impl Photodetector {
    /// A typical 10 GHz germanium detector front-end.
    pub fn ge_10ghz() -> Self {
        Photodetector {
            responsivity: 1.0,
            noise_current: 1.5e-6,
            bandwidth: 10e9,
        }
    }

    /// RMS noise current including shot noise at a received power.
    pub fn total_noise_current(&self, received: Power) -> f64 {
        const Q: f64 = 1.602_176_634e-19;
        let photocurrent = self.responsivity * received.as_watts();
        let shot = (2.0 * Q * photocurrent * self.bandwidth).sqrt();
        (shot * shot + self.noise_current * self.noise_current).sqrt()
    }

    /// Electrical SNR (power ratio, not dB) of a *full-scale* signal at
    /// `received` power.
    pub fn snr(&self, received: Power) -> f64 {
        let signal = self.responsivity * received.as_watts();
        let noise = self.total_noise_current(received);
        (signal / noise) * (signal / noise)
    }

    /// Probability that one read of a `2^bits`-level cell decodes to the
    /// wrong level, given `received` full-scale optical power.
    ///
    /// Adjacent-level error with Gaussian noise:
    /// `P ≈ erfc(d / (2√2 σ))` with `d` the level spacing in photocurrent.
    pub fn level_error_probability(&self, received: Power, bits: u8) -> f64 {
        let levels = (1u32 << bits) as f64;
        let full_scale = self.responsivity * received.as_watts();
        let spacing = full_scale / (levels - 1.0);
        let sigma = self.total_noise_current(received);
        let z = spacing / (2.0 * std::f64::consts::SQRT_2 * sigma);
        erfc(z)
    }

    /// [`Photodetector::level_error_probability`] for a *real* cell: the
    /// level spacing in photocurrent follows the cell model's actual
    /// transmission range instead of the idealized full-scale `[0, 1]`.
    ///
    /// `received` is the power arriving for a fully transparent cell; the
    /// top level receives `received · T_top` and adjacent levels sit
    /// `received · spacing` apart in optical power.
    ///
    /// ```
    /// use comet_units::Power;
    /// use photonic::{DerivedCellModel, Photodetector};
    ///
    /// // A physics-derived transmission grid feeding the read-out chain:
    /// let cell = DerivedCellModel::comet_gst();
    /// let d = Photodetector::ge_10ghz();
    /// let p = Power::from_microwatts(50.0);
    /// let real = d.level_error_probability_for_cell(p, 4, &cell);
    /// let ideal = d.level_error_probability(p, 4);
    /// // The real range is narrower than full scale, so errors are likelier.
    /// assert!(real >= ideal);
    /// assert!(real < 0.5);
    /// ```
    pub fn level_error_probability_for_cell(
        &self,
        received: Power,
        bits: u8,
        cell: &dyn crate::CellOpticalModel,
    ) -> f64 {
        let full_scale = self.responsivity * received.as_watts();
        let spacing = full_scale * cell.level_spacing(bits);
        let top = Power::from_watts(received.as_watts() * cell.max_transmittance().value());
        let sigma = self.total_noise_current(top);
        let z = spacing / (2.0 * std::f64::consts::SQRT_2 * sigma);
        erfc(z)
    }

    /// Minimum received power for the level-error probability to drop
    /// below `target` at `bits` per cell (binary search over power).
    pub fn min_power_for_error(&self, bits: u8, target: f64) -> Power {
        let (mut lo, mut hi) = (1e-9f64, 1.0f64); // 1 nW .. 1 W
        for _ in 0..80 {
            let mid = (lo * hi).sqrt();
            if self.level_error_probability(Power::from_watts(mid), bits) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Power::from_watts(hi)
    }
}

impl Default for Photodetector {
    fn default() -> Self {
        Self::ge_10ghz()
    }
}

/// Complementary error function (Abramowitz–Stegun 7.1.26 rational
/// approximation; max absolute error ≈ 1.5e-7 — ample for BER estimates).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    poly * (-x * x).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_loss_tolerances() {
        // b=2: 25% fractional tolerance... the paper's "up to 25% or 1.2 dB"
        // treats a full level spacing as the merge point; our budget uses
        // the stricter half-spacing margin of 16.7% (0.79 dB). b=4: paper
        // says <6% or 0.26 dB; half-spacing gives 3.3% (0.15 dB).
        let b2 = LevelBudget::for_bits(2);
        assert!((b2.fractional_tolerance - 1.0 / 6.0).abs() < 1e-9);
        assert!((0.5..=1.3).contains(&b2.loss_tolerance.value()));

        let b4 = LevelBudget::for_bits(4);
        assert!((b4.fractional_tolerance - 1.0 / 30.0).abs() < 1e-9);
        assert!(b4.loss_tolerance.value() < 0.3);

        let b1 = LevelBudget::for_bits(1);
        assert!(b1.loss_tolerance.value() > 2.9); // ~3 dB for binary cells
    }

    #[test]
    fn budget_element_counts() {
        // b=1 signals survive ~9 EO-MR rows (paper Section IV.A).
        let b1 = LevelBudget::for_bits(1);
        let rows = b1.elements_within_budget(Decibels::new(0.33));
        assert_eq!(rows, 9);
    }

    #[test]
    fn more_bits_less_tolerance() {
        let mut last = f64::INFINITY;
        for bits in 1..=6 {
            let t = LevelBudget::for_bits(bits).loss_tolerance.value();
            assert!(t < last);
            last = t;
        }
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_7).abs() < 1e-6);
        assert!((erfc(-1.0) - (2.0 - 0.157_299_2)).abs() < 1e-6);
    }

    #[test]
    fn snr_grows_with_power() {
        let d = Photodetector::ge_10ghz();
        let low = d.snr(Power::from_microwatts(1.0));
        let high = d.snr(Power::from_microwatts(100.0));
        assert!(high > low * 10.0);
    }

    #[test]
    fn error_probability_falls_with_power() {
        let d = Photodetector::ge_10ghz();
        let high_p = d.level_error_probability(Power::from_microwatts(100.0), 4);
        let low_p = d.level_error_probability(Power::from_microwatts(1.0), 4);
        assert!(high_p < low_p);
    }

    #[test]
    fn min_power_ordering_with_bits() {
        // More bits per cell need more received power for the same BER.
        let d = Photodetector::ge_10ghz();
        let p1 = d.min_power_for_error(1, 1e-12);
        let p4 = d.min_power_for_error(4, 1e-12);
        assert!(p4 > p1);
        // Sanity: microwatt-scale received power suffices for b=4.
        assert!(p4 < Power::from_milliwatts(1.0));
    }

    #[test]
    fn min_power_meets_target() {
        let d = Photodetector::ge_10ghz();
        let target = 1e-9;
        let p = d.min_power_for_error(4, target);
        assert!(d.level_error_probability(p, 4) <= target * 1.01);
    }
}
