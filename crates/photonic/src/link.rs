//! WDM × MDM photonic links.
//!
//! COMET multiplexes accesses two ways (Section III.C): each memory-array
//! column owns a WDM wavelength, and the `B = 4` banks are accessed in
//! parallel over 4 spatial modes (MDM). Higher-order modes confine less and
//! leak more, so the per-mode loss penalty grows with mode order — the
//! reason the paper caps the MDM degree at 4 (StarLight [28] demonstrated
//! 4 modes without notable loss).

use comet_units::{DataRate, Decibels, Frequency};
use serde::{Deserialize, Serialize};

/// Per-mode extra loss for MDM links.
///
/// Mode 0 (fundamental) is free; each higher mode adds progressively more
/// leakage loss. Quadratic growth models the rapidly decreasing confinement
/// of higher-order modes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModePenalty {
    /// Loss added for mode 1 (dB); higher modes scale quadratically.
    pub base: Decibels,
}

impl ModePenalty {
    /// Penalty calibrated so 4 modes remain "without notable losses" (< 1 dB
    /// worst mode) while 16 modes (COSMOS's implicit requirement) would be
    /// impractical.
    pub fn starlight() -> Self {
        ModePenalty {
            base: Decibels::new(0.1),
        }
    }

    /// Extra loss of mode index `mode` (0-based).
    pub fn loss_for_mode(&self, mode: usize) -> Decibels {
        self.base * (mode * mode) as f64
    }

    /// The worst-mode loss for an MDM degree.
    pub fn worst_mode_loss(&self, degree: usize) -> Decibels {
        if degree == 0 {
            Decibels::ZERO
        } else {
            self.loss_for_mode(degree - 1)
        }
    }
}

impl Default for ModePenalty {
    fn default() -> Self {
        Self::starlight()
    }
}

/// A wavelength- and mode-division multiplexed link.
///
/// # Examples
///
/// ```
/// use comet_units::Frequency;
/// use photonic::WdmMdmLink;
///
/// // COMET-4b: 256 wavelengths x 4 modes at 1 GHz modulation.
/// let link = WdmMdmLink::new(256, 4, Frequency::from_gigahertz(1.0));
/// assert_eq!(link.parallel_channels(), 1024);
/// // 1024 bit-channels at 1 Gb/s = 128 GB/s raw.
/// assert!((link.raw_bandwidth().as_gigabytes_per_second() - 128.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WdmMdmLink {
    /// Number of WDM wavelengths.
    pub wavelengths: usize,
    /// MDM degree (number of spatial modes).
    pub modes: usize,
    /// Per-channel modulation rate (1 bit per symbol assumed).
    pub modulation: Frequency,
    /// Mode-order loss penalty model.
    pub mode_penalty: ModePenalty,
}

impl WdmMdmLink {
    /// Creates a link with the default (StarLight-calibrated) mode penalty.
    ///
    /// # Panics
    ///
    /// Panics if `wavelengths` or `modes` is zero.
    pub fn new(wavelengths: usize, modes: usize, modulation: Frequency) -> Self {
        assert!(wavelengths > 0, "need at least one wavelength");
        assert!(modes > 0, "need at least one mode");
        WdmMdmLink {
            wavelengths,
            modes,
            modulation,
            mode_penalty: ModePenalty::default(),
        }
    }

    /// Total independent bit-channels (`wavelengths × modes`).
    pub fn parallel_channels(&self) -> usize {
        self.wavelengths * self.modes
    }

    /// Raw aggregate bandwidth: channels × modulation rate, in bytes/s.
    pub fn raw_bandwidth(&self) -> DataRate {
        let bits_per_second = self.parallel_channels() as f64 * self.modulation.as_hertz();
        DataRate::from_bytes_per_second(bits_per_second / 8.0)
    }

    /// Worst-case extra loss among the spatial modes.
    pub fn worst_mode_loss(&self) -> Decibels {
        self.mode_penalty.worst_mode_loss(self.modes)
    }

    /// Whether this MDM degree is practical by the paper's criterion
    /// (≤ 4 modes; beyond that losses and waveguide width grow quickly).
    pub fn is_practical_mdm(&self) -> bool {
        self.modes <= 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_math() {
        let link = WdmMdmLink::new(512, 2, Frequency::from_gigahertz(2.0));
        assert_eq!(link.parallel_channels(), 1024);
        assert!((link.raw_bandwidth().as_gigabits_per_second() - 2048.0).abs() < 1e-6);
    }

    #[test]
    fn four_modes_is_cheap_sixteen_is_not() {
        // The paper's MDM argument: degree 4 is nearly free, degree 16
        // (what COSMOS's 16 banks would need) is very lossy.
        let p = ModePenalty::starlight();
        assert!(p.worst_mode_loss(4).value() < 1.0);
        assert!(p.worst_mode_loss(16).value() > 10.0);
    }

    #[test]
    fn mode_penalty_grows_monotonically() {
        let p = ModePenalty::starlight();
        let mut last = Decibels::new(-1.0);
        for m in 0..8 {
            let l = p.loss_for_mode(m);
            assert!(l > last);
            last = l;
        }
    }

    #[test]
    fn practicality_check() {
        let f = Frequency::from_gigahertz(1.0);
        assert!(WdmMdmLink::new(256, 4, f).is_practical_mdm());
        assert!(!WdmMdmLink::new(256, 16, f).is_practical_mdm());
    }

    #[test]
    #[should_panic(expected = "at least one wavelength")]
    fn zero_wavelengths_rejected() {
        let _ = WdmMdmLink::new(0, 4, Frequency::from_gigahertz(1.0));
    }
}
