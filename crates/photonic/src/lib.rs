//! Silicon-photonic circuit substrate for the COMET reproduction.
//!
//! Models the circuit layer between the device physics (`opcm-phys`) and
//! the memory architecture (`comet` / `cosmos`):
//!
//! * [`CellOpticalModel`] — the cross-layer cell contract: transmission
//!   range, insertion loss and level spacing, provided either by the
//!   paper's transcribed constants ([`PaperCellModel`]) or derived from
//!   the device-physics layer ([`DerivedCellModel`]), selected by
//!   [`CellModelMode`];
//! * [`OpticalParams`] — the paper's Table I loss/power constants;
//! * [`PathElement`] / [`OpticalPath`] — composable loss budgets for laser
//!   power sizing and SOA placement;
//! * [`Microring`] — ring spectral response, FSR/finesse, channel limits;
//! * [`MrTuning`] — the thermal-vs-electro-optic access trade-off;
//! * [`WdmMdmLink`] — wavelength × mode multiplexed bandwidth and the
//!   MDM-degree practicality bound;
//! * [`Laser`] — wall-plug laser power from loss budgets;
//! * [`CrossbarCrosstalk`] — the COSMOS write-disturb failure model;
//! * [`LevelBudget`] / [`Photodetector`] — read-out loss tolerance per bit
//!   density and SNR/BER.
//!
//! # Derived vs paper constants
//!
//! Cell optics enter this layer through the [`CellOpticalModel`] trait,
//! never as free constants. Two providers implement it:
//! [`PaperCellModel::paper_constants`] carries the numbers transcribed
//! from the paper (levels 0.95 → 0.05, ≈6 % spacing at 4 bits), while
//! [`DerivedCellModel::comet_gst`] resolves the same quantities from
//! `opcm-phys`'s calibrated GST transmission model. Evaluation defaults to
//! `paper` so published figures reproduce exactly; the `derived` mode (and
//! the divergence between the two, tabulated by the `fig6_levels`,
//! `fig7_power_comet` and `table1_params` binaries and sweepable as a
//! `comet-lab` campaign axis) is how the cross-layer story stays honest.
//!
//! ```
//! use photonic::{CellModelMode, CellOpticalModel, LevelBudget};
//!
//! // A physics-derived transmission level feeding the read-out budget:
//! let derived = CellModelMode::Derived.model();
//! let top = derived.transmission_levels(2)[0];
//! assert!(top.value() > 0.9, "amorphous GST is nearly transparent");
//! let budget = LevelBudget::for_cell(2, derived.as_ref());
//! // 2-bit read-outs tolerate ~1 dB of uncompensated loss either way:
//! let paper = LevelBudget::for_cell(2, CellModelMode::Paper.model().as_ref());
//! assert!((budget.loss_tolerance.value() - paper.loss_tolerance.value()).abs() < 0.5);
//! ```
//!
//! # Quick start
//!
//! ```
//! use comet_units::Power;
//! use photonic::{Laser, MrTuning, OpticalParams, OpticalPath, PathElement};
//!
//! let params = OpticalParams::table_i();
//! // Access path: coupler, 46 through-rows, the cell-gating MR drop.
//! let mut path = OpticalPath::new();
//! path.push(PathElement::Coupler)
//!     .push_repeated(PathElement::TunedMrThrough(MrTuning::ElectroOptic), 46)
//!     .push(PathElement::TunedMrDrop(MrTuning::ElectroOptic));
//! // 46 rows of EO-MR through-loss ≈ one intra-subarray SOA stage of gain:
//! assert!(path.total_loss(&params).value() > 15.0);
//! let laser = Laser::table_i();
//! let wall_plug = laser.electrical_power_for_path(
//!     Power::from_milliwatts(1.0), &path, &params);
//! assert!(wall_plug.as_milliwatts() > 100.0); // why SOAs are mandatory
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cell;
mod crosstalk;
mod elements;
mod laser;
mod link;
mod mitigation;
mod mr;
mod params;
mod path;
mod readout;

pub use cell::{CellModelMode, CellOpticalModel, DerivedCellModel, PaperCellModel};
pub use crosstalk::{CrossbarCrosstalk, IsolatedCell};
pub use elements::{MrTuning, PathElement};
pub use laser::Laser;
pub use link::{ModePenalty, WdmMdmLink};
pub use mitigation::{FilterOrder, WdmCrosstalkAnalysis};
pub use mr::Microring;
pub use params::OpticalParams;
pub use path::OpticalPath;
pub use readout::{erfc, LevelBudget, Photodetector};
