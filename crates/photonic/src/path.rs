//! Optical path loss budgets.
//!
//! An [`OpticalPath`] is an ordered chain of [`PathElement`]s between a
//! source (laser or SOA stage) and a destination (cell or detector). It
//! answers the two questions the architecture layer keeps asking:
//!
//! 1. *How much power must the source launch so the destination receives a
//!    target power?* — drives the laser-power model (Fig. 7/8).
//! 2. *Does the signal level anywhere exceed/undershoot limits?* — drives
//!    SOA placement (the every-46-rows rule).

use crate::elements::PathElement;
use crate::params::OpticalParams;
use comet_units::{Decibels, Power};
use serde::{Deserialize, Serialize};

/// A chain of photonic elements traversed by one wavelength.
///
/// Non-consuming builder per [C-BUILDER]; `total_loss`/`required_input`
/// are the terminal computations.
///
/// # Examples
///
/// ```
/// use comet_units::{Length, Power};
/// use photonic::{MrTuning, OpticalParams, OpticalPath, PathElement};
///
/// let params = OpticalParams::table_i();
/// let mut path = OpticalPath::new();
/// path.push(PathElement::Coupler)
///     .push(PathElement::Propagation(Length::from_millimeters(5.0)))
///     .push(PathElement::TunedMrDrop(MrTuning::ElectroOptic));
/// let loss = path.total_loss(&params);
/// assert!((loss.value() - 2.65).abs() < 1e-9); // 1 + 0.05 + 1.6
///
/// // Laser power needed to deliver 1 mW at the cell:
/// let launch = path.required_input(Power::from_milliwatts(1.0), &params);
/// assert!(launch.as_milliwatts() > 1.8);
/// ```
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html#c-builder
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OpticalPath {
    elements: Vec<PathElement>,
}

impl OpticalPath {
    /// Creates an empty path.
    pub fn new() -> Self {
        OpticalPath::default()
    }

    /// Appends one element.
    pub fn push(&mut self, element: PathElement) -> &mut Self {
        self.elements.push(element);
        self
    }

    /// Appends `count` copies of an element.
    pub fn push_repeated(&mut self, element: PathElement, count: usize) -> &mut Self {
        self.elements.extend(std::iter::repeat(element).take(count));
        self
    }

    /// Appends all elements of another path.
    pub fn extend_from(&mut self, other: &OpticalPath) -> &mut Self {
        self.elements.extend_from_slice(&other.elements);
        self
    }

    /// Appends a memory cell in its most transmissive state, taking the
    /// insertion loss from a cell model — the cross-layer hook through
    /// which device physics enters a circuit-level loss budget.
    ///
    /// ```
    /// use photonic::{CellOpticalModel, DerivedCellModel, OpticalParams, OpticalPath, PathElement};
    ///
    /// let cell = DerivedCellModel::comet_gst();
    /// let mut path = OpticalPath::new();
    /// path.push(PathElement::Coupler).push_cell(&cell);
    /// let loss = path.total_loss(&OpticalParams::table_i());
    /// assert!(loss.value() > 1.0 && loss.value() < 1.5);
    /// ```
    pub fn push_cell(&mut self, cell: &dyn crate::CellOpticalModel) -> &mut Self {
        self.push(PathElement::Cell(cell.insertion_loss()))
    }

    /// The elements in traversal order.
    pub fn elements(&self) -> &[PathElement] {
        &self.elements
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the path is empty.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Net end-to-end loss (gains subtract; may be negative for an
    /// amplifying path).
    pub fn total_loss(&self, params: &OpticalParams) -> Decibels {
        self.elements.iter().map(|e| e.net_loss(params)).sum()
    }

    /// Loss counting only attenuating elements (ignores SOAs) — the
    /// figure SOA placement must cover.
    pub fn passive_loss(&self, params: &OpticalParams) -> Decibels {
        self.elements
            .iter()
            .filter(|e| !e.is_gain())
            .map(|e| e.net_loss(params))
            .sum()
    }

    /// The running signal level relative to the input, element by element;
    /// `out[i]` is the level after traversing element `i`.
    pub fn level_profile(&self, params: &OpticalParams) -> Vec<Decibels> {
        let mut level = Decibels::ZERO;
        self.elements
            .iter()
            .map(|e| {
                level += e.net_loss(params);
                -level
            })
            .collect()
    }

    /// The lowest signal level (relative to input, dB) reached anywhere
    /// along the path — the worst point for SNR.
    pub fn worst_level(&self, params: &OpticalParams) -> Decibels {
        self.level_profile(params)
            .into_iter()
            .fold(Decibels::ZERO, Decibels::min)
    }

    /// Input power required so the path output is `target`.
    pub fn required_input(&self, target: Power, params: &OpticalParams) -> Power {
        target.amplify(self.total_loss(params))
    }

    /// Output power for a given input power.
    pub fn output_power(&self, input: Power, params: &OpticalParams) -> Power {
        input.attenuate(self.total_loss(params))
    }
}

impl FromIterator<PathElement> for OpticalPath {
    fn from_iter<I: IntoIterator<Item = PathElement>>(iter: I) -> Self {
        OpticalPath {
            elements: iter.into_iter().collect(),
        }
    }
}

impl Extend<PathElement> for OpticalPath {
    fn extend<I: IntoIterator<Item = PathElement>>(&mut self, iter: I) {
        self.elements.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::MrTuning;
    use comet_units::Length;

    fn params() -> OpticalParams {
        OpticalParams::table_i()
    }

    #[test]
    fn empty_path_is_lossless() {
        let p = OpticalPath::new();
        assert!(p.is_empty());
        assert_eq!(p.total_loss(&params()), Decibels::ZERO);
        let one_mw = Power::from_milliwatts(1.0);
        assert_eq!(p.output_power(one_mw, &params()), one_mw);
    }

    #[test]
    fn losses_accumulate() {
        let mut p = OpticalPath::new();
        p.push(PathElement::Coupler)
            .push_repeated(PathElement::MrThrough, 10)
            .push(PathElement::TunedMrDrop(MrTuning::ElectroOptic));
        // 1.0 + 10*0.02 + 1.6 = 2.8 dB.
        assert!((p.total_loss(&params()).value() - 2.8).abs() < 1e-9);
    }

    #[test]
    fn soa_restores_level() {
        let mut p = OpticalPath::new();
        p.push(PathElement::Fixed(Decibels::new(15.2)))
            .push(PathElement::Soa {
                gain: Decibels::new(15.2),
            });
        assert!(p.total_loss(&params()).value().abs() < 1e-12);
        assert!((p.passive_loss(&params()).value() - 15.2).abs() < 1e-12);
    }

    #[test]
    fn worst_level_is_before_amplification() {
        let mut p = OpticalPath::new();
        p.push(PathElement::Fixed(Decibels::new(10.0)))
            .push(PathElement::Soa {
                gain: Decibels::new(10.0),
            })
            .push(PathElement::Fixed(Decibels::new(3.0)));
        let worst = p.worst_level(&params());
        assert!((worst.value() + 10.0).abs() < 1e-12);
    }

    #[test]
    fn required_input_roundtrip() {
        let mut p = OpticalPath::new();
        p.push(PathElement::Coupler)
            .push(PathElement::Propagation(Length::from_centimeters(1.0)))
            .push(PathElement::Bends(2))
            .push(PathElement::GstSwitch);
        let target = Power::from_milliwatts(1.0);
        let input = p.required_input(target, &params());
        let back = p.output_power(input, &params());
        assert!((back.as_watts() - target.as_watts()).abs() < 1e-18);
        assert!(input > target);
    }

    #[test]
    fn profile_length_matches_elements() {
        let mut p = OpticalPath::new();
        p.push_repeated(PathElement::MrThrough, 5);
        let profile = p.level_profile(&params());
        assert_eq!(profile.len(), 5);
        // Monotone decreasing for a purely passive path.
        for w in profile.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn collect_from_iterator() {
        let p: OpticalPath = (0..3).map(|_| PathElement::MrThrough).collect();
        assert_eq!(p.len(), 3);
    }
}
