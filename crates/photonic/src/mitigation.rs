//! Heterodyne crosstalk analysis and mitigation.
//!
//! The paper's conclusion names its ongoing work: *"exploring the
//! integration of approaches to reduce optical crosstalk \[49]–\[51] in the
//! proposed OPCM-based architecture"*. Those references are the
//! PICO / LIBRA / HYDRA line of work: in dense WDM buses, a microring
//! filter drops not only its own channel but a Lorentzian tail of every
//! neighbour — *heterodyne* crosstalk that beats against the signal at the
//! photodetector. Two of the mitigations those papers propose map directly
//! onto COMET's interface MR bank and are implemented here:
//!
//! * **Double-microring (second-order) filters** (\[51] HYDRA): cascading
//!   two rings squares the Lorentzian, steepening the skirt from
//!   20 dB/decade to 40 dB/decade of detuning — dramatically less
//!   neighbour pickup at the same channel spacing, for one extra ring's
//!   drop loss.
//! * **Channel-spacing / guard-band allocation** (\[49] PICO-style): given
//!   a crosstalk budget, compute the minimum channel spacing (and hence
//!   the maximum wavelength count per FSR) each filter order supports.
//!
//! [`WdmCrosstalkAnalysis`] aggregates the whole-bus picture COMET cares
//! about: with `N_c` channels on one bus, what total crosstalk power does
//! the worst channel accumulate, and does it stay under the level budget's
//! margin?

use crate::mr::Microring;
use crate::readout::LevelBudget;
use comet_units::{Decibels, Length};
use serde::{Deserialize, Serialize};

/// Drop-filter order at the interface demux.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterOrder {
    /// A single microring (first-order Lorentzian; the paper's default).
    Single,
    /// Two coupled microrings (second-order; HYDRA-style \[51]).
    Double,
}

impl FilterOrder {
    /// Fraction of power a filter of this order picks up from a channel
    /// detuned by `delta`, for the given ring design.
    pub fn pickup(self, ring: &Microring, delta: Length) -> f64 {
        let first = ring.drop_fraction(delta);
        match self {
            FilterOrder::Single => first,
            // Two cascaded identical rings: the transfer function squares.
            FilterOrder::Double => first * first,
        }
    }

    /// Extra insertion loss this order pays on the *intended* channel
    /// (each ring contributes its drop loss).
    pub fn insertion_penalty(self, per_ring_drop: Decibels) -> Decibels {
        match self {
            FilterOrder::Single => Decibels::ZERO,
            FilterOrder::Double => per_ring_drop,
        }
    }
}

/// Whole-bus WDM crosstalk analysis for one drop filter in a channel comb.
///
/// # Examples
///
/// ```
/// use photonic::{FilterOrder, Microring, WdmCrosstalkAnalysis};
///
/// // COMET-4b: 256 wavelengths on one bus, demuxed by high-Q rings.
/// let ring = Microring::interface_demux();
/// let single = WdmCrosstalkAnalysis::new(ring, 256, FilterOrder::Single);
/// let double = WdmCrosstalkAnalysis::new(ring, 256, FilterOrder::Double);
/// // Second-order filtering suppresses the aggregate neighbour pickup:
/// assert!(double.total_crosstalk() < single.total_crosstalk() / 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WdmCrosstalkAnalysis {
    ring: Microring,
    channels: usize,
    order: FilterOrder,
}

impl WdmCrosstalkAnalysis {
    /// Analysis of `channels` equally spaced channels across one FSR,
    /// demuxed by filters of the given order.
    ///
    /// # Panics
    ///
    /// Panics if `channels < 2`.
    pub fn new(ring: Microring, channels: usize, order: FilterOrder) -> Self {
        assert!(channels >= 2, "a WDM bus needs at least two channels");
        WdmCrosstalkAnalysis {
            ring,
            channels,
            order,
        }
    }

    /// Channel spacing implied by packing the comb into one FSR.
    pub fn channel_spacing(&self) -> Length {
        Length::from_meters(self.ring.fsr().as_meters() / self.channels as f64)
    }

    /// Power fraction picked up from the `k`-th neighbour (`k >= 1`).
    pub fn neighbour_pickup(&self, k: usize) -> f64 {
        let delta = Length::from_meters(self.channel_spacing().as_meters() * k as f64);
        self.order.pickup(&self.ring, delta)
    }

    /// Total crosstalk power fraction the worst (mid-comb) channel
    /// accumulates from every other channel, assuming equal launch powers.
    pub fn total_crosstalk(&self) -> f64 {
        // Mid-comb channel: neighbours on both sides, up to half the comb
        // away (beyond that the adjacent FSR image takes over; the comb is
        // periodic so the half-comb sum double-counted x2 is exact).
        let half = self.channels / 2;
        let mut total = 0.0;
        for k in 1..=half {
            total += 2.0 * self.neighbour_pickup(k);
        }
        total
    }

    /// Total crosstalk expressed as suppression below the signal.
    pub fn crosstalk_suppression(&self) -> Decibels {
        Decibels::from_linear(self.total_crosstalk().max(1e-30))
    }

    /// Whether the accumulated crosstalk stays inside a level budget's
    /// *half-spacing* analog margin (crosstalk erodes the same margin that
    /// uncompensated loss does).
    pub fn within_budget(&self, budget: &LevelBudget) -> bool {
        self.total_crosstalk() < budget.fractional_tolerance
    }

    /// The maximum channel count (per FSR) whose accumulated crosstalk
    /// stays inside `budget`, for this ring and filter order.
    pub fn max_channels_within(ring: Microring, order: FilterOrder, budget: &LevelBudget) -> usize {
        let mut lo = 2usize;
        let mut hi = 4096usize;
        // The crosstalk grows monotonically with channel count (tighter
        // spacing and more aggressors), so binary search works.
        if !WdmCrosstalkAnalysis::new(ring, lo, order).within_budget(budget) {
            return 0;
        }
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if WdmCrosstalkAnalysis::new(ring, mid, order).within_budget(budget) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> Microring {
        Microring::comet_default()
    }

    #[test]
    fn double_ring_squares_the_skirt() {
        let r = ring();
        let delta = Length::from_nanometers(0.5);
        let single = FilterOrder::Single.pickup(&r, delta);
        let double = FilterOrder::Double.pickup(&r, delta);
        assert!((double - single * single).abs() < 1e-15);
        assert!(double < single);
        // On resonance both drop (essentially) everything.
        assert!(FilterOrder::Double.pickup(&r, Length::ZERO) > 0.99);
    }

    #[test]
    fn crosstalk_grows_with_channel_count() {
        let mut last = 0.0;
        for n in [16usize, 64, 128, 256] {
            let x = WdmCrosstalkAnalysis::new(ring(), n, FilterOrder::Single).total_crosstalk();
            assert!(x > last, "crosstalk at {n} channels should exceed {last}");
            last = x;
        }
    }

    #[test]
    fn double_ring_buys_channel_density() {
        let b4 = LevelBudget::for_bits(4);
        let single = WdmCrosstalkAnalysis::max_channels_within(ring(), FilterOrder::Single, &b4);
        let double = WdmCrosstalkAnalysis::max_channels_within(ring(), FilterOrder::Double, &b4);
        assert!(
            double > 2 * single,
            "second-order filtering should at least double density: {single} -> {double}"
        );
    }

    #[test]
    fn comet_256_channels_need_mitigation_at_b4() {
        // The paper's ongoing-work motivation, quantified. Even with the
        // high-Q passive demux rings the interface can afford, 256
        // channels per FSR with *first-order* drops accumulate more
        // crosstalk than the 4-bit margin; HYDRA-style double rings fix it.
        let demux = Microring::interface_demux();
        let b4 = LevelBudget::for_bits(4);
        let single = WdmCrosstalkAnalysis::new(demux, 256, FilterOrder::Single);
        let double = WdmCrosstalkAnalysis::new(demux, 256, FilterOrder::Double);
        assert!(
            !single.within_budget(&b4),
            "single-ring crosstalk {:.4} should exceed the 4-bit margin {:.4}",
            single.total_crosstalk(),
            b4.fractional_tolerance
        );
        assert!(
            double.within_budget(&b4),
            "double-ring crosstalk {:.6} should fit the 4-bit margin",
            double.total_crosstalk()
        );
        // And the array-side Q=8000 access rings cannot resolve the comb
        // at all at this density — the demux *must* be the high-Q bank.
        let access = WdmCrosstalkAnalysis::new(ring(), 256, FilterOrder::Double);
        assert!(!access.within_budget(&b4));
    }

    #[test]
    fn insertion_penalty_only_for_double() {
        let drop = Decibels::new(0.5);
        assert_eq!(FilterOrder::Single.insertion_penalty(drop), Decibels::ZERO);
        assert_eq!(FilterOrder::Double.insertion_penalty(drop), drop);
    }

    #[test]
    fn suppression_is_positive_db() {
        let a = WdmCrosstalkAnalysis::new(ring(), 64, FilterOrder::Double);
        assert!(a.crosstalk_suppression().value() > 0.0);
    }

    #[test]
    fn spacing_shrinks_with_channels() {
        let wide = WdmCrosstalkAnalysis::new(ring(), 16, FilterOrder::Single).channel_spacing();
        let tight = WdmCrosstalkAnalysis::new(ring(), 256, FilterOrder::Single).channel_spacing();
        assert!(wide > tight);
        assert!((wide.as_meters() / tight.as_meters() - 16.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_channel() {
        let _ = WdmCrosstalkAnalysis::new(ring(), 1, FilterOrder::Single);
    }
}
