//! Microring resonator spectral model.
//!
//! The OPCM memory cell (paper Fig. 5(b)) gates access to the GST patch with
//! a pair of 6 µm-radius microrings tuned electro-optically in ≈2 ns. This
//! module models the ring's Lorentzian spectral response, its free spectral
//! range (which bounds how many WDM channels one bus can carry), and the
//! inter-channel crosstalk floor that limits channel spacing.

use crate::elements::MrTuning;
use comet_units::{Decibels, Length};
use serde::{Deserialize, Serialize};

/// A microring resonator used as a wavelength-selective switch/filter.
///
/// # Examples
///
/// ```
/// use comet_units::Length;
/// use photonic::{Microring, MrTuning};
///
/// let mr = Microring::comet_default();
/// // On resonance, the drop port takes (nearly) everything:
/// let on = mr.drop_fraction(Length::from_nanometers(0.0));
/// assert!(on > 0.99);
/// // One channel spacing (FSR/16) away, almost nothing couples:
/// let off = mr.drop_fraction(Length::from_nanometers(mr.fsr().as_nanometers() / 16.0));
/// assert!(off < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Microring {
    /// Ring radius.
    pub radius: Length,
    /// Loaded quality factor.
    pub q_factor: f64,
    /// Group index of the ring waveguide mode.
    pub group_index: f64,
    /// Resonance wavelength when untuned.
    pub resonance: Length,
    /// Tuning mechanism (sets access latency and drop/through losses).
    pub tuning: MrTuning,
}

impl Microring {
    /// The paper's access MR: 6 µm radius (Poon et al. \[36]), EO-tuned,
    /// Q ≈ 8000 (moderate, for ~0.2 nm linewidth channel selection).
    pub fn comet_default() -> Self {
        Microring {
            radius: Length::from_micrometers(6.0),
            q_factor: 8000.0,
            group_index: 4.2,
            resonance: Length::from_nanometers(1550.0),
            tuning: MrTuning::ElectroOptic,
        }
    }

    /// A passive high-Q demux ring for the electrical interface's MR bank
    /// (paper Section III.D: received data "is demodulated using an MR
    /// bank"). Passive rings need no fast tuning, so a much narrower
    /// linewidth (Q ≈ 40 000, ~0.04 nm FWHM) is practical — necessary to
    /// resolve the 256-channel comb COMET-4b packs into one FSR.
    pub fn interface_demux() -> Self {
        Microring {
            radius: Length::from_micrometers(6.0),
            q_factor: 40_000.0,
            group_index: 4.2,
            resonance: Length::from_nanometers(1550.0),
            tuning: MrTuning::Thermal,
        }
    }

    /// Free spectral range `FSR = λ² / (2πR·n_g)`.
    pub fn fsr(&self) -> Length {
        let lambda = self.resonance.as_meters();
        let circumference = 2.0 * std::f64::consts::PI * self.radius.as_meters();
        Length::from_meters(lambda * lambda / (circumference * self.group_index))
    }

    /// Full width at half maximum of the resonance: `λ/Q`.
    pub fn fwhm(&self) -> Length {
        Length::from_meters(self.resonance.as_meters() / self.q_factor)
    }

    /// Finesse `FSR / FWHM` — an upper bound on cleanly separable WDM
    /// channels per bus.
    pub fn finesse(&self) -> f64 {
        self.fsr() / self.fwhm()
    }

    /// Fraction of power coupled to the drop port at detuning `delta`
    /// from resonance (Lorentzian line shape).
    pub fn drop_fraction(&self, delta: Length) -> f64 {
        let half_width = self.fwhm().as_meters() / 2.0;
        let d = delta.as_meters();
        (half_width * half_width) / (d * d + half_width * half_width)
    }

    /// Fraction of power continuing on the through port at detuning
    /// `delta` (complement of the drop fraction, lossless-ring idealization;
    /// insertion losses are accounted separately via Table I).
    pub fn through_fraction(&self, delta: Length) -> f64 {
        1.0 - self.drop_fraction(delta)
    }

    /// Crosstalk (in dB below the intended signal) that a channel spaced
    /// `spacing` away suffers from this ring's drop port.
    pub fn adjacent_channel_crosstalk(&self, spacing: Length) -> Decibels {
        let leak = self.drop_fraction(spacing).max(1e-30);
        Decibels::from_linear(leak)
    }

    /// The maximum number of WDM channels on one bus such that
    /// adjacent-channel crosstalk stays below `floor` (e.g. −20 dB ⇒
    /// `Decibels::new(20.0)`).
    pub fn max_wdm_channels(&self, floor: Decibels) -> usize {
        let fsr = self.fsr().as_meters();
        let mut channels = 2usize;
        loop {
            let spacing = Length::from_meters(fsr / channels as f64);
            if self.adjacent_channel_crosstalk(spacing).value() < floor.value() {
                return (channels - 1).max(1);
            }
            channels += 1;
            if channels > 4096 {
                return 4096;
            }
        }
    }

    /// Access latency implied by the tuning mechanism.
    pub fn access_latency(&self) -> comet_units::Time {
        self.tuning.latency()
    }
}

impl Default for Microring {
    fn default() -> Self {
        Self::comet_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mr() -> Microring {
        Microring::comet_default()
    }

    #[test]
    fn fsr_for_6um_ring() {
        // FSR = 1.55e-6^2 / (2*pi*6e-6*4.2) ~ 15.2 nm.
        let fsr = mr().fsr().as_nanometers();
        assert!((14.0..=16.5).contains(&fsr), "FSR = {fsr} nm");
    }

    #[test]
    fn lorentzian_halves_at_half_width() {
        let m = mr();
        let hw = Length::from_meters(m.fwhm().as_meters() / 2.0);
        let d = m.drop_fraction(hw);
        assert!((d - 0.5).abs() < 1e-9);
    }

    #[test]
    fn drop_plus_through_is_unity() {
        let m = mr();
        for frac in [0.0, 0.1, 0.5, 2.0] {
            let delta = Length::from_nanometers(m.fwhm().as_nanometers() * frac);
            let sum = m.drop_fraction(delta) + m.through_fraction(delta);
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn crosstalk_falls_with_spacing() {
        let m = mr();
        let near = m.adjacent_channel_crosstalk(Length::from_nanometers(0.1));
        let far = m.adjacent_channel_crosstalk(Length::from_nanometers(1.0));
        assert!(far.value() > near.value(), "more spacing = more isolation");
        assert!(far.value() > 20.0, "1 nm spacing should be well isolated");
    }

    #[test]
    fn channel_count_monotone_in_floor() {
        let m = mr();
        let strict = m.max_wdm_channels(Decibels::new(30.0));
        let loose = m.max_wdm_channels(Decibels::new(15.0));
        assert!(loose >= strict);
        assert!(strict >= 1);
    }

    #[test]
    fn eo_access_is_nanoseconds() {
        assert!(mr().access_latency().as_nanos() <= 5.0);
        let thermal = Microring {
            tuning: MrTuning::Thermal,
            ..mr()
        };
        assert!(thermal.access_latency().as_micros() >= 1.0);
    }

    #[test]
    fn finesse_consistency() {
        let m = mr();
        assert!((m.finesse() - m.fsr() / m.fwhm()).abs() < 1e-9);
        assert!(m.finesse() > 10.0);
    }
}
