//! Property-based tests for the photonic circuit substrate.
//!
//! Invariants: loss budgets compose additively in dB (multiplicatively in
//! linear power), microring responses are bounded transfer functions, SNR
//! is monotone in received power, and laser sizing inverts the loss budget.

use comet_units::{Decibels, Length, Power};
use photonic::{
    FilterOrder, Laser, LevelBudget, Microring, ModePenalty, MrTuning, OpticalParams, OpticalPath,
    PathElement, Photodetector, WdmCrosstalkAnalysis, WdmMdmLink,
};
use proptest::prelude::*;

fn params() -> OpticalParams {
    OpticalParams::table_i()
}

/// Strategy over representative path elements (losses and gains).
fn any_element() -> impl Strategy<Value = PathElement> {
    prop_oneof![
        Just(PathElement::Coupler),
        Just(PathElement::GstSwitch),
        Just(PathElement::MrDrop),
        Just(PathElement::MrThrough),
        Just(PathElement::TunedMrDrop(MrTuning::ElectroOptic)),
        Just(PathElement::TunedMrThrough(MrTuning::ElectroOptic)),
        (0.1..20.0f64).prop_map(|mm| PathElement::Propagation(Length::from_millimeters(mm))),
        (1u32..8).prop_map(PathElement::Bends),
        (0.1..3.0f64).prop_map(|db| PathElement::Fixed(Decibels::new(db))),
        (1.0..20.0f64).prop_map(|db| PathElement::Soa {
            gain: Decibels::new(db)
        }),
        (2u32..16).prop_map(|ways| PathElement::Splitter { ways }),
    ]
}

proptest! {
    // --- path composition ----------------------------------------------------

    #[test]
    fn path_loss_is_sum_of_element_losses(elements in prop::collection::vec(any_element(), 0..20)) {
        let p = params();
        let mut path = OpticalPath::new();
        let mut expect = Decibels::ZERO;
        for e in &elements {
            path.push(*e);
            expect += e.net_loss(&p);
        }
        let total = path.total_loss(&p);
        prop_assert!((total.value() - expect.value()).abs() < 1e-9);
    }

    #[test]
    fn path_concatenation_adds(a in prop::collection::vec(any_element(), 0..10),
                               b in prop::collection::vec(any_element(), 0..10)) {
        let p = params();
        let mut pa = OpticalPath::new();
        for e in &a { pa.push(*e); }
        let mut pb = OpticalPath::new();
        for e in &b { pb.push(*e); }
        let mut joined = OpticalPath::new();
        joined.extend_from(&pa).extend_from(&pb);
        prop_assert!(
            (joined.total_loss(&p).value() - (pa.total_loss(&p) + pb.total_loss(&p)).value()).abs()
                < 1e-9
        );
        prop_assert_eq!(joined.len(), pa.len() + pb.len());
    }

    #[test]
    fn output_power_matches_loss(mw in 0.1..100.0f64,
                                 elements in prop::collection::vec(any_element(), 0..15)) {
        let p = params();
        let mut path = OpticalPath::new();
        for e in &elements { path.push(*e); }
        let input = Power::from_milliwatts(mw);
        let out = path.output_power(input, &p);
        let expect = input.attenuate(path.total_loss(&p));
        prop_assert!((out.as_milliwatts() - expect.as_milliwatts()).abs() < 1e-9 * mw);
    }

    #[test]
    fn required_input_inverts_output(target_mw in 0.01..10.0f64,
                                     elements in prop::collection::vec(any_element(), 0..15)) {
        let p = params();
        let mut path = OpticalPath::new();
        for e in &elements { path.push(*e); }
        let target = Power::from_milliwatts(target_mw);
        let input = path.required_input(target, &p);
        let out = path.output_power(input, &p);
        prop_assert!((out.as_milliwatts() - target_mw).abs() < 1e-9 * target_mw);
    }

    #[test]
    fn level_profile_ends_at_total_loss(elements in prop::collection::vec(any_element(), 1..15)) {
        let p = params();
        let mut path = OpticalPath::new();
        for e in &elements { path.push(*e); }
        let profile = path.level_profile(&p);
        prop_assert_eq!(profile.len(), path.len());
        // Levels are reported relative to the input (negative = below it),
        // so the last entry is minus the net path loss.
        let last = profile.last().copied().unwrap();
        prop_assert!((last.value() + path.total_loss(&p).value()).abs() < 1e-9);
        // The worst level is the deepest point anywhere along the path, so
        // it can only be at or below the final level.
        prop_assert!(path.worst_level(&p).value() <= last.value() + 1e-9);
        prop_assert!(path.worst_level(&p).value() <= 1e-9);
    }

    // --- microring response -----------------------------------------------------

    #[test]
    fn mr_transfer_functions_are_bounded(detune_pm in -2000.0..2000.0f64) {
        let mr = Microring::comet_default();
        let delta = Length::from_nanometers(detune_pm / 1000.0);
        let d = mr.drop_fraction(delta);
        let t = mr.through_fraction(delta);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((0.0..=1.0).contains(&t));
        // Power conservation up to insertion loss: drop + through <= 1.
        prop_assert!(d + t <= 1.0 + 1e-9);
    }

    #[test]
    fn mr_drop_peaks_on_resonance(detune_pm in 1.0..2000.0f64) {
        let mr = Microring::comet_default();
        let on = mr.drop_fraction(Length::ZERO);
        let off = mr.drop_fraction(Length::from_nanometers(detune_pm / 1000.0));
        prop_assert!(on >= off - 1e-12, "drop should peak at resonance");
    }

    #[test]
    fn mr_crosstalk_falls_with_channel_spacing(s1 in 0.1..5.0f64, s2 in 0.1..5.0f64) {
        let mr = Microring::comet_default();
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let xt_near = mr.adjacent_channel_crosstalk(Length::from_nanometers(lo));
        let xt_far = mr.adjacent_channel_crosstalk(Length::from_nanometers(hi));
        // Crosstalk is reported as positive suppression (dB below the
        // intended signal): wider spacing suppresses more.
        prop_assert!(xt_far.value() >= xt_near.value() - 1e-9);
    }

    // --- links -----------------------------------------------------------------

    #[test]
    fn link_bandwidth_scales_with_channels(w in 1usize..512, m in 1usize..4) {
        let link = WdmMdmLink::new(w, m, comet_units::Frequency::from_gigahertz(1.0));
        prop_assert_eq!(link.parallel_channels(), w * m);
        let per_channel = link.raw_bandwidth().as_gigabytes_per_second() / (w * m) as f64;
        // 1 GHz x 1 bit/channel = 0.125 GB/s per channel.
        prop_assert!((per_channel - 0.125).abs() < 1e-9);
    }

    #[test]
    fn higher_modes_lose_more(degree in 2usize..8) {
        let mp = ModePenalty::default();
        for m in 1..degree {
            prop_assert!(mp.loss_for_mode(m).value() >= mp.loss_for_mode(m - 1).value() - 1e-12);
        }
        prop_assert!(
            (mp.worst_mode_loss(degree).value() - mp.loss_for_mode(degree - 1).value()).abs()
                < 1e-12
        );
    }

    // --- laser sizing -------------------------------------------------------------

    #[test]
    fn laser_power_scales_linearly_with_channels(
        target_mw in 0.1..5.0f64,
        loss_db in 0.0..30.0f64,
        n in 1usize..1024,
    ) {
        let laser = Laser::table_i();
        let target = Power::from_milliwatts(target_mw);
        let loss = Decibels::new(loss_db);
        let one = laser.electrical_power_for_target(target, loss);
        let many = laser.electrical_power_for_channels(target, loss, n);
        prop_assert!((many.as_watts() - one.as_watts() * n as f64).abs() < 1e-9 * many.as_watts().max(1.0));
    }

    #[test]
    fn laser_wall_plug_efficiency_divides(target_mw in 0.1..5.0f64, loss_db in 0.0..30.0f64) {
        let target = Power::from_milliwatts(target_mw);
        let loss = Decibels::new(loss_db);
        let launch = Laser::table_i().launch_power_for_target(target, loss);
        let electrical = Laser::table_i().electrical_power_for_target(target, loss);
        // 20 % wall-plug: electrical = launch / 0.2.
        prop_assert!((electrical.as_watts() - launch.as_watts() / 0.2).abs() < 1e-12);
        // Launch covers the loss exactly.
        prop_assert!((launch.attenuate(loss).as_milliwatts() - target_mw).abs() < 1e-9);
    }

    // --- readout noise ---------------------------------------------------------------

    #[test]
    fn snr_is_monotone_in_power(p1 in 1e-7..1e-2f64, p2 in 1e-7..1e-2f64) {
        let pd = Photodetector::ge_10ghz();
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(pd.snr(Power::from_watts(hi)) >= pd.snr(Power::from_watts(lo)) - 1e-12);
    }

    #[test]
    fn more_bits_need_more_power(bits in 1u8..5) {
        let pd = Photodetector::ge_10ghz();
        let p_lo = pd.min_power_for_error(bits, 1e-9);
        let p_hi = pd.min_power_for_error(bits + 1, 1e-9);
        prop_assert!(p_hi >= p_lo, "b={bits}: {p_hi:?} < {p_lo:?}");
        // And the error at that power is within target.
        prop_assert!(pd.level_error_probability(p_hi, bits + 1) <= 1e-9 * 1.01);
    }

    #[test]
    fn level_error_probability_is_a_probability(
        uw in 0.01..1e4f64,
        bits in 1u8..6,
    ) {
        let pd = Photodetector::ge_10ghz();
        let pe = pd.level_error_probability(Power::from_microwatts(uw), bits);
        prop_assert!((0.0..=1.0).contains(&pe), "Pe = {pe}");
    }

    // --- level budgets ------------------------------------------------------------------

    // --- WDM crosstalk mitigation ----------------------------------------------

    #[test]
    fn double_ring_never_picks_up_more(channels in 2usize..512) {
        let ring = Microring::interface_demux();
        let single = WdmCrosstalkAnalysis::new(ring, channels, FilterOrder::Single);
        let double = WdmCrosstalkAnalysis::new(ring, channels, FilterOrder::Double);
        prop_assert!(double.total_crosstalk() <= single.total_crosstalk() + 1e-15);
        // Per-neighbour pickup stays a power fraction.
        for k in 1..4usize {
            let p = single.neighbour_pickup(k);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(double.neighbour_pickup(k) <= p + 1e-15);
        }
    }

    #[test]
    fn crosstalk_monotone_in_channel_count(n1 in 2usize..512, n2 in 2usize..512) {
        let ring = Microring::comet_default();
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        let a = WdmCrosstalkAnalysis::new(ring, lo, FilterOrder::Single).total_crosstalk();
        let b = WdmCrosstalkAnalysis::new(ring, hi, FilterOrder::Single).total_crosstalk();
        prop_assert!(b >= a - 1e-12, "{lo} ch: {a}, {hi} ch: {b}");
    }

    #[test]
    fn max_channels_is_the_budget_boundary(bits in 2u8..6) {
        let ring = Microring::interface_demux();
        let budget = LevelBudget::for_bits(bits);
        let max = WdmCrosstalkAnalysis::max_channels_within(ring, FilterOrder::Double, &budget);
        prop_assume!((2..4096).contains(&max));
        prop_assert!(
            WdmCrosstalkAnalysis::new(ring, max, FilterOrder::Double).within_budget(&budget)
        );
        prop_assert!(
            !WdmCrosstalkAnalysis::new(ring, max + 1, FilterOrder::Double)
                .within_budget(&budget)
        );
    }

    #[test]
    fn level_budget_shrinks_with_bits(bits in 1u8..5) {
        let lo = LevelBudget::for_bits(bits);
        let hi = LevelBudget::for_bits(bits + 1);
        prop_assert!(hi.loss_tolerance.value() <= lo.loss_tolerance.value());
        // More tolerance = more elements traversable at fixed per-element loss.
        let per = Decibels::new(0.33);
        prop_assert!(hi.elements_within_budget(per) <= lo.elements_within_budget(per));
    }
}

// --- the cross-layer cell contract ------------------------------------------

mod cell_contract {
    use super::*;
    use comet_units::Transmittance;
    use opcm_phys::{reference_wavelength, CellGeometry, LorentzModel, PcmMaterial};
    use photonic::{CellModelMode, CellOpticalModel, DerivedCellModel, PaperCellModel};

    /// The documented derived-vs-paper tolerance: the physics-derived level
    /// grid may sit up to one level spacing away from the transcribed paper
    /// grid (the amorphous endpoint is the dominant divergence — derived
    /// T_top ≈ 0.999 vs the paper's 0.95), while the *relative* quantities
    /// the architecture consumes (spacing, fraction span, loss budgets)
    /// agree much more tightly.
    #[test]
    fn derived_matches_paper_within_documented_tolerance() {
        let paper = PaperCellModel::paper_constants();
        let derived = DerivedCellModel::comet_gst();

        let spacing = paper.level_spacing(4);
        for (p, d) in paper
            .transmission_levels(4)
            .iter()
            .zip(derived.transmission_levels(4))
        {
            let delta = (d.value() - p.value()).abs();
            assert!(
                delta <= spacing,
                "level {p:?} vs {d:?}: |delta| {delta:.4} exceeds one spacing {spacing:.4}"
            );
        }
        // Level spacing within 5 % relative.
        let ds = derived.level_spacing(4);
        assert!(
            ((ds - spacing) / spacing).abs() < 0.05,
            "spacing {ds:.4} vs {spacing:.4}"
        );
        // Crystalline-fraction span within 0.05 absolute.
        assert!((derived.fraction_span() - paper.fraction_span()).abs() < 0.05);
        // Loss budgets within 0.15 dB at every practical bit density.
        for bits in [1u8, 2, 4] {
            let pb = LevelBudget::for_cell(bits, &paper).loss_tolerance.value();
            let db = LevelBudget::for_cell(bits, &derived).loss_tolerance.value();
            assert!((pb - db).abs() < 0.15, "b={bits}: {pb:.3} vs {db:.3} dB");
        }
    }

    /// The circuit layer's derived grid is *exactly* the grid the physics
    /// layer programs: both slice `ProgramTable::usable_transmittance_range`
    /// (the single authority on the guard-banded range), so a physics
    /// recalibration can never desynchronize the two layers.
    #[test]
    fn derived_grid_is_the_program_table_grid() {
        use opcm_phys::{CellThermalModel, ProgramMode, ProgramTable};
        let table = ProgramTable::generate(
            &CellThermalModel::comet_gst(),
            ProgramMode::AmorphousReset,
            4,
        )
        .expect("table generation");
        let derived = DerivedCellModel::comet_gst();
        for (spec, level) in table.levels.iter().zip(derived.transmission_levels(4)) {
            assert!(
                (spec.transmittance.value() - level.value()).abs() < 1e-9,
                "level {}: programmed {} vs contract {}",
                spec.level,
                spec.transmittance.value(),
                level.value()
            );
        }
    }

    #[test]
    fn mode_resolution_is_consistent_with_the_concrete_providers() {
        let by_mode = CellModelMode::Derived.model();
        let direct = DerivedCellModel::comet_gst();
        assert_eq!(
            by_mode.max_transmittance().value(),
            direct.max_transmittance().value()
        );
        assert_eq!(by_mode.source(), "derived");
        assert_eq!(CellModelMode::Paper.model().source(), "paper");
    }

    /// A GST-like material with perturbed optical anchors (the calibration
    /// knobs a recalibration would move) on a perturbed geometry.
    fn perturbed_cell(
        n_c_scale: f64,
        kappa_c_scale: f64,
        thickness_nm: f64,
        lambda_nm: f64,
    ) -> DerivedCellModel {
        let anchor = reference_wavelength();
        let mut material = PcmMaterial::gst();
        material.crystalline =
            LorentzModel::anchored(6.11 * n_c_scale, 1.10 * kappa_c_scale, anchor, 1.4, 0.8);
        let geometry = CellGeometry::comet_default()
            .with_thickness(comet_units::Length::from_nanometers(thickness_nm));
        DerivedCellModel::new(
            opcm_phys::CellOpticalModel::new(material, geometry),
            comet_units::Length::from_nanometers(lambda_nm),
        )
    }

    proptest! {
        // Read-out level spacing stays monotone (levels strictly
        // decreasing, spacing strictly positive and shrinking with bit
        // density) under material-parameter perturbation: −4/+8 % on the
        // crystalline refractive index, −40/+10 % on the crystalline
        // extinction (the widest ranges the Lorentz anchoring accepts as
        // physical at the GST resonance), 12–40 nm films, anywhere in the
        // C-band.
        #[test]
        fn level_spacing_monotone_under_material_perturbation(
            n_c in 0.96f64..1.08,
            kappa_c in 0.6f64..1.1,
            thickness in 12.0f64..40.0,
            lambda in 1530.0f64..1565.0,
        ) {
            let cell = perturbed_cell(n_c, kappa_c, thickness, lambda);
            let mut last_spacing = f64::INFINITY;
            for bits in 1..=6u8 {
                let levels = cell.transmission_levels(bits);
                prop_assert_eq!(levels.len(), 1usize << bits);
                for w in levels.windows(2) {
                    prop_assert!(
                        w[0].value() > w[1].value(),
                        "levels not strictly decreasing at b={} ({} vs {})",
                        bits, w[0].value(), w[1].value()
                    );
                }
                let spacing = cell.level_spacing(bits);
                prop_assert!(spacing > 0.0);
                prop_assert!(spacing < last_spacing, "spacing must shrink with bits");
                last_spacing = spacing;
                // The budget the spacing implies stays a positive loss.
                let budget = LevelBudget::for_cell(bits, &cell);
                prop_assert!(budget.loss_tolerance.value() > 0.0);
            }
        }

        // The contract's insertion loss is exactly the dB equivalent of
        // its top transmittance, for any provider and perturbation.
        #[test]
        fn insertion_loss_matches_top_level(
            kappa_c in 0.6f64..1.1,
            thickness in 12.0f64..40.0,
        ) {
            let cell = perturbed_cell(1.0, kappa_c, thickness, 1550.0);
            let top = cell.max_transmittance().value();
            let from_loss = Transmittance::new(
                10f64.powf(-cell.insertion_loss().value() / 10.0));
            prop_assert!((from_loss.value() - top).abs() < 1e-9);
        }
    }
}
