//! Criterion benches over the trace-driven simulator (the Fig. 9 engine):
//! per-device simulation throughput on a fixed workload.

use comet::{CometConfig, CometDevice};
use comet_units::{ByteCount, Time};
use cosmos::{CosmosConfig, CosmosDevice};
use criterion::{criterion_group, criterion_main, Criterion};
use memsim::{
    run_simulation, DramConfig, DramDevice, EpcmConfig, EpcmDevice, MemOp, MemRequest, SimConfig,
};
use std::hint::black_box;

fn trace(n: u64, line: u64) -> Vec<MemRequest> {
    (0..n)
        .map(|i| {
            let op = if i % 5 == 0 {
                MemOp::Write
            } else {
                MemOp::Read
            };
            MemRequest::new(
                i,
                Time::from_nanos(i as f64 * 0.5),
                op,
                i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (1 << 28),
                ByteCount::new(line),
            )
        })
        .collect()
}

fn bench_devices(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9/simulate_4k_requests");
    group.sample_size(20);

    let t64 = trace(4096, 64);
    let t128 = trace(4096, 128);

    group.bench_function("2D_DDR3", |b| {
        b.iter(|| {
            let mut dev = DramDevice::new(DramConfig::ddr3_1600_2d());
            black_box(run_simulation(&mut dev, &t64, &SimConfig::paced("bench")))
        })
    });
    group.bench_function("3D_DDR4", |b| {
        b.iter(|| {
            let mut dev = DramDevice::new(DramConfig::ddr4_3d());
            black_box(run_simulation(&mut dev, &t64, &SimConfig::paced("bench")))
        })
    });
    group.bench_function("EPCM-MM", |b| {
        b.iter(|| {
            let mut dev = EpcmDevice::new(EpcmConfig::epcm_mm());
            black_box(run_simulation(&mut dev, &t64, &SimConfig::paced("bench")))
        })
    });
    group.bench_function("COSMOS", |b| {
        b.iter(|| {
            let mut dev = CosmosDevice::new(CosmosConfig::corrected());
            black_box(run_simulation(&mut dev, &t128, &SimConfig::paced("bench")))
        })
    });
    group.bench_function("COMET", |b| {
        b.iter(|| {
            let mut dev = CometDevice::new(CometConfig::comet_4b());
            black_box(run_simulation(&mut dev, &t128, &SimConfig::paced("bench")))
        })
    });
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let suite = memsim::spec_like_suite(4096);
    c.bench_function("fig9/generate_mcf_like_trace", |b| {
        b.iter(|| black_box(suite[0].generate(42)))
    });
}

criterion_group!(simulator, bench_devices, bench_trace_generation);
criterion_main!(simulator);
