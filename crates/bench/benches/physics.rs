//! Criterion benches over the physics kernels behind Figs. 3, 4 and 6.

use comet_units::{Power, Time};
use criterion::{criterion_group, criterion_main, Criterion};
use opcm_phys::{
    c_band_wavelengths, effective_index, CellOpticalModel, CellState, CellThermalModel, PcmKind,
    ProgramMode, ProgramTable, PulseSpec,
};
use std::hint::black_box;

fn bench_lorentz_spectra(c: &mut Criterion) {
    let gst = PcmKind::Gst.material();
    let grid = c_band_wavelengths(36);
    c.bench_function("fig3/lorentz_spectrum_36pts", |b| {
        b.iter(|| {
            for &lambda in &grid {
                black_box(gst.refractive_index(opcm_phys::Phase::Crystalline, lambda));
            }
        })
    });
}

fn bench_effective_medium(c: &mut Criterion) {
    let gst = PcmKind::Gst.material();
    let lambda = opcm_phys::reference_wavelength();
    c.bench_function("fig6/effective_index_sweep_64", |b| {
        b.iter(|| {
            for i in 0..64 {
                black_box(effective_index(&gst, i as f64 / 63.0, lambda));
            }
        })
    });
}

fn bench_geometry_sweep(c: &mut Criterion) {
    let model = CellOpticalModel::comet_gst();
    let lambda = opcm_phys::reference_wavelength();
    let widths: Vec<_> = (0..4)
        .map(|i| comet_units::Length::from_nanometers(300.0 + 60.0 * i as f64))
        .collect();
    let thicknesses: Vec<_> = (0..8)
        .map(|i| comet_units::Length::from_nanometers(5.0 + 6.0 * i as f64))
        .collect();
    c.bench_function("fig4/geometry_sweep_4x8", |b| {
        b.iter(|| black_box(model.geometry_sweep(&widths, &thicknesses, lambda)))
    });
}

fn bench_thermal_pulse(c: &mut Criterion) {
    let model = CellThermalModel::comet_gst();
    c.bench_function("fig6/amorphization_pulse_60ns", |b| {
        b.iter(|| {
            black_box(model.apply_pulse(
                CellState::crystalline(),
                PulseSpec::new(Power::from_milliwatts(5.0), Time::from_nanos(60.0)),
            ))
        })
    });
    c.bench_function("fig6/crystallization_pulse_170ns", |b| {
        b.iter(|| {
            black_box(model.apply_pulse(
                CellState::amorphous(),
                PulseSpec::new(Power::from_milliwatts(1.0), Time::from_nanos(170.0)),
            ))
        })
    });
}

fn bench_table_generation(c: &mut Criterion) {
    let model = CellThermalModel::comet_gst();
    let mut group = c.benchmark_group("fig6/program_table");
    group.sample_size(10);
    // The full pulse search (the ~26 ms hot kernel the ROADMAP flags)...
    group.bench_function("amorphous_reset_4bit_uncached", |b| {
        b.iter(|| {
            black_box(
                ProgramTable::generate_uncached(&model, ProgramMode::AmorphousReset, 4)
                    .expect("generates"),
            )
        })
    });
    // ...versus the memoized path every repeat caller now takes (warm the
    // memo first so the comparison isolates the hit path).
    let _ = ProgramTable::generate(&model, ProgramMode::AmorphousReset, 4).expect("generates");
    group.bench_function("amorphous_reset_4bit_cached", |b| {
        b.iter(|| {
            black_box(
                ProgramTable::generate(&model, ProgramMode::AmorphousReset, 4).expect("generates"),
            )
        })
    });
    group.finish();
}

criterion_group!(
    physics,
    bench_lorentz_spectra,
    bench_effective_medium,
    bench_geometry_sweep,
    bench_thermal_pulse,
    bench_table_generation
);
criterion_main!(physics);
