//! Criterion benchmarks of the extension modules (laser power management,
//! wear leveling, readout reliability, trace I/O) — the pieces that sit on
//! the memory controller's fast path and must stay cheap.

use comet::{
    CometConfig, DriftModel, LaserPowerManager, ReadoutReliability, StartGapRemapper,
    WindowedPolicy,
};
use comet_units::{Power, Time};
use criterion::{criterion_group, criterion_main, Criterion};
use memsim::{read_trace, spec_like_suite, write_trace, TraceClock};
use std::hint::black_box;

fn bench_laser_manager(c: &mut Criterion) {
    c.bench_function("laser/10k_accesses_sparse", |b| {
        b.iter(|| {
            let mut mgr = LaserPowerManager::new(
                WindowedPolicy::default_1us(),
                Power::from_watts(34.3),
                Power::from_watts(1.0),
            );
            let mut stalls = Time::ZERO;
            for k in 0..10_000u64 {
                // Bursty pattern: clusters of 10 accesses, 5 us apart.
                let t = Time::from_nanos((k / 10) as f64 * 5000.0 + (k % 10) as f64 * 4.0);
                stalls += mgr.on_access(t);
            }
            black_box(mgr.finish(Time::from_micros(5_100.0)));
            black_box(stalls)
        })
    });
}

fn bench_start_gap(c: &mut Criterion) {
    c.bench_function("wear/start_gap_100k_writes", |b| {
        b.iter(|| {
            let mut sg = StartGapRemapper::new(512, 64);
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(sg.write(i % 512));
            }
            black_box(acc)
        })
    });
}

fn bench_reliability(c: &mut Criterion) {
    c.bench_function("reliability/worst_row_error_512_rows", |b| {
        let rel = ReadoutReliability::new(CometConfig::comet_4b());
        b.iter(|| black_box(rel.worst_row_error()))
    });
    c.bench_function("reliability/scrub_interval_b4", |b| {
        let drift = DriftModel::default();
        b.iter(|| black_box(drift.scrub_interval(4)))
    });
}

fn bench_trace_io(c: &mut Criterion) {
    let profile = &spec_like_suite(10_000)[0];
    let reqs = profile.generate(7);
    let clock = TraceClock::two_ghz();
    let mut text = Vec::new();
    write_trace(&mut text, &reqs, clock).expect("in-memory write cannot fail");

    c.bench_function("trace/write_10k", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(text.len());
            write_trace(&mut buf, &reqs, clock).expect("in-memory write cannot fail");
            black_box(buf)
        })
    });
    c.bench_function("trace/read_10k", |b| {
        b.iter(|| black_box(read_trace(text.as_slice(), clock, 64).expect("valid trace")))
    });
}

criterion_group!(
    extensions,
    bench_laser_manager,
    bench_start_gap,
    bench_reliability,
    bench_trace_io
);
criterion_main!(extensions);
