//! Criterion benches over the architecture-layer kernels: address mapping
//! (Eqs. 1-6), gain-LUT lookups, functional MLC line writes/reads, the
//! power stacks (Figs. 7-8), and the crossbar corruption study (Fig. 2).

use comet::{AddressMapper, CometConfig, CometMemory, CometPowerModel, GainLut};
use cosmos::{run_corruption_experiment, CosmosConfig, CosmosPowerModel, TestImage};
use criterion::{criterion_group, criterion_main, Criterion};
use memsim::DecodedAddress;
use photonic::OpticalParams;
use std::hint::black_box;

fn bench_mapping(c: &mut Criterion) {
    let mapper = AddressMapper::new(&CometConfig::comet_4b());
    c.bench_function("eq1_6/map_unmap_1k", |b| {
        b.iter(|| {
            for i in 0..1024u64 {
                let flat = DecodedAddress {
                    channel: 0,
                    bank: i % 4,
                    row: (i * 7919) % (4096 * 512),
                    column: (i * 31) % 256,
                };
                black_box(mapper.unmap(mapper.map(flat)));
            }
        })
    });
}

fn bench_lut(c: &mut Criterion) {
    let params = OpticalParams::table_i();
    let lut = GainLut::for_bits(4, 512, &params);
    c.bench_function("lut/gain_for_row_1k", |b| {
        b.iter(|| {
            for row in 0..1024u64 {
                black_box(lut.gain_for_row(row));
            }
        })
    });
}

fn bench_functional_memory(c: &mut Criterion) {
    c.bench_function("memory/write_read_64_lines", |b| {
        let line: Vec<u8> = (0..128).collect();
        b.iter(|| {
            let mut mem = CometMemory::new(CometConfig::comet_4b());
            for k in 0..64u64 {
                mem.write_line(k * 128, &line);
            }
            for k in 0..64u64 {
                black_box(mem.read_line(k * 128));
            }
        })
    });
}

fn bench_power_stacks(c: &mut Criterion) {
    c.bench_function("fig7/comet_power_stack", |b| {
        b.iter(|| black_box(CometPowerModel::new(CometConfig::comet_4b()).stack()))
    });
    c.bench_function("fig8/cosmos_power_stack", |b| {
        b.iter(|| black_box(CosmosPowerModel::new(CosmosConfig::corrected()).stack()))
    });
}

fn bench_corruption(c: &mut Criterion) {
    let image = TestImage::synthetic(32, 16, 16);
    let mut group = c.benchmark_group("fig2/corruption_experiment");
    group.sample_size(20);
    group.bench_function("original_cosmos_4_writes", |b| {
        b.iter(|| {
            black_box(run_corruption_experiment(
                &CosmosConfig::original(),
                &image,
                4,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    architecture,
    bench_mapping,
    bench_lut,
    bench_functional_memory,
    bench_power_stacks,
    bench_corruption
);
criterion_main!(architecture);
