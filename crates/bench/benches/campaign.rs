//! Criterion benches over the `comet-lab` campaign runner.
//!
//! The sharding bench runs the same 12-cell grid at 1, 2 and 4 worker
//! threads: on a multi-core host the wall-clock per campaign should fall
//! near-linearly until the core count is exhausted (the cells are
//! independent and the runner is a plain work queue), while on a single
//! core all three points cost the same — which is itself the evidence that
//! sharding adds no overhead.

use comet_lab::{device_by_name, run_campaign, workloads_by_name, CampaignSpec, WorkloadSource};
use criterion::{criterion_group, criterion_main, Criterion};
use memsim::DeviceFactory;
use std::hint::black_box;

fn grid() -> CampaignSpec {
    let devices: Vec<Box<dyn DeviceFactory>> = ["2D_DDR3", "EPCM-MM", "COMET"]
        .iter()
        .map(|n| device_by_name(n).expect("registered"))
        .collect();
    let workloads: Vec<WorkloadSource> = ["mcf-like", "lbm-like", "gcc-like", "soplex-like"]
        .iter()
        .flat_map(|n| workloads_by_name(n, 1500))
        .collect();
    CampaignSpec::new("bench-grid", 42, devices, workloads)
}

fn bench_campaign_sharding(c: &mut Criterion) {
    let spec = grid();
    let mut group = c.benchmark_group("campaign/12cell_grid");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_function(&format!("threads_{threads}"), |b| {
            b.iter(|| black_box(run_campaign(&spec, threads)))
        });
    }
    group.finish();
}

fn bench_report_export(c: &mut Criterion) {
    let report = run_campaign(&grid(), 4);
    c.bench_function("campaign/report_to_json", |b| {
        b.iter(|| black_box(report.to_json()))
    });
    let json = report.to_json();
    c.bench_function("campaign/report_from_json", |b| {
        b.iter(|| black_box(comet_lab::CampaignReport::from_json(&json).expect("parses")))
    });
}

criterion_group!(campaign, bench_campaign_sharding, bench_report_export);
criterion_main!(campaign);
