//! Shared helpers for the figure/table regeneration binaries.
//!
//! Every `fig*`/`table*` binary prints a small preamble plus one or more
//! TSV blocks so outputs are both human-readable and trivially plottable
//! (`cut`/gnuplot/pandas all read them directly).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt::Display;

/// Prints the standard experiment header.
pub fn header(id: &str, title: &str, paper_anchor: &str) {
    println!("# {id}: {title}");
    println!("# paper anchor: {paper_anchor}");
    println!("#");
}

/// A TSV block writer: column names first, then rows.
#[derive(Debug)]
pub struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with column names.
    pub fn new<S: Into<String>>(columns: Vec<S>) -> Self {
        Table {
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (must match the column count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn row<D: Display>(&mut self, cells: Vec<D>) -> &mut Self {
        assert_eq!(cells.len(), self.columns.len(), "column count mismatch");
        self.rows
            .push(cells.into_iter().map(|c| c.to_string()).collect());
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Prints the block to stdout.
    pub fn print(&self) {
        println!("{}", self.columns.join("\t"));
        for row in &self.rows {
            println!("{}", row.join("\t"));
        }
        println!();
    }
}

/// Formats a ratio like "7.1x".
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "inf".into()
    } else {
        format!("{:.1}x", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec![1, 2]).row(vec![3, 4]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn table_validates_width() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec![1]);
    }

    #[test]
    fn ratio_format() {
        assert_eq!(ratio(7.1, 1.0), "7.1x");
        assert_eq!(ratio(1.0, 0.0), "inf");
    }
}
