//! Fig. 10 — EPB of the DOTA photonic transformer accelerator paired with
//! each main memory, for DeiT-T and DeiT-B.

use comet::{CometConfig, CometDevice};
use comet_bench::{header, ratio, Table};
use cosmos::{CosmosConfig, CosmosDevice};
use dota::{evaluate_system, FeedKind, SystemEpbReport, TransformerWorkload};
use memsim::{DramConfig, DramDevice, EpcmConfig, EpcmDevice, MemoryDevice};

fn main() {
    header(
        "fig10",
        "DOTA accelerator EPB with different main memories",
        "photonic memories inject light directly (no E-O conversion); \
         COMET+DOTA beats 3D_DDR4+DOTA by 1.3-2.06x and COSMOS+DOTA by \
         1.45-2.7x in the paper (Section IV.D)",
    );

    type DeviceFactory = Box<dyn Fn() -> Box<dyn MemoryDevice>>;
    let memories: Vec<(DeviceFactory, FeedKind)> = vec![
        (
            Box::new(|| Box::new(DramDevice::new(DramConfig::ddr3_1600_2d()))),
            FeedKind::Electronic,
        ),
        (
            Box::new(|| Box::new(DramDevice::new(DramConfig::ddr3_3d()))),
            FeedKind::Electronic,
        ),
        (
            Box::new(|| Box::new(DramDevice::new(DramConfig::ddr4_2400_2d()))),
            FeedKind::Electronic,
        ),
        (
            Box::new(|| Box::new(DramDevice::new(DramConfig::ddr4_3d()))),
            FeedKind::Electronic,
        ),
        (
            Box::new(|| Box::new(EpcmDevice::new(EpcmConfig::epcm_mm()))),
            FeedKind::Electronic,
        ),
        (
            Box::new(|| Box::new(CosmosDevice::new(CosmosConfig::corrected()))),
            FeedKind::Photonic,
        ),
        (
            Box::new(|| Box::new(CometDevice::new(CometConfig::comet_4b()))),
            FeedKind::Photonic,
        ),
    ];

    let mut table = Table::new(vec![
        "memory",
        "model",
        "feed",
        "memory_epb_pJb",
        "conversion_epb_pJb",
        "system_epb_pJb",
        "memory_bw_GBs",
    ]);
    let mut reports: Vec<SystemEpbReport> = Vec::new();
    for model in TransformerWorkload::fig10_models() {
        for (factory, feed) in &memories {
            let mut device = factory();
            let report = evaluate_system(device.as_mut(), *feed, &model, 1, 40, 7);
            table.row(vec![
                report.memory.clone(),
                report.model.clone(),
                format!("{:?}", report.feed),
                format!("{:.2}", report.memory_epb.as_picojoules_per_bit()),
                format!("{:.1}", report.conversion_epb.as_picojoules_per_bit()),
                format!("{:.2}", report.total_epb().as_picojoules_per_bit()),
                format!("{:.2}", report.bandwidth_gbs),
            ]);
            reports.push(report);
        }
    }
    table.print();

    for model_name in ["DeiT-T", "DeiT-B"] {
        let of = |mem: &str| {
            reports
                .iter()
                .find(|r| r.memory == mem && r.model == model_name)
                .map(|r| r.total_epb().as_picojoules_per_bit())
                .expect("report exists")
        };
        println!(
            "# {model_name}: COMET vs 3D_DDR4 {}, vs COSMOS {} (paper: 1.3x/2.06x and 2.7x/1.45x)",
            ratio(of("3D_DDR4"), of("COMET")),
            ratio(of("COSMOS"), of("COMET")),
        );
    }

    // Extension past Fig. 10: serving batch-size sweep. Batching amortizes
    // the weight stream, raising arithmetic intensity; the bandwidth gap
    // between COMET and the best DRAM narrows but COMET's direct optical
    // feed keeps its EPB lead.
    println!();
    println!("## extension: DeiT-B serving batch sweep (COMET vs 3D_DDR4)");
    let mut sweep = Table::new(vec![
        "batch",
        "bytes_per_sample_MB",
        "comet_system_epb_pJb",
        "ddr4_3d_system_epb_pJb",
        "comet_advantage",
    ]);
    for batch in [1u32, 4, 16, 64] {
        let model = TransformerWorkload::deit_base().batched(batch);
        let mut comet_dev = CometDevice::new(CometConfig::comet_4b());
        let mut ddr = DramDevice::new(DramConfig::ddr4_3d());
        let c = evaluate_system(&mut comet_dev, FeedKind::Photonic, &model, 1, 40, 7);
        let d = evaluate_system(&mut ddr, FeedKind::Electronic, &model, 1, 40, 7);
        sweep.row(vec![
            batch.to_string(),
            format!(
                "{:.1}",
                TransformerWorkload::deit_base()
                    .bytes_per_sample(batch)
                    .value() as f64
                    / 1e6
            ),
            format!("{:.2}", c.total_epb().as_picojoules_per_bit()),
            format!("{:.2}", d.total_epb().as_picojoules_per_bit()),
            ratio(
                d.total_epb().as_picojoules_per_bit(),
                c.total_epb().as_picojoules_per_bit(),
            ),
        ]);
    }
    sweep.print();
}
