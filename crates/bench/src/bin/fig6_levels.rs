//! Fig. 6 — latency and optical transmission of the 16 crystalline-fraction
//! levels in both programming case studies.

use comet_bench::{header, Table};
use opcm_phys::{CellThermalModel, ProgramMode, ProgramTable};

fn main() {
    header(
        "fig6",
        "16-level programming tables (both case studies)",
        "16 equally spaced transmission levels (~6% spacing); case-1 \
         (crystalline reset) ~880 pJ reset, case-2 (amorphous reset) \
         ~280 pJ reset; max write ~170 ns (Table II)",
    );

    let model = CellThermalModel::comet_gst();
    for mode in ProgramMode::ALL {
        let table = ProgramTable::generate(&model, mode, 4).expect("table generation");
        println!("# mode: {mode}");
        println!(
            "# reset: {:.0} ns at {:.1} mW = {:.0} pJ (reset fraction {:.2})",
            table.reset.pulse.duration.as_nanos(),
            table.reset.pulse.power.as_milliwatts(),
            table.reset.energy().as_picojoules(),
            table.reset.fraction,
        );
        let mut t = Table::new(vec![
            "level",
            "transmittance",
            "crystalline_fraction",
            "latency_ns",
            "energy_pJ",
        ]);
        for l in &table.levels {
            t.row(vec![
                l.level.to_string(),
                format!("{:.4}", l.transmittance.value()),
                format!("{:.4}", l.crystalline_fraction),
                format!("{:.1}", l.latency().as_nanos()),
                format!("{:.1}", l.energy().as_picojoules()),
            ]);
        }
        t.print();
        println!(
            "# max write latency {:.1} ns, spacing {:.3}",
            table.max_write_latency().as_nanos(),
            table.spacing
        );
        println!();
    }
}
