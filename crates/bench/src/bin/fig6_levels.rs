//! Fig. 6 — latency and optical transmission of the 16 crystalline-fraction
//! levels in both programming case studies.

use comet_bench::{header, Table};
use opcm_phys::{CellThermalModel, ProgramMode, ProgramTable};
use photonic::CellModelMode;

fn main() {
    header(
        "fig6",
        "16-level programming tables (both case studies)",
        "16 equally spaced transmission levels (~6% spacing); case-1 \
         (crystalline reset) ~880 pJ reset, case-2 (amorphous reset) \
         ~280 pJ reset; max write ~170 ns (Table II)",
    );

    let model = CellThermalModel::comet_gst();
    for mode in ProgramMode::ALL {
        let table = ProgramTable::generate(&model, mode, 4).expect("table generation");
        println!("# mode: {mode}");
        println!(
            "# reset: {:.0} ns at {:.1} mW = {:.0} pJ (reset fraction {:.2})",
            table.reset.pulse.duration.as_nanos(),
            table.reset.pulse.power.as_milliwatts(),
            table.reset.energy().as_picojoules(),
            table.reset.fraction,
        );
        let mut t = Table::new(vec![
            "level",
            "transmittance",
            "crystalline_fraction",
            "latency_ns",
            "energy_pJ",
        ]);
        for l in &table.levels {
            t.row(vec![
                l.level.to_string(),
                format!("{:.4}", l.transmittance.value()),
                format!("{:.4}", l.crystalline_fraction),
                format!("{:.1}", l.latency().as_nanos()),
                format!("{:.1}", l.energy().as_picojoules()),
            ]);
        }
        t.print();
        println!(
            "# max write latency {:.1} ns, spacing {:.3}",
            table.max_write_latency().as_nanos(),
            table.spacing
        );
        println!();
    }

    // Cross-layer divergence: the circuit layer's level grid under the
    // paper-constants provider vs the physics-derived provider. This is
    // the contract both read-out and gain-LUT sizing consume; the parity
    // test in `photonic` pins the same deltas.
    println!("## cell-model divergence: level transmittances, derived vs paper");
    let paper = CellModelMode::Paper.model();
    let derived = CellModelMode::Derived.model();
    let paper_levels = paper.transmission_levels(4);
    let derived_levels = derived.transmission_levels(4);
    let mut dv = Table::new(vec!["level", "paper_T", "derived_T", "delta"]);
    let mut max_delta = 0.0f64;
    for (k, (p, d)) in paper_levels.iter().zip(&derived_levels).enumerate() {
        let delta = d.value() - p.value();
        max_delta = max_delta.max(delta.abs());
        dv.row(vec![
            k.to_string(),
            format!("{:.4}", p.value()),
            format!("{:.4}", d.value()),
            format!("{delta:+.4}"),
        ]);
    }
    dv.print();
    println!(
        "# max |delta| {:.4} ({:.1}% of one level spacing); spacing paper \
         {:.4} vs derived {:.4}; insertion loss paper {:.3} dB vs derived {:.3} dB",
        max_delta,
        100.0 * max_delta / paper.level_spacing(4),
        paper.level_spacing(4),
        derived.level_spacing(4),
        paper.insertion_loss().value(),
        derived.insertion_loss().value(),
    );
    println!(
        "# the derived amorphous state is slightly more transmissive than the\n\
         # transcribed 0.95 top level; evaluation binaries stay in 'paper' mode\n\
         # so Fig. 6/9/10 reproduce the publication, and 'derived' mode keeps\n\
         # the same results runnable against real physics"
    );
}
