//! Fig. 7 — COMET power stacks for bit densities b ∈ {1, 2, 4}.

use comet::{CometConfig, CometPowerModel};
use comet_bench::{header, ratio, Table};
use photonic::{CellModelMode, Photodetector};

fn main() {
    header(
        "fig7",
        "COMET power stacks vs bit density",
        "power falls with b; b=4 chosen to keep the overhead low \
         (Section IV.A)",
    );

    let mut table = Table::new(vec![
        "config",
        "wavelengths",
        "laser_W",
        "soa_W",
        "eo_tuning_W",
        "interface_W",
        "total_W",
    ]);
    let mut totals = Vec::new();
    for cfg in CometConfig::bit_density_sweep() {
        let name = format!("COMET-{}b", cfg.bits_per_cell);
        let wavelengths = cfg.wavelengths();
        let stack = CometPowerModel::new(cfg).stack();
        totals.push((name.clone(), stack.total().as_watts()));
        table.row(vec![
            name,
            wavelengths.to_string(),
            format!("{:.2}", stack.laser.as_watts()),
            format!("{:.2}", stack.soa.as_watts()),
            format!("{:.4}", stack.tuning.as_watts()),
            format!("{:.2}", stack.interface.as_watts()),
            format!("{:.2}", stack.total().as_watts()),
        ]);
    }
    table.print();

    println!(
        "# COMET-1b / COMET-4b power: {}",
        ratio(totals[0].1, totals[2].1)
    );
    println!(
        "# active SOA count (4b): {} x 1.4 mW (paper: B*Mr*Mc/46)",
        CometConfig::comet_4b().active_soa_count()
    );

    // Derived-vs-paper divergence of the read-out budget: the same
    // COMET-4b power model evaluated with the cell's optics taken from
    // the transcribed constants and from the physics layer.
    println!("## read-out budget: paper vs derived cell model (COMET-4b)");
    let model = CometPowerModel::new(CometConfig::comet_4b());
    let detector = Photodetector::ge_10ghz();
    let mut dv = Table::new(vec![
        "mode",
        "read_path_dB",
        "worst_rx_uW",
        "level_err_prob_b4",
    ]);
    let mut per_mode = Vec::new();
    for mode in CellModelMode::ALL {
        let cell = mode.model();
        let path_loss = model
            .read_path(cell.as_ref())
            .total_loss(&model.config.optical);
        let rx = model.worst_received_power(cell.as_ref());
        // The error probability is evaluated at the *detector*: the cell
        // target power less the return-trip drop-MR loss (the same return
        // trip worst_received_power charges), for a transparent cell.
        let rx_full_scale = model
            .config
            .optical
            .max_power_at_cell
            .attenuate(model.config.optical.eo_mr_drop_loss);
        let err = detector.level_error_probability_for_cell(rx_full_scale, 4, cell.as_ref());
        per_mode.push((path_loss.value(), rx.as_microwatts()));
        dv.row(vec![
            mode.to_string(),
            format!("{:.3}", path_loss.value()),
            format!("{:.2}", rx.as_microwatts()),
            format!("{err:.2e}"),
        ]);
    }
    dv.print();
    println!(
        "# divergence: read path {:+.3} dB, worst received power {:+.2} uW \
         (derived - paper);\n\
         # the physics-derived amorphous cell is more transparent, so the \
         derived read path is slightly cheaper",
        per_mode[1].0 - per_mode[0].0,
        per_mode[1].1 - per_mode[0].1,
    );
}
