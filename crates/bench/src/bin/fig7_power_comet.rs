//! Fig. 7 — COMET power stacks for bit densities b ∈ {1, 2, 4}.

use comet::{CometConfig, CometPowerModel};
use comet_bench::{header, ratio, Table};

fn main() {
    header(
        "fig7",
        "COMET power stacks vs bit density",
        "power falls with b; b=4 chosen to keep the overhead low \
         (Section IV.A)",
    );

    let mut table = Table::new(vec![
        "config",
        "wavelengths",
        "laser_W",
        "soa_W",
        "eo_tuning_W",
        "interface_W",
        "total_W",
    ]);
    let mut totals = Vec::new();
    for cfg in CometConfig::bit_density_sweep() {
        let name = format!("COMET-{}b", cfg.bits_per_cell);
        let wavelengths = cfg.wavelengths();
        let stack = CometPowerModel::new(cfg).stack();
        totals.push((name.clone(), stack.total().as_watts()));
        table.row(vec![
            name,
            wavelengths.to_string(),
            format!("{:.2}", stack.laser.as_watts()),
            format!("{:.2}", stack.soa.as_watts()),
            format!("{:.4}", stack.tuning.as_watts()),
            format!("{:.2}", stack.interface.as_watts()),
            format!("{:.2}", stack.total().as_watts()),
        ]);
    }
    table.print();

    println!(
        "# COMET-1b / COMET-4b power: {}",
        ratio(totals[0].1, totals[2].1)
    );
    println!(
        "# active SOA count (4b): {} x 1.4 mW (paper: B*Mr*Mc/46)",
        CometConfig::comet_4b().active_soa_count()
    );
}
