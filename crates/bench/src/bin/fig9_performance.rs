//! Fig. 9 — average bandwidth, EPB and BW/EPB of all seven memory systems
//! across the SPEC-like workload suite.
//!
//! Every device replays the same workload profiles (traces sized to its
//! native cache line so equal bytes move through each system), through the
//! same controller/engine. Pass `--requests N` to change the trace length
//! (default 6000) and `--seed S` for a different trace instantiation.

use comet::{CometConfig, CometDevice};
use comet_bench::{header, ratio, Table};
use cosmos::{CosmosConfig, CosmosDevice};
use memsim::{
    run_simulation, spec_like_suite, DramConfig, DramDevice, EpcmConfig, EpcmDevice, MemoryDevice,
    SimConfig, SimStats,
};

struct Summary {
    name: String,
    bw_gbs: f64,
    epb_pjb: f64,
    avg_latency_ns: f64,
}

fn parse_flag(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let requests = parse_flag(&args, "--requests", 6000) as usize;
    let seed = parse_flag(&args, "--seed", 42);

    header(
        "fig9",
        "bandwidth / EPB / BW-per-EPB across memory systems",
        "photonic >> electronic bandwidth; 3D DRAM & EPCM beat photonic \
         EPB; COMET beats 2D DRAM and COSMOS EPB; COMET best BW/EPB \
         (Section IV.C)",
    );

    let device_factories: Vec<Box<dyn Fn() -> Box<dyn MemoryDevice>>> = vec![
        Box::new(|| Box::new(DramDevice::new(DramConfig::ddr3_1600_2d()))),
        Box::new(|| Box::new(DramDevice::new(DramConfig::ddr3_3d()))),
        Box::new(|| Box::new(DramDevice::new(DramConfig::ddr4_2400_2d()))),
        Box::new(|| Box::new(DramDevice::new(DramConfig::ddr4_3d()))),
        Box::new(|| Box::new(EpcmDevice::new(EpcmConfig::epcm_mm()))),
        Box::new(|| Box::new(CosmosDevice::new(CosmosConfig::corrected()))),
        Box::new(|| Box::new(CometDevice::new(CometConfig::comet_4b()))),
    ];

    let suite = spec_like_suite(requests);
    let mut per_workload = Table::new(vec![
        "device",
        "workload",
        "bandwidth_GBs",
        "epb_pJb",
        "avg_latency_ns",
        "p50_latency_ns",
        "p99_latency_ns",
        "bw_per_epb",
    ]);
    let mut summaries: Vec<Summary> = Vec::new();

    for factory in &device_factories {
        let mut all_stats: Vec<SimStats> = Vec::new();
        for profile in &suite {
            let mut device = factory();
            // Size requests to the device's native line so every system
            // moves the same bytes.
            let mut profile = profile.clone();
            let line = device.topology().line_bytes;
            profile.line_bytes = line;
            profile.requests = requests * 64 / line as usize;
            let trace = profile.generate(seed);
            let stats = run_simulation(device.as_mut(), &trace, &SimConfig::paced(&profile.name));
            per_workload.row(vec![
                stats.device.clone(),
                stats.workload.clone(),
                format!("{:.3}", stats.bandwidth().as_gigabytes_per_second()),
                format!("{:.2}", stats.energy_per_bit().as_picojoules_per_bit()),
                format!("{:.1}", stats.avg_latency().as_nanos()),
                format!("{:.0}", stats.histogram.percentile(50.0).as_nanos()),
                format!("{:.0}", stats.histogram.percentile(99.0).as_nanos()),
                format!("{:.4}", stats.bandwidth_per_epb()),
            ]);
            all_stats.push(stats);
        }
        let n = all_stats.len() as f64;
        summaries.push(Summary {
            name: all_stats[0].device.clone(),
            bw_gbs: all_stats
                .iter()
                .map(|s| s.bandwidth().as_gigabytes_per_second())
                .sum::<f64>()
                / n,
            epb_pjb: all_stats
                .iter()
                .map(|s| s.energy_per_bit().as_picojoules_per_bit())
                .sum::<f64>()
                / n,
            avg_latency_ns: all_stats
                .iter()
                .map(|s| s.avg_latency().as_nanos())
                .sum::<f64>()
                / n,
        });
    }

    println!("## per-workload results");
    per_workload.print();

    println!("## Fig. 9 averages");
    let mut avg = Table::new(vec![
        "device",
        "avg_bandwidth_GBs",
        "avg_epb_pJb",
        "avg_latency_ns",
        "bw_per_epb",
    ]);
    for s in &summaries {
        avg.row(vec![
            s.name.clone(),
            format!("{:.3}", s.bw_gbs),
            format!("{:.2}", s.epb_pjb),
            format!("{:.1}", s.avg_latency_ns),
            format!("{:.4}", s.bw_gbs / s.epb_pjb),
        ]);
    }
    avg.print();

    let comet = summaries.last().expect("COMET runs last");
    println!("## COMET ratios (paper Fig. 9 quotes in parentheses)");
    let paper = [
        ("2D_DDR3", "100.3x BW, 4.1x EPB"),
        ("3D_DDR3", "47.2x BW"),
        ("2D_DDR4", "58.7x BW, 2.3x EPB"),
        ("3D_DDR4", "42.1x BW, 6.5x BW/EPB"),
        ("EPCM-MM", "40.6x BW"),
        ("COSMOS", "5.1x BW, 12.9x EPB, 65.8x BW/EPB, 3x latency"),
    ];
    for (s, (name, quote)) in summaries.iter().zip(paper.iter()) {
        println!(
            "# vs {name}: BW {}, EPB {}, BW/EPB {}, latency {} (paper: {quote})",
            ratio(comet.bw_gbs, s.bw_gbs),
            ratio(s.epb_pjb, comet.epb_pjb),
            ratio(comet.bw_gbs / comet.epb_pjb, s.bw_gbs / s.epb_pjb),
            ratio(s.avg_latency_ns, comet.avg_latency_ns),
        );
    }
}
