//! Fig. 9 — average bandwidth, EPB and BW/EPB of all seven memory systems
//! across the SPEC-like workload suite.
//!
//! A thin wrapper over a `comet-lab` campaign: the seven devices × eight
//! workloads grid is a [`CampaignSpec`] sharded across threads by
//! [`run_campaign`] (traces are sized to each device's native line by the
//! campaign's line normalization, so equal bytes move through each
//! system). Pass `--requests N` to change the trace length (default 6000),
//! `--seed S` for a different trace instantiation and `--threads T` to
//! control sharding (the results are identical for any thread count).

use comet_bench::{header, ratio, Table};
use comet_lab::{default_threads, fig9_device_axis, run_campaign, CampaignSpec, WorkloadSource};
use memsim::spec_like_suite;

fn parse_flag(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let requests = parse_flag(&args, "--requests", 6000) as usize;
    let seed = parse_flag(&args, "--seed", 42);
    let threads = parse_flag(&args, "--threads", default_threads() as u64) as usize;

    header(
        "fig9",
        "bandwidth / EPB / BW-per-EPB across memory systems",
        "photonic >> electronic bandwidth; 3D DRAM & EPCM beat photonic \
         EPB; COMET beats 2D DRAM and COSMOS EPB; COMET best BW/EPB \
         (Section IV.C)",
    );

    let spec = CampaignSpec::new(
        "fig9",
        seed,
        fig9_device_axis(),
        spec_like_suite(requests)
            .into_iter()
            .map(WorkloadSource::Profile)
            .collect(),
    );
    let report = run_campaign(&spec, threads);

    let mut per_workload = Table::new(vec![
        "device",
        "workload",
        "bandwidth_GBs",
        "epb_pJb",
        "avg_latency_ns",
        "p50_latency_ns",
        "p99_latency_ns",
        "bw_per_epb",
    ]);
    for cell in &report.cells {
        let stats = &cell.stats;
        per_workload.row(vec![
            stats.device.clone(),
            stats.workload.clone(),
            format!("{:.3}", stats.bandwidth().as_gigabytes_per_second()),
            format!("{:.2}", stats.energy_per_bit().as_picojoules_per_bit()),
            format!("{:.1}", stats.avg_latency().as_nanos()),
            format!("{:.0}", stats.histogram.percentile(50.0).as_nanos()),
            format!("{:.0}", stats.histogram.percentile(99.0).as_nanos()),
            format!("{:.4}", stats.bandwidth_per_epb()),
        ]);
    }

    println!("## per-workload results");
    per_workload.print();

    println!("## Fig. 9 averages");
    let summaries = report.device_summaries();
    let mut avg = Table::new(vec![
        "device",
        "avg_bandwidth_GBs",
        "avg_epb_pJb",
        "avg_latency_ns",
        "bw_per_epb",
    ]);
    for s in &summaries {
        avg.row(vec![
            s.device.clone(),
            format!("{:.3}", s.avg_bandwidth_gbs),
            format!("{:.2}", s.avg_epb_pjb),
            format!("{:.1}", s.avg_latency_ns),
            format!("{:.4}", s.bw_per_epb()),
        ]);
    }
    avg.print();

    let comet = summaries.last().expect("COMET runs last");
    println!("## COMET ratios (paper Fig. 9 quotes in parentheses)");
    let paper = [
        ("2D_DDR3", "100.3x BW, 4.1x EPB"),
        ("3D_DDR3", "47.2x BW"),
        ("2D_DDR4", "58.7x BW, 2.3x EPB"),
        ("3D_DDR4", "42.1x BW, 6.5x BW/EPB"),
        ("EPCM-MM", "40.6x BW"),
        ("COSMOS", "5.1x BW, 12.9x EPB, 65.8x BW/EPB, 3x latency"),
    ];
    for (s, (name, quote)) in summaries.iter().zip(paper.iter()) {
        println!(
            "# vs {name}: BW {}, EPB {}, BW/EPB {}, latency {} (paper: {quote})",
            ratio(comet.avg_bandwidth_gbs, s.avg_bandwidth_gbs),
            ratio(s.avg_epb_pjb, comet.avg_epb_pjb),
            ratio(comet.bw_per_epb(), s.bw_per_epb()),
            ratio(s.avg_latency_ns, comet.avg_latency_ns),
        );
    }
}
