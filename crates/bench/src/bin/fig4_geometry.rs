//! Fig. 4 — optical absorption contrast and transmission contrast of the
//! GST cell across geometries (width × thickness).

use comet_bench::{header, Table};
use comet_units::Length;
use opcm_phys::{reference_wavelength, CellOpticalModel};

fn main() {
    header(
        "fig4",
        "GST cell contrast vs geometry",
        "~95% transmission and absorption contrast at 20 nm thickness for \
         the 2 um cell; width impact negligible (Section III.B)",
    );

    let model = CellOpticalModel::comet_gst();
    let lambda = reference_wavelength();
    let widths: Vec<Length> = [300.0, 360.0, 420.0, 480.0]
        .iter()
        .map(|&w| Length::from_nanometers(w))
        .collect();
    let thicknesses: Vec<Length> = [5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 40.0, 50.0]
        .iter()
        .map(|&t| Length::from_nanometers(t))
        .collect();

    let mut table = Table::new(vec![
        "width_nm",
        "thickness_nm",
        "transmission_contrast",
        "absorption_contrast",
    ]);
    for p in model.geometry_sweep(&widths, &thicknesses, lambda) {
        table.row(vec![
            format!("{:.0}", p.width.as_nanometers()),
            format!("{:.0}", p.thickness.as_nanometers()),
            format!("{:.4}", p.transmission_contrast),
            format!("{:.4}", p.absorption_contrast),
        ]);
    }
    table.print();

    let selected = model.transmission_contrast(lambda);
    println!(
        "# selected design (480 nm, 20 nm): transmission contrast {:.3}, absorption contrast {:.3}",
        selected,
        model.absorption_contrast(lambda)
    );
    println!(
        "# amorphous cell loss: {:.4} dB/mm at 1530 nm -> {:.4} dB/mm at 1565 nm",
        model
            .amorphous_loss_per_mm(Length::from_nanometers(1530.0))
            .value(),
        model
            .amorphous_loss_per_mm(Length::from_nanometers(1565.0))
            .value()
    );
}
