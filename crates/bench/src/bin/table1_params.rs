//! Table I — optical loss and power parameters used for COMET power
//! modeling, plus the quantities the architecture derives from them.

use comet_bench::{header, Table};
use comet_units::Length;
use photonic::{CellModelMode, LevelBudget, OpticalParams};

fn main() {
    header(
        "table1",
        "optical loss and power parameters",
        "verbatim Table I constants with their derived architecture figures",
    );

    let p = OpticalParams::table_i();
    let mut loss = Table::new(vec!["loss_parameter", "value"]);
    loss.row(vec![
        "coupling loss".to_string(),
        format!("{}", p.coupling_loss),
    ])
    .row(vec![
        "MR drop loss".to_string(),
        format!("{}", p.mr_drop_loss),
    ])
    .row(vec![
        "MR through loss".to_string(),
        format!("{}", p.mr_through_loss),
    ])
    .row(vec![
        "EO tuned MR drop loss".to_string(),
        format!("{}", p.eo_mr_drop_loss),
    ])
    .row(vec![
        "EO tuned MR through loss".to_string(),
        format!("{}", p.eo_mr_through_loss),
    ])
    .row(vec![
        "propagation loss".to_string(),
        format!("{} /cm", p.propagation_loss_per_cm),
    ])
    .row(vec![
        "bending loss".to_string(),
        format!("{} /90deg", p.bend_loss_per_90),
    ])
    .row(vec![
        "GST switch loss".to_string(),
        format!("{}", p.gst_switch_loss),
    ])
    .row(vec!["SOA gain".to_string(), format!("{}", p.soa_gain)])
    .row(vec![
        "intra-subarray SOA gain".to_string(),
        format!("{}", p.intra_subarray_soa_gain),
    ]);
    loss.print();

    let mut power = Table::new(vec!["power_parameter", "value"]);
    power
        .row(vec![
            "laser wall plug efficiency".to_string(),
            format!("{:.0}%", p.laser_wall_plug_efficiency * 100.0),
        ])
        .row(vec![
            "EO tuning power".to_string(),
            format!(
                "{:.1} uW/nm",
                p.eo_tuning_power(Length::from_nanometers(1.0))
                    .as_microwatts()
            ),
        ])
        .row(vec![
            "max power at GST cell".to_string(),
            format!("{}", p.max_power_at_cell),
        ])
        .row(vec![
            "intra-subarray SOA power".to_string(),
            format!("{}", p.intra_subarray_soa_power),
        ]);
    power.print();

    println!(
        "# derived: SOA re-amplification every {} rows (15.2 dB / 0.33 dB)",
        p.rows_per_soa_stage()
    );

    // The cross-layer cell contract under both providers: the transcribed
    // paper constants next to the physics-derived values, with the
    // divergence each architecture-level quantity inherits.
    println!("## cell optical contract: paper vs derived (CellOpticalModel)");
    let paper = CellModelMode::Paper.model();
    let derived = CellModelMode::Derived.model();
    let mut cell = Table::new(vec!["cell_quantity", "paper", "derived", "delta"]);
    type CellQuantity = fn(&dyn photonic::CellOpticalModel) -> f64;
    let rows: [(&str, CellQuantity); 5] = [
        ("top level T", |m| m.max_transmittance().value()),
        ("bottom level T", |m| m.min_transmittance().value()),
        ("insertion loss (dB)", |m| m.insertion_loss().value()),
        ("level spacing @4b", |m| m.level_spacing(4)),
        ("fraction span", |m| m.fraction_span()),
    ];
    for (name, f) in rows {
        let a = f(paper.as_ref());
        let b = f(derived.as_ref());
        cell.row(vec![
            name.to_string(),
            format!("{a:.4}"),
            format!("{b:.4}"),
            format!("{:+.4}", b - a),
        ]);
    }
    for bits in [1u8, 2, 4] {
        let a = LevelBudget::for_cell(bits, paper.as_ref())
            .loss_tolerance
            .value();
        let b = LevelBudget::for_cell(bits, derived.as_ref())
            .loss_tolerance
            .value();
        cell.row(vec![
            format!("loss tolerance b={bits} (dB)"),
            format!("{a:.3}"),
            format!("{b:.3}"),
            format!("{:+.3}", b - a),
        ]);
    }
    cell.print();
    println!(
        "# evaluation runs in 'paper' mode by default; 'derived' resolves the\n\
         # same contract from opcm-phys (sweep both: comet-lab --devices\n\
         # COMET-paper,COMET-derived)"
    );
}
