//! Table I — optical loss and power parameters used for COMET power
//! modeling, plus the quantities the architecture derives from them.

use comet_bench::{header, Table};
use comet_units::Length;
use photonic::OpticalParams;

fn main() {
    header(
        "table1",
        "optical loss and power parameters",
        "verbatim Table I constants with their derived architecture figures",
    );

    let p = OpticalParams::table_i();
    let mut loss = Table::new(vec!["loss_parameter", "value"]);
    loss.row(vec![
        "coupling loss".to_string(),
        format!("{}", p.coupling_loss),
    ])
    .row(vec![
        "MR drop loss".to_string(),
        format!("{}", p.mr_drop_loss),
    ])
    .row(vec![
        "MR through loss".to_string(),
        format!("{}", p.mr_through_loss),
    ])
    .row(vec![
        "EO tuned MR drop loss".to_string(),
        format!("{}", p.eo_mr_drop_loss),
    ])
    .row(vec![
        "EO tuned MR through loss".to_string(),
        format!("{}", p.eo_mr_through_loss),
    ])
    .row(vec![
        "propagation loss".to_string(),
        format!("{} /cm", p.propagation_loss_per_cm),
    ])
    .row(vec![
        "bending loss".to_string(),
        format!("{} /90deg", p.bend_loss_per_90),
    ])
    .row(vec![
        "GST switch loss".to_string(),
        format!("{}", p.gst_switch_loss),
    ])
    .row(vec!["SOA gain".to_string(), format!("{}", p.soa_gain)])
    .row(vec![
        "intra-subarray SOA gain".to_string(),
        format!("{}", p.intra_subarray_soa_gain),
    ]);
    loss.print();

    let mut power = Table::new(vec!["power_parameter", "value"]);
    power
        .row(vec![
            "laser wall plug efficiency".to_string(),
            format!("{:.0}%", p.laser_wall_plug_efficiency * 100.0),
        ])
        .row(vec![
            "EO tuning power".to_string(),
            format!(
                "{:.1} uW/nm",
                p.eo_tuning_power(Length::from_nanometers(1.0))
                    .as_microwatts()
            ),
        ])
        .row(vec![
            "max power at GST cell".to_string(),
            format!("{}", p.max_power_at_cell),
        ])
        .row(vec![
            "intra-subarray SOA power".to_string(),
            format!("{}", p.intra_subarray_soa_power),
        ]);
    power.print();

    println!(
        "# derived: SOA re-amplification every {} rows (15.2 dB / 0.33 dB)",
        p.rows_per_soa_stage()
    );
}
