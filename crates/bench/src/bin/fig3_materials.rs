//! Fig. 3 — refractive index `n` and extinction coefficient `κ` of GST,
//! GSST and Sb₂Se₃ in both phases across the optical C-band.

use comet_bench::{header, Table};
use opcm_phys::{material_spectra, PcmKind, Phase};

fn main() {
    header(
        "fig3",
        "PCM candidate n/kappa spectra (C-band)",
        "GST shows the highest refractive-index and extinction contrast of \
         the three candidates, motivating its selection (Section III.A)",
    );

    let mut table = Table::new(vec!["material", "phase", "wavelength_nm", "n", "kappa"]);
    for p in material_spectra(15) {
        table.row(vec![
            p.kind.to_string(),
            p.phase.to_string(),
            format!("{:.1}", p.wavelength.as_nanometers()),
            format!("{:.4}", p.index.n),
            format!("{:.6}", p.index.kappa),
        ]);
    }
    table.print();

    // The selection metric the paper reads off this figure.
    let mut contrast = Table::new(vec![
        "material",
        "index_contrast_1550",
        "extinction_contrast_1550",
    ]);
    let lambda = opcm_phys::reference_wavelength();
    for kind in PcmKind::ALL {
        let m = kind.material();
        contrast.row(vec![
            kind.to_string(),
            format!("{:.4}", m.index_contrast(lambda)),
            format!("{:.4}", m.extinction_contrast(lambda)),
        ]);
    }
    contrast.print();

    let gst = PcmKind::Gst.material();
    let a = gst.refractive_index(Phase::Amorphous, lambda);
    let c = gst.refractive_index(Phase::Crystalline, lambda);
    println!(
        "# GST @1550nm: amorphous n={:.2}, crystalline n={:.2} (dn={:.2}), kappa_c={:.2}",
        a.n,
        c.n,
        c.n - a.n,
        c.kappa
    );
}
