//! Table II — architectural details of the photonic memory systems, with a
//! cross-check of the write/erase budget against the physics layer.

use comet::{CometConfig, CometTiming};
use comet_bench::{header, Table};
use cosmos::CosmosConfig;
use opcm_phys::{CellThermalModel, ProgramMode, ProgramTable};

fn main() {
    header(
        "table2",
        "architectural timing of COMET and COSMOS",
        "COMET: 4 banks, 256-bit bus, BL4, write<=170ns, erase 210ns, read \
         10ns; COSMOS: 8 banks (16 modeled), 128-bit bus, BL8, write 1.6us, \
         erase 250ns, read 25ns; both: 1ns bursts, 105ns interface",
    );

    let comet = CometConfig::comet_4b();
    let cosmos = CosmosConfig::corrected();
    let ct = comet.timing;
    let kt = cosmos.timing;

    let mut t = Table::new(vec!["parameter", "COMET", "COSMOS"]);
    t.row(vec![
        "banks".to_string(),
        comet.banks.to_string(),
        cosmos.banks.to_string(),
    ])
    .row(vec![
        "bus width (bits)".to_string(),
        ct.bus_bits.to_string(),
        kt.bus_bits.to_string(),
    ])
    .row(vec![
        "burst length".to_string(),
        ct.burst_length.to_string(),
        kt.burst_length.to_string(),
    ])
    .row(vec![
        "bytes per access".to_string(),
        ct.access_bytes().to_string(),
        kt.access_bytes().to_string(),
    ])
    .row(vec![
        "read time (ns)".to_string(),
        format!("{:.0}", ct.read_time.as_nanos()),
        format!("{:.0}", kt.read_time.as_nanos()),
    ])
    .row(vec![
        "max write time (ns)".to_string(),
        format!("{:.0}", ct.max_write_time.as_nanos()),
        format!("{:.0}", kt.write_time.as_nanos()),
    ])
    .row(vec![
        "erase time (ns)".to_string(),
        format!("{:.0}", ct.erase_time.as_nanos()),
        format!("{:.0}", kt.erase_time.as_nanos()),
    ])
    .row(vec![
        "data burst time (ns)".to_string(),
        format!("{:.0}", ct.burst_beat.as_nanos()),
        format!("{:.0}", kt.burst_beat.as_nanos()),
    ])
    .row(vec![
        "interface delay (ns)".to_string(),
        format!("{:.0}", ct.interface_delay.as_nanos()),
        format!("{:.0}", kt.interface_delay.as_nanos()),
    ]);
    t.print();

    // Cross-check: derive the COMET budget from the device physics, and
    // document (rather than silently print) where the semi-analytic model
    // diverges from Table II.
    let model = CellThermalModel::comet_gst();
    let table = ProgramTable::generate(&model, ProgramMode::AmorphousReset, 4)
        .expect("physics-layer programming table");
    let derived = CometTiming::from_program_table(&table);

    println!("## physics cross-check vs Table II (documented divergence)");
    let mut xc = Table::new(vec!["parameter", "derived_ns", "paper_ns", "ratio"]);
    let write_ns = derived.max_write_time.as_nanos();
    let erase_ns = derived.erase_time.as_nanos();
    xc.row(vec![
        "max write time".to_string(),
        format!("{write_ns:.0}"),
        "170".to_string(),
        format!("{:.2}x", write_ns / 170.0),
    ])
    .row(vec![
        "erase time".to_string(),
        format!("{erase_ns:.0}"),
        "210".to_string(),
        format!("{:.2}x", erase_ns / 210.0),
    ]);
    xc.print();

    println!(
        "# divergence rationale (known, accepted — see ROADMAP):\n\
         #  * max write: the lumped model's Gaussian crystallization kinetics\n\
         #    slow asymptotically near full crystallinity, so the deepest\n\
         #    level's pulse stretches to ~{write_ns:.0} ns where the paper's\n\
         #    measured Fig. 6 table tops out at 170 ns. The divergence is the\n\
         #    kinetics *tail shape*, not the ns-decade: mid-table levels match.\n\
         #  * erase: the single-node model melts the whole film the moment the\n\
         #    plateau is crossed (~{erase_ns:.0} ns at 5 mW guarantees amorphization\n\
         #    from any start state); the paper's 210 ns budgets a distributed\n\
         #    melt front plus quench margin that a lumped node cannot represent.\n\
         #  * the architecture layer deliberately uses the Table II constants\n\
         #    (CometTiming::table_ii) for evaluation, so this divergence does\n\
         #    not leak into Fig. 9/10 results; from_program_table exists to\n\
         #    study the sensitivity."
    );
    println!(
        "# unloaded COMET read latency: {:.0} ns (2 tune + 10 read + 4 burst + 105 interface)",
        ct.unloaded_read_latency().as_nanos()
    );
}
