//! Ablation studies over COMET's design choices (DESIGN.md Section 7).
//!
//! Each block toggles one mechanism the paper argues for and measures what
//! it buys, on a mixed random workload:
//!
//! * EO vs thermal MR tuning (the Section II.B argument);
//! * GST-switch subarray gating vs a passive splitter tree (laser power);
//! * bit density b ∈ {1,2,4} (the Fig. 7 trade);
//! * subarray striping ways (write-stream parallelism);
//! * background vs inline erase;
//! * FR-FCFS vs FCFS scheduling.
//!
//! The device-sweep blocks are thin wrappers over `comet-lab` campaign
//! specs (device variants × a fixed trace), sharded across threads by
//! `run_campaign`; only the dynamic-laser block drives the engine directly
//! (it inspects post-run device state the campaign report does not carry).

use comet::{CometConfig, CometDevice, CometPowerModel, LaserPolicy, WindowedPolicy};
use comet_bench::{header, Table};
use comet_lab::{
    comet_variant, default_threads, run_campaign, CampaignSpec, CellReport, EnginePoint,
    WorkloadSource,
};
use comet_units::{ByteCount, Decibels, Time};
use memsim::{run_simulation, MemOp, MemRequest, ReplayMode, Scheduler, SimConfig};
use photonic::{Laser, MrTuning, OpticalParams};

fn mixed_trace(n: u64, write_period: u64) -> Vec<MemRequest> {
    (0..n)
        .map(|i| {
            let op = if i % write_period == 0 {
                MemOp::Write
            } else {
                MemOp::Read
            };
            // Large-prime stride for low locality.
            MemRequest::new(
                i,
                Time::from_nanos(i as f64 * 0.5),
                op,
                i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (1 << 30),
                ByteCount::new(128),
            )
        })
        .collect()
}

/// Runs COMET-variant devices against one fixed trace as a sharded
/// campaign and returns the cells in device order.
fn variant_campaign(
    name: &str,
    devices: Vec<(String, CometConfig)>,
    workload: &WorkloadSource,
    engines: Vec<EnginePoint>,
) -> Vec<CellReport> {
    let mut spec = CampaignSpec::new(
        name,
        0,
        devices
            .into_iter()
            .map(|(label, cfg)| comet_variant(&label, cfg))
            .collect(),
        vec![workload.clone()],
    );
    spec.engines = engines;
    run_campaign(&spec, default_threads()).cells
}

fn bw_lat(cell: &CellReport) -> (f64, f64) {
    (
        cell.stats.bandwidth().as_gigabytes_per_second(),
        cell.stats.avg_latency().as_nanos(),
    )
}

fn main() {
    header(
        "ablations",
        "COMET design-choice ablations",
        "quantifies each mechanism the paper argues for (Sections II.B, \
         III.C-E)",
    );

    let mixed = WorkloadSource::trace("mixed", mixed_trace(20_000, 5));

    // --- MR tuning mechanism: access latency impact.
    println!("## MR tuning mechanism (per-access row gating)");
    let mut tuning = Table::new(vec!["mechanism", "row_access", "unloaded_read_latency_ns"]);
    for mech in [MrTuning::ElectroOptic, MrTuning::Thermal] {
        let mut cfg = CometConfig::comet_4b();
        cfg.timing.row_access_time = mech.latency();
        tuning.row(vec![
            mech.to_string(),
            format!("{}", mech.latency()),
            format!("{:.0}", cfg.timing.unloaded_read_latency().as_nanos()),
        ]);
    }
    tuning.print();

    // --- Subarray access: GST switch vs passive splitter tree.
    println!("## subarray access mechanism (laser power per wavelength)");
    let params = OpticalParams::table_i();
    let laser = Laser::table_i();
    let target = params.max_power_at_cell;
    let switch_loss = params.gst_switch_loss;
    // A passive splitter to sqrt(S_r)=64 subarray rows costs 10*log10(64).
    let splitter_loss = Decibels::new(10.0 * 64f64.log10());
    let mut access = Table::new(vec!["mechanism", "access_loss_dB", "laser_mW_per_channel"]);
    for (name, loss) in [("gst-switch", switch_loss), ("splitter-64", splitter_loss)] {
        access.row(vec![
            name.to_string(),
            format!("{:.2}", loss.value()),
            format!(
                "{:.2}",
                laser
                    .electrical_power_for_target(target, loss)
                    .as_milliwatts()
            ),
        ]);
    }
    access.print();

    // --- Bit density.
    println!("## bit density (power vs capacity-normalized cost)");
    let mut density = Table::new(vec!["config", "total_power_W", "bandwidth_GBs"]);
    let sweep = CometConfig::bit_density_sweep();
    let cells = variant_campaign(
        "bit-density",
        sweep
            .iter()
            .map(|cfg| (format!("COMET-{}b", cfg.bits_per_cell), cfg.clone()))
            .collect(),
        &mixed,
        vec![EnginePoint::paced()],
    );
    for (cfg, cell) in sweep.iter().zip(&cells) {
        let power = CometPowerModel::new(cfg.clone()).stack().total().as_watts();
        let (bw, _) = bw_lat(cell);
        density.row(vec![
            cell.device.clone(),
            format!("{power:.1}"),
            format!("{bw:.1}"),
        ]);
    }
    density.print();

    // --- Subarray striping.
    println!("## subarray striping (write-stream parallelism)");
    let stream_writes: Vec<MemRequest> = (0..20_000u64)
        .map(|i| {
            MemRequest::new(
                i,
                Time::from_nanos(i as f64 * 0.5),
                if i % 3 == 0 {
                    MemOp::Write
                } else {
                    MemOp::Read
                },
                i * 128,
                ByteCount::new(128),
            )
        })
        .collect();
    let mut stripe_table = Table::new(vec!["stripe_ways", "stream_bw_GBs", "avg_latency_ns"]);
    let stripes = [1u64, 4, 16, 64, 256];
    let cells = variant_campaign(
        "striping",
        stripes
            .iter()
            .map(|&stripe| {
                let mut cfg = CometConfig::comet_4b();
                cfg.subarray_stripe = stripe;
                (format!("stripe-{stripe}"), cfg)
            })
            .collect(),
        &WorkloadSource::trace("stream", stream_writes),
        vec![EnginePoint::paced()],
    );
    for (stripe, cell) in stripes.iter().zip(&cells) {
        let (bw, lat) = bw_lat(cell);
        stripe_table.row(vec![
            stripe.to_string(),
            format!("{bw:.1}"),
            format!("{lat:.0}"),
        ]);
    }
    stripe_table.print();

    // --- Erase policy.
    println!("## erase policy");
    let mut erase = Table::new(vec!["policy", "bw_GBs", "avg_latency_ns"]);
    let cells = variant_campaign(
        "erase-policy",
        [("background-erase", true), ("inline-erase", false)]
            .iter()
            .map(|&(name, background)| {
                let mut cfg = CometConfig::comet_4b();
                cfg.timing.background_erase = background;
                (name.to_string(), cfg)
            })
            .collect(),
        &mixed,
        vec![EnginePoint::paced()],
    );
    for cell in &cells {
        let (bw, lat) = bw_lat(cell);
        erase.row(vec![
            cell.device.clone(),
            format!("{bw:.1}"),
            format!("{lat:.0}"),
        ]);
    }
    erase.print();

    // --- Scheduler (an engine-axis campaign: one device, two points).
    println!("## scheduler");
    let mut sched = Table::new(vec!["scheduler", "bw_GBs", "avg_latency_ns"]);
    let cells = variant_campaign(
        "scheduler",
        vec![("COMET".to_string(), CometConfig::comet_4b())],
        &mixed,
        vec![
            EnginePoint::new(
                "FR-FCFS(8)",
                Scheduler::FrFcfs { window: 8 },
                ReplayMode::Paced,
            ),
            EnginePoint::new("FCFS", Scheduler::Fcfs, ReplayMode::Paced),
        ],
    );
    for cell in &cells {
        let (bw, lat) = bw_lat(cell);
        sched.row(vec![
            cell.engine.clone(),
            format!("{bw:.1}"),
            format!("{lat:.0}"),
        ]);
    }
    sched.print();

    // --- WDM crosstalk mitigation (the paper's ongoing work [49]-[51]):
    // accumulated heterodyne crosstalk at the interface demux vs filter
    // order and ring Q, against the per-bit-density analog margins.
    println!("## WDM crosstalk mitigation (interface demux; ongoing work [49]-[51])");
    let mut xt = Table::new(vec![
        "demux_ring",
        "filter_order",
        "channels",
        "total_crosstalk",
        "fits_b4_margin",
        "max_channels_b4",
    ]);
    {
        use photonic::{FilterOrder, LevelBudget, Microring, WdmCrosstalkAnalysis};
        let b4 = LevelBudget::for_bits(4);
        for (ring_name, ring) in [
            ("access-Q8k", Microring::comet_default()),
            ("demux-Q40k", Microring::interface_demux()),
        ] {
            for order in [FilterOrder::Single, FilterOrder::Double] {
                let a = WdmCrosstalkAnalysis::new(ring, 256, order);
                xt.row(vec![
                    ring_name.to_string(),
                    format!("{order:?}"),
                    "256".to_string(),
                    format!("{:.4}", a.total_crosstalk()),
                    a.within_budget(&b4).to_string(),
                    WdmCrosstalkAnalysis::max_channels_within(ring, order, &b4).to_string(),
                ]);
            }
        }
    }
    xt.print();

    // --- Bit density beyond b=4: why the paper stops there even though
    // [17] demonstrates >34 states (5 bits). Chains the level budget, LUT
    // granularity, end-to-end readout BER and drift scrub interval.
    println!("## bit density feasibility (including the 5-bit cell of [17])");
    let mut feas = Table::new(vec![
        "bits",
        "levels",
        "spacing_pct",
        "loss_tolerance_dB",
        "lut_step_rows",
        "worst_row_level_error",
        "drift_scrub_interval_s",
    ]);
    {
        use comet::{DriftModel, ReadoutReliability};
        use photonic::LevelBudget;
        let drift = DriftModel::default();
        for bits in [1u8, 2, 4, 5] {
            let mut cfg = CometConfig::comet_4b();
            cfg.bits_per_cell = bits;
            let budget = LevelBudget::for_bits(bits);
            let rel = ReadoutReliability::new(cfg.clone());
            let step = comet::GainLut::step_rows(bits, &cfg.optical);
            feas.row(vec![
                bits.to_string(),
                budget.levels.to_string(),
                format!("{:.1}", 100.0 / (budget.levels - 1) as f64),
                format!("{:.2}", budget.loss_tolerance.value()),
                step.to_string(),
                format!("{:.2e}", rel.worst_row_error()),
                {
                    let s = drift.scrub_interval(bits).as_seconds();
                    // A century is "never" for scrub purposes.
                    if s > 3.15e9 {
                        ">100y".to_string()
                    } else {
                        format!("{s:.0}")
                    }
                },
            ]);
        }
    }
    feas.print();

    // The same question at the physics layer: a 32-level program table
    // from the thermal model ([17]'s ">34 states" claim supports it) —
    // programmable, but with ~half the spacing and the slowest level
    // dominating write time.
    println!("## 5-bit programming (physics layer)");
    let mut p5 = Table::new(vec![
        "bits",
        "levels",
        "spacing",
        "max_write_ns",
        "max_write_pJ",
        "loss_margin",
    ]);
    {
        use opcm_phys::{CellThermalModel, ProgramMode, ProgramTable};
        let model = CellThermalModel::comet_gst();
        for bits in [4u8, 5] {
            match ProgramTable::generate(&model, ProgramMode::AmorphousReset, bits) {
                Ok(table) => {
                    p5.row(vec![
                        bits.to_string(),
                        table.levels.len().to_string(),
                        format!("{:.3}", table.spacing),
                        format!("{:.0}", table.max_write_latency().as_nanos()),
                        format!("{:.0}", table.max_write_energy().as_picojoules()),
                        format!("{:.3}", table.loss_margin()),
                    ]);
                }
                Err(e) => {
                    p5.row(vec![
                        bits.to_string(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        format!("{e:?}"),
                    ]);
                }
            }
        }
    }
    p5.print();

    // --- Wear leveling: start-gap vs none on hot-spot write traffic.
    println!("## wear leveling (start-gap vs direct mapping, hot-spot writes)");
    let mut wear_table = Table::new(vec![
        "mapping",
        "wear_imbalance",
        "relative_lifetime",
        "write_amplification_pct",
    ]);
    {
        use comet::{StartGapRemapper, WearTracker};
        const ROWS: u64 = 512;
        const WRITES: u64 = 500_000;
        // 80% of writes hammer 4 hot rows; 20% spread uniformly.
        let target = |i: u64| {
            if i % 5 != 0 {
                (i / 5) % 4
            } else {
                i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % ROWS
            }
        };
        // Direct mapping.
        let mut direct = WearTracker::new(ROWS);
        for i in 0..WRITES {
            direct.record(target(i));
        }
        wear_table.row(vec![
            "direct".to_string(),
            format!("{:.1}", direct.imbalance()),
            "1.0".to_string(),
            "0.0".to_string(),
        ]);
        // Start-gap at several gap periods: faster rotation levels harder
        // but costs proportionally more copy writes.
        for period in [128u64, 32, 8] {
            let mut sg = StartGapRemapper::new(ROWS, period);
            let mut leveled = WearTracker::new(sg.physical_rows());
            for i in 0..WRITES {
                leveled.record(sg.write(target(i)));
            }
            let amp = 100.0 * sg.move_writes() as f64 / WRITES as f64;
            wear_table.row(vec![
                format!("start-gap({period})"),
                format!("{:.1}", leveled.imbalance()),
                format!(
                    "{:.1}",
                    direct.max_wear() as f64 / leveled.max_wear() as f64
                ),
                format!("{amp:.2}"),
            ]);
        }
    }
    wear_table.print();

    // --- Dynamic laser power management (the paper's future-work note,
    // implemented in `comet::laser` after [43]): sweep demand intensity and
    // compare the static stack against windowed gating.
    println!("## dynamic laser power management (future work, Section IV.C)");
    let mut dlpm = Table::new(vec![
        "interarrival_ns",
        "policy",
        "epb_pJb",
        "bw_GBs",
        "wakeups",
    ]);
    for interarrival_ns in [0.5, 50.0, 5_000.0, 500_000.0] {
        let sparse: Vec<MemRequest> = (0..2_000u64)
            .map(|i| {
                MemRequest::new(
                    i,
                    Time::from_nanos(i as f64 * interarrival_ns),
                    if i % 5 == 0 {
                        MemOp::Write
                    } else {
                        MemOp::Read
                    },
                    i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (1 << 30),
                    ByteCount::new(128),
                )
            })
            .collect();
        for (name, policy) in [
            ("static", LaserPolicy::Static),
            (
                "windowed-1us",
                LaserPolicy::Windowed(WindowedPolicy::default_1us()),
            ),
            (
                "windowed-200ns",
                LaserPolicy::Windowed(WindowedPolicy::aggressive()),
            ),
        ] {
            let mut dev = CometDevice::with_policy(CometConfig::comet_4b(), policy);
            let stats = run_simulation(&mut dev, &sparse, &SimConfig::paced("dlpm"));
            dlpm.row(vec![
                format!("{interarrival_ns}"),
                name.to_string(),
                format!("{:.2}", stats.energy_per_bit().as_picojoules_per_bit()),
                format!("{:.2}", stats.bandwidth().as_gigabytes_per_second()),
                dev.laser_wakeups().to_string(),
            ]);
        }
    }
    dlpm.print();
}
