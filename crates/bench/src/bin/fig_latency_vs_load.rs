//! Latency vs offered load — the saturation hockey-stick the paper's
//! Fig. 9/10 wins imply but never plot.
//!
//! A thin wrapper over a `comet-lab` campaign through the `comet-serve`
//! engine: [`serve_device_axis`] (2D_DDR4 / COSMOS / COMET) ×
//! [`serve_load_axis`] (open-loop **Poisson** arrivals swept over a
//! geometric rate grid — memoryless by design; see the axis docs for why
//! evenly spaced arrivals would alias into DRAM's refresh period and
//! wobble the tail), one SPEC-like workload shape. Each cell reports
//! exact p50/p95/p99; sweeping the arrival rate exposes where every
//! device's queue blows up — DRAM first, COSMOS an order of magnitude
//! later, COMET last.
//!
//! Pass `--requests N` (default 3000) for trace length per cell, `--seed
//! S`, `--threads T` (report is thread-count invariant), `--shards K` to
//! partition each simulation across channel backends (report is also
//! shard-count invariant).
//!
//! The final block checks the queueing sanity condition the subsystem's
//! acceptance rests on: per device, p99 latency is monotonically
//! non-decreasing in offered load. p99 of a few thousand samples is an
//! order statistic, so in the flat sub-saturation region it carries a few
//! percent of sampling noise across rate points; the check therefore
//! allows a documented 10 % sampling tolerance on each step (the knee
//! itself rises by two orders of magnitude, far beyond any tolerance).
//! The binary exits non-zero if any device violates it.

use comet_bench::{header, Table};
use comet_lab::{
    default_threads, run_campaign, serve_device_axis, serve_load_axis, CampaignSpec, WorkloadSource,
};
use memsim::spec_like_suite;
use std::process::ExitCode;

fn parse_flag(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The offered-load grid: ×4 steps from 4 M req/s to ~4 G req/s, spanning
/// every device's saturation knee (2D DRAM ~37 M, COSMOS ~0.2 G, COMET
/// ~0.8 G lines/s). The grid deliberately starts above the near-idle
/// regime: below a few M req/s, isolated arrivals take DRAM refresh
/// blackouts head-on (the engine's speculative scheduler polls otherwise
/// absorb them once queues form), so ultra-light load shows a *higher*
/// p99 than light load — a refresh artifact, not queueing.
pub fn load_grid() -> Vec<f64> {
    (0..6).map(|i| 4.0e6 * 4f64.powi(i)).collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let requests = parse_flag(&args, "--requests", 3000) as usize;
    let seed = parse_flag(&args, "--seed", 42);
    let threads = parse_flag(&args, "--threads", default_threads() as u64) as usize;
    let shards = parse_flag(&args, "--shards", 1) as usize;

    header(
        "fig_latency_vs_load",
        "tail latency vs offered load per memory system (serve engine)",
        "Fig. 9/10 corollary: the photonic systems sustain orders of \
         magnitude more offered load before the queueing knee; p99 is \
         monotone in load for every device (M/G/k sanity)",
    );

    let workload = spec_like_suite(requests)
        .into_iter()
        .next()
        .expect("suite is non-empty"); // mcf-like: random, read-heavy
    let rates = load_grid();

    let mut spec = CampaignSpec::new(
        "latency-vs-load",
        seed,
        serve_device_axis(),
        vec![WorkloadSource::Profile(workload)],
    );
    spec.engines = serve_load_axis(&rates, requests);
    for engine in &mut spec.engines {
        engine.serve.as_mut().expect("load axis is serve").shards = shards;
    }
    let report = run_campaign(&spec, threads);

    let mut table = Table::new(vec![
        "device",
        "offered_Mrps",
        "achieved_Mrps",
        "p50_ns",
        "p95_ns",
        "p99_ns",
        "max_ns",
    ]);
    for cell in &report.cells {
        let s = &cell.stats;
        let offered = rates[spec.coords(cell.index).engine];
        let achieved = if s.makespan.is_zero() {
            0.0
        } else {
            s.completed as f64 / s.makespan.as_seconds()
        };
        table.row(vec![
            s.device.clone(),
            format!("{:.3}", offered / 1e6),
            format!("{:.3}", achieved / 1e6),
            format!("{:.1}", s.p50_latency.as_nanos()),
            format!("{:.1}", s.p95_latency.as_nanos()),
            format!("{:.1}", s.p99_latency.as_nanos()),
            format!("{:.1}", s.max_latency.as_nanos()),
        ]);
    }
    println!("## latency vs offered load");
    table.print();

    println!("## p99 monotonicity per device");
    let mut all_monotone = true;
    for summary in report.device_summaries() {
        let p99s: Vec<f64> = report
            .cells_for(&summary.device)
            .iter()
            .map(|c| c.stats.p99_latency.as_nanos())
            .collect();
        // Strict check, with the documented 10 % order-statistic
        // tolerance on sub-saturation wiggle.
        let monotone = p99s.windows(2).all(|w| w[1] >= w[0] * 0.90);
        let strict = p99s.windows(2).all(|w| w[1] >= w[0]);
        println!(
            "# {}: p99 {} across the load sweep ({} ns)",
            summary.device,
            match (strict, monotone) {
                (true, _) => "non-decreasing",
                (false, true) => "non-decreasing within sampling tolerance",
                (false, false) => "NOT monotone",
            },
            p99s.iter()
                .map(|p| format!("{p:.3}"))
                .collect::<Vec<_>>()
                .join(" "),
        );
        all_monotone &= monotone;
    }
    if all_monotone {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
