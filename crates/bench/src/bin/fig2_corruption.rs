//! Fig. 2 — data corruption in the crossbar-based OPCM memory after writes
//! to adjoining rows, and the survival of the corrected/isolated designs.

use comet::{CometConfig, CometMemory};
use comet_bench::{header, Table};
use cosmos::{run_corruption_experiment, CosmosConfig, TestImage};

fn main() {
    header(
        "fig2",
        "image corruption after adjacent-row writes",
        "original 4-bit COSMOS visibly corrupts after 4 writes; the b=2 \
         correction and COMET's isolated cells survive (Section II.B)",
    );

    let image = TestImage::synthetic(64, 32, 16);
    let image_b2 = TestImage::synthetic(64, 32, 4);

    let mut table = Table::new(vec![
        "memory",
        "aggressor_writes",
        "pixel_error_rate",
        "mean_level_error",
    ]);
    for writes in [0, 1, 2, 4, 8] {
        let r = run_corruption_experiment(&CosmosConfig::original(), &image, writes);
        table.row(vec![
            "COSMOS-original-4b".to_string(),
            writes.to_string(),
            format!("{:.3}", r.pixel_error_rate),
            format!("{:.3}", r.mean_level_error),
        ]);
    }
    for writes in [4, 8] {
        let r = run_corruption_experiment(&CosmosConfig::corrected(), &image_b2, writes);
        table.row(vec![
            "COSMOS-corrected-2b".to_string(),
            writes.to_string(),
            format!("{:.3}", r.pixel_error_rate),
            format!("{:.3}", r.mean_level_error),
        ]);
    }

    // COMET: store the same image bytes, hammer neighbouring lines, read back.
    let mut mem = CometMemory::new(CometConfig::comet_4b());
    let bytes: Vec<u8> = image.pixels.clone();
    mem.write(0, &bytes);
    // "Aggressor" writes to adjacent address ranges.
    for k in 0..8u64 {
        let pattern = vec![(k * 17 % 251) as u8; 128];
        mem.write((1 << 20) | (k * 128), &pattern);
    }
    let readback = mem.read(0, bytes.len());
    let errors = bytes.iter().zip(&readback).filter(|(a, b)| a != b).count();
    table.row(vec![
        "COMET-4b".to_string(),
        "8".to_string(),
        format!("{:.3}", errors as f64 / bytes.len() as f64),
        "0.000".to_string(),
    ]);
    table.print();

    println!("# COMET's MR-gated cells are crosstalk-free by construction;");
    println!("# the crossbar's -18 dB write leakage destroys 4-bit data.");
}
