//! Write energy vs payload entropy per write-reduction policy — the
//! data-plane acceptance figure.
//!
//! A thin wrapper over a `comet-lab` campaign through the `comet-serve`
//! engine: [`data_policy_axis`] (EPCM-oblivious / EPCM-DCW /
//! EPCM-DCW-FNW — the same EPCM-MM array priced per cell transition from
//! the physics layer's GST programming table) × [`payload_entropy_axis`]
//! (all-zero → sparse updates → DOTA transformer weights → complement
//! toggling → uniform), one write-heavy hot-line workload shape. The
//! flat-cost `EPCM-MM` baseline rides along for context (its energy is a
//! constant per write, so it draws the horizontal line content-awareness
//! removes).
//!
//! Every device sees the *identical* request and payload stream (open
//! loop, same cell seed, payload generation is pre-device), so per
//! entropy point the energy differences are pure policy: DCW skips
//! conserved cells for the price of a read probe, and Flip-N-Write is
//! never worse than DCW on the write it decides (its flip is gated on a
//! Pareto win in cells *and* energy, with a one-erase margin;
//! see `comet_data::policy` for why the *cumulative* ordering is an
//! empirical property of the swept payload sources rather than a
//! theorem). The final block asserts the ordering the subsystem's
//! acceptance rests on — **DCW+FNW ≤ DCW ≤ oblivious at every swept
//! entropy point** — and the binary exits non-zero if any point violates
//! it, making this a pinned-seed regression gate.
//!
//! Pass `--requests N` (default 1500) for stores per cell, `--seed S`,
//! `--threads T` (report is thread-count invariant).

use comet_bench::{header, ratio, Table};
use comet_lab::{
    data_policy_axis, default_threads, device_by_name, payload_entropy_axis, run_campaign,
    CampaignSpec, WorkloadSource,
};
use comet_serve::ArrivalProcess;
use comet_units::{ByteCount, Time};
use memsim::{AccessPattern, WorkloadProfile};
use std::process::ExitCode;

fn parse_flag(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The policy ordering chain checked at every entropy point, cheapest
/// last.
const POLICY_CHAIN: [&str; 3] = ["EPCM-oblivious", "EPCM-DCW", "EPCM-DCW-FNW"];

/// A store-dominated, hot-line workload: writes revisit a small line pool
/// fast, which is the regime where content-awareness matters (the first
/// touch of a line always programs; savings come from rewrites).
fn hot_write_profile(requests: usize) -> WorkloadProfile {
    WorkloadProfile {
        name: "hot-writes".into(),
        read_fraction: 0.0,
        footprint: ByteCount::new(256 * 64),
        pattern: AccessPattern::Random,
        interarrival: Time::from_nanos(10.0),
        requests,
        line_bytes: 64,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let requests = parse_flag(&args, "--requests", 1500) as usize;
    let seed = parse_flag(&args, "--seed", 42);
    let threads = parse_flag(&args, "--threads", default_threads() as u64) as usize;

    header(
        "fig_write_energy_vs_entropy",
        "write energy vs payload entropy per write-reduction policy (data plane)",
        "DCW/Flip-N-Write corollary: most written bits don't change, so \
         content-aware pricing orders DCW+FNW <= DCW <= oblivious at every \
         payload entropy",
    );

    let mut devices = data_policy_axis();
    devices.push(device_by_name("EPCM-MM").expect("flat baseline is registered"));
    let mut spec = CampaignSpec::new(
        "write-energy-vs-entropy",
        seed,
        devices,
        vec![WorkloadSource::Profile(hot_write_profile(requests))],
    );
    spec.engines = payload_entropy_axis(ArrivalProcess::poisson(2.0e7), requests);
    let entropy_labels: Vec<String> = spec.engines.iter().map(|e| e.label.clone()).collect();
    let report = run_campaign(&spec, threads);

    let mut table = Table::new(vec![
        "payload",
        "policy",
        "writes",
        "write_energy_nJ",
        "energy_per_write_pJ",
        "vs_oblivious",
    ]);
    let energy_of = |device: &str, engine: &str| -> Option<(u64, f64)> {
        report
            .cells
            .iter()
            .find(|c| c.device == device && c.engine == engine)
            .map(|c| (c.stats.writes, c.stats.energy.access.as_joules() * 1e9))
    };
    for engine in &entropy_labels {
        let oblivious = energy_of(POLICY_CHAIN[0], engine).expect("grid is full").1;
        for device in POLICY_CHAIN.iter().chain(["EPCM-MM"].iter()) {
            let (writes, energy) = energy_of(device, engine).expect("grid is full");
            table.row(vec![
                engine.trim_start_matches("payload-").to_string(),
                device.to_string(),
                writes.to_string(),
                format!("{energy:.2}"),
                format!("{:.1}", energy * 1e3 / writes.max(1) as f64),
                ratio(energy, oblivious),
            ]);
        }
    }
    println!("## write energy per policy across payload entropy");
    table.print();
    println!(
        "# every policy row sees the identical store stream; EPCM-MM is the \
         flat-cost baseline outside the ordering check"
    );

    println!("## ordering check: DCW+FNW <= DCW <= oblivious at every entropy point");
    let mut all_ordered = true;
    for engine in &entropy_labels {
        let energies: Vec<f64> = POLICY_CHAIN
            .iter()
            .map(|d| energy_of(d, engine).expect("grid is full").1)
            .collect();
        // The chain is cheapest-last; equality is legitimate (e.g. FNW
        // never flips on uniform payloads).
        let ordered = energies.windows(2).all(|w| w[1] <= w[0]);
        println!(
            "# {}: oblivious {:.2} nJ >= dcw {:.2} nJ >= dcw+fnw {:.2} nJ — {}",
            engine,
            energies[0],
            energies[1],
            energies[2],
            if ordered { "ordered" } else { "VIOLATED" },
        );
        all_ordered &= ordered;
    }
    if all_ordered {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
