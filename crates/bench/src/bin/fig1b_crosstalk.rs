//! Fig. 1(b) — crosstalk experienced at a COSMOS crossbar cell, and the
//! corruption arithmetic it implies.

use comet_bench::{header, Table};
use comet_units::{Decibels, Energy};
use photonic::{CrossbarCrosstalk, Microring};

fn main() {
    header(
        "fig1b",
        "crossbar write crosstalk",
        "~-18 dB coupling: a 750 pJ write leaks ~12 pJ into adjacent cells, \
         shifting their crystalline fraction by ~8% (Section II.B)",
    );

    let xt = CrossbarCrosstalk::cosmos();
    let mut table = Table::new(vec![
        "write_energy_pJ",
        "leaked_energy_pJ",
        "fraction_shift_pct",
        "writes_to_corrupt_b4",
        "writes_to_corrupt_b2",
    ]);
    for pj in [135.0, 250.0, 500.0, 750.0] {
        let e = Energy::from_picojoules(pj);
        table.row(vec![
            format!("{pj:.0}"),
            format!("{:.2}", xt.leaked_energy(e).as_picojoules()),
            format!("{:.2}", xt.fraction_shift(e) * 100.0),
            xt.writes_to_corruption(e, 16, 0.9).to_string(),
            xt.writes_to_corruption(e, 4, 0.9).to_string(),
        ]);
    }
    table.print();

    // Spectral crosstalk context: the MR-gated COMET cell sees only
    // adjacent-channel leakage, orders of magnitude below the crossbar's.
    let mr = Microring::comet_default();
    let mut spectral = Table::new(vec!["channel_spacing_nm", "mr_drop_crosstalk_dB"]);
    for spacing_nm in [0.2, 0.4, 0.8, 1.6] {
        let xtalk = mr.adjacent_channel_crosstalk(comet_units::Length::from_nanometers(spacing_nm));
        spectral.row(vec![
            format!("{spacing_nm:.1}"),
            format!("-{:.1}", xtalk.value()),
        ]);
    }
    spectral.print();

    println!(
        "# crossbar coupling: -{} vs isolated COMET cell: none (MR-gated)",
        Decibels::new(18.0)
    );
}
