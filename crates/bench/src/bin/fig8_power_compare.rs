//! Fig. 8 — power stacks of the corrected COSMOS vs COMET-4b.

use comet::{CometConfig, CometPowerModel};
use comet_bench::{header, ratio, Table};
use cosmos::{CosmosConfig, CosmosPowerModel};

fn main() {
    header(
        "fig8",
        "COSMOS vs COMET power stacks",
        "laser power dominates both; COMET consumes a fraction of COSMOS \
         (paper: 26%; see EXPERIMENTS.md for our measured ratio)",
    );

    let comet = CometPowerModel::new(CometConfig::comet_4b()).stack();
    let cosmos = CosmosPowerModel::new(CosmosConfig::corrected()).stack();

    let mut table = Table::new(vec![
        "architecture",
        "laser_W",
        "soa_W",
        "eo_tuning_W",
        "interface_W",
        "total_W",
    ]);
    for (name, s) in [("COMET-4b", &comet), ("COSMOS", &cosmos)] {
        table.row(vec![
            name.to_string(),
            format!("{:.2}", s.laser.as_watts()),
            format!("{:.2}", s.soa.as_watts()),
            format!("{:.4}", s.tuning.as_watts()),
            format!("{:.2}", s.interface.as_watts()),
            format!("{:.2}", s.total().as_watts()),
        ]);
    }
    table.print();

    println!(
        "# COMET / COSMOS total power: {:.0}% (paper: 26%)",
        comet.total().as_watts() / cosmos.total().as_watts() * 100.0
    );
    println!(
        "# COSMOS / COMET: {}",
        ratio(cosmos.total().as_watts(), comet.total().as_watts())
    );
}
