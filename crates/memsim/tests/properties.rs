//! Property-based tests for the memory simulator substrate.
//!
//! Invariants: address maps are bijective over their capacity for every
//! interleaving, the engine conserves requests and bytes for arbitrary
//! traces on every device model, and synthetic trace generation respects
//! its profile parameters for any seed.

use comet_units::{ByteCount, Time};
use memsim::{
    read_trace, run_simulation, write_trace, AccessPattern, AddressMap, DramConfig, DramDevice,
    EpcmConfig, EpcmDevice, Interleave, MemOp, MemRequest, MemoryDevice, ReplayMode, Scheduler,
    SimConfig, TraceClock, WorkloadProfile,
};
use proptest::prelude::*;

fn any_interleave() -> impl Strategy<Value = Interleave> {
    prop_oneof![
        Just(Interleave::RowBankColumnChannel),
        Just(Interleave::RowColumnBankChannel),
        Just(Interleave::RowBankColumnChannelXor),
    ]
}

/// Power-of-two dimension strategy.
fn pow2(max_log2: u32) -> impl Strategy<Value = u64> {
    (0..=max_log2).prop_map(|e| 1u64 << e)
}

fn any_pattern() -> impl Strategy<Value = AccessPattern> {
    prop_oneof![
        Just(AccessPattern::Stream),
        (64u64..16384).prop_map(|stride| AccessPattern::Strided { stride }),
        Just(AccessPattern::Random),
        (0.0..1.0f64).prop_map(|locality| AccessPattern::Clustered { locality }),
    ]
}

proptest! {
    // --- address mapping -----------------------------------------------------

    #[test]
    fn address_map_is_bijective(
        channels in pow2(3),
        banks in pow2(4),
        rows in pow2(8),
        columns in pow2(5),
        interleave in any_interleave(),
        seed in any::<u64>(),
    ) {
        let m = AddressMap::new(channels, banks, rows, columns, 64, interleave).unwrap();
        let lines = m.capacity_bytes() / 64;
        // Sample pseudo-random lines rather than sweeping the whole space.
        let mut x = seed | 1;
        for _ in 0..64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = (x % lines) * 64;
            let d = m.decode(addr);
            prop_assert!(d.channel < channels);
            prop_assert!(d.bank < banks);
            prop_assert!(d.row < rows);
            prop_assert!(d.column < columns);
            prop_assert_eq!(m.encode(d), addr);
        }
    }

    #[test]
    fn consecutive_lines_spread_across_channels(
        channels in pow2(3),
        interleave in any_interleave(),
    ) {
        // Any interleaving must touch all channels within one channel-count
        // worth of consecutive lines (XOR folding permutes but still covers).
        let m = AddressMap::new(channels, 8, 256, 32, 64, interleave).unwrap();
        let seen: std::collections::HashSet<u64> =
            (0..channels).map(|i| m.decode(i * 64).channel).collect();
        prop_assert_eq!(seen.len() as u64, channels);
    }

    #[test]
    fn coordinates_roundtrip_through_encode(
        channels in pow2(2),
        banks in pow2(3),
        interleave in any_interleave(),
        seed in any::<u64>(),
    ) {
        // The other direction of bijectivity: encode ∘ decode = id starting
        // from coordinates, for every interleave variant.
        let (rows, columns) = (64u64, 16u64);
        let m = AddressMap::new(channels, banks, rows, columns, 64, interleave).unwrap();
        let mut x = seed | 1;
        for _ in 0..64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let d = memsim::DecodedAddress {
                channel: (x >> 1) % channels,
                bank: (x >> 17) % banks,
                row: (x >> 33) % rows,
                column: (x >> 49) % columns,
            };
            prop_assert_eq!(m.decode(m.encode(d)), d, "{:?}", interleave);
        }
    }

    #[test]
    fn xor_interleave_spreads_pow2_strides(
        channels_log2 in 1u32..=3,
        stride_log2 in 0u32..=10,
        start in 0u64..1024,
    ) {
        // Permutation-based (XOR-folded) channel interleaving must spread
        // *every* power-of-two line stride across all channels — including
        // strides that are multiples of the channel count, which serialize
        // onto one channel under plain modulo interleaving.
        let channels = 1u64 << channels_log2;
        let stride = 1u64 << stride_log2;
        let m = AddressMap::new(channels, 8, 4096, 128, 64, Interleave::RowBankColumnChannelXor)
            .unwrap();
        let lines = m.capacity_bytes() / 64;
        let window = 4 * channels;
        let seen: std::collections::HashSet<u64> = (0..window)
            .map(|k| m.decode(((start + k * stride) % lines) * 64).channel)
            .collect();
        prop_assert_eq!(
            seen.len() as u64,
            channels,
            "stride {} over {} channels touched only {:?}",
            stride,
            channels,
            seen
        );
    }

    // --- trace generation -------------------------------------------------------

    #[test]
    fn traces_respect_profile(
        pattern in any_pattern(),
        read_fraction in 0.0..1.0f64,
        seed in any::<u64>(),
        requests in 1usize..500,
    ) {
        let p = WorkloadProfile {
            name: "prop".into(),
            read_fraction,
            footprint: ByteCount::from_mib(64),
            pattern,
            interarrival: Time::from_nanos(1.0),
            requests,
            line_bytes: 64,
        };
        let trace = p.generate(seed);
        prop_assert_eq!(trace.len(), requests);
        let mut last_arrival = Time::ZERO;
        for r in &trace {
            prop_assert!(r.address < p.footprint.value(), "address in footprint");
            prop_assert_eq!(r.address % 64, 0, "line aligned");
            prop_assert_eq!(r.size.value(), 64);
            prop_assert!(r.arrival >= last_arrival, "arrivals monotone");
            last_arrival = r.arrival;
        }
        // Determinism.
        prop_assert_eq!(&trace, &p.generate(seed));
    }

    // --- engine conservation --------------------------------------------------------

    #[test]
    fn engine_conserves_requests_dram(
        pattern in any_pattern(),
        read_fraction in 0.0..1.0f64,
        seed in any::<u64>(),
        saturation in any::<bool>(),
        frfcfs in any::<bool>(),
    ) {
        let p = WorkloadProfile {
            name: "prop".into(),
            read_fraction,
            footprint: ByteCount::from_mib(32),
            pattern,
            interarrival: Time::from_nanos(5.0),
            requests: 300,
            line_bytes: 64,
        };
        let trace = p.generate(seed);
        let mut dev = DramDevice::new(DramConfig::ddr4_2400_2d());
        let config = SimConfig {
            scheduler: if frfcfs { Scheduler::FrFcfs { window: 8 } } else { Scheduler::Fcfs },
            replay: if saturation { ReplayMode::Saturation } else { ReplayMode::Paced },
            workload: "prop".into(),
        };
        let stats = run_simulation(&mut dev, &trace, &config);
        prop_assert_eq!(stats.completed, 300);
        prop_assert_eq!(stats.reads + stats.writes, 300);
        prop_assert_eq!(stats.bytes.value(), 300 * 64);
        prop_assert!(stats.makespan > Time::ZERO);
        prop_assert!(stats.avg_latency() > Time::ZERO);
        prop_assert!(stats.max_latency >= stats.avg_latency());
        prop_assert!(stats.energy.total().as_joules() > 0.0);
        prop_assert_eq!(stats.histogram.total(), 300);
    }

    #[test]
    fn engine_conserves_requests_epcm(seed in any::<u64>(), read_fraction in 0.0..1.0f64) {
        let p = WorkloadProfile {
            name: "prop".into(),
            read_fraction,
            footprint: ByteCount::from_mib(16),
            pattern: AccessPattern::Random,
            interarrival: Time::from_nanos(2.0),
            requests: 200,
            line_bytes: 64,
        };
        let trace = p.generate(seed);
        let mut dev = EpcmDevice::new(EpcmConfig::epcm_mm());
        let stats = run_simulation(&mut dev, &trace, &SimConfig::paced("prop"));
        prop_assert_eq!(stats.completed, 200);
        prop_assert_eq!(stats.bytes.value(), 200 * 64);
    }

    #[test]
    fn saturation_is_never_slower_than_paced(seed in any::<u64>()) {
        let p = WorkloadProfile {
            name: "prop".into(),
            read_fraction: 0.8,
            footprint: ByteCount::from_mib(16),
            pattern: AccessPattern::Random,
            interarrival: Time::from_nanos(50.0),
            requests: 200,
            line_bytes: 64,
        };
        let trace = p.generate(seed);
        let run = |replay| {
            let mut dev = DramDevice::new(DramConfig::ddr3_1600_2d());
            run_simulation(
                &mut dev,
                &trace,
                &SimConfig {
                    scheduler: Scheduler::default(),
                    replay,
                    workload: "prop".into(),
                },
            )
        };
        let paced = run(ReplayMode::Paced);
        let sat = run(ReplayMode::Saturation);
        prop_assert!(sat.makespan <= paced.makespan);
        prop_assert!(
            sat.bandwidth().as_gigabytes_per_second()
                >= paced.bandwidth().as_gigabytes_per_second() - 1e-9
        );
    }

    #[test]
    fn fr_fcfs_window_only_helps(seed in any::<u64>(), window in 1usize..32) {
        // Larger reorder windows can only reduce (or match) the makespan on
        // a bank-conflict-heavy trace.
        let reqs: Vec<MemRequest> = (0..200u64)
            .map(|i| {
                let row = (seed.wrapping_add(i) % 7) * 1000 + i / 2;
                MemRequest::new(i, Time::ZERO, MemOp::Read, row * 8 * 64, ByteCount::new(64))
            })
            .collect();
        let run = |w| {
            let mut dev = DramDevice::new(DramConfig::ddr3_1600_2d());
            run_simulation(
                &mut dev,
                &reqs,
                &SimConfig {
                    scheduler: Scheduler::FrFcfs { window: w },
                    replay: ReplayMode::Saturation,
                    workload: "prop".into(),
                },
            )
        };
        let narrow = run(1);
        let wide = run(window.max(2));
        prop_assert!(wide.makespan <= narrow.makespan + Time::from_nanos(1.0));
    }

    // --- trace file I/O ---------------------------------------------------------------

    #[test]
    fn trace_io_roundtrips_any_trace(
        pattern in any_pattern(),
        read_fraction in 0.0..1.0f64,
        seed in any::<u64>(),
    ) {
        let p = WorkloadProfile {
            name: "io".into(),
            read_fraction,
            footprint: ByteCount::from_mib(64),
            pattern,
            interarrival: Time::from_nanos(10.0),
            requests: 100,
            line_bytes: 64,
        };
        let clock = TraceClock::two_ghz();
        let original = p.generate(seed);
        let mut text = Vec::new();
        write_trace(&mut text, &original, clock).expect("in-memory write");
        let back = read_trace(text.as_slice(), clock, 64).expect("own output parses");
        prop_assert_eq!(back.len(), original.len());
        for (a, b) in original.iter().zip(&back) {
            prop_assert_eq!(a.op, b.op);
            prop_assert_eq!(a.address, b.address);
            prop_assert_eq!(a.size, b.size);
            // Arrivals survive up to cycle quantization.
            let dt = (a.arrival.as_nanos() - b.arrival.as_nanos()).abs();
            prop_assert!(dt <= clock.period.as_nanos() + 1e-9);
        }
    }

    #[test]
    fn trace_io_is_byte_stable_after_first_quantization(
        pattern in any_pattern(),
        read_fraction in 0.0..1.0f64,
        seed in any::<u64>(),
    ) {
        // After one write→read (which quantizes arrivals to cycles), any
        // further write→read cycle must be a fixed point: identical bytes
        // and identical requests.
        let p = WorkloadProfile {
            name: "io-stable".into(),
            read_fraction,
            footprint: ByteCount::from_mib(64),
            pattern,
            interarrival: Time::from_nanos(10.0),
            requests: 100,
            line_bytes: 64,
        };
        let clock = TraceClock::two_ghz();
        let mut text1 = Vec::new();
        write_trace(&mut text1, &p.generate(seed), clock).expect("write 1");
        let reqs1 = read_trace(text1.as_slice(), clock, 64).expect("read 1");
        let mut text2 = Vec::new();
        write_trace(&mut text2, &reqs1, clock).expect("write 2");
        prop_assert_eq!(&text2, &text1, "trace bytes changed across a round trip");
        let reqs2 = read_trace(text2.as_slice(), clock, 64).expect("read 2");
        prop_assert_eq!(reqs2, reqs1);
    }

    // --- device sanity ----------------------------------------------------------------

    #[test]
    fn dram_access_timing_is_causal(
        row in 0u64..1024,
        col in 0u64..64,
        issue_ns in 0.0..100_000.0f64,
        write in any::<bool>(),
    ) {
        let mut dev = DramDevice::new(DramConfig::ddr4_2400_2d());
        let loc = memsim::DecodedAddress { channel: 0, bank: 0, row, column: col };
        let op = if write { MemOp::Write } else { MemOp::Read };
        let issue = Time::from_nanos(issue_ns);
        let avail = dev.bank_available(&loc, issue);
        prop_assert!(avail >= issue, "availability never travels back in time");
        let t = dev.access(&loc, op, avail);
        prop_assert!(t.data_ready_at >= avail);
        prop_assert!(t.bank_free_at >= avail);
        prop_assert!(t.bus_occupancy > Time::ZERO);
        prop_assert!(t.energy.as_joules() > 0.0);
    }
}
