//! The data plane: line payloads and content-aware write pricing.
//!
//! The flat `write_line` energy every PCM configuration carries prices a
//! write as if every cell were reprogrammed on every store. The biggest
//! PCM lever in the literature says otherwise: most written bits do not
//! change (Song et al., *Improving Phase Change Memory Performance with
//! Data Content Aware Access*), and per-level transition pulses differ by
//! an order of magnitude (Sevison et al., *Phase change dynamics and
//! 2-dimensional 4-bit memory in Ge₂Sb₂Te₅*). Pricing that requires the
//! stack to carry *content*:
//!
//! * [`LineData`] — a fixed-capacity, `Copy` cache-line payload that
//!   rides on [`MemRequest`](crate::MemRequest) (and on the serve layer's
//!   sourced requests) without heap traffic;
//! * [`WritePricer`] — the contract a content-aware device delegates
//!   write pricing to. The pricer sees the line's previously stored cell
//!   image and the new payload, and returns energy, latency, programmed
//!   cell counts and the new cell image. Policies (content-oblivious
//!   per-level pricing, DCW read-modify-compare, Flip-N-Write) and the
//!   MLC codec live above the simulator, in `comet-data`; the simulator
//!   only owns the mechanism (the per-line store and the dispatch).
//!
//! Devices that do not override
//! [`MemoryDevice::access_line`](crate::MemoryDevice::access_line) ignore
//! payloads entirely, so the flat-cost baseline stays the default.

use comet_units::{Energy, Time};
use std::fmt;

/// Capacity of a [`LineData`] payload — the widest cache line in the
/// workspace (COMET's 128 B lines; DRAM/EPCM use 64 B).
pub const MAX_LINE_BYTES: usize = 128;

/// A cache-line payload: up to [`MAX_LINE_BYTES`] bytes, inline.
///
/// The type is `Copy` (requests are copied freely by the engines), always
/// zero-fills its tail, and compares by content.
///
/// # Examples
///
/// ```
/// use memsim::LineData;
///
/// let line = LineData::from_bytes(&[0xAB; 64]);
/// assert_eq!(line.len(), 64);
/// assert_eq!(line.bytes()[0], 0xAB);
/// assert_eq!(line, LineData::from_bytes(&[0xAB; 64]));
/// assert_ne!(line, LineData::zeroes(64));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineData {
    len: u8,
    bytes: [u8; MAX_LINE_BYTES],
}

impl LineData {
    /// Wraps a byte slice (zero-padding the unused tail).
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds [`MAX_LINE_BYTES`].
    pub fn from_bytes(data: &[u8]) -> Self {
        assert!(
            data.len() <= MAX_LINE_BYTES,
            "line payload of {} bytes exceeds the {MAX_LINE_BYTES}-byte capacity",
            data.len()
        );
        let mut bytes = [0u8; MAX_LINE_BYTES];
        bytes[..data.len()].copy_from_slice(data);
        LineData {
            len: data.len() as u8,
            bytes,
        }
    }

    /// An all-zero payload of `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds [`MAX_LINE_BYTES`].
    pub fn zeroes(len: usize) -> Self {
        assert!(len <= MAX_LINE_BYTES, "line of {len} bytes too wide");
        LineData {
            len: len as u8,
            bytes: [0u8; MAX_LINE_BYTES],
        }
    }

    /// The payload bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl fmt::Debug for LineData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Full 128-byte dumps drown test output; show length + a prefix.
        write!(f, "LineData({}B", self.len)?;
        for b in self.bytes().iter().take(8) {
            write!(f, " {b:02x}")?;
        }
        if self.len() > 8 {
            write!(f, " …")?;
        }
        write!(f, ")")
    }
}

/// The priced cost of one line write, as decided by a [`WritePricer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteCost {
    /// Array energy of the write (pulses actually fired, plus any
    /// read-modify-compare probe overhead the policy pays).
    pub energy: Energy,
    /// Array occupancy of the write (pulses fire in parallel across a
    /// line's cells, so this is the slowest programmed cell — zero when
    /// every cell is conserved).
    pub latency: Time,
    /// Cells whose state the write actually reprograms.
    pub cells_written: u64,
    /// Cells the line occupies.
    pub cells_total: u64,
}

/// A priced write: its cost plus the cell image the device should store
/// for the line (the pricer-private physical representation — e.g. levels
/// plus Flip-N-Write flip bits). `None` means the policy keeps no state
/// for the line (content-oblivious pricing) and any previous image is
/// dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct PricedWrite {
    /// The cost of the write.
    pub cost: WriteCost,
    /// The new stored cell image, if the policy tracks one.
    pub image: Option<Vec<u8>>,
}

/// Prices line writes from their content.
///
/// Implementations are deterministic pure functions of `(stored, data)`;
/// the device owns the per-line image store and hands back the image the
/// pricer returned for the line's previous write (`None` on first touch
/// or after a payload-less write invalidated it).
pub trait WritePricer: Send + fmt::Debug {
    /// Prices writing `data` over the line's stored image.
    fn price_write(&self, stored: Option<&[u8]>, data: &LineData) -> PricedWrite;

    /// Prices a write whose content is unknown (a request that carries no
    /// payload). Policies charge the content-oblivious worst case here,
    /// and the device drops the line's image — its content is no longer
    /// known.
    fn price_unknown(&self, line_bytes: u64) -> WriteCost;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip_and_equality() {
        let data: Vec<u8> = (0..100u8).collect();
        let line = LineData::from_bytes(&data);
        assert_eq!(line.bytes(), &data[..]);
        assert_eq!(line.len(), 100);
        assert!(!line.is_empty());
        // Tail zero-fill makes equality content-only.
        let again = LineData::from_bytes(&data);
        assert_eq!(line, again);
    }

    #[test]
    fn zeroes_are_zero() {
        let z = LineData::zeroes(64);
        assert_eq!(z.len(), 64);
        assert!(z.bytes().iter().all(|&b| b == 0));
        assert!(LineData::zeroes(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn oversized_payload_rejected() {
        let _ = LineData::from_bytes(&[0u8; MAX_LINE_BYTES + 1]);
    }

    #[test]
    fn debug_is_compact() {
        let line = LineData::from_bytes(&[0xFF; 64]);
        let text = format!("{line:?}");
        assert!(text.len() < 64, "debug stays short: {text}");
        assert!(text.contains("64B"));
    }
}
