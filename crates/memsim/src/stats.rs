//! Simulation statistics: latency, bandwidth and energy-per-bit.

use crate::request::CompletedRequest;
use comet_units::{BitCount, ByteCount, DataRate, Energy, EnergyPerBit, Power, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Energy breakdown of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Per-access energy (activation, array, I/O, laser pulses).
    pub access: Energy,
    /// Background power integrated over the makespan.
    pub background: Energy,
    /// Refresh energy (DRAM only).
    pub refresh: Energy,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> Energy {
        self.access + self.background + self.refresh
    }
}

/// Latency histogram with fixed logarithmic buckets (ns scale).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Bucket upper bounds in ns: `<10, <32, <100, <316, <1k, <3.16k, <10k,
    /// <31.6k, <100k, >=100k`.
    counts: [u64; 10],
    total: u64,
}

const BUCKET_BOUNDS_NS: [f64; 9] = [
    10.0, 31.6, 100.0, 316.0, 1000.0, 3160.0, 10_000.0, 31_600.0, 100_000.0,
];

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [0; 10],
            total: 0,
        }
    }

    /// Reconstructs a histogram from its bucket counts (the inverse of
    /// [`LatencyHistogram::counts`]; used by results import).
    pub fn from_counts(counts: [u64; 10]) -> Self {
        LatencyHistogram {
            counts,
            total: counts.iter().sum(),
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Time) {
        let ns = latency.as_nanos();
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&b| ns < b)
            .unwrap_or(BUCKET_BOUNDS_NS.len());
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64; 10] {
        &self.counts
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Latency at percentile `p` (clamped to `[0, 100]`).
    ///
    /// Exact in rank: the nearest-rank sample (`ceil(p/100 · total)`, at
    /// least 1) is located in its bucket, and the returned value is that
    /// bucket's span linearly interpolated by the rank's position within
    /// the bucket — so the result always brackets the true sample
    /// percentile between the bucket's bounds, and feeding more samples of
    /// a shifted distribution never moves it the wrong way. An empty
    /// histogram reports [`Time::ZERO`].
    pub fn percentile(&self, p: f64) -> Time {
        if self.total == 0 {
            return Time::ZERO;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((self.total as f64 * p / 100.0).ceil()).max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let before = seen;
            seen += c;
            if c > 0 && seen >= target {
                let lower = if i == 0 { 0.0 } else { BUCKET_BOUNDS_NS[i - 1] };
                let upper = BUCKET_BOUNDS_NS.get(i).copied().unwrap_or(316_000.0);
                let frac = (target - before) as f64 / c as f64;
                return Time::from_nanos(lower + (upper - lower) * frac);
            }
        }
        Time::from_nanos(316_000.0)
    }
}

/// Exact nearest-rank percentile of an ascending-sorted sample set.
///
/// `q` is clamped to `[0, 100]`; an empty set reports [`Time::ZERO`]. This
/// is the common tail-latency definition engines use to fill the
/// [`SimStats`] percentile fields: the sample at rank `ceil(q/100 · n)`
/// (at least 1).
///
/// # Examples
///
/// ```
/// use comet_units::Time;
/// use memsim::percentile_of_sorted;
///
/// let samples: Vec<Time> = (1..=100).map(|n| Time::from_nanos(n as f64)).collect();
/// assert_eq!(percentile_of_sorted(&samples, 50.0), Time::from_nanos(50.0));
/// assert_eq!(percentile_of_sorted(&samples, 99.0), Time::from_nanos(99.0));
/// assert_eq!(percentile_of_sorted(&samples, 100.0), Time::from_nanos(100.0));
/// ```
pub fn percentile_of_sorted(sorted: &[Time], q: f64) -> Time {
    if sorted.is_empty() {
        return Time::ZERO;
    }
    let q = q.clamp(0.0, 100.0);
    let rank = ((sorted.len() as f64 * q / 100.0).ceil()).max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Aggregate results of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Device name.
    pub device: String,
    /// Workload name.
    pub workload: String,
    /// Requests completed.
    pub completed: u64,
    /// Reads completed.
    pub reads: u64,
    /// Writes completed.
    pub writes: u64,
    /// Bytes transferred.
    pub bytes: ByteCount,
    /// Wall-clock span from first arrival to last completion.
    pub makespan: Time,
    /// Sum of request latencies.
    pub total_latency: Time,
    /// Maximum request latency.
    pub max_latency: Time,
    /// Exact median request latency (nearest-rank; filled by the engine's
    /// [`SimStats::finalize_percentiles`], [`Time::ZERO`] until then).
    pub p50_latency: Time,
    /// Exact 95th-percentile request latency (see [`SimStats::p50_latency`]).
    pub p95_latency: Time,
    /// Exact 99th-percentile request latency (see [`SimStats::p50_latency`]).
    pub p99_latency: Time,
    /// Latency distribution.
    pub histogram: LatencyHistogram,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

impl SimStats {
    /// Creates an empty record for a device/workload pair.
    pub fn new(device: impl Into<String>, workload: impl Into<String>) -> Self {
        SimStats {
            device: device.into(),
            workload: workload.into(),
            completed: 0,
            reads: 0,
            writes: 0,
            bytes: ByteCount::ZERO,
            makespan: Time::ZERO,
            total_latency: Time::ZERO,
            max_latency: Time::ZERO,
            p50_latency: Time::ZERO,
            p95_latency: Time::ZERO,
            p99_latency: Time::ZERO,
            histogram: LatencyHistogram::new(),
            energy: EnergyBreakdown::default(),
        }
    }

    /// Folds one completed request into the record.
    pub fn record(&mut self, done: &CompletedRequest) {
        self.completed += 1;
        if done.request.op.is_read() {
            self.reads += 1;
        } else {
            self.writes += 1;
        }
        self.bytes += done.request.size;
        let lat = done.latency();
        self.total_latency += lat;
        self.max_latency = self.max_latency.max(lat);
        self.histogram.record(lat);
        self.makespan = self.makespan.max(done.finished);
    }

    /// Adds background energy for a given power over the makespan. Call
    /// once, after all requests are recorded.
    pub fn finalize_background(&mut self, background: Power) {
        self.energy.background = background * self.makespan;
    }

    /// Fills the exact p50/p95/p99 fields from the complete latency sample
    /// set (sorted in place). Engines call this once, after all requests
    /// are recorded, so trace replay and the `comet-serve` service core
    /// report tail latency through the same fields.
    pub fn finalize_percentiles(&mut self, samples: &mut [Time]) {
        samples.sort_by(|a, b| a.as_seconds().total_cmp(&b.as_seconds()));
        self.p50_latency = percentile_of_sorted(samples, 50.0);
        self.p95_latency = percentile_of_sorted(samples, 95.0);
        self.p99_latency = percentile_of_sorted(samples, 99.0);
    }

    /// Average request latency.
    pub fn avg_latency(&self) -> Time {
        if self.completed == 0 {
            Time::ZERO
        } else {
            self.total_latency / self.completed as f64
        }
    }

    /// Observed bandwidth: bytes over makespan.
    pub fn bandwidth(&self) -> DataRate {
        if self.makespan.is_zero() {
            DataRate::ZERO
        } else {
            DataRate::from_transfer(self.bytes, self.makespan)
        }
    }

    /// Energy per bit transferred.
    pub fn energy_per_bit(&self) -> EnergyPerBit {
        let bits = self.bytes.to_bits();
        if bits == BitCount::ZERO {
            EnergyPerBit::ZERO
        } else {
            self.energy.total() / bits
        }
    }

    /// The paper's Fig. 9(c) efficiency metric: bandwidth (GB/s) divided by
    /// EPB (pJ/b).
    pub fn bandwidth_per_epb(&self) -> f64 {
        let epb = self.energy_per_bit().as_picojoules_per_bit();
        if epb == 0.0 {
            0.0
        } else {
            self.bandwidth().as_gigabytes_per_second() / epb
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}: {} reqs, BW {:.3} GB/s, avg lat {:.1} ns, EPB {:.2} pJ/b",
            self.device,
            self.workload,
            self.completed,
            self.bandwidth().as_gigabytes_per_second(),
            self.avg_latency().as_nanos(),
            self.energy_per_bit().as_picojoules_per_bit()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{MemOp, MemRequest};

    fn done(id: u64, arrival_ns: f64, finish_ns: f64, op: MemOp) -> CompletedRequest {
        CompletedRequest {
            request: MemRequest::new(
                id,
                Time::from_nanos(arrival_ns),
                op,
                id * 64,
                ByteCount::new(64),
            ),
            issued: Time::from_nanos(arrival_ns),
            finished: Time::from_nanos(finish_ns),
        }
    }

    #[test]
    fn aggregates() {
        let mut s = SimStats::new("dev", "wl");
        s.record(&done(0, 0.0, 100.0, MemOp::Read));
        s.record(&done(1, 50.0, 250.0, MemOp::Write));
        assert_eq!(s.completed, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes.value(), 128);
        assert!((s.makespan.as_nanos() - 250.0).abs() < 1e-9);
        assert!((s.avg_latency().as_nanos() - 150.0).abs() < 1e-9);
        assert!((s.max_latency.as_nanos() - 200.0).abs() < 1e-9);
        // 128 B / 250 ns = 0.512 GB/s.
        assert!((s.bandwidth().as_gigabytes_per_second() - 0.512).abs() < 1e-9);
    }

    #[test]
    fn energy_per_bit_accounting() {
        let mut s = SimStats::new("dev", "wl");
        s.record(&done(0, 0.0, 100.0, MemOp::Read));
        s.energy.access = Energy::from_picojoules(512.0);
        s.finalize_background(Power::from_milliwatts(0.0));
        // 512 pJ over 512 bits = 1 pJ/b.
        assert!((s.energy_per_bit().as_picojoules_per_bit() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn background_energy_uses_makespan() {
        let mut s = SimStats::new("dev", "wl");
        s.record(&done(0, 0.0, 1000.0, MemOp::Read));
        s.finalize_background(Power::from_watts(1.0));
        // 1 W * 1 us = 1 uJ.
        assert!((s.energy.background.as_joules() - 1e-6).abs() < 1e-15);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = LatencyHistogram::new();
        for ns in [5.0, 20.0, 50.0, 200.0, 200.0, 5000.0] {
            h.record(Time::from_nanos(ns));
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts()[0], 1); // <10
        assert_eq!(h.counts()[1], 1); // <31.6
        assert_eq!(h.counts()[2], 1); // <100
        assert_eq!(h.counts()[3], 2); // <316
        assert_eq!(h.counts()[6], 1); // <10k
        assert!(h.percentile(50.0).as_nanos() <= 316.0);
        assert!(h.percentile(99.0).as_nanos() >= 1000.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = SimStats::new("d", "w");
        assert_eq!(s.avg_latency(), Time::ZERO);
        assert_eq!(s.bandwidth(), DataRate::ZERO);
        assert_eq!(s.energy_per_bit(), EnergyPerBit::ZERO);
        assert_eq!(s.bandwidth_per_epb(), 0.0);
        assert_eq!(s.p99_latency, Time::ZERO);
        assert_eq!(LatencyHistogram::new().percentile(99.0), Time::ZERO);
        assert_eq!(percentile_of_sorted(&[], 50.0), Time::ZERO);
    }

    #[test]
    fn exact_percentiles_use_nearest_rank() {
        let mut samples: Vec<Time> = (1..=200).map(|n| Time::from_nanos(n as f64)).collect();
        // Shuffle-ish order: finalize must sort.
        samples.reverse();
        let mut s = SimStats::new("d", "w");
        s.finalize_percentiles(&mut samples);
        assert_eq!(s.p50_latency, Time::from_nanos(100.0));
        assert_eq!(s.p95_latency, Time::from_nanos(190.0));
        assert_eq!(s.p99_latency, Time::from_nanos(198.0));
        // Single sample: every percentile is that sample.
        let mut one = vec![Time::from_nanos(7.0)];
        s.finalize_percentiles(&mut one);
        assert_eq!(s.p50_latency, Time::from_nanos(7.0));
        assert_eq!(s.p99_latency, Time::from_nanos(7.0));
    }

    #[test]
    fn histogram_percentile_interpolates_within_bucket() {
        // 100 samples all in the <100 ns bucket (bounds 31.6..100).
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(Time::from_nanos(50.0));
        }
        let p50 = h.percentile(50.0).as_nanos();
        let p99 = h.percentile(99.0).as_nanos();
        assert!(p50 > 31.6 && p50 < 100.0, "p50 {p50}");
        assert!(p99 > p50 && p99 <= 100.0, "p99 {p99}");
        // Percentiles are monotone in q.
        let mut last = 0.0;
        for q in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(q).as_nanos();
            assert!(v >= last, "q={q}: {v} < {last}");
            last = v;
        }
    }
}
