//! `memsim` — a trace-driven main-memory simulator.
//!
//! The evaluation substrate of the COMET reproduction, standing in for the
//! heavily modified NVMain 2.0 the paper uses (Section IV): requests flow
//! from a trace (captured or synthetic) through a memory controller with
//! per-bank queues and FCFS/FR-FCFS scheduling into a pluggable
//! [`MemoryDevice`] timing/energy model, producing latency, bandwidth and
//! energy-per-bit statistics.
//!
//! Provided device models:
//! * [`DramDevice`] — 2D/3D DDR3/DDR4 with row buffers and refresh;
//! * [`EpcmDevice`] — electrically controlled PCM (`EPCM-MM`);
//! * the photonic architectures implement [`MemoryDevice`] in their own
//!   crates (`comet`, `cosmos`).
//!
//! # Quick start
//!
//! ```
//! use memsim::{
//!     run_simulation, spec_like_suite, DramConfig, DramDevice, SimConfig,
//! };
//!
//! let profile = &spec_like_suite(2000)[0]; // mcf-like
//! let trace = profile.generate(42);
//! let mut dev = DramDevice::new(DramConfig::ddr3_1600_2d());
//! let stats = run_simulation(&mut dev, &trace, &SimConfig::paced(&profile.name));
//! println!("{stats}");
//! assert_eq!(stats.completed, 2000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod data;
mod device;
mod dram;
mod engine;
mod pcm;
mod request;
mod stats;
mod synth;
mod trace;

pub use addr::{AddressMap, AddressMapError, DecodedAddress, Interleave};
pub use data::{LineData, PricedWrite, WriteCost, WritePricer, MAX_LINE_BYTES};
pub use device::{AccessTiming, DeviceFactory, FnFactory, MemoryDevice, Topology};
pub use dram::{DramConfig, DramDevice, DramEnergy, DramTimings, RowPolicy};
pub use engine::{run_simulation, ReplayMode, Scheduler, SimConfig};
pub use pcm::{EpcmConfig, EpcmDevice};
pub use request::{CompletedRequest, MemOp, MemRequest};
pub use stats::{percentile_of_sorted, EnergyBreakdown, LatencyHistogram, SimStats};
pub use synth::{spec_like_suite, AccessPattern, WorkloadProfile};
pub use trace::{read_trace, write_trace, ParseTraceError, TraceClock};
