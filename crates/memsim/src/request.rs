//! Memory requests and completions.

use crate::data::LineData;
use comet_units::{ByteCount, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The operation type of a memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemOp {
    /// Read a cache line.
    Read,
    /// Write a cache line.
    Write,
}

impl MemOp {
    /// Whether this is a read.
    pub fn is_read(self) -> bool {
        matches!(self, MemOp::Read)
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemOp::Read => write!(f, "R"),
            MemOp::Write => write!(f, "W"),
        }
    }
}

/// A single cache-line-granularity memory request.
///
/// # Examples
///
/// ```
/// use comet_units::{ByteCount, Time};
/// use memsim::{MemOp, MemRequest};
///
/// let req = MemRequest::new(0, Time::from_nanos(10.0), MemOp::Read, 0x4000, ByteCount::new(64));
/// assert!(req.op.is_read());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Unique id (trace order).
    pub id: u64,
    /// Arrival time at the memory controller.
    pub arrival: Time,
    /// Operation.
    pub op: MemOp,
    /// Physical byte address.
    pub address: u64,
    /// Transfer size (normally one cache line).
    pub size: ByteCount,
    /// The written line content, when the trace carries data. Payload-less
    /// requests price at the device's flat (content-oblivious) cost.
    pub payload: Option<LineData>,
}

impl MemRequest {
    /// Creates a payload-less request.
    pub fn new(id: u64, arrival: Time, op: MemOp, address: u64, size: ByteCount) -> Self {
        MemRequest {
            id,
            arrival,
            op,
            address,
            size,
            payload: None,
        }
    }

    /// Attaches a line payload (builder style).
    ///
    /// # Examples
    ///
    /// ```
    /// use comet_units::{ByteCount, Time};
    /// use memsim::{LineData, MemOp, MemRequest};
    ///
    /// let req = MemRequest::new(0, Time::ZERO, MemOp::Write, 0x80, ByteCount::new(64))
    ///     .with_payload(LineData::zeroes(64));
    /// assert_eq!(req.payload.unwrap().len(), 64);
    /// ```
    pub fn with_payload(mut self, payload: LineData) -> Self {
        self.payload = Some(payload);
        self
    }
}

/// A serviced request with its timing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletedRequest {
    /// The original request.
    pub request: MemRequest,
    /// When the device began servicing it.
    pub issued: Time,
    /// When the last data beat arrived at the controller.
    pub finished: Time,
}

impl CompletedRequest {
    /// End-to-end latency seen by the requester (finish − arrival).
    pub fn latency(&self) -> Time {
        self.finished - self.request.arrival
    }

    /// Queueing delay before issue (issue − arrival).
    pub fn queue_delay(&self) -> Time {
        self.issued - self.request.arrival
    }

    /// Device service time (finish − issue).
    pub fn service_time(&self) -> Time {
        self.finished - self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_decomposition() {
        let req = MemRequest::new(
            1,
            Time::from_nanos(100.0),
            MemOp::Write,
            0x80,
            ByteCount::new(64),
        );
        let done = CompletedRequest {
            request: req,
            issued: Time::from_nanos(150.0),
            finished: Time::from_nanos(300.0),
        };
        assert!((done.latency().as_nanos() - 200.0).abs() < 1e-9);
        assert!((done.queue_delay().as_nanos() - 50.0).abs() < 1e-9);
        assert!((done.service_time().as_nanos() - 150.0).abs() < 1e-9);
        assert!(
            (done.queue_delay() + done.service_time() - done.latency())
                .as_nanos()
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn op_display() {
        assert_eq!(MemOp::Read.to_string(), "R");
        assert_eq!(MemOp::Write.to_string(), "W");
        assert!(MemOp::Read.is_read());
        assert!(!MemOp::Write.is_read());
    }
}
